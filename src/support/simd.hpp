// Portable SIMD kernels for the batch hot loops.
//
// Three kernels carry the batched engines' inner loops (see
// src/local/README.md for where each one sits):
//  * transpose_to_rows - builds the row-major id transpose of a lockstep
//    batch from the per-trial assignment arrays;
//  * layer_gather      - the lockstep layer gather: one transpose row per
//    new ball vertex, scattered into the surviving trials' id buffers;
//  * gather_u64        - the straggler/sequential-regime gather
//    dst[k] = src[idx[k]] over a trial's own assignment array.
// Plus the word-path helpers the message arena uses: copy_words (bulk
// payload moves) and for_each_set_bit (count_trailing_zeros scans over the
// presence bitmask's 64-bit words).
//
// Dispatch is one ISA check cached per process: x86 builds compile an AVX2
// specialisation (per-function target attributes, no global -mavx2) and
// select it at runtime via cpu-supports; aarch64 builds use NEON (baseline
// there); everything else - and any build configured with -DAVGLOCAL_SIMD=OFF
// (AVGLOCAL_SIMD_DISABLE) - runs the scalar reference. The scalar namespace
// is always compiled: tests pin every vector kernel bit-identical to it,
// and bench_regression times the two against each other on every run.
//
// All kernels move uint64 values verbatim - no arithmetic, no reordering of
// destination elements - so vector and scalar paths are bit-identical by
// construction, and the engines' outputs cannot depend on the ISA.
#pragma once

#include <bit>
#include <cstddef>
#include <cstdint>
#include <cstring>

#include "support/annotations.hpp"

#if !defined(AVGLOCAL_SIMD_DISABLE) && defined(__x86_64__) && \
    (defined(__GNUC__) || defined(__clang__))
#define AVGLOCAL_SIMD_X86 1
#include <immintrin.h>
#elif !defined(AVGLOCAL_SIMD_DISABLE) && defined(__ARM_NEON)
#define AVGLOCAL_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace avglocal::support::simd {

// ------------------------------------------------------------- scalar ----
// Reference implementations: the pre-vectorisation loop shapes, kept as the
// semantic ground truth every specialisation is pinned against.
namespace scalar {

/// dst[k] = src[k] for k in [0, count). Plain word loop.
inline void copy_words(std::uint64_t* dst, const std::uint64_t* src, std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) dst[k] = src[k];
}

/// dst[k] = src[idx[k]] for k in [0, count).
inline void gather_u64(std::uint64_t* dst, const std::uint64_t* src, const std::uint32_t* idx,
                       std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) dst[k] = src[idx[k]];
}

/// dst[k] = src[idx[k]] for k in [0, count), 32-bit values. The compact-CSR
/// twin of gather_u64: half the bytes per element means twice the gather
/// lanes per vector register on the AVX2 path.
inline void gather_u32(std::uint32_t* dst, const std::uint32_t* src, const std::uint32_t* idx,
                       std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) dst[k] = src[idx[k]];
}

/// dst[k] = max(radii[us[k]], radii[vs[k]]) for k in [0, count): the edge
/// time of canonical edge k under the radius profile `radii` (an edge is
/// decided when its slower endpoint is). SoA endpoint arrays so the vector
/// path is two gathers and a max.
inline void edge_times_u32(std::uint32_t* dst, const std::uint32_t* radii,
                           const std::uint32_t* us, const std::uint32_t* vs,
                           std::size_t count) {
  for (std::size_t k = 0; k < count; ++k) {
    const std::uint32_t a = radii[us[k]];
    const std::uint32_t b = radii[vs[k]];
    dst[k] = a > b ? a : b;
  }
}

/// heads[j][dst_begin + r] = rows[row_index[r] * row_stride + cols[j]] for
/// r in [0, row_count), j in [0, col_count). The original lockstep gather:
/// one contiguous transpose row per ball vertex, scattered over the
/// surviving trials' buffers.
inline void layer_gather(const std::uint64_t* rows, std::size_t row_stride,
                         const std::uint32_t* row_index, std::size_t row_count,
                         const std::uint32_t* cols, std::size_t col_count,
                         std::uint64_t* const* heads, std::size_t dst_begin) {
  for (std::size_t r = 0; r < row_count; ++r) {
    const std::uint64_t* row = rows + std::size_t{row_index[r]} * row_stride;
    for (std::size_t j = 0; j < col_count; ++j) {
      heads[j][dst_begin + r] = row[cols[j]];
    }
  }
}

/// dst[r * dst_stride + j] = srcs[j][r] for r in [0, row_count),
/// j in [0, col_count). Builds the row-major transpose from per-trial
/// column arrays.
inline void transpose_to_rows(std::uint64_t* dst, std::size_t dst_stride,
                              const std::uint64_t* const* srcs, std::size_t col_count,
                              std::size_t row_count) {
  for (std::size_t r = 0; r < row_count; ++r) {
    std::uint64_t* row = dst + r * dst_stride;
    for (std::size_t j = 0; j < col_count; ++j) row[j] = srcs[j][r];
  }
}

}  // namespace scalar

// --------------------------------------------------------------- AVX2 ----
#if defined(AVGLOCAL_SIMD_X86)

namespace avx2 {

/// In-register 4x4 uint64 transpose: o{k} = column k of the matrix whose
/// rows are v0..v3.
__attribute__((target("avx2"))) inline void transpose4x4(__m256i v0, __m256i v1, __m256i v2,
                                                         __m256i v3, __m256i& o0, __m256i& o1,
                                                         __m256i& o2, __m256i& o3) {
  const __m256i t0 = _mm256_unpacklo_epi64(v0, v1);  // [v0_0 v1_0 v0_2 v1_2]
  const __m256i t1 = _mm256_unpackhi_epi64(v0, v1);  // [v0_1 v1_1 v0_3 v1_3]
  const __m256i t2 = _mm256_unpacklo_epi64(v2, v3);
  const __m256i t3 = _mm256_unpackhi_epi64(v2, v3);
  o0 = _mm256_permute2x128_si256(t0, t2, 0x20);
  o1 = _mm256_permute2x128_si256(t1, t3, 0x20);
  o2 = _mm256_permute2x128_si256(t0, t2, 0x31);
  o3 = _mm256_permute2x128_si256(t1, t3, 0x31);
}

/// 4 transpose-row values at columns cols[j..j+3]: one 256-bit load when
/// the columns are consecutive (the dominant regime - the active list is a
/// dense prefix until trials start finishing), a hardware gather otherwise.
__attribute__((target("avx2"))) inline __m256i load_cols(const std::uint64_t* row,
                                                         const std::uint32_t* cols,
                                                         bool consecutive) {
  if (consecutive) {
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(row + cols[0]));
  }
  const __m128i idx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(cols));
  return _mm256_i32gather_epi64(reinterpret_cast<const long long*>(row), idx, 8);
}

__attribute__((target("avx2"))) inline void layer_gather(
    const std::uint64_t* rows, std::size_t row_stride, const std::uint32_t* row_index,
    std::size_t row_count, const std::uint32_t* cols, std::size_t col_count,
    std::uint64_t* const* heads, std::size_t dst_begin) {
  std::size_t r = 0;
  for (; r + 4 <= row_count; r += 4) {
    const std::uint64_t* r0 = rows + std::size_t{row_index[r + 0]} * row_stride;
    const std::uint64_t* r1 = rows + std::size_t{row_index[r + 1]} * row_stride;
    const std::uint64_t* r2 = rows + std::size_t{row_index[r + 2]} * row_stride;
    const std::uint64_t* r3 = rows + std::size_t{row_index[r + 3]} * row_stride;
    std::size_t j = 0;
    for (; j + 4 <= col_count; j += 4) {
      const std::uint32_t c0 = cols[j];
      const bool consecutive =
          cols[j + 1] == c0 + 1 && cols[j + 2] == c0 + 2 && cols[j + 3] == c0 + 3;
      __m256i o0, o1, o2, o3;
      transpose4x4(load_cols(r0, cols + j, consecutive), load_cols(r1, cols + j, consecutive),
                   load_cols(r2, cols + j, consecutive), load_cols(r3, cols + j, consecutive),
                   o0, o1, o2, o3);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(heads[j + 0] + dst_begin + r), o0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(heads[j + 1] + dst_begin + r), o1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(heads[j + 2] + dst_begin + r), o2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(heads[j + 3] + dst_begin + r), o3);
    }
    for (; j < col_count; ++j) {
      std::uint64_t* h = heads[j] + dst_begin + r;
      const std::uint32_t c = cols[j];
      h[0] = r0[c];
      h[1] = r1[c];
      h[2] = r2[c];
      h[3] = r3[c];
    }
  }
  if (row_count - r >= 2) {
    // Two-row tile (rings grow two vertices per layer): 128-bit paired
    // stores per surviving trial.
    const std::uint64_t* r0 = rows + std::size_t{row_index[r + 0]} * row_stride;
    const std::uint64_t* r1 = rows + std::size_t{row_index[r + 1]} * row_stride;
    std::size_t j = 0;
    for (; j + 4 <= col_count; j += 4) {
      const std::uint32_t c0 = cols[j];
      const bool consecutive =
          cols[j + 1] == c0 + 1 && cols[j + 2] == c0 + 2 && cols[j + 3] == c0 + 3;
      const __m256i v0 = load_cols(r0, cols + j, consecutive);
      const __m256i v1 = load_cols(r1, cols + j, consecutive);
      const __m256i lo = _mm256_unpacklo_epi64(v0, v1);  // [c0: r0 r1 | c2: r0 r1]
      const __m256i hi = _mm256_unpackhi_epi64(v0, v1);  // [c1: r0 r1 | c3: r0 r1]
      _mm_storeu_si128(reinterpret_cast<__m128i*>(heads[j + 0] + dst_begin + r),
                       _mm256_castsi256_si128(lo));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(heads[j + 1] + dst_begin + r),
                       _mm256_castsi256_si128(hi));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(heads[j + 2] + dst_begin + r),
                       _mm256_extracti128_si256(lo, 1));
      _mm_storeu_si128(reinterpret_cast<__m128i*>(heads[j + 3] + dst_begin + r),
                       _mm256_extracti128_si256(hi, 1));
    }
    for (; j < col_count; ++j) {
      std::uint64_t* h = heads[j] + dst_begin + r;
      const std::uint32_t c = cols[j];
      h[0] = r0[c];
      h[1] = r1[c];
    }
    r += 2;
  }
  for (; r < row_count; ++r) {
    const std::uint64_t* row = rows + std::size_t{row_index[r]} * row_stride;
    for (std::size_t j = 0; j < col_count; ++j) heads[j][dst_begin + r] = row[cols[j]];
  }
}

__attribute__((target("avx2"))) inline void transpose_to_rows(std::uint64_t* dst,
                                                              std::size_t dst_stride,
                                                              const std::uint64_t* const* srcs,
                                                              std::size_t col_count,
                                                              std::size_t row_count) {
  std::size_t r = 0;
  for (; r + 4 <= row_count; r += 4) {
    std::size_t j = 0;
    for (; j + 4 <= col_count; j += 4) {
      __m256i o0, o1, o2, o3;
      transpose4x4(_mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j + 0] + r)),
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j + 1] + r)),
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j + 2] + r)),
                   _mm256_loadu_si256(reinterpret_cast<const __m256i*>(srcs[j + 3] + r)),
                   o0, o1, o2, o3);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (r + 0) * dst_stride + j), o0);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (r + 1) * dst_stride + j), o1);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (r + 2) * dst_stride + j), o2);
      _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + (r + 3) * dst_stride + j), o3);
    }
    for (; j < col_count; ++j) {
      const std::uint64_t* s = srcs[j] + r;
      dst[(r + 0) * dst_stride + j] = s[0];
      dst[(r + 1) * dst_stride + j] = s[1];
      dst[(r + 2) * dst_stride + j] = s[2];
      dst[(r + 3) * dst_stride + j] = s[3];
    }
  }
  for (; r < row_count; ++r) {
    std::uint64_t* row = dst + r * dst_stride;
    for (std::size_t j = 0; j < col_count; ++j) row[j] = srcs[j][r];
  }
}

__attribute__((target("avx2"))) inline void gather_u64(std::uint64_t* dst,
                                                       const std::uint64_t* src,
                                                       const std::uint32_t* idx,
                                                       std::size_t count) {
  std::size_t k = 0;
  for (; k + 4 <= count; k += 4) {
    const __m128i vidx = _mm_loadu_si128(reinterpret_cast<const __m128i*>(idx + k));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + k),
        _mm256_i32gather_epi64(reinterpret_cast<const long long*>(src), vidx, 8));
  }
  for (; k < count; ++k) dst[k] = src[idx[k]];
}

__attribute__((target("avx2"))) inline void gather_u32(std::uint32_t* dst,
                                                       const std::uint32_t* src,
                                                       const std::uint32_t* idx,
                                                       std::size_t count) {
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i vidx = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(idx + k));
    _mm256_storeu_si256(
        reinterpret_cast<__m256i*>(dst + k),
        _mm256_i32gather_epi32(reinterpret_cast<const int*>(src), vidx, 4));
  }
  for (; k < count; ++k) dst[k] = src[idx[k]];
}

__attribute__((target("avx2"))) inline void edge_times_u32(std::uint32_t* dst,
                                                           const std::uint32_t* radii,
                                                           const std::uint32_t* us,
                                                           const std::uint32_t* vs,
                                                           std::size_t count) {
  std::size_t k = 0;
  for (; k + 8 <= count; k += 8) {
    const __m256i iu = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(us + k));
    const __m256i iv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(vs + k));
    const __m256i a = _mm256_i32gather_epi32(reinterpret_cast<const int*>(radii), iu, 4);
    const __m256i b = _mm256_i32gather_epi32(reinterpret_cast<const int*>(radii), iv, 4);
    _mm256_storeu_si256(reinterpret_cast<__m256i*>(dst + k), _mm256_max_epu32(a, b));
  }
  for (; k < count; ++k) {
    const std::uint32_t a = radii[us[k]];
    const std::uint32_t b = radii[vs[k]];
    dst[k] = a > b ? a : b;
  }
}

}  // namespace avx2

/// One cpuid probe per process; every dispatch below branches on it.
inline bool have_avx2() noexcept {
  static const bool ok = __builtin_cpu_supports("avx2");
  return ok;
}

#endif  // AVGLOCAL_SIMD_X86

// --------------------------------------------------------------- NEON ----
#if defined(AVGLOCAL_SIMD_NEON)

namespace neon {

inline void layer_gather(const std::uint64_t* rows, std::size_t row_stride,
                         const std::uint32_t* row_index, std::size_t row_count,
                         const std::uint32_t* cols, std::size_t col_count,
                         std::uint64_t* const* heads, std::size_t dst_begin) {
  std::size_t r = 0;
  for (; r + 2 <= row_count; r += 2) {
    const std::uint64_t* r0 = rows + std::size_t{row_index[r + 0]} * row_stride;
    const std::uint64_t* r1 = rows + std::size_t{row_index[r + 1]} * row_stride;
    for (std::size_t j = 0; j < col_count; ++j) {
      const std::uint32_t c = cols[j];
      const uint64x2_t v = vcombine_u64(vcreate_u64(r0[c]), vcreate_u64(r1[c]));
      vst1q_u64(heads[j] + dst_begin + r, v);
    }
  }
  for (; r < row_count; ++r) {
    const std::uint64_t* row = rows + std::size_t{row_index[r]} * row_stride;
    for (std::size_t j = 0; j < col_count; ++j) heads[j][dst_begin + r] = row[cols[j]];
  }
}

inline void transpose_to_rows(std::uint64_t* dst, std::size_t dst_stride,
                              const std::uint64_t* const* srcs, std::size_t col_count,
                              std::size_t row_count) {
  std::size_t r = 0;
  for (; r + 2 <= row_count; r += 2) {
    std::size_t j = 0;
    for (; j + 2 <= col_count; j += 2) {
      const uint64x2_t v0 = vld1q_u64(srcs[j + 0] + r);  // [s0[r] s0[r+1]]
      const uint64x2_t v1 = vld1q_u64(srcs[j + 1] + r);
      vst1q_u64(dst + (r + 0) * dst_stride + j, vzip1q_u64(v0, v1));
      vst1q_u64(dst + (r + 1) * dst_stride + j, vzip2q_u64(v0, v1));
    }
    for (; j < col_count; ++j) {
      dst[(r + 0) * dst_stride + j] = srcs[j][r + 0];
      dst[(r + 1) * dst_stride + j] = srcs[j][r + 1];
    }
  }
  for (; r < row_count; ++r) {
    std::uint64_t* row = dst + r * dst_stride;
    for (std::size_t j = 0; j < col_count; ++j) row[j] = srcs[j][r];
  }
}

}  // namespace neon

#endif  // AVGLOCAL_SIMD_NEON

// ----------------------------------------------------------- dispatch ----

/// Instruction set the kernels below actually run: "avx2", "neon" or
/// "scalar". Benches record it so BENCH_core.json numbers are attributable
/// to the hardware that produced them; the speedup gates only apply when a
/// vector ISA is active.
inline const char* active_isa() noexcept {
#if defined(AVGLOCAL_SIMD_X86)
  return have_avx2() ? "avx2" : "scalar";
#elif defined(AVGLOCAL_SIMD_NEON)
  return "neon";
#else
  return "scalar";
#endif
}

/// Bulk payload copy (non-overlapping). memmove-class on every ISA.
AVGLOCAL_HOT inline void copy_words(std::uint64_t* dst, const std::uint64_t* src,
                                    std::size_t count) {
  if (count != 0) std::memcpy(dst, src, count * sizeof(std::uint64_t));
}

/// dst[k] = src[idx[k]] for k in [0, count).
AVGLOCAL_HOT inline void gather_u64(std::uint64_t* dst, const std::uint64_t* src,
                                    const std::uint32_t* idx, std::size_t count) {
#if defined(AVGLOCAL_SIMD_X86)
  if (have_avx2()) return avx2::gather_u64(dst, src, idx, count);
#endif
  scalar::gather_u64(dst, src, idx, count);
}

/// dst[k] = src[idx[k]] for k in [0, count), 32-bit values (see
/// scalar::gather_u32). Eight lanes per AVX2 gather - the doubled lane
/// width the compact-CSR tables buy.
AVGLOCAL_HOT inline void gather_u32(std::uint32_t* dst, const std::uint32_t* src,
                                    const std::uint32_t* idx, std::size_t count) {
#if defined(AVGLOCAL_SIMD_X86)
  if (have_avx2()) return avx2::gather_u32(dst, src, idx, count);
#endif
  scalar::gather_u32(dst, src, idx, count);
}

/// Edge times over a radius profile (see scalar::edge_times_u32 for the
/// contract). Max of two unsigned gathers - no arithmetic that could
/// reorder or round, so vector and scalar are bit-identical.
AVGLOCAL_HOT inline void edge_times_u32(std::uint32_t* dst, const std::uint32_t* radii,
                                        const std::uint32_t* us, const std::uint32_t* vs,
                                        std::size_t count) {
#if defined(AVGLOCAL_SIMD_X86)
  if (have_avx2()) return avx2::edge_times_u32(dst, radii, us, vs, count);
#endif
  scalar::edge_times_u32(dst, radii, us, vs, count);
}

/// The lockstep layer gather (see scalar::layer_gather for the contract).
AVGLOCAL_HOT inline void layer_gather(const std::uint64_t* rows, std::size_t row_stride,
                                      const std::uint32_t* row_index, std::size_t row_count,
                                      const std::uint32_t* cols, std::size_t col_count,
                                      std::uint64_t* const* heads, std::size_t dst_begin) {
#if defined(AVGLOCAL_SIMD_X86)
  if (have_avx2()) {
    return avx2::layer_gather(rows, row_stride, row_index, row_count, cols, col_count, heads,
                              dst_begin);
  }
#elif defined(AVGLOCAL_SIMD_NEON)
  return neon::layer_gather(rows, row_stride, row_index, row_count, cols, col_count, heads,
                            dst_begin);
#endif
  scalar::layer_gather(rows, row_stride, row_index, row_count, cols, col_count, heads,
                       dst_begin);
}

/// Transpose build (see scalar::transpose_to_rows for the contract).
AVGLOCAL_HOT inline void transpose_to_rows(std::uint64_t* dst, std::size_t dst_stride,
                                           const std::uint64_t* const* srcs,
                                           std::size_t col_count, std::size_t row_count) {
#if defined(AVGLOCAL_SIMD_X86)
  if (have_avx2()) return avx2::transpose_to_rows(dst, dst_stride, srcs, col_count, row_count);
#elif defined(AVGLOCAL_SIMD_NEON)
  return neon::transpose_to_rows(dst, dst_stride, srcs, col_count, row_count);
#endif
  scalar::transpose_to_rows(dst, dst_stride, srcs, col_count, row_count);
}

/// Invokes fn(bit_index) for every set bit in [begin, end) of the mask
/// whose i-th bit is words[i >> 6] bit (i & 63), ascending. One
/// count_trailing_zeros per set bit, one load per 64 bits - never a
/// per-bit test. This is how the message engine drains a vertex's
/// contiguous presence window.
template <typename Fn>
AVGLOCAL_HOT inline void for_each_set_bit(const std::uint64_t* words, std::size_t begin,
                                          std::size_t end, Fn&& fn) {
  if (begin >= end) return;
  std::size_t w = begin >> 6;
  const std::size_t w_last = (end - 1) >> 6;
  std::uint64_t mask = words[w] & (~std::uint64_t{0} << (begin & 63));
  while (true) {
    if (w == w_last && (end & 63) != 0) {
      mask &= ~std::uint64_t{0} >> (64 - (end & 63));
    }
    while (mask != 0) {
      fn(w * 64 + static_cast<std::size_t>(std::countr_zero(mask)));
      mask &= mask - 1;
    }
    if (w == w_last) return;
    mask = words[++w];
  }
}

}  // namespace avglocal::support::simd
