// A persistent worker pool for data-parallel loops.
//
// Threads are created once (per pool) and reused across any number of
// for_range calls, so callers can hoist thread creation out of hot loops -
// e.g. one pool per sweep instead of one thread spawn per sweep point. Work
// is handed out in dynamically scheduled chunks through a shared atomic
// cursor; the calling thread participates as worker 0, so a pool of size 1
// runs everything inline with zero synchronisation overhead.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace avglocal::support {

class ThreadPool {
 public:
  /// Worker body for one chunk: fn(worker, begin, end) with 0 <= worker <
  /// size() identifying the executing worker (stable across chunks of one
  /// for_range call - usable to index per-worker scratch state).
  using RangeFn = std::function<void(std::size_t worker, std::size_t begin, std::size_t end)>;

  /// threads == 0 means std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;
  ~ThreadPool();

  /// Number of workers, including the calling thread.
  std::size_t size() const noexcept { return worker_count_; }

  /// Runs fn over [0, count) in chunks of `grain`, blocking until done.
  /// Chunk order across workers is unspecified; callers needing determinism
  /// must write to disjoint, index-addressed outputs. The first exception
  /// thrown by fn is rethrown here (remaining chunks may be skipped).
  /// One job at a time: calling for_range while another is running - from a
  /// second thread or from inside fn - throws std::logic_error.
  void for_range(std::size_t count, std::size_t grain, const RangeFn& fn);

 private:
  void worker_loop(std::size_t worker);
  void run_chunks(std::size_t worker);

  std::size_t worker_count_;
  std::vector<std::thread> threads_;  // worker_count_ - 1 helpers

  std::mutex mutex_;
  std::condition_variable wake_cv_;   // helpers wait for a new job
  std::condition_variable done_cv_;   // for_range waits for helpers
  std::uint64_t generation_ = 0;      // bumped per job
  std::size_t helpers_done_ = 0;
  bool stopping_ = false;
  std::atomic<bool> job_active_{false};

  // Current job (valid while helpers run generation_).
  const RangeFn* fn_ = nullptr;
  std::size_t count_ = 0;
  std::size_t grain_ = 1;
  std::atomic<std::size_t> cursor_{0};
  std::exception_ptr error_;
};

}  // namespace avglocal::support
