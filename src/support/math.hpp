// Integer / combinatorial math helpers used across the reproduction:
// iterated logarithm (log*), power towers, bit utilities, safe ceilings.
#pragma once

#include <cstdint>

namespace avglocal::support {

/// floor(log2(x)) for x >= 1.
int ilog2(std::uint64_t x) noexcept;

/// ceil(log2(x)) for x >= 1 (0 for x == 1).
int ceil_log2(std::uint64_t x) noexcept;

/// Number of bits needed to write x in binary (bit_width); 0 for x == 0.
int bit_width_u64(std::uint64_t x) noexcept;

/// Iterated binary logarithm: log*(x) = 0 if x <= 1, else 1 + log*(log2(x)).
/// Uses the real-valued log2 on the first step and integer floors afterwards;
/// log* is so flat that the convention only shifts values by at most 1.
int log_star(double x) noexcept;

/// Power tower ("tetration"): tower(k) = 2^2^...^2 with k twos.
/// tower(0) = 1, tower(1) = 2, tower(2) = 4, tower(3) = 16, tower(4) = 65536.
/// Saturates at the largest k with tower(k) representable (k <= 5 overflows
/// 64 bits); requires k <= 5 would overflow, so k must be <= 5 for exact
/// values and the function asserts k <= 5.
std::uint64_t tower(int k) noexcept;

/// ceil(a / b) for b > 0.
constexpr std::uint64_t ceil_div(std::uint64_t a, std::uint64_t b) noexcept {
  return (a + b - 1) / b;
}

/// Population count of x (number of set bits).
int popcount_u64(std::uint64_t x) noexcept;

}  // namespace avglocal::support
