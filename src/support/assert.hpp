// Lightweight contract macros for the avglocal library.
//
// AVGLOCAL_EXPECTS  - precondition on public API entry; throws std::invalid_argument.
// AVGLOCAL_REQUIRE  - general runtime requirement; throws std::logic_error.
// AVGLOCAL_ASSERT   - internal invariant; aborts in debug, compiled out in NDEBUG.
//
// Following the C++ Core Guidelines (I.5/I.6/E.12), broken preconditions on
// the public surface are reported with exceptions so callers can test the
// guard paths; internal invariants use assert semantics.
#pragma once

#include <cassert>
#include <stdexcept>
#include <string>

namespace avglocal::support {

[[noreturn]] inline void throw_precondition(const char* expr, const char* file, int line,
                                            const std::string& what) {
  throw std::invalid_argument(std::string("precondition failed: ") + expr + " at " + file + ":" +
                              std::to_string(line) + (what.empty() ? "" : (": " + what)));
}

[[noreturn]] inline void throw_requirement(const char* expr, const char* file, int line,
                                           const std::string& what) {
  throw std::logic_error(std::string("requirement failed: ") + expr + " at " + file + ":" +
                         std::to_string(line) + (what.empty() ? "" : (": " + what)));
}

}  // namespace avglocal::support

#define AVGLOCAL_EXPECTS(cond)                                                       \
  do {                                                                               \
    if (!(cond)) ::avglocal::support::throw_precondition(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define AVGLOCAL_EXPECTS_MSG(cond, msg)                                                 \
  do {                                                                                  \
    if (!(cond)) ::avglocal::support::throw_precondition(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define AVGLOCAL_REQUIRE(cond)                                                      \
  do {                                                                              \
    if (!(cond)) ::avglocal::support::throw_requirement(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define AVGLOCAL_REQUIRE_MSG(cond, msg)                                                \
  do {                                                                                 \
    if (!(cond)) ::avglocal::support::throw_requirement(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#define AVGLOCAL_ASSERT(cond) assert(cond)
