#include "support/thread_pool.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace avglocal::support {

ThreadPool::ThreadPool(std::size_t threads)
    : worker_count_(threads != 0 ? threads
                                 : std::max<std::size_t>(1, std::thread::hardware_concurrency())) {
  threads_.reserve(worker_count_ - 1);
  try {
    for (std::size_t w = 1; w < worker_count_; ++w) {
      threads_.emplace_back([this, w] { worker_loop(w); });
    }
  } catch (...) {
    // Thread creation failed partway (resource exhaustion): shut down the
    // workers that did start, or their joinable destructors would terminate.
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      stopping_ = true;
    }
    wake_cv_.notify_all();
    for (std::thread& t : threads_) t.join();
    throw;
  }
}

ThreadPool::~ThreadPool() {
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  wake_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void ThreadPool::run_chunks(std::size_t worker) {
  try {
    std::size_t begin;
    while ((begin = cursor_.fetch_add(grain_, std::memory_order_relaxed)) < count_) {
      (*fn_)(worker, begin, std::min(begin + grain_, count_));
    }
  } catch (...) {
    const std::lock_guard<std::mutex> lock(mutex_);
    if (!error_) error_ = std::current_exception();
    // Drain the remaining chunks so other workers stop quickly.
    cursor_.store(count_, std::memory_order_relaxed);
  }
}

void ThreadPool::worker_loop(std::size_t worker) {
  std::uint64_t seen = 0;
  while (true) {
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_cv_.wait(lock, [&] { return stopping_ || generation_ != seen; });
      if (stopping_) return;
      seen = generation_;
    }
    run_chunks(worker);
    {
      const std::lock_guard<std::mutex> lock(mutex_);
      ++helpers_done_;
    }
    done_cv_.notify_one();
  }
}

void ThreadPool::for_range(std::size_t count, std::size_t grain, const RangeFn& fn) {
  AVGLOCAL_EXPECTS_MSG(grain >= 1, "for_range: grain must be positive");
  if (count == 0) return;
  // One job at a time: concurrent or re-entrant for_range would clobber the
  // shared job state, so fail loudly instead.
  AVGLOCAL_REQUIRE_MSG(!job_active_.exchange(true),
                       "for_range: pool already running a job (concurrent or nested call)");
  if (worker_count_ == 1) {
    // Inline fast path: no helpers, no synchronisation.
    for (std::size_t begin = 0; begin < count; begin += grain) {
      try {
        fn(0, begin, std::min(begin + grain, count));
      } catch (...) {
        job_active_.store(false);
        throw;
      }
    }
    job_active_.store(false);
    return;
  }

  {
    const std::lock_guard<std::mutex> lock(mutex_);
    fn_ = &fn;
    count_ = count;
    grain_ = grain;
    cursor_.store(0, std::memory_order_relaxed);
    error_ = nullptr;
    helpers_done_ = 0;
    ++generation_;
  }
  wake_cv_.notify_all();
  run_chunks(0);
  {
    std::unique_lock<std::mutex> lock(mutex_);
    done_cv_.wait(lock, [&] { return helpers_done_ == worker_count_ - 1; });
    fn_ = nullptr;
    job_active_.store(false);
    if (error_) std::rethrow_exception(std::exchange(error_, nullptr));
  }
}

}  // namespace avglocal::support
