// Opt-in global allocation counting, for tests and benches that must prove
// a hot path is allocation-free.
//
// The library never replaces the global allocator. A binary that wants
// counting places AVGLOCAL_DEFINE_ALLOC_HOOK() at namespace scope in
// exactly one translation unit; that defines replacement global
// operator new/delete which tick the counters below. Everything else reads
// alloc_counts() - which simply stays at zero when no hook is installed.
#pragma once

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

namespace avglocal::support {

struct AllocCounts {
  std::uint64_t allocations = 0;
  std::uint64_t bytes = 0;
};

namespace alloc_hook_detail {
// Concurrency contract: every counter tick is a relaxed atomic RMW, so
// concurrent allocation from any number of pool workers loses no updates
// and is ThreadSanitizer-clean (pinned by AllocHook.ConcurrentCountsAreExact
// and the tsan CI job). Relaxed ordering is enough - the gates only ever
// read the counters after joining the threads whose allocations they
// count, and that join supplies the happens-before edge.
//
// Both counters live on one dedicated cache line: they are always written
// together (one allocation ticks both), and the alignment keeps the hot
// RMW traffic from false-sharing with unrelated globals.
struct alignas(64) Counters {
  std::atomic<std::uint64_t> allocations{0};
  std::atomic<std::uint64_t> bytes{0};
};
inline Counters g_counters;

inline void note(std::size_t bytes) noexcept {
  g_counters.allocations.fetch_add(1, std::memory_order_relaxed);
  g_counters.bytes.fetch_add(bytes, std::memory_order_relaxed);
}
}  // namespace alloc_hook_detail

/// Totals since process start (zero when no hook is installed). Safe to
/// call from any thread; exact once the counted threads have been joined.
inline AllocCounts alloc_counts() noexcept {
  return {alloc_hook_detail::g_counters.allocations.load(std::memory_order_relaxed),
          alloc_hook_detail::g_counters.bytes.load(std::memory_order_relaxed)};
}

}  // namespace avglocal::support

// NOLINTBEGIN - replacement allocation functions must live at global scope.
// Covers the plain, array, aligned, and nothrow families so nothing the
// engine could allocate escapes the counters.
#define AVGLOCAL_DEFINE_ALLOC_HOOK()                                                          \
  void* operator new(std::size_t size) {                                                      \
    ::avglocal::support::alloc_hook_detail::note(size);                                       \
    if (void* p = std::malloc(size != 0 ? size : 1)) return p;                                \
    throw std::bad_alloc{};                                                                   \
  }                                                                                           \
  void* operator new[](std::size_t size) {                                                    \
    ::avglocal::support::alloc_hook_detail::note(size);                                       \
    if (void* p = std::malloc(size != 0 ? size : 1)) return p;                                \
    throw std::bad_alloc{};                                                                   \
  }                                                                                           \
  void* operator new(std::size_t size, std::align_val_t align) {                              \
    ::avglocal::support::alloc_hook_detail::note(size);                                       \
    /* C11 aligned_alloc requires size to be a multiple of the alignment. */                  \
    const std::size_t a = static_cast<std::size_t>(align);                                    \
    if (void* p = std::aligned_alloc(a, (size + a - 1) / a * a)) return p;                    \
    throw std::bad_alloc{};                                                                   \
  }                                                                                           \
  void* operator new[](std::size_t size, std::align_val_t align) {                            \
    return ::operator new(size, align);                                                       \
  }                                                                                           \
  void* operator new(std::size_t size, const std::nothrow_t&) noexcept {                      \
    ::avglocal::support::alloc_hook_detail::note(size);                                       \
    return std::malloc(size != 0 ? size : 1);                                                 \
  }                                                                                           \
  void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {                    \
    ::avglocal::support::alloc_hook_detail::note(size);                                       \
    return std::malloc(size != 0 ? size : 1);                                                 \
  }                                                                                           \
  void operator delete(void* ptr) noexcept { std::free(ptr); }                                \
  void operator delete[](void* ptr) noexcept { std::free(ptr); }                              \
  void operator delete(void* ptr, std::size_t) noexcept { std::free(ptr); }                   \
  void operator delete[](void* ptr, std::size_t) noexcept { std::free(ptr); }                 \
  void operator delete(void* ptr, std::align_val_t) noexcept { std::free(ptr); }              \
  void operator delete[](void* ptr, std::align_val_t) noexcept { std::free(ptr); }            \
  void operator delete(void* ptr, std::size_t, std::align_val_t) noexcept { std::free(ptr); } \
  void operator delete[](void* ptr, std::size_t, std::align_val_t) noexcept {                 \
    std::free(ptr);                                                                           \
  }                                                                                           \
  void operator delete(void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }         \
  void operator delete[](void* ptr, const std::nothrow_t&) noexcept { std::free(ptr); }       \
  static_assert(true, "require a trailing semicolon")
// NOLINTEND
