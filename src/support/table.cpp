#include "support/table.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "support/assert.hpp"

namespace avglocal::support {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  AVGLOCAL_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::cell(std::int64_t v) { return std::to_string(v); }
std::string Table::cell(std::uint64_t v) { return std::to_string(v); }
std::string Table::cell(int v) { return std::to_string(v); }
std::string Table::cell(unsigned v) { return std::to_string(v); }

std::string Table::cell(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

namespace {

std::vector<std::size_t> column_widths(const std::vector<std::string>& headers,
                                       const std::vector<std::vector<std::string>>& rows) {
  std::vector<std::size_t> widths(headers.size());
  for (std::size_t c = 0; c < headers.size(); ++c) widths[c] = headers[c].size();
  for (const auto& row : rows)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());
  return widths;
}

void append_padded(std::string& out, const std::string& s, std::size_t width) {
  out += s;
  out.append(width - s.size(), ' ');
}

}  // namespace

std::string Table::to_markdown() const {
  const auto widths = column_widths(headers_, rows_);
  std::string out;
  out += "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += " ";
    append_padded(out, headers_[c], widths[c]);
    out += " |";
  }
  out += "\n|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += std::string(widths[c] + 2, '-');
    out += "|";
  }
  out += "\n";
  for (const auto& row : rows_) {
    out += "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out += " ";
      append_padded(out, row[c], widths[c]);
      out += " |";
    }
    out += "\n";
  }
  return out;
}

std::string Table::to_text() const {
  const auto widths = column_widths(headers_, rows_);
  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    append_padded(out, headers_[c], widths[c]);
    out += "  ";
  }
  out += "\n";
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      append_padded(out, row[c], widths[c]);
      out += "  ";
    }
    out += "\n";
  }
  return out;
}

void print_section(std::ostream& out, const std::string& title, const Table& table) {
  out << "\n## " << title << "\n\n" << table.to_markdown() << "\n";
}

}  // namespace avglocal::support
