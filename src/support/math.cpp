#include "support/math.hpp"

#include <bit>
#include <cmath>

#include "support/assert.hpp"

namespace avglocal::support {

int ilog2(std::uint64_t x) noexcept {
  AVGLOCAL_ASSERT(x >= 1);
  return 63 - std::countl_zero(x);
}

int ceil_log2(std::uint64_t x) noexcept {
  AVGLOCAL_ASSERT(x >= 1);
  if (x == 1) return 0;
  return ilog2(x - 1) + 1;
}

int bit_width_u64(std::uint64_t x) noexcept {
  return static_cast<int>(std::bit_width(x));
}

int log_star(double x) noexcept {
  int k = 0;
  while (x > 1.0) {
    x = std::log2(x);
    ++k;
  }
  return k;
}

std::uint64_t tower(int k) noexcept {
  AVGLOCAL_ASSERT(k >= 0 && k <= 5);
  std::uint64_t value = 1;
  for (int i = 0; i < k; ++i) {
    AVGLOCAL_ASSERT(value < 64);
    value = std::uint64_t{1} << value;
  }
  return value;
}

int popcount_u64(std::uint64_t x) noexcept { return std::popcount(x); }

}  // namespace avglocal::support
