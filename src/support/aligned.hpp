// Cache-line-aligned storage for the batch kernels.
//
// The SIMD layer (support/simd.hpp) assumes its hot arrays start on a
// 64-byte boundary: the id storage of graph::IdAssignment, the row-major
// transpose of a lockstep batch, and the per-slot id buffers are all
// allocated through AlignedAllocator so the kernels' row bases are aligned
// by construction (debug asserts pin the invariant at the use sites).
#pragma once

#include <cstddef>
#include <cstdint>
#include <new>
#include <vector>

namespace avglocal::support {

/// One x86/ARM cache line; also the widest vector the kernels use (AVX2
/// tiles are 32 bytes, so a 64-byte base keeps every tile in-line).
inline constexpr std::size_t kCacheLine = 64;

/// Minimal C++17-style allocator whose allocations start on an `Align`-byte
/// boundary. Goes through the aligned global operator new, so binaries that
/// install the allocation-counting hook (support/alloc_hook.hpp) count
/// these allocations like any other.
template <typename T, std::size_t Align = kCacheLine>
class AlignedAllocator {
 public:
  static_assert(Align >= alignof(T) && (Align & (Align - 1)) == 0,
                "alignment must be a power of two covering alignof(T)");
  using value_type = T;

  AlignedAllocator() noexcept = default;
  template <typename U>
  AlignedAllocator(const AlignedAllocator<U, Align>&) noexcept {}

  template <typename U>
  struct rebind {
    using other = AlignedAllocator<U, Align>;
  };

  T* allocate(std::size_t count) {
    return static_cast<T*>(::operator new(count * sizeof(T), std::align_val_t{Align}));
  }

  void deallocate(T* ptr, std::size_t) noexcept {
    ::operator delete(ptr, std::align_val_t{Align});
  }

  friend bool operator==(const AlignedAllocator&, const AlignedAllocator&) noexcept {
    return true;
  }
};

/// std::vector whose data() is 64-byte aligned (for every capacity).
template <typename T>
using AlignedVector = std::vector<T, AlignedAllocator<T>>;

/// True when `ptr` sits on an `align`-byte boundary.
inline bool is_aligned(const void* ptr, std::size_t align = kCacheLine) noexcept {
  // Inspects alignment bits only - the address never feeds a seed or a
  // result value. avglocal-lint: allow(raw-entropy)
  return (reinterpret_cast<std::uintptr_t>(ptr) & (align - 1)) == 0;
}

}  // namespace avglocal::support
