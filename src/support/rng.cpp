#include "support/rng.hpp"

#include <numeric>

namespace avglocal::support {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Xoshiro256::Xoshiro256(std::uint64_t seed) noexcept {
  SplitMix64 sm(seed);
  for (auto& word : s_) word = sm.next();
}

AVGLOCAL_HOT std::uint64_t Xoshiro256::next() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

AVGLOCAL_HOT std::uint64_t Xoshiro256::below(std::uint64_t bound) noexcept {
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::uint64_t> random_permutation(std::size_t n, Xoshiro256& rng) {
  std::vector<std::uint64_t> perm(n);
  std::iota(perm.begin(), perm.end(), std::uint64_t{1});
  shuffle(perm, rng);
  return perm;
}

std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept {
  SplitMix64 sm(master ^ (0x9e3779b97f4a7c15ULL * (stream + 1)));
  return sm.next();
}

}  // namespace avglocal::support
