#include "support/csv.hpp"

#include <ostream>

namespace avglocal::support {

std::string csv_escape(const std::string& cell) {
  const bool needs_quote = cell.find_first_of(",\"\r\n") != std::string::npos;
  if (!needs_quote) return cell;
  std::string out = "\"";
  for (char ch : cell) {
    if (ch == '"') out += '"';
    out += ch;
  }
  out += '"';
  return out;
}

void CsvWriter::write_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i > 0) *out_ << ',';
    *out_ << csv_escape(cells[i]);
  }
  *out_ << '\n';
}

}  // namespace avglocal::support
