// Minimal JSON emitter for machine-readable artefacts (bench reports).
//
// Build documents with begin_object/begin_array + key/value calls; commas
// and nesting are tracked internally, and str() returns the finished text.
// Strings are escaped; doubles render with enough digits to round-trip.
// No external dependency - the library must stay self-contained.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace avglocal::support {

class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Names the next value inside an object.
  JsonWriter& key(std::string_view name);

  JsonWriter& value(std::string_view text);
  JsonWriter& value(const char* text) { return value(std::string_view(text)); }
  JsonWriter& value(double number);
  JsonWriter& value(std::uint64_t number);
  JsonWriter& value(std::int64_t number);
  JsonWriter& value(int number) { return value(static_cast<std::int64_t>(number)); }
  JsonWriter& value(bool flag);

  /// The document so far. Callers are responsible for having closed every
  /// begin_* scope.
  const std::string& str() const noexcept { return out_; }

 private:
  void before_value();
  void escape_into(std::string_view text);

  std::string out_;
  /// One entry per open scope: true once the scope holds >= 1 element.
  std::vector<bool> has_element_;
  bool after_key_ = false;
};

}  // namespace avglocal::support
