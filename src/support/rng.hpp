// Deterministic pseudo-random number generation for reproducible experiments.
//
// Every random quantity in the library flows from a named 64-bit seed through
// SplitMix64 (seeding / cheap streams) or Xoshiro256** (bulk generation), so
// that every experiment in the paper reproduction is replayable bit-for-bit
// across platforms (no reliance on std::mt19937 distribution details).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <vector>

#include "support/annotations.hpp"

namespace avglocal::support {

/// SplitMix64: tiny, fast, passes BigCrush; used for seeding and for cheap
/// independent streams (Steele, Lea, Flood 2014).
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next 64 uniformly distributed bits.
  AVGLOCAL_HOT std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// Xoshiro256**: the library's workhorse generator (Blackman & Vigna 2018).
/// Satisfies std::uniform_random_bit_generator.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four state words from SplitMix64(seed), as recommended by the
  /// authors.
  explicit Xoshiro256(std::uint64_t seed) noexcept;

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next(); }

  std::uint64_t next() noexcept;

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  /// bound must be positive.
  std::uint64_t below(std::uint64_t bound) noexcept;

  /// Uniform double in [0, 1).
  double uniform01() noexcept { return static_cast<double>(next() >> 11) * 0x1.0p-53; }

 private:
  std::array<std::uint64_t, 4> s_{};
};

/// Fisher-Yates shuffle driven by Xoshiro256 (deterministic across platforms,
/// unlike std::shuffle whose result is unspecified). The span form shuffles
/// any contiguous storage - e.g. the cache-line-aligned id vectors the batch
/// kernels require - without forcing a std::vector round-trip.
template <typename T>
void shuffle(std::span<T> values, Xoshiro256& rng) {
  for (std::size_t i = values.size(); i > 1; --i) {
    const std::size_t j = static_cast<std::size_t>(rng.below(i));
    std::swap(values[i - 1], values[j]);
  }
}

template <typename T>
void shuffle(std::vector<T>& values, Xoshiro256& rng) {
  shuffle(std::span<T>(values), rng);
}

/// Random permutation of {1, 2, ..., n} (the paper's ID universe).
std::vector<std::uint64_t> random_permutation(std::size_t n, Xoshiro256& rng);

/// Derives a fresh, statistically independent seed for a sub-experiment:
/// mixes the master seed with a stream index through SplitMix64.
std::uint64_t derive_seed(std::uint64_t master, std::uint64_t stream) noexcept;

}  // namespace avglocal::support
