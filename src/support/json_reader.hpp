// Minimal JSON reader for machine-readable artefacts (shard merge).
//
// Counterpart of json_writer: a recursive-descent parser over the JSON
// grammar with no external dependency. Numbers keep their source text so
// 64-bit integers round-trip exactly - as_u64/as_i64 parse the token
// directly instead of going through a double. Malformed input and type or
// key lookup mismatches throw std::runtime_error with a position.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace avglocal::support {

class JsonValue {
 public:
  enum class Type { kNull, kBool, kNumber, kString, kArray, kObject };

  Type type() const noexcept { return type_; }
  bool is_null() const noexcept { return type_ == Type::kNull; }

  /// Scalar accessors; each throws std::runtime_error on a type mismatch
  /// (and, for the integer accessors, on range or syntax errors).
  bool as_bool() const;
  std::uint64_t as_u64() const;
  std::int64_t as_i64() const;
  double as_double() const;
  const std::string& as_string() const;

  /// Array element count / access (throws unless an array).
  std::size_t size() const;
  const JsonValue& operator[](std::size_t index) const;

  /// Object member lookup: find returns nullptr when absent, at throws.
  const JsonValue* find(std::string_view key) const;
  const JsonValue& at(std::string_view key) const;

  /// Object members in document order (throws unless an object).
  const std::vector<std::pair<std::string, JsonValue>>& members() const;

 private:
  friend JsonValue parse_json(std::string_view);
  friend class JsonParser;

  Type type_ = Type::kNull;
  bool bool_ = false;
  std::string scalar_;  ///< number token or string payload
  std::vector<JsonValue> items_;
  std::vector<std::pair<std::string, JsonValue>> members_;
};

/// Parses one JSON document (surrounding whitespace allowed; trailing
/// non-whitespace rejected). Throws std::runtime_error on malformed input.
JsonValue parse_json(std::string_view text);

}  // namespace avglocal::support
