#include "support/json_writer.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>

namespace avglocal::support {

void JsonWriter::before_value() {
  if (after_key_) {
    after_key_ = false;
    return;
  }
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
}

void JsonWriter::escape_into(std::string_view text) {
  out_ += '"';
  for (const char c : text) {
    switch (c) {
      case '"': out_ += "\\\""; break;
      case '\\': out_ += "\\\\"; break;
      case '\n': out_ += "\\n"; break;
      case '\t': out_ += "\\t"; break;
      case '\r': out_ += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out_ += buf;
        } else {
          out_ += c;
        }
    }
  }
  out_ += '"';
}

JsonWriter& JsonWriter::begin_object() {
  before_value();
  out_ += '{';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  has_element_.pop_back();
  out_ += '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  before_value();
  out_ += '[';
  has_element_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  has_element_.pop_back();
  out_ += ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view name) {
  if (!has_element_.empty()) {
    if (has_element_.back()) out_ += ',';
    has_element_.back() = true;
  }
  escape_into(name);
  out_ += ':';
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view text) {
  before_value();
  escape_into(text);
  return *this;
}

JsonWriter& JsonWriter::value(double number) {
  before_value();
  // JSON has no inf/nan tokens; null keeps the document parseable.
  if (!std::isfinite(number)) {
    out_ += "null";
    return *this;
  }
  char buf[32];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, number);
  out_.append(buf, ec == std::errc{} ? end : buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t number) {
  before_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, number);
  out_.append(buf, ec == std::errc{} ? end : buf);
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t number) {
  before_value();
  char buf[24];
  const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, number);
  out_.append(buf, ec == std::errc{} ? end : buf);
  return *this;
}

JsonWriter& JsonWriter::value(bool flag) {
  before_value();
  out_ += flag ? "true" : "false";
  return *this;
}

}  // namespace avglocal::support
