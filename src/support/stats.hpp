// Streaming and batch statistics for experiment measurement series.
#pragma once

#include <cstddef>
#include <vector>

namespace avglocal::support {

/// Numerically stable streaming mean/variance accumulator (Welford).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x) noexcept;

  /// Number of observations added so far.
  std::size_t count() const noexcept { return count_; }

  /// Arithmetic mean (0 when empty).
  double mean() const noexcept { return mean_; }

  /// Unbiased sample variance (0 when fewer than two observations).
  double variance() const noexcept;

  /// Sample standard deviation.
  double stddev() const noexcept;

  /// Smallest / largest observation. An empty accumulator has no extrema:
  /// both return quiet NaN (which propagates loudly through comparisons and
  /// arithmetic instead of leaking an indeterminate stale value).
  double min() const noexcept;
  double max() const noexcept;
  double sum() const noexcept { return sum_; }

  /// Merges another accumulator into this one (parallel reduction). Either
  /// side may be empty: merging an empty accumulator is a no-op, and merging
  /// into an empty one copies `other` (including its extrema).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

/// Five-number-style summary of a batch of observations.
struct Summary {
  std::size_t count = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double p25 = 0.0;
  double median = 0.0;
  double p75 = 0.0;
  double p99 = 0.0;
  double max = 0.0;
};

/// Computes a Summary of `values` (copies and sorts internally).
/// Returns an all-zero summary for an empty input.
Summary summarize(const std::vector<double>& values);

/// Linear-interpolation percentile of a *sorted* vector, q in [0, 1].
double percentile_sorted(const std::vector<double>& sorted, double q);

/// Least-squares fit of y = a + b*x. Returns {a, b}. Requires >= 2 points.
struct LinearFit {
  double intercept = 0.0;
  double slope = 0.0;
};
LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y);

}  // namespace avglocal::support
