// Checked narrowing for vertex and arc indices.
//
// The compact-CSR layout stores offsets, mirror ports and local indices in
// 32 bits (graph::vid32). Every conversion from a 64-bit quantity (sizes,
// arc counts, loop counters) down to 32 bits must go through the helpers
// here: they debug-assert the value fits, so a silent truncation cannot
// ship, and they are the one sanctioned home of the cast - the
// `narrowing-index` lint check (tools/lint) rejects raw
// static_cast<std::uint32_t> / static_cast<Vertex> / static_cast<LocalVertex>
// anywhere else in src/.
//
// The helpers are assert-checked, not throw-checked: callers own the
// release-mode guarantee that the value fits (e.g. GraphBuilder only picks
// compact offsets when the arc count fits, so every later narrowing is
// safe by construction). Paths where the bound is input-dependent guard
// with AVGLOCAL_EXPECTS first and narrow after.
#pragma once

#include <cstdint>
#include <limits>
#include <type_traits>

#include "support/assert.hpp"

namespace avglocal::support {

/// checked_narrow<To>(v): static_cast<To>(v) with a debug assert that the
/// value round-trips. The only raw index-narrowing cast in src/.
template <typename To, typename From>
constexpr To checked_narrow(From value) noexcept {
  static_assert(std::is_integral_v<To> && std::is_integral_v<From>);
  static_assert(std::is_unsigned_v<To>, "index types are unsigned");
  AVGLOCAL_ASSERT(static_cast<std::uintmax_t>(value) <=
                  static_cast<std::uintmax_t>(std::numeric_limits<To>::max()));
  return static_cast<To>(value);
}

/// The dominant case: a size_t-ish quantity into a 32-bit vertex/arc/port
/// index (graph::Vertex, local::LocalVertex, graph::vid32 are all uint32).
template <typename From>
constexpr std::uint32_t checked_u32(From value) noexcept {
  return checked_narrow<std::uint32_t>(value);
}

}  // namespace avglocal::support
