#include "support/socket.hpp"

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace avglocal::support {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path '" + path + "' is empty or longer than sockaddr_un");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

int make_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return fd;
}

bool something_accepting(const std::string& path) {
  try {
    const UnixStream probe = UnixStream::connect(path);
    return probe.valid();
  } catch (const std::runtime_error&) {
    return false;
  }
}

}  // namespace

// ------------------------------------------------------------ UnixStream ----

UnixStream::UnixStream(UnixStream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

UnixStream& UnixStream::operator=(UnixStream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

UnixStream::~UnixStream() { close(); }

UnixStream UnixStream::connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  const int fd = make_socket();
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) == 0) {
      return UnixStream(fd);
    }
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
}

bool UnixStream::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // orderly EOF (0) or a hard error
  }
}

bool UnixStream::write_all(std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not
    // kill the whole daemon with SIGPIPE.
    const ssize_t sent = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      data.remove_prefix(static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool UnixStream::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(framed);
}

void UnixStream::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void UnixStream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

// ---------------------------------------------------------- UnixListener ----

UnixListener::UnixListener(UnixListener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)), path_(std::move(other.path_)) {
  other.path_.clear();
}

UnixListener& UnixListener::operator=(UnixListener&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed), std::memory_order_relaxed);
    path_ = std::move(other.path_);
    other.path_.clear();
  }
  return *this;
}

UnixListener::~UnixListener() { close(); }

UnixListener UnixListener::bind(const std::string& path, int backlog) {
  const sockaddr_un address = make_address(path);
  const int fd = make_socket();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    if (errno != EADDRINUSE) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("bind(" + path + ")");
    }
    ::close(fd);
    // A socket file already exists. Probe it: a successful connect means
    // a live daemon owns the path and we must not steal it; a refused
    // connect means the file is a stale leftover of a crashed daemon and
    // replacing it is the right call.
    if (something_accepting(path)) {
      throw std::runtime_error("socket path '" + path + "' is already being served");
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("unlink stale socket " + path);
    }
    const int retry = make_socket();
    if (::bind(retry, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
      const int saved = errno;
      ::close(retry);
      errno = saved;
      throw_errno("bind(" + path + ")");
    }
    UnixListener listener;
    listener.fd_ = retry;
    listener.path_ = path;
    if (::listen(retry, backlog) != 0) throw_errno("listen(" + path + ")");
    return listener;
  }
  UnixListener listener;
  listener.fd_ = fd;
  listener.path_ = path;
  if (::listen(fd, backlog) != 0) throw_errno("listen(" + path + ")");
  return listener;
}

UnixStream UnixListener::accept_client() {
  const int client = ::accept(fd_.load(std::memory_order_relaxed), nullptr, nullptr);
  // EINTR and the post-interrupt() failure modes (EBADF/EINVAL) all mean
  // "no connection this time"; the caller's stop flag decides what next.
  return UnixStream(client);
}

void UnixListener::interrupt() noexcept {
  // shutdown() is async-signal-safe and makes a blocked accept() return
  // immediately; close()/unlink() happen later on the normal path. The
  // atomic load may race with close() claiming the descriptor - worst
  // case shutdown() gets -1 or an already-closed fd and reports EBADF,
  // which is harmless here.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void UnixListener::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
  if (!path_.empty()) {
    ::unlink(path_.c_str());
    path_.clear();
  }
}

}  // namespace avglocal::support
