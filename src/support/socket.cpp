#include "support/socket.hpp"

#include <netdb.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>
#include <utility>

namespace avglocal::support {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

sockaddr_un make_address(const std::string& path) {
  sockaddr_un address{};
  address.sun_family = AF_UNIX;
  if (path.empty() || path.size() >= sizeof(address.sun_path)) {
    throw std::runtime_error("socket path '" + path + "' is empty or longer than sockaddr_un");
  }
  std::memcpy(address.sun_path, path.c_str(), path.size() + 1);
  return address;
}

int make_unix_socket() {
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket(AF_UNIX)");
  return fd;
}

bool something_accepting(const std::string& path) {
  try {
    const Stream probe = Stream::connect(path);
    return probe.valid();
  } catch (const std::runtime_error&) {
    return false;
  }
}

/// RAII for getaddrinfo results so every exit path frees the list.
struct AddrList {
  addrinfo* head = nullptr;
  ~AddrList() {
    if (head != nullptr) ::freeaddrinfo(head);
  }
};

/// Resolves host:port for SOCK_STREAM use. Returns 0 or an errno-style
/// code (resolution failures collapse to ENOENT - the same "nothing there
/// yet" class a missing socket file raises).
int resolve_tcp(const Endpoint& endpoint, bool passive, AddrList& out) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  hints.ai_flags = passive ? AI_PASSIVE : 0;
  const std::string port = std::to_string(endpoint.port);
  const char* host = endpoint.host.empty() ? nullptr : endpoint.host.c_str();
  const int rc = ::getaddrinfo(host, port.c_str(), &hints, &out.head);
  if (rc == 0) return 0;
  if (rc == EAI_SYSTEM) return errno != 0 ? errno : ENOENT;
  return ENOENT;
}

/// Connects to one resolved TCP address list. Returns the connected fd or
/// -1 with `error` holding the last errno.
int connect_tcp(const AddrList& addresses, int& error) {
  error = ECONNREFUSED;
  for (const addrinfo* entry = addresses.head; entry != nullptr; entry = entry->ai_next) {
    const int fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      error = errno;
      continue;
    }
    for (;;) {
      if (::connect(fd, entry->ai_addr, entry->ai_addrlen) == 0) return fd;
      if (errno == EINTR) continue;
      error = errno;
      ::close(fd);
      break;
    }
  }
  return -1;
}

std::uint16_t parse_port(const std::string& text, const std::string& spec) {
  if (text.empty()) {
    throw std::runtime_error("endpoint '" + spec + "' is missing a port");
  }
  unsigned long value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') {
      throw std::runtime_error("endpoint '" + spec + "' has a non-numeric port");
    }
    value = value * 10 + static_cast<unsigned long>(c - '0');
    if (value > 65535) {
      throw std::runtime_error("endpoint '" + spec + "' has a port above 65535");
    }
  }
  return static_cast<std::uint16_t>(value);
}

Endpoint parse_tcp_spec(const std::string& rest, const std::string& spec) {
  const std::size_t colon = rest.rfind(':');
  if (colon == std::string::npos) {
    throw std::runtime_error("endpoint '" + spec + "' needs host:port");
  }
  Endpoint endpoint;
  endpoint.kind = Endpoint::Kind::kTcp;
  endpoint.host = rest.substr(0, colon);
  if (endpoint.host.empty()) {
    throw std::runtime_error("endpoint '" + spec + "' is missing a host");
  }
  endpoint.port = parse_port(rest.substr(colon + 1), spec);
  return endpoint;
}

}  // namespace

// -------------------------------------------------------------- Endpoint ----

std::string Endpoint::to_string() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp:" + host + ":" + std::to_string(port);
}

Endpoint parse_endpoint(const std::string& spec) {
  if (spec.empty()) throw std::runtime_error("empty socket endpoint");
  if (spec.rfind("unix:", 0) == 0) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec.substr(5);
    if (endpoint.path.empty()) {
      throw std::runtime_error("endpoint '" + spec + "' is missing a path");
    }
    return endpoint;
  }
  if (spec.rfind("tcp:", 0) == 0) return parse_tcp_spec(spec.substr(4), spec);
  if (spec.find('/') != std::string::npos || spec.find(':') == std::string::npos) {
    Endpoint endpoint;
    endpoint.kind = Endpoint::Kind::kUnix;
    endpoint.path = spec;
    return endpoint;
  }
  return parse_tcp_spec(spec, spec);
}

// ---------------------------------------------------------------- Stream ----

Stream::Stream(Stream&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Stream& Stream::operator=(Stream&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Stream::~Stream() { close(); }

Stream Stream::connect(const std::string& path) {
  const sockaddr_un address = make_address(path);
  const int fd = make_unix_socket();
  for (;;) {
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) == 0) {
      return Stream(fd);
    }
    if (errno == EINTR) continue;
    const int saved = errno;
    ::close(fd);
    errno = saved;
    throw_errno("connect(" + path + ")");
  }
}

Stream Stream::connect(const Endpoint& endpoint) {
  int error = 0;
  Stream stream = try_connect(endpoint, error);
  if (!stream.valid()) {
    errno = error;
    throw_errno("connect(" + endpoint.to_string() + ")");
  }
  return stream;
}

Stream Stream::try_connect(const Endpoint& endpoint, int& error) {
  error = 0;
  if (endpoint.kind == Endpoint::Kind::kUnix) {
    sockaddr_un address{};
    try {
      address = make_address(endpoint.path);
    } catch (const std::runtime_error&) {
      error = EINVAL;
      return Stream();
    }
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      error = errno;
      return Stream();
    }
    for (;;) {
      if (::connect(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) == 0) {
        return Stream(fd);
      }
      if (errno == EINTR) continue;
      error = errno;
      ::close(fd);
      return Stream();
    }
  }
  AddrList addresses;
  error = resolve_tcp(endpoint, /*passive=*/false, addresses);
  if (error != 0) return Stream();
  const int fd = connect_tcp(addresses, error);
  if (fd < 0) return Stream();
  error = 0;
  return Stream(fd);
}

Stream Stream::connect_with_retry(const Endpoint& endpoint, long timeout_ms) {
  // steady_clock: wall-clock jumps must not shrink or stretch the window.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  std::chrono::milliseconds backoff(10);
  for (;;) {
    int error = 0;
    Stream stream = try_connect(endpoint, error);
    if (stream.valid()) return stream;
    // Only the "daemon still binding" class is worth waiting out: the
    // socket file is not there yet (ENOENT) or exists without an
    // accepting listener (ECONNREFUSED). Anything else is a real fault.
    if (error != ENOENT && error != ECONNREFUSED) {
      errno = error;
      throw_errno("connect(" + endpoint.to_string() + ")");
    }
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) {
      errno = error;
      throw_errno("connect(" + endpoint.to_string() + ") timed out after " +
                  std::to_string(timeout_ms) + "ms");
    }
    const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now);
    std::this_thread::sleep_for(backoff < remaining ? backoff : remaining);
    backoff = std::min(backoff * 2, std::chrono::milliseconds(200));
  }
}

bool Stream::read_line(std::string& line) {
  for (;;) {
    const std::size_t newline = buffer_.find('\n');
    if (newline != std::string::npos) {
      line.assign(buffer_, 0, newline);
      buffer_.erase(0, newline + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t got = ::recv(fd_, chunk, sizeof chunk, 0);
    if (got > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(got));
      continue;
    }
    if (got < 0 && errno == EINTR) continue;
    return false;  // orderly EOF (0) or a hard error
  }
}

bool Stream::write_all(std::string_view data) {
  while (!data.empty()) {
    // MSG_NOSIGNAL: a peer that hung up must surface as EPIPE here, not
    // kill the whole daemon with SIGPIPE.
    const ssize_t sent = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (sent > 0) {
      data.remove_prefix(static_cast<std::size_t>(sent));
      continue;
    }
    if (sent < 0 && errno == EINTR) continue;
    return false;
  }
  return true;
}

bool Stream::write_line(std::string_view line) {
  std::string framed;
  framed.reserve(line.size() + 1);
  framed.append(line);
  framed.push_back('\n');
  return write_all(framed);
}

void Stream::shutdown_read() noexcept {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Stream::close() noexcept {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  buffer_.clear();
}

// -------------------------------------------------------------- Listener ----

Listener::Listener(Listener&& other) noexcept
    : fd_(other.fd_.exchange(-1, std::memory_order_relaxed)),
      endpoint_(std::move(other.endpoint_)) {
  other.endpoint_ = Endpoint{};
}

Listener& Listener::operator=(Listener&& other) noexcept {
  if (this != &other) {
    close();
    fd_.store(other.fd_.exchange(-1, std::memory_order_relaxed), std::memory_order_relaxed);
    endpoint_ = std::move(other.endpoint_);
    other.endpoint_ = Endpoint{};
  }
  return *this;
}

Listener::~Listener() { close(); }

Listener Listener::bind(const std::string& path, int backlog) {
  const sockaddr_un address = make_address(path);
  const int fd = make_unix_socket();
  if (::bind(fd, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
    if (errno != EADDRINUSE) {
      const int saved = errno;
      ::close(fd);
      errno = saved;
      throw_errno("bind(" + path + ")");
    }
    ::close(fd);
    // A socket file already exists. Probe it: a successful connect means
    // a live daemon owns the path and we must not steal it; a refused
    // connect means the file is a stale leftover of a crashed daemon and
    // replacing it is the right call.
    if (something_accepting(path)) {
      throw std::runtime_error("socket path '" + path + "' is already being served");
    }
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      throw_errno("unlink stale socket " + path);
    }
    const int retry = make_unix_socket();
    if (::bind(retry, reinterpret_cast<const sockaddr*>(&address), sizeof address) != 0) {
      const int saved = errno;
      ::close(retry);
      errno = saved;
      throw_errno("bind(" + path + ")");
    }
    Listener listener;
    listener.fd_ = retry;
    listener.endpoint_.kind = Endpoint::Kind::kUnix;
    listener.endpoint_.path = path;
    if (::listen(retry, backlog) != 0) throw_errno("listen(" + path + ")");
    return listener;
  }
  Listener listener;
  listener.fd_ = fd;
  listener.endpoint_.kind = Endpoint::Kind::kUnix;
  listener.endpoint_.path = path;
  if (::listen(fd, backlog) != 0) throw_errno("listen(" + path + ")");
  return listener;
}

Listener Listener::bind(const Endpoint& endpoint, int backlog) {
  if (endpoint.kind == Endpoint::Kind::kUnix) return bind(endpoint.path, backlog);
  AddrList addresses;
  const int resolve_error = resolve_tcp(endpoint, /*passive=*/true, addresses);
  if (resolve_error != 0) {
    errno = resolve_error;
    throw_errno("resolve(" + endpoint.to_string() + ")");
  }
  int last_error = EADDRNOTAVAIL;
  for (const addrinfo* entry = addresses.head; entry != nullptr; entry = entry->ai_next) {
    const int fd = ::socket(entry->ai_family, entry->ai_socktype, entry->ai_protocol);
    if (fd < 0) {
      last_error = errno;
      continue;
    }
    // SO_REUSEADDR: a coordinator restarted onto the same port must not
    // wait out the previous run's TIME_WAIT sockets.
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
    if (::bind(fd, entry->ai_addr, entry->ai_addrlen) != 0 || ::listen(fd, backlog) != 0) {
      last_error = errno;
      ::close(fd);
      continue;
    }
    Listener listener;
    listener.fd_ = fd;
    listener.endpoint_ = endpoint;
    // Port 0 asked the kernel to pick; report what it chose so workers
    // can be pointed at the real port.
    sockaddr_storage bound{};
    socklen_t bound_len = sizeof bound;
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &bound_len) == 0) {
      if (bound.ss_family == AF_INET) {
        listener.endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in*>(&bound)->sin_port);
      } else if (bound.ss_family == AF_INET6) {
        listener.endpoint_.port =
            ntohs(reinterpret_cast<const sockaddr_in6*>(&bound)->sin6_port);
      }
    }
    return listener;
  }
  errno = last_error;
  throw_errno("bind(" + endpoint.to_string() + ")");
}

Stream Listener::accept_client() {
  const int client = ::accept(fd_.load(std::memory_order_relaxed), nullptr, nullptr);
  // EINTR and the post-interrupt() failure modes (EBADF/EINVAL) all mean
  // "no connection this time"; the caller's stop flag decides what next.
  return Stream(client);
}

void Listener::interrupt() noexcept {
  // shutdown() is async-signal-safe and makes a blocked accept() return
  // immediately; close()/unlink() happen later on the normal path. The
  // atomic load may race with close() claiming the descriptor - worst
  // case shutdown() gets -1 or an already-closed fd and reports EBADF,
  // which is harmless here.
  const int fd = fd_.load(std::memory_order_relaxed);
  if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
}

void Listener::close() noexcept {
  const int fd = fd_.exchange(-1, std::memory_order_relaxed);
  if (fd >= 0) ::close(fd);
  if (endpoint_.kind == Endpoint::Kind::kUnix && !endpoint_.path.empty()) {
    ::unlink(endpoint_.path.c_str());
  }
  endpoint_ = Endpoint{};
}

}  // namespace avglocal::support
