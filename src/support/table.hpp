// Aligned text / markdown table rendering for experiment output.
//
// Benches print the tables and series that stand in for the paper's
// evaluation; this renderer keeps them readable in a terminal and pasteable
// into markdown (EXPERIMENTS.md).
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace avglocal::support {

/// A simple column-aligned table: set headers, append rows of cells, render.
class Table {
 public:
  Table() = default;

  /// Creates a table with the given column headers.
  explicit Table(std::vector<std::string> headers);

  /// Appends one row. The row is padded / truncated to the header width.
  void add_row(std::vector<std::string> cells);

  /// Convenience cell formatters. (std::size_t and std::uint64_t are the
  /// same type on the supported platforms, hence a single overload.)
  static std::string cell(std::int64_t v);
  static std::string cell(std::uint64_t v);
  static std::string cell(int v);
  static std::string cell(unsigned v);
  static std::string cell(double v, int precision = 3);
  static std::string cell(std::string s) { return s; }

  std::size_t rows() const noexcept { return rows_.size(); }
  std::size_t columns() const noexcept { return headers_.size(); }

  /// Renders as a GitHub-flavoured markdown table.
  std::string to_markdown() const;

  /// Renders with space padding only (no pipes), for terminal scanning.
  std::string to_text() const;

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Writes `table.to_markdown()` preceded by a `## title` line to `out`.
void print_section(std::ostream& out, const std::string& title, const Table& table);

}  // namespace avglocal::support
