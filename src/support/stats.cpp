#include "support/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/assert.hpp"

namespace avglocal::support {

void RunningStats::add(double x) noexcept {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::min() const noexcept {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : min_;
}

double RunningStats::max() const noexcept {
  return count_ == 0 ? std::numeric_limits<double>::quiet_NaN() : max_;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(count_);
  const auto nb = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile_sorted(const std::vector<double>& sorted, double q) {
  AVGLOCAL_EXPECTS(!sorted.empty());
  AVGLOCAL_EXPECTS(q >= 0.0 && q <= 1.0);
  if (sorted.size() == 1) return sorted.front();
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

Summary summarize(const std::vector<double>& values) {
  Summary s;
  if (values.empty()) return s;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  RunningStats rs;
  for (double v : sorted) rs.add(v);
  s.count = rs.count();
  s.mean = rs.mean();
  s.stddev = rs.stddev();
  s.min = sorted.front();
  s.p25 = percentile_sorted(sorted, 0.25);
  s.median = percentile_sorted(sorted, 0.50);
  s.p75 = percentile_sorted(sorted, 0.75);
  s.p99 = percentile_sorted(sorted, 0.99);
  s.max = sorted.back();
  return s;
}

LinearFit fit_linear(const std::vector<double>& x, const std::vector<double>& y) {
  AVGLOCAL_EXPECTS(x.size() == y.size());
  AVGLOCAL_EXPECTS(x.size() >= 2);
  const auto n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  AVGLOCAL_REQUIRE_MSG(denom != 0.0, "degenerate x values in linear fit");
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  return fit;
}

}  // namespace avglocal::support
