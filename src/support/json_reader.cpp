#include "support/json_reader.hpp"

#include <cerrno>
#include <charconv>
#include <cstdlib>
#include <stdexcept>

namespace avglocal::support {

namespace {

[[noreturn]] void fail(const std::string& what) { throw std::runtime_error("json: " + what); }

}  // namespace

bool JsonValue::as_bool() const {
  if (type_ != Type::kBool) fail("expected a boolean");
  return bool_;
}

std::uint64_t JsonValue::as_u64() const {
  if (type_ != Type::kNumber) fail("expected a number");
  std::uint64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), value);
  if (ec != std::errc{} || ptr != scalar_.data() + scalar_.size()) {
    fail("number '" + scalar_ + "' is not an unsigned 64-bit integer");
  }
  return value;
}

std::int64_t JsonValue::as_i64() const {
  if (type_ != Type::kNumber) fail("expected a number");
  std::int64_t value = 0;
  const auto [ptr, ec] =
      std::from_chars(scalar_.data(), scalar_.data() + scalar_.size(), value);
  if (ec != std::errc{} || ptr != scalar_.data() + scalar_.size()) {
    fail("number '" + scalar_ + "' is not a signed 64-bit integer");
  }
  return value;
}

double JsonValue::as_double() const {
  if (type_ != Type::kNumber) fail("expected a number");
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(scalar_.c_str(), &end);
  if (errno != 0 || end != scalar_.c_str() + scalar_.size()) {
    fail("number '" + scalar_ + "' is not a double");
  }
  return value;
}

const std::string& JsonValue::as_string() const {
  if (type_ != Type::kString) fail("expected a string");
  return scalar_;
}

std::size_t JsonValue::size() const {
  if (type_ != Type::kArray) fail("expected an array");
  return items_.size();
}

const JsonValue& JsonValue::operator[](std::size_t index) const {
  if (type_ != Type::kArray) fail("expected an array");
  if (index >= items_.size()) fail("array index out of range");
  return items_[index];
}

const JsonValue* JsonValue::find(std::string_view key) const {
  if (type_ != Type::kObject) fail("expected an object");
  for (const auto& [name, value] : members_) {
    if (name == key) return &value;
  }
  return nullptr;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  const JsonValue* value = find(key);
  if (value == nullptr) fail("missing key '" + std::string(key) + "'");
  return *value;
}

const std::vector<std::pair<std::string, JsonValue>>& JsonValue::members() const {
  if (type_ != Type::kObject) fail("expected an object");
  return members_;
}

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue value = parse_value();
    skip_whitespace();
    if (pos_ != text_.size()) error("trailing characters after document");
    return value;
  }

 private:
  [[noreturn]] void error(const std::string& what) const {
    fail(what + " at offset " + std::to_string(pos_));
  }

  void skip_whitespace() {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  char peek() {
    skip_whitespace();
    if (pos_ >= text_.size()) error("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) error(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) != literal) return false;
    pos_ += literal.size();
    return true;
  }

  JsonValue parse_value() {
    const char c = peek();
    switch (c) {
      case '{':
        return parse_object();
      case '[':
        return parse_array();
      case '"': {
        JsonValue value;
        value.type_ = JsonValue::Type::kString;
        value.scalar_ = parse_string();
        return value;
      }
      case 't': {
        if (!consume_literal("true")) error("bad literal");
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        value.bool_ = true;
        return value;
      }
      case 'f': {
        if (!consume_literal("false")) error("bad literal");
        JsonValue value;
        value.type_ = JsonValue::Type::kBool;
        return value;
      }
      case 'n': {
        if (!consume_literal("null")) error("bad literal");
        return JsonValue{};
      }
      default:
        return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue value;
    value.type_ = JsonValue::Type::kObject;
    if (peek() == '}') {
      ++pos_;
      return value;
    }
    while (true) {
      if (peek() != '"') error("expected a member name");
      std::string name = parse_string();
      expect(':');
      value.members_.emplace_back(std::move(name), parse_value());
      const char next = peek();
      ++pos_;
      if (next == '}') return value;
      if (next != ',') error("expected ',' or '}'");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue value;
    value.type_ = JsonValue::Type::kArray;
    if (peek() == ']') {
      ++pos_;
      return value;
    }
    while (true) {
      value.items_.push_back(parse_value());
      const char next = peek();
      ++pos_;
      if (next == ']') return value;
      if (next != ',') error("expected ',' or ']'");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) error("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) error("unterminated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"':
        case '\\':
        case '/':
          out.push_back(esc);
          break;
        case 'b':
          out.push_back('\b');
          break;
        case 'f':
          out.push_back('\f');
          break;
        case 'n':
          out.push_back('\n');
          break;
        case 'r':
          out.push_back('\r');
          break;
        case 't':
          out.push_back('\t');
          break;
        case 'u': {
          // Artefacts are ASCII; accept \u00XX and reject anything wider so
          // the reader stays honest about what it supports.
          if (pos_ + 4 > text_.size()) error("truncated \\u escape");
          const std::string_view hex = text_.substr(pos_, 4);
          pos_ += 4;
          unsigned code = 0;
          const auto [ptr, ec] = std::from_chars(hex.data(), hex.data() + 4, code, 16);
          if (ec != std::errc{} || ptr != hex.data() + 4) error("bad \\u escape");
          if (code > 0x7F) error("non-ASCII \\u escape unsupported");
          out.push_back(static_cast<char>(code));
          break;
        }
        default:
          error("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    skip_whitespace();
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if ((c >= '0' && c <= '9') || c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        ++pos_;
      } else {
        break;
      }
    }
    if (pos_ == start) error("expected a value");
    JsonValue value;
    value.type_ = JsonValue::Type::kNumber;
    value.scalar_.assign(text_.substr(start, pos_ - start));
    // Validate the token now so malformed numbers fail at parse time.
    errno = 0;
    char* end = nullptr;
    std::strtod(value.scalar_.c_str(), &end);
    if (errno != 0 || end != value.scalar_.c_str() + value.scalar_.size()) {
      error("malformed number '" + value.scalar_ + "'");
    }
    return value;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

JsonValue parse_json(std::string_view text) { return JsonParser(text).parse_document(); }

}  // namespace avglocal::support
