// Minimal RFC-4180-style CSV writer for exporting experiment series.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace avglocal::support {

/// Streams rows of cells as CSV to an std::ostream, quoting cells that
/// contain separators, quotes or newlines.
class CsvWriter {
 public:
  /// Binds to an output stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  /// Writes one row; cells are escaped as needed.
  void write_row(const std::vector<std::string>& cells);

 private:
  std::ostream* out_;
};

/// Escapes one CSV cell per RFC 4180 (quotes doubled; field quoted when it
/// contains comma, quote, CR or LF).
std::string csv_escape(const std::string& cell);

}  // namespace avglocal::support
