// Source annotations the toolchain and the lint gate both understand.
//
// AVGLOCAL_HOT marks a function as a steady-state hot path of the sweep
// fabric: it runs per round / per layer / per message and must be
// allocation-free after warm-up. The marker does two jobs at once:
//   - the compiler sees __attribute__((hot)) and optimises placement
//     accordingly;
//   - avglocal_lint (tools/lint) statically rejects allocation-capable
//     constructs (new, push_back, resize, std::function, ...) inside the
//     annotated body - including inside nested lambdas - as the
//     compile-time complement of the runtime support/alloc_hook.hpp
//     "allocs_per_round_after_warmup == 0" gates.
//
// Annotate the steady-state entry points (kernels, drain/scan/gather
// loops), not the warm-up paths that legitimately size buffers.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define AVGLOCAL_HOT __attribute__((hot))
#else
#define AVGLOCAL_HOT
#endif

// AVGLOCAL_PREFETCH(addr) issues a read prefetch hint for the cache line at
// `addr`. Semantics-free by definition: a prefetch can never change a value,
// so annotated paths stay bit-identical with the hint compiled out (MSVC,
// or any future toolchain without the builtin). Used by the ball-growth
// frontier loops to pull the next frontier's CSR rows ahead of the scan.
#if defined(__GNUC__) || defined(__clang__)
#define AVGLOCAL_PREFETCH(addr) __builtin_prefetch((addr), 0, 1)
#else
#define AVGLOCAL_PREFETCH(addr) ((void)0)
#endif
