// Source annotations the toolchain and the lint gate both understand.
//
// AVGLOCAL_HOT marks a function as a steady-state hot path of the sweep
// fabric: it runs per round / per layer / per message and must be
// allocation-free after warm-up. The marker does two jobs at once:
//   - the compiler sees __attribute__((hot)) and optimises placement
//     accordingly;
//   - avglocal_lint (tools/lint) statically rejects allocation-capable
//     constructs (new, push_back, resize, std::function, ...) inside the
//     annotated body - including inside nested lambdas - as the
//     compile-time complement of the runtime support/alloc_hook.hpp
//     "allocs_per_round_after_warmup == 0" gates.
//
// Annotate the steady-state entry points (kernels, drain/scan/gather
// loops), not the warm-up paths that legitimately size buffers.
#pragma once

#if defined(__GNUC__) || defined(__clang__)
#define AVGLOCAL_HOT __attribute__((hot))
#else
#define AVGLOCAL_HOT
#endif
