// Minimal Unix-domain stream sockets with newline framing, for the
// sweep-as-a-service daemon (core/serve.hpp) and its clients.
//
// Two small RAII wrappers over AF_UNIX/SOCK_STREAM: UnixListener owns the
// bound socket file (created on listen, unlinked on destruction),
// UnixStream owns one connected end and frames messages as single lines -
// the daemon protocol is newline-delimited JSON, one request or response
// per line. All blocking calls retry on EINTR; writes use MSG_NOSIGNAL so
// a vanished peer surfaces as an error return, never as SIGPIPE. The
// wrappers are deliberately synchronous: the daemon's concurrency comes
// from one handler thread per connection plus the shared sweep worker
// pool, not from non-blocking IO.
#pragma once

#include <atomic>
#include <string>
#include <string_view>

namespace avglocal::support {

/// One connected Unix-domain stream endpoint. Movable, closes on
/// destruction. Reads are buffered internally so pipelined lines are
/// handed out one at a time.
class UnixStream {
 public:
  UnixStream() = default;
  explicit UnixStream(int fd) noexcept : fd_(fd) {}
  UnixStream(UnixStream&& other) noexcept;
  UnixStream& operator=(UnixStream&& other) noexcept;
  UnixStream(const UnixStream&) = delete;
  UnixStream& operator=(const UnixStream&) = delete;
  ~UnixStream();

  /// Connects to a listening daemon. Throws std::runtime_error (with
  /// errno text) when the path is absent or nothing is accepting.
  static UnixStream connect(const std::string& path);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Reads one '\n'-terminated line (terminator stripped) into `line`.
  /// Returns false on orderly EOF or a read error; retries EINTR.
  bool read_line(std::string& line);

  /// Writes all of `data`, retrying partial writes and EINTR. Returns
  /// false when the peer is gone.
  bool write_all(std::string_view data);

  /// Frames and sends one message line (appends the '\n' terminator).
  bool write_line(std::string_view line);

  /// Half-closes the read side (releases a peer blocked in read_line)
  /// without discarding writes still in flight.
  void shutdown_read() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// A listening Unix-domain socket bound to a filesystem path. The
/// listener owns the path: it refuses to clobber a live daemon (connect
/// probe), silently replaces a stale socket file left by a crashed one,
/// and unlinks the path when destroyed.
class UnixListener {
 public:
  UnixListener() = default;
  UnixListener(UnixListener&& other) noexcept;
  UnixListener& operator=(UnixListener&& other) noexcept;
  UnixListener(const UnixListener&) = delete;
  UnixListener& operator=(const UnixListener&) = delete;
  ~UnixListener();

  /// Binds and listens on `path`. Throws std::runtime_error when the path
  /// is too long for sockaddr_un, another process is accepting on it, or
  /// any socket call fails.
  static UnixListener bind(const std::string& path, int backlog = 16);

  bool valid() const noexcept { return fd_.load(std::memory_order_relaxed) >= 0; }
  int fd() const noexcept { return fd_.load(std::memory_order_relaxed); }
  const std::string& path() const noexcept { return path_; }

  /// Blocks for one connection and returns its stream. Returns an invalid
  /// stream when the wait was interrupted by a signal (EINTR - the caller
  /// checks its stop flag and either loops or exits) or the listener was
  /// shut down from another thread or a signal handler.
  UnixStream accept_client();

  /// Async-signal-safe wake-up: makes the blocked accept_client return an
  /// invalid stream. Safe to call from a SIGTERM handler.
  void interrupt() noexcept;

  void close() noexcept;

 private:
  /// Atomic because interrupt() may fire from a signal handler or another
  /// thread while the accept loop is tearing the listener down; close()
  /// claims the descriptor with an exchange so the two never double-close
  /// or race on the value. Moves are still single-threaded by contract.
  std::atomic<int> fd_{-1};
  std::string path_;
};

}  // namespace avglocal::support
