// Stream sockets with newline framing, for the sweep-as-a-service daemon
// (core/serve.hpp), the distributed sweep fabric (core/fabric.hpp) and
// their clients.
//
// Two small RAII wrappers over SOCK_STREAM sockets: Listener owns the
// bound endpoint (Unix-domain socket file or TCP host:port), Stream owns
// one connected end and frames messages as single lines - every protocol
// in this repo is newline-delimited JSON, one request or response per
// line. All blocking calls retry on EINTR; writes use MSG_NOSIGNAL so a
// vanished peer surfaces as an error return, never as SIGPIPE. The
// wrappers are deliberately synchronous: daemon concurrency comes from
// one handler thread per connection plus the shared sweep worker pool,
// not from non-blocking IO.
//
// Endpoints are spelled as strings:
//   unix:/path/to.sock   Unix-domain socket at that filesystem path
//   /path/to.sock        same (anything containing '/' and no scheme)
//   tcp:host:port        TCP; port 0 asks the kernel for an ephemeral
//                        port, resolved by Listener::endpoint() after bind
//   host:port            same (no scheme, has a ':')
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

namespace avglocal::support {

/// A parsed socket address: either a Unix-domain path or a TCP host:port.
struct Endpoint {
  enum class Kind { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;        ///< Unix-domain socket file (kUnix only)
  std::string host;        ///< TCP host name or literal address (kTcp only)
  std::uint16_t port = 0;  ///< TCP port; 0 = ephemeral, chosen at bind

  /// Canonical spelling: "unix:<path>" or "tcp:<host>:<port>".
  std::string to_string() const;

  bool operator==(const Endpoint& other) const {
    return kind == other.kind && path == other.path && host == other.host && port == other.port;
  }
};

/// Parses the endpoint spellings documented at the top of this header.
/// Throws std::runtime_error on an empty spec, a bad port, or a TCP spec
/// without a host.
Endpoint parse_endpoint(const std::string& spec);

/// One connected stream endpoint (Unix-domain or TCP). Movable, closes on
/// destruction. Reads are buffered internally so pipelined lines are
/// handed out one at a time.
class Stream {
 public:
  Stream() = default;
  explicit Stream(int fd) noexcept : fd_(fd) {}
  Stream(Stream&& other) noexcept;
  Stream& operator=(Stream&& other) noexcept;
  Stream(const Stream&) = delete;
  Stream& operator=(const Stream&) = delete;
  ~Stream();

  /// Connects to a listening Unix-domain daemon. Throws std::runtime_error
  /// (with errno text) when the path is absent or nothing is accepting.
  static Stream connect(const std::string& path);

  /// Connects to either endpoint kind. Throws like connect(path).
  static Stream connect(const Endpoint& endpoint);

  /// Non-throwing connect: returns an invalid stream and sets `error` to
  /// the failing errno (0 on success). DNS failures for TCP hosts report
  /// as ENOENT (the "daemon not there yet" class callers retry on).
  static Stream try_connect(const Endpoint& endpoint, int& error);

  /// Connects, retrying ENOENT/ECONNREFUSED with doubling backoff
  /// (10ms start, 200ms cap) until `timeout_ms` elapses - the window in
  /// which a just-launched daemon is still binding its endpoint. Other
  /// errors, and the timeout itself, throw std::runtime_error.
  static Stream connect_with_retry(const Endpoint& endpoint, long timeout_ms);

  bool valid() const noexcept { return fd_ >= 0; }
  int fd() const noexcept { return fd_; }

  /// Reads one '\n'-terminated line (terminator stripped) into `line`.
  /// Returns false on orderly EOF or a read error; retries EINTR.
  bool read_line(std::string& line);

  /// Writes all of `data`, retrying partial writes and EINTR. Returns
  /// false when the peer is gone.
  bool write_all(std::string_view data);

  /// Frames and sends one message line (appends the '\n' terminator).
  bool write_line(std::string_view line);

  /// Half-closes the read side (releases a peer blocked in read_line)
  /// without discarding writes still in flight.
  void shutdown_read() noexcept;

  void close() noexcept;

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes received past the last returned line
};

/// The daemon protocol predates TCP support; existing call sites keep the
/// Unix-domain name.
using UnixStream = Stream;

/// A listening socket bound to an endpoint. For Unix-domain endpoints the
/// listener owns the path: it refuses to clobber a live daemon (connect
/// probe), silently replaces a stale socket file left by a crashed one,
/// and unlinks the path when destroyed. TCP listeners bind with
/// SO_REUSEADDR and resolve port 0 to the kernel-assigned ephemeral port.
class Listener {
 public:
  Listener() = default;
  Listener(Listener&& other) noexcept;
  Listener& operator=(Listener&& other) noexcept;
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;
  ~Listener();

  /// Binds and listens on a Unix-domain `path`. Throws std::runtime_error
  /// when the path is too long for sockaddr_un, another process is
  /// accepting on it, or any socket call fails.
  static Listener bind(const std::string& path, int backlog = 16);

  /// Binds and listens on either endpoint kind. For TCP the returned
  /// listener's endpoint() carries the resolved port (meaningful when the
  /// spec asked for port 0).
  static Listener bind(const Endpoint& endpoint, int backlog = 16);

  bool valid() const noexcept { return fd_.load(std::memory_order_relaxed) >= 0; }
  int fd() const noexcept { return fd_.load(std::memory_order_relaxed); }

  /// The bound Unix-domain path; empty for TCP listeners.
  const std::string& path() const noexcept { return endpoint_.path; }

  /// The bound endpoint, with TCP port 0 resolved to the real port.
  const Endpoint& endpoint() const noexcept { return endpoint_; }

  /// Blocks for one connection and returns its stream. Returns an invalid
  /// stream when the wait was interrupted by a signal (EINTR - the caller
  /// checks its stop flag and either loops or exits) or the listener was
  /// shut down from another thread or a signal handler.
  Stream accept_client();

  /// Async-signal-safe wake-up: makes the blocked accept_client return an
  /// invalid stream. Safe to call from a SIGTERM handler.
  void interrupt() noexcept;

  void close() noexcept;

 private:
  /// Atomic because interrupt() may fire from a signal handler or another
  /// thread while the accept loop is tearing the listener down; close()
  /// claims the descriptor with an exchange so the two never double-close
  /// or race on the value. Moves are still single-threaded by contract.
  std::atomic<int> fd_{-1};
  Endpoint endpoint_;
};

/// See Listener; kept for the PR 9 daemon call sites.
using UnixListener = Listener;

}  // namespace avglocal::support
