#include "algo/cole_vishkin.hpp"

#include <optional>
#include <vector>

#include "algo/colour_reduction.hpp"
#include "local/view.hpp"
#include "local/wire.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace avglocal::algo {

namespace {

class ColeVishkinMessages final : public local::Algorithm {
 public:
  void on_start(local::NodeContext& ctx) override {
    AVGLOCAL_REQUIRE_MSG(ctx.n().has_value(),
                         "Cole-Vishkin (known n) requires Knowledge::kKnowsN");
    AVGLOCAL_REQUIRE_MSG(ctx.degree() == 2, "Cole-Vishkin runs on oriented cycles");
    const std::size_t n = *ctx.n();
    t6_ = cv_iterations_to_six(support::bit_width_u64(n));
    total_rounds_ = cv_schedule_rounds(n);
    colour_ = ctx.id();
    broadcast_colour(ctx);
  }

  void on_round(local::NodeContext& ctx, std::span<const local::Message> inbox) override {
    std::uint64_t succ = 0, pred = 0;
    bool have_succ = false, have_pred = false;
    for (const local::Message& msg : inbox) {
      local::Decoder d(msg.payload);
      const std::uint64_t value = d.u64();
      if (msg.from_port == 0) {
        succ = value;
        have_succ = true;
      } else {
        pred = value;
        have_pred = true;
      }
    }
    AVGLOCAL_REQUIRE_MSG(have_succ && have_pred, "Cole-Vishkin expects both neighbours");
    const std::size_t k = ctx.round();
    if (k <= static_cast<std::size_t>(t6_)) {
      colour_ = cv_reduce(colour_, succ);
    } else {
      // Elimination rounds t6+1, t6+2, t6+3 clear classes 5, 4, 3.
      const std::uint64_t cls = 5 - (k - static_cast<std::size_t>(t6_) - 1);
      if (colour_ == cls) {
        for (std::uint64_t c = 0; c < 3; ++c) {
          if (c != pred && c != succ) {
            colour_ = c;
            break;
          }
        }
      }
    }
    if (k == total_rounds_) {
      ctx.output(static_cast<std::int64_t>(colour_));
    } else {
      broadcast_colour(ctx);
    }
  }

  /// on_start recomputes the schedule and colour from the context.
  bool reset() noexcept override {
    colour_ = 0;
    t6_ = 0;
    total_rounds_ = 0;
    return true;
  }

 private:
  void broadcast_colour(local::NodeContext& ctx) {
    local::Encoder e;
    e.u64(colour_);
    ctx.broadcast(e.take());
  }

  std::uint64_t colour_ = 0;
  int t6_ = 0;
  std::size_t total_rounds_ = 0;
};

class ColeVishkinView final : public local::ViewAlgorithm {
 public:
  explicit ColeVishkinView(std::size_t n)
      : t6_(cv_iterations_to_six(support::bit_width_u64(n))),
        target_radius_(cv_schedule_rounds(n)) {}

  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    if (!view.covers_graph && static_cast<std::size_t>(view.radius) < target_radius_) {
      return std::nullopt;
    }
    const auto ring = local::try_extract_ring_view(view);
    AVGLOCAL_REQUIRE_MSG(ring.has_value(), "Cole-Vishkin requires an oriented cycle");
    if (ring->closed) {
      // Small ring: replay the schedule on the whole cycle.
      std::vector<std::uint64_t> ids;
      ids.reserve(1 + ring->cw.size());
      ids.push_back(ring->own);
      ids.insert(ids.end(), ring->cw.begin(), ring->cw.end());
      const auto colours = cv_colour_ring(ids, t6_);
      return static_cast<std::int64_t>(colours[0]);
    }
    // Open segment: the final colour of a vertex depends on 3 predecessors
    // and t6+3 successors; our radius-T ball provides both.
    AVGLOCAL_REQUIRE(ring->ccw.size() >= 3 &&
                     ring->cw.size() >= static_cast<std::size_t>(t6_) + 3);
    std::vector<std::uint64_t> window;
    window.reserve(7 + static_cast<std::size_t>(t6_));
    for (std::size_t i = 3; i >= 1; --i) window.push_back(ring->ccw[i - 1]);
    window.push_back(ring->own);
    for (std::size_t i = 0; i < static_cast<std::size_t>(t6_) + 3; ++i) {
      window.push_back(ring->cw[i]);
    }
    const SegmentColours colours = cv_colour_segment(window, t6_);
    return static_cast<std::int64_t>(colours.at(3));  // own position
  }

  bool reset() noexcept override { return true; }  // no per-vertex state

  /// Waits for the fixed schedule radius unless the ball closes first.
  std::size_t min_radius() const noexcept override { return target_radius_; }

 private:
  int t6_;
  std::size_t target_radius_;
};

}  // namespace

local::AlgorithmFactory make_cole_vishkin_messages() {
  return [] { return std::make_unique<ColeVishkinMessages>(); };
}

local::ViewAlgorithmFactory make_cole_vishkin_view(std::size_t n) {
  return [n] { return std::make_unique<ColeVishkinView>(n); };
}

}  // namespace avglocal::algo
