#include "algo/local_colouring.hpp"

#include <array>
#include <optional>

#include "algo/colour_reduction.hpp"
#include "local/wire.hpp"
#include "support/assert.hpp"

namespace avglocal::algo {

namespace {

/// State snapshot of a vertex, as carried in every message.
struct NodeState {
  std::uint64_t id = 0;
  std::uint64_t colour = 0;
  bool frozen = false;
  bool candidate = false;
  bool sixfinal = false;
};

local::Payload encode(const NodeState& s) {
  local::Encoder e;
  e.u64(s.id).u64(s.colour).flag(s.frozen).flag(s.candidate).flag(s.sixfinal);
  return e.take();
}

NodeState decode(std::span<const std::uint64_t> payload) {
  local::Decoder d(payload);
  NodeState s;
  s.id = d.u64();
  s.colour = d.u64();
  s.frozen = d.flag();
  s.candidate = d.flag();
  s.sixfinal = d.flag();
  return s;
}

/// Smallest colour in [0, limit) different from both exclusions.
std::uint64_t smallest_free_below(std::uint64_t limit, std::uint64_t a, std::uint64_t b) {
  for (std::uint64_t c = 0; c < limit; ++c) {
    if (c != a && c != b) return c;
  }
  AVGLOCAL_REQUIRE_MSG(false, "no free colour under two exclusions");
  return 0;  // unreachable
}

class LocalThreeColouring final : public local::Algorithm {
 public:
  void on_start(local::NodeContext& ctx) override {
    AVGLOCAL_REQUIRE_MSG(ctx.degree() == 2, "ring colouring requires degree 2");
    colour_ = ctx.id();
    frozen_ = colour_ < 6;
    snapshot_self_();
    ctx.broadcast(encode(current_state(ctx)));
  }

  void on_round(local::NodeContext& ctx, std::span<const local::Message> inbox) override {
    std::array<std::optional<NodeState>, 2> received;
    for (const local::Message& msg : inbox) {
      received[msg.from_port] = decode(msg.payload);
    }
    AVGLOCAL_REQUIRE_MSG(received[0] && received[1], "ring colouring expects both neighbours");
    const NodeState succ = *received[0];
    const NodeState pred = *received[1];

    const std::size_t phase = ctx.round() % 3;
    if (phase == 1) {
      // `received` are the end-of-phase-0 states: a snapshot coherent with
      // self_snapshot_. Latch six-finality and compute repair candidacy.
      snap_nbr_[0] = succ;
      snap_nbr_[1] = pred;
      const bool conflict = (succ.frozen && succ.colour == self_snapshot_.colour) ||
                            (pred.frozen && pred.colour == self_snapshot_.colour);
      if (!sixfinal_ && self_snapshot_.frozen && succ.frozen && pred.frozen && !conflict) {
        sixfinal_ = true;
      }
      candidate_ = self_snapshot_.frozen && !self_snapshot_.sixfinal && conflict;
    } else if (phase == 2 && snap_nbr_[0] && snap_nbr_[1]) {
      // `received` carry the candidacies the neighbours computed on the same
      // snapshot; apply at most one move.
      apply_moves(ctx, succ, pred);
    }

    // Synchronous bit reduction for active vertices, then the freeze rule.
    if (!frozen_) {
      colour_ = cv_reduce(colour_, succ.colour);
      if (colour_ < 6) frozen_ = true;
    }

    if (!ctx.has_output() && sixfinal_ && colour_ < 3) {
      ctx.output(static_cast<std::int64_t>(colour_));
    }
    if (phase == 0) snapshot_self_();
    ctx.broadcast(encode(current_state(ctx)));
  }

  bool reset() noexcept override {
    colour_ = 0;
    frozen_ = false;
    candidate_ = false;
    sixfinal_ = false;
    self_snapshot_ = NodeState{};
    snap_nbr_ = {};
    return true;
  }

 private:
  void apply_moves(local::NodeContext& ctx, const NodeState& succ, const NodeState& pred) {
    const NodeState& snap_succ = *snap_nbr_[0];
    const NodeState& snap_pred = *snap_nbr_[1];
    if (candidate_) {
      // Repair: move only when strictly prior to every adjacent candidate.
      const bool beats_succ = !succ.candidate || ctx.id() > succ.id;
      const bool beats_pred = !pred.candidate || ctx.id() > pred.id;
      if (beats_succ && beats_pred) {
        colour_ = smallest_free_below(6, snap_succ.colour, snap_pred.colour);
        candidate_ = false;
      }
      return;
    }
    // Eliminate: strict local maximum among settled vertices moves below 3.
    if (sixfinal_ && colour_ >= 3 && snap_succ.sixfinal && snap_pred.sixfinal &&
        colour_ > snap_succ.colour && colour_ > snap_pred.colour) {
      colour_ = smallest_free_below(3, snap_succ.colour, snap_pred.colour);
    }
  }

  NodeState current_state(const local::NodeContext& ctx) const {
    return NodeState{ctx.id(), colour_, frozen_, candidate_, sixfinal_};
  }

  void snapshot_self_() {
    self_snapshot_ = NodeState{0, colour_, frozen_, candidate_, sixfinal_};
  }

  std::uint64_t colour_ = 0;
  bool frozen_ = false;
  bool candidate_ = false;
  bool sixfinal_ = false;
  NodeState self_snapshot_;
  std::array<std::optional<NodeState>, 2> snap_nbr_;
};

}  // namespace

local::AlgorithmFactory make_local_three_colouring() {
  return [] { return std::make_unique<LocalThreeColouring>(); };
}

}  // namespace avglocal::algo
