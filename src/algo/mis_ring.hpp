// Maximal independent set on the oriented ring via 3-colouring.
//
// The standard reduction the paper's locality toolbox implies: compute the
// deterministic Cole-Vishkin 3-colouring, then admit colour classes
// greedily - class 0 joins, class 1 joins unless a neighbour is in, class 2
// joins unless a neighbour is in. Membership of a vertex is a function of
// the colours in its distance-2 ball, so the ball formulation needs radius
// T(n) + 2. All vertices stop at the same radius: like colouring, MIS is a
// problem where the classic and the average measure coincide at
// Theta(log* n). Included as an extension exercising the framework beyond
// the paper's two problems.
#pragma once

#include <cstddef>

#include "local/view_engine.hpp"

namespace avglocal::algo {

/// Ball-formulation MIS on oriented cycles with IDs in {1..n}; outputs 1
/// (in the set) or 0.
local::ViewAlgorithmFactory make_mis_ring_view(std::size_t n);

}  // namespace avglocal::algo
