#include "algo/greedy_colouring.hpp"

#include <algorithm>
#include <numeric>
#include <optional>
#include <vector>

#include "local/wire.hpp"
#include "support/assert.hpp"

namespace avglocal::algo {

namespace {

/// Smallest colour not used by the given neighbour colours.
std::int64_t smallest_free(std::vector<std::int64_t> used) {
  std::sort(used.begin(), used.end());
  std::int64_t colour = 0;
  for (const std::int64_t c : used) {
    if (c == colour) ++colour;
    if (c > colour) break;
  }
  return colour;
}

class GreedyColouringMessages final : public local::Algorithm {
 public:
  void on_start(local::NodeContext& ctx) override {
    nbr_id_.assign(ctx.degree(), 0);
    nbr_colour_.assign(ctx.degree(), std::nullopt);
    broadcast_state(ctx);
  }

  void on_round(local::NodeContext& ctx, std::span<const local::Message> inbox) override {
    for (const local::Message& msg : inbox) {
      local::Decoder d(msg.payload);
      nbr_id_[msg.from_port] = d.u64();
      if (d.flag()) nbr_colour_[msg.from_port] = d.i64();
      ids_known_ = true;
    }
    if (!ctx.has_output() && ids_known_) {
      std::vector<std::int64_t> higher_colours;
      bool ready = true;
      for (std::size_t port = 0; port < ctx.degree(); ++port) {
        if (nbr_id_[port] <= ctx.id()) continue;
        if (!nbr_colour_[port]) {
          ready = false;
          break;
        }
        higher_colours.push_back(*nbr_colour_[port]);
      }
      if (ready) {
        colour_ = smallest_free(std::move(higher_colours));
        ctx.output(*colour_);
      }
    }
    broadcast_state(ctx);
  }

  /// on_start re-assigns the per-port arrays; only the scalars persist.
  bool reset() noexcept override {
    colour_.reset();
    ids_known_ = false;
    return true;
  }

 private:
  void broadcast_state(local::NodeContext& ctx) {
    local::Encoder e;
    e.u64(ctx.id()).flag(colour_.has_value()).i64(colour_.value_or(0));
    ctx.broadcast(e.take());
  }

  std::vector<std::uint64_t> nbr_id_;
  std::vector<std::optional<std::int64_t>> nbr_colour_;
  std::optional<std::int64_t> colour_;
  bool ids_known_ = false;
};

class GreedyColouringView final : public local::ViewAlgorithm {
 public:
  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    // Replay the greedy order inside the ball: a vertex is *determined* when
    // all its ports are resolved and every higher-identifier neighbour is
    // determined. Processing in decreasing identifier order needs one pass.
    const std::size_t size = view.size();
    std::vector<std::size_t> order(size);
    std::iota(order.begin(), order.end(), std::size_t{0});
    std::sort(order.begin(), order.end(), [&view](std::size_t a, std::size_t b) {
      return view.ids[a] > view.ids[b];
    });
    std::vector<std::optional<std::int64_t>> colour(size);
    for (const std::size_t u : order) {
      bool resolved = true;
      std::vector<std::int64_t> higher_colours;
      for (const auto target : view.ports[u]) {
        if (target == local::kUnknownTarget) {
          resolved = false;
          break;
        }
        if (view.ids[target] > view.ids[u]) {
          if (!colour[target]) {
            resolved = false;
            break;
          }
          higher_colours.push_back(*colour[target]);
        }
      }
      if (resolved) colour[u] = smallest_free(std::move(higher_colours));
    }
    return colour[0];  // the root's colour, if determined
  }

  bool reset() noexcept override { return true; }  // no per-vertex state

  /// At radius 0 a non-covering root has unresolved ports, so its greedy
  /// colour cannot be determined yet.
  std::size_t min_radius() const noexcept override { return 1; }
};

}  // namespace

local::AlgorithmFactory make_greedy_colouring_messages() {
  return [] { return std::make_unique<GreedyColouringMessages>(); };
}

local::ViewAlgorithmFactory make_greedy_colouring_view() {
  return [] { return std::make_unique<GreedyColouringView>(); };
}

std::vector<std::size_t> greedy_colouring_radii(const graph::Graph& g,
                                                const graph::IdAssignment& ids) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  const std::size_t n = g.vertex_count();
  // L(v) = longest strictly-increasing identifier path from v, by dynamic
  // programming over vertices in decreasing identifier order.
  std::vector<graph::Vertex> order(n);
  std::iota(order.begin(), order.end(), graph::Vertex{0});
  std::sort(order.begin(), order.end(), [&ids](graph::Vertex a, graph::Vertex b) {
    return ids.id_of(a) > ids.id_of(b);
  });
  std::vector<std::size_t> longest(n, 0);
  for (const graph::Vertex v : order) {
    for (const graph::Vertex u : g.neighbours(v)) {
      if (ids.id_of(u) > ids.id_of(v)) {
        longest[v] = std::max(longest[v], longest[u] + 1);
      }
    }
  }
  // A vertex must at least learn its neighbours' identifiers: one round.
  std::vector<std::size_t> radii(n);
  for (graph::Vertex v = 0; v < n; ++v) radii[v] = longest[v] + 1;
  return radii;
}

}  // namespace avglocal::algo
