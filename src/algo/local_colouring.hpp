// Locally-terminating 3-colouring of the oriented ring, NOT knowing n.
//
// The paper's model lets vertices output at different rounds while they keep
// relaying messages; the O(log* n) 3-colouring without knowledge of n it
// cites ([KSV13], [Musto11]) is not constructed there. This file implements
// our own such algorithm (the substitution is documented in DESIGN.md):
//
//  * Reduce: every active vertex iterates Cole-Vishkin bit reduction against
//    its clockwise successor each round and *freezes* the first time its
//    colour drops below 6. Freezing is per-vertex and permanent, so vertices
//    whose neighbourhood identifiers converge quickly stop evolving early -
//    at the cost of occasional equal-colour conflicts at freeze boundaries.
//  * Repair: conflicts (two adjacent frozen vertices with equal colours) are
//    resolved by a priority rule - among adjacent conflicted vertices only
//    the one with the locally largest identifier recolours, to the smallest
//    colour below 6 unused by its neighbours. Decisions are taken on
//    coherent snapshots (a 3-round epoch: snapshot / announce candidacy /
//    move), so two adjacent vertices never recolour simultaneously.
//  * Eliminate: a frozen, conflict-free vertex whose neighbours are also
//    settled ("six-final") and whose colour c >= 3 is a strict local maximum
//    recolours into {0,1,2}; simultaneous movers are never adjacent because
//    of the strict comparison. A vertex outputs once it is six-final with a
//    colour below 3.
//
// Every intermediate state keeps the global invariant "adjacent frozen
// vertices differ except at unrepaired freeze boundaries", and every output
// is made only when no future rule can touch the vertex or its neighbours'
// relation to it; the test suite verifies validity exhaustively on small
// rings and statistically on large ones. Per-vertex radius is
// O(log* n) + O(1) repair epochs.
#pragma once

#include "local/engine.hpp"

namespace avglocal::algo {

/// Message-passing unknown-n 3-colouring (oriented cycles, port convention
/// of make_cycle). Run with Knowledge::kUnknownN; the algorithm never reads n.
local::AlgorithmFactory make_local_three_colouring();

}  // namespace avglocal::algo
