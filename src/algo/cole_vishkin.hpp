// Cole-Vishkin 3-colouring of the oriented ring, knowing n.
//
// The classic O(log* n) upper bound the paper cites [1]. All vertices follow
// the same fixed schedule derived from n (identifiers are a permutation of
// {1..n}): cv_iterations_to_six(bit_width(n)) bit-reduction rounds, then
// three class-elimination rounds. Every vertex outputs at the same round
// T(n) = cv_schedule_rounds(n), so the classic and the average measure
// coincide at Theta(log* n) - exactly the situation of Section 3 of the
// paper, whose Theorem 1 shows the average cannot be asymptotically better.
//
// Requires the make_cycle port convention (port 0 = clockwise successor).
#pragma once

#include <cstddef>

#include "local/engine.hpp"
#include "local/view_engine.hpp"

namespace avglocal::algo {

/// Message-passing implementation; the engine must run with
/// Knowledge::kKnowsN.
local::AlgorithmFactory make_cole_vishkin_messages();

/// Ball-formulation implementation: waits for radius T(n) (or a ball that
/// covers the ring) and locally replays the synchronous schedule to obtain
/// its own final colour. Needs n as a parameter because view algorithms
/// carry no engine-provided knowledge of n.
local::ViewAlgorithmFactory make_cole_vishkin_view(std::size_t n);

}  // namespace avglocal::algo
