#include "algo/mis_ring.hpp"

#include <optional>
#include <vector>

#include "algo/colour_reduction.hpp"
#include "local/view.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"

namespace avglocal::algo {

namespace {

/// Greedy class-by-class admission given the 3-colour of a vertex and of
/// enough context. in(v) for class 0 is immediate; class 1 needs the
/// neighbours' colours; class 2 needs neighbours' membership, i.e. colours
/// at distance up to 2.
bool mis_member(std::uint64_t c_mm, std::uint64_t c_m, std::uint64_t c0, std::uint64_t c_p,
                std::uint64_t c_pp) {
  const auto in_class01 = [](std::uint64_t left, std::uint64_t self, std::uint64_t right) {
    if (self == 0) return true;
    if (self == 1) return left != 0 && right != 0;
    return false;  // class 2 handled by the caller
  };
  if (c0 == 0) return true;
  if (c0 == 1) return c_m != 0 && c_p != 0;
  // Class 2: join iff neither neighbour joined earlier.
  const bool left_in = in_class01(c_mm, c_m, c0);
  const bool right_in = in_class01(c0, c_p, c_pp);
  return !left_in && !right_in;
}

class MisRingView final : public local::ViewAlgorithm {
 public:
  explicit MisRingView(std::size_t n)
      : t6_(cv_iterations_to_six(support::bit_width_u64(n))),
        target_radius_(cv_schedule_rounds(n) + 2) {}

  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    if (!view.covers_graph && static_cast<std::size_t>(view.radius) < target_radius_) {
      return std::nullopt;
    }
    const auto ring = local::try_extract_ring_view(view);
    AVGLOCAL_REQUIRE_MSG(ring.has_value(), "ring MIS requires an oriented cycle");
    if (ring->closed) {
      std::vector<std::uint64_t> ids;
      ids.reserve(1 + ring->cw.size());
      ids.push_back(ring->own);
      ids.insert(ids.end(), ring->cw.begin(), ring->cw.end());
      const auto colours = cv_colour_ring(ids, t6_);
      const std::size_t n = colours.size();
      return mis_member(colours[n - 2], colours[n - 1], colours[0], colours[1], colours[2])
                 ? 1
                 : 0;
    }
    // Open segment: need final colours at offsets -2..+2, hence identifiers
    // at offsets [-5, t6+5].
    AVGLOCAL_REQUIRE(ring->ccw.size() >= 5 &&
                     ring->cw.size() >= static_cast<std::size_t>(t6_) + 5);
    std::vector<std::uint64_t> window;
    window.reserve(11 + static_cast<std::size_t>(t6_));
    for (std::size_t i = 5; i >= 1; --i) window.push_back(ring->ccw[i - 1]);
    window.push_back(ring->own);  // window index 5
    for (std::size_t i = 0; i < static_cast<std::size_t>(t6_) + 5; ++i) {
      window.push_back(ring->cw[i]);
    }
    const SegmentColours colours = cv_colour_segment(window, t6_);
    return mis_member(colours.at(3), colours.at(4), colours.at(5), colours.at(6),
                      colours.at(7))
               ? 1
               : 0;
  }

  bool reset() noexcept override { return true; }  // no per-vertex state

  /// Waits for the fixed schedule radius unless the ball closes first.
  std::size_t min_radius() const noexcept override { return target_radius_; }

 private:
  int t6_;
  std::size_t target_radius_;
};

}  // namespace

local::ViewAlgorithmFactory make_mis_ring_view(std::size_t n) {
  return [n] { return std::make_unique<MisRingView>(n); };
}

}  // namespace avglocal::algo
