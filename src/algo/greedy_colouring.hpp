// Greedy (Delta+1)-colouring by identifier order, on any graph.
//
// The classic sequential greedy algorithm made distributed: a vertex waits
// until every neighbour with a *larger* identifier has committed a colour,
// then takes the smallest colour unused by those neighbours. The colouring
// is proper with at most Delta+1 colours, and the radius (round) at which a
// vertex outputs equals the length of the longest strictly-increasing
// identifier path starting at it.
//
// This makes the algorithm a second showcase - beyond the paper's
// largest-ID - of an exponential gap between the measures, this time on
// *every* bounded-degree topology: the worst-case identifier assignment
// (monotone along a long path) forces Theta(n) rounds on paths/cycles,
// while under a random permutation the longest increasing path from a fixed
// vertex is O(log n) in bounded-degree graphs, so the average radius stays
// logarithmic. Extends the paper's Section 4 "general graphs" question.
#pragma once

#include "local/engine.hpp"
#include "local/view_engine.hpp"

namespace avglocal::algo {

/// Message-passing variant (any connected graph, unknown n).
local::AlgorithmFactory make_greedy_colouring_messages();

/// Ball-formulation variant: a vertex outputs once its ball contains every
/// strictly-increasing identifier path that starts at it (so it can replay
/// the greedy order locally). Radii match the message variant exactly.
local::ViewAlgorithmFactory make_greedy_colouring_view();

/// Analytic per-vertex radius: the length of the longest strictly-increasing
/// identifier path starting at v (0 when v is a local maximum). Used by
/// tests; O((n + m) log n) via DAG dynamic programming.
std::vector<std::size_t> greedy_colouring_radii(const graph::Graph& g,
                                                const graph::IdAssignment& ids);

}  // namespace avglocal::algo
