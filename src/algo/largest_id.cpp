#include "algo/largest_id.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <optional>

#include "graph/properties.hpp"
#include "local/view.hpp"
#include "local/wire.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"
#include "support/narrow.hpp"

namespace avglocal::algo {

namespace {

/// Scans only identifiers appended since the previous call: the engine grows
/// views append-only, so each vertex costs O(final ball size) in total.
class LargestIdView final : public local::ViewAlgorithm {
 public:
  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    for (; scanned_ < view.size(); ++scanned_) {
      if (view.ids[scanned_] > view.root_id()) return kNo;
    }
    if (view.covers_graph) return kYes;
    return std::nullopt;
  }

  bool reset() noexcept override {
    scanned_ = 0;
    return true;
  }

  /// A 1-vertex non-covering view can never contain a larger identifier.
  std::size_t min_radius() const noexcept override { return 1; }

  /// Only identifiers and coverage are consulted, never edges.
  bool ids_only_view() const noexcept override { return true; }

 private:
  std::size_t scanned_ = 0;
};

class LargestIdUniverseAwareView final : public local::ViewAlgorithm {
 public:
  std::optional<std::int64_t> on_view(const local::BallView& view) override {
    for (; scanned_ < view.size(); ++scanned_) {
      if (view.ids[scanned_] > view.root_id()) return kNo;
    }
    if (view.covers_graph) return kYes;
    // Open ball spanning at least x vertices: every completion is strictly
    // larger, and a permutation universe {1..n'} then contains an
    // identifier above x.
    if (view.size() >= view.root_id()) return kNo;
    return std::nullopt;
  }

  bool reset() noexcept override {
    scanned_ = 0;
    return true;
  }

  /// Only identifiers, ball size and coverage are consulted, never edges.
  bool ids_only_view() const noexcept override { return true; }

 private:
  std::size_t scanned_ = 0;
};

/// Message-passing variant: floods (origin, hops) tokens. See header.
class LargestIdMessages final : public local::Algorithm {
 public:
  void on_start(local::NodeContext& ctx) override {
    AVGLOCAL_REQUIRE_MSG(ctx.degree() == 2, "message largest-ID runs on cycles");
    local::Encoder e;
    e.u64(1).u64(ctx.id()).u64(1);  // one token: (origin=self, hops=1)
    ctx.broadcast(e.take());
  }

  void on_round(local::NodeContext& ctx, std::span<const local::Message> inbox) override {
    // forward[q] collects tokens to relay out of port q this round.
    std::array<std::vector<std::pair<std::uint64_t, std::uint64_t>>, 2> forward;
    for (const local::Message& msg : inbox) {
      local::Decoder d(msg.payload);
      const std::uint64_t count = d.u64();
      for (std::uint64_t i = 0; i < count; ++i) {
        const std::uint64_t origin = d.u64();
        const std::uint64_t hops = d.u64();
        ingest(ctx, origin, hops, msg.from_port);
        if (origin != ctx.id() && !already_seen_twice(origin)) {
          forward[1 - msg.from_port].emplace_back(origin, hops + 1);
        }
      }
    }
    for (std::size_t q = 0; q < 2; ++q) {
      if (forward[q].empty()) continue;
      local::Encoder e;
      e.u64(forward[q].size());
      for (const auto& [origin, hops] : forward[q]) e.u64(origin).u64(hops);
      ctx.send(q, e.take());
    }
    decide(ctx);
  }

  bool reset() noexcept override {
    best_ = 0;
    n_.reset();
    seen_.clear();
    return true;
  }

 private:
  void ingest(local::NodeContext& ctx, std::uint64_t origin, std::uint64_t hops,
              std::size_t side) {
    best_ = std::max(best_, origin);
    if (origin == ctx.id()) {
      // Our own token went all the way around: hops == n.
      n_ = hops;
      return;
    }
    auto& sides = seen_[origin];
    sides[side] = hops;
    if (sides[0] && sides[1]) n_ = *sides[0] + *sides[1];
  }

  bool already_seen_twice(std::uint64_t origin) const {
    const auto it = seen_.find(origin);
    return it != seen_.end() && it->second[0].has_value() && it->second[1].has_value();
  }

  void decide(local::NodeContext& ctx) {
    if (ctx.has_output()) return;
    if (best_ > ctx.id()) {
      ctx.output(kNo);
    } else if (n_ && seen_.size() + 1 == *n_) {
      ctx.output(kYes);
    }
  }

  std::uint64_t best_ = 0;
  std::optional<std::size_t> n_;
  std::map<std::uint64_t, std::array<std::optional<std::uint64_t>, 2>> seen_;
};

}  // namespace

local::ViewAlgorithmFactory make_largest_id_view() {
  return [] { return std::make_unique<LargestIdView>(); };
}

local::ViewAlgorithmFactory make_largest_id_universe_aware_view() {
  return [] { return std::make_unique<LargestIdUniverseAwareView>(); };
}

local::AlgorithmFactory make_largest_id_messages() {
  return [] { return std::make_unique<LargestIdMessages>(); };
}

std::vector<std::size_t> largest_id_radii_on_cycle(const graph::IdAssignment& ids) {
  const std::size_t n = ids.size();
  AVGLOCAL_EXPECTS_MSG(n >= 3, "cycle needs at least 3 vertices");
  const std::size_t cover_radius = n / 2;  // == ceil((n-1)/2)

  // Distance to the nearest strictly larger identifier in each direction via
  // a monotonic stack over the doubled sequence (O(n)).
  std::vector<std::size_t> nearest(n, n);  // n = "none"
  const auto sweep = [&](bool rightwards) {
    std::vector<std::size_t> stack;  // positions with decreasing ids
    for (std::size_t step = 0; step < 2 * n; ++step) {
      const std::size_t pos = rightwards ? (2 * n - 1 - step) % n : step % n;
      // Pop smaller-or-equal ids: they found their nearest greater at pos.
      while (!stack.empty() && ids.id_of(support::checked_u32(stack.back())) <
                                   ids.id_of(support::checked_u32(pos))) {
        const std::size_t w = stack.back();
        stack.pop_back();
        const std::size_t dist = rightwards ? (w + n - pos) % n : (pos + n - w) % n;
        if (dist != 0) nearest[w] = std::min(nearest[w], dist);
      }
      stack.push_back(pos);
    }
  };
  sweep(false);  // nearest greater scanning forward (distance measured cw)
  sweep(true);   // and backwards
  std::vector<std::size_t> radii(n);
  for (std::size_t v = 0; v < n; ++v) radii[v] = std::min(nearest[v], cover_radius);
  return radii;
}

std::uint64_t largest_id_radius_sum_on_cycle(const graph::IdAssignment& ids) {
  std::uint64_t sum = 0;
  for (std::size_t r : largest_id_radii_on_cycle(ids)) sum += r;
  return sum;
}

}  // namespace avglocal::algo
