// The paper's Section 2 problem and algorithm: largest ID.
//
// Every vertex must output Yes (1) iff it holds the largest identifier in
// the graph - the classic way to elect a leader. The "straightforward
// algorithm" from the paper: each node increases its radius until it
// discovers an identifier larger than its own (output No), or until it has
// seen the whole graph (output Yes).
//
// This stopping rule is *pointwise minimal* for every correct algorithm
// when n is unknown: a view with no larger identifier and without provable
// closure extends both to instances where the node is the maximum and to
// instances where it is not, so no correct algorithm can stop earlier at any
// vertex (tests/analysis validate this exhaustively at small n). Measuring
// this algorithm therefore measures the problem.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"

namespace avglocal::algo {

/// Output values of the largest-ID problem.
inline constexpr std::int64_t kNo = 0;
inline constexpr std::int64_t kYes = 1;

/// Ball-formulation implementation; works on any connected graph.
local::ViewAlgorithmFactory make_largest_id_view();

/// Universe-aware refinement (extension, not in the paper): when identifiers
/// are known to be a permutation of {1..n} (with n itself unknown), a vertex
/// with identifier x may also output No as soon as its open ball spans
/// 2r+1 >= x vertices: any consistent completion has size > 2r+1 >= x, and
/// its maximum identifier equals its size, so some unseen identifier exceeds
/// x. Pointwise minimal for the known-universe semantics; the bench compares
/// its average radius against the paper's algorithm.
local::ViewAlgorithmFactory make_largest_id_universe_aware_view();

/// Message-passing implementation for cycles (any connected graph, in fact):
/// floods (origin, hops) tokens; a node outputs No as soon as the running
/// maximum exceeds its own identifier, and Yes once it can prove it has seen
/// every vertex (it learns the cycle length from a token received on both
/// sides). Radii match the flooding-knowledge view semantics.
local::AlgorithmFactory make_largest_id_messages();

/// Analytic per-vertex radius of the view algorithm on a cycle under
/// induced-ball semantics: r(v) = min(distance to a vertex with a larger
/// identifier, ceil((n-1)/2)). Used by tests and by the exhaustive search
/// (it avoids running the engine in inner loops).
std::vector<std::size_t> largest_id_radii_on_cycle(const graph::IdAssignment& ids);

/// Sum of largest_id_radii_on_cycle - the quantity whose worst case over
/// permutations the paper's recurrence a(p) characterises.
std::uint64_t largest_id_radius_sum_on_cycle(const graph::IdAssignment& ids);

}  // namespace avglocal::algo
