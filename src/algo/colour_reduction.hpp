// Cole-Vishkin bit-reduction primitives and deterministic schedule
// simulators, shared by the known-n colouring, the view-formulation
// colouring, and the ring MIS algorithm.
//
// The classic iteration [Cole & Vishkin 1986]: on an oriented ring carrying
// a valid colouring, each vertex compares its colour with its successor's,
// finds the lowest differing bit i, and adopts colour 2*i + (own bit i).
// Validity is preserved and the palette shrinks log-star fast; from colours
// below 2^3 one further step lands below 6. Three class-elimination rounds
// (5, then 4, then 3) finish the job: same-class vertices are never adjacent
// in a valid colouring, so a whole class can safely recolour greedily at
// once.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avglocal::algo {

/// One bit-reduction step. Requires colour != successor_colour.
std::uint64_t cv_reduce(std::uint64_t colour, std::uint64_t successor_colour);

/// Number of cv_reduce iterations that brings *any* valid colouring with
/// colours < 2^bits down to colours < 6, uniformly over all vertices.
/// Grows as log*(2^bits).
int cv_iterations_to_six(int bits);

/// Total rounds of the known-n schedule for identifiers in [1, n]:
/// cv_iterations_to_six(bit_width(n)) reduction rounds plus 3 eliminations.
std::size_t cv_schedule_rounds(std::size_t n);

/// Simulates the full schedule on a complete ring given in clockwise order
/// (ring_ids[i+1] is the successor of ring_ids[i], wrapping around).
/// `t6` reduction iterations, then eliminations; returns the final
/// 3-colouring, indexed like ring_ids.
std::vector<std::uint64_t> cv_colour_ring(std::span<const std::uint64_t> ring_ids, int t6);

/// Simulates the schedule on a clockwise window of a larger ring.
/// The final colour of window position j is determined by positions
/// [j-3, j+t6+3]; positions whose dependencies fall outside the window are
/// reported as absent.
struct SegmentColours {
  /// Window index of colours.front().
  std::size_t first = 0;
  std::vector<std::uint64_t> colours;

  /// Final colour of window position j; j must lie in the valid range.
  std::uint64_t at(std::size_t j) const { return colours.at(j - first); }

  bool has(std::size_t j) const { return j >= first && j - first < colours.size(); }
};
SegmentColours cv_colour_segment(std::span<const std::uint64_t> window, int t6);

}  // namespace avglocal::algo
