// String-keyed registry of every bundled LOCAL algorithm.
//
// Replaces the factory dispatch that was duplicated (and drifting) across
// avglocal_cli, the experiment suite and the bench binaries: each entry
// names an algorithm, documents its topology contract, builds its factory
// for the size-n member of a family (schedule-driven algorithms like
// Cole-Vishkin parameterise on n), knows how to validate outputs, and
// surfaces the view-engine capability hooks (ids_only_view, min_radius) so
// tools can report which execution mode a sweep will take without running
// one.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"

namespace avglocal::algo {

enum class AlgorithmKind {
  kView,     ///< ball formulation; sweepable through run_views_batched
  kMessage,  ///< synchronous message passing; single runs only
};

/// Output validator: true iff the outputs solve the algorithm's problem on
/// (g, ids). Null when no checker applies.
using OutputValidator = std::function<bool(const graph::Graph& g, const graph::IdAssignment& ids,
                                           const std::vector<std::int64_t>& outputs)>;

struct AlgorithmInfo {
  std::string name;
  std::string description;
  AlgorithmKind kind = AlgorithmKind::kView;
  /// Topology contract, free-form ("oriented cycles", "any connected
  /// graph"). Documentation, not enforcement: the registry makes every
  /// combination reachable and lets validators catch wrong pairings.
  std::string constraint;
  /// kind == kView: factory for the size-n member.
  std::function<local::ViewAlgorithmFactory(std::size_t n)> view;
  /// kind == kMessage: factory plus the knowledge the engine must grant.
  std::function<local::AlgorithmFactory(std::size_t n)> messages;
  local::Knowledge knowledge = local::Knowledge::kUnknownN;
  OutputValidator validate;
};

/// Capability hooks of a view algorithm at size n, probed from one
/// instance: which batched-engine mode it takes and the radius skip bound.
struct ViewCapabilities {
  bool ids_only_view = false;
  std::size_t min_radius = 0;
};

class AlgorithmRegistry {
 public:
  static const AlgorithmRegistry& global();

  const AlgorithmInfo* find(std::string_view name) const noexcept;

  /// Like find, but throws std::invalid_argument naming the known
  /// algorithms.
  const AlgorithmInfo& at(std::string_view name) const;

  /// Registry keys in registration order; optionally only one kind.
  std::vector<std::string> names() const;
  std::vector<std::string> names(AlgorithmKind kind) const;

  /// Probes one instance of a view algorithm (throws on message entries).
  static ViewCapabilities probe(const AlgorithmInfo& info, std::size_t n);

  void register_algorithm(AlgorithmInfo info);

 private:
  std::vector<AlgorithmInfo> algorithms_;
};

}  // namespace avglocal::algo
