#include "algo/validity.hpp"

#include "support/assert.hpp"

namespace avglocal::algo {

bool is_valid_largest_id(const graph::IdAssignment& ids,
                         const std::vector<std::int64_t>& outputs) {
  AVGLOCAL_EXPECTS(ids.size() == outputs.size());
  const graph::Vertex leader = ids.argmax();
  for (graph::Vertex v = 0; v < outputs.size(); ++v) {
    const std::int64_t expected = (v == leader) ? 1 : 0;
    if (outputs[v] != expected) return false;
  }
  return true;
}

bool is_valid_colouring(const graph::Graph& g, const std::vector<std::int64_t>& outputs,
                        std::int64_t palette) {
  AVGLOCAL_EXPECTS(g.vertex_count() == outputs.size());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    if (outputs[v] < 0 || outputs[v] >= palette) return false;
    for (graph::Vertex u : g.neighbours(v)) {
      if (outputs[u] == outputs[v]) return false;
    }
  }
  return true;
}

bool is_maximal_independent_set(const graph::Graph& g, const std::vector<std::int64_t>& outputs) {
  AVGLOCAL_EXPECTS(g.vertex_count() == outputs.size());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    if (outputs[v] != 0 && outputs[v] != 1) return false;
    bool has_in_neighbour = false;
    for (graph::Vertex u : g.neighbours(v)) {
      if (outputs[u] == 1) has_in_neighbour = true;
      if (outputs[v] == 1 && outputs[u] == 1) return false;  // not independent
    }
    if (outputs[v] == 0 && !has_in_neighbour) return false;  // not maximal
  }
  return true;
}

}  // namespace avglocal::algo
