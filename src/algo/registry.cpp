#include "algo/registry.hpp"

#include <stdexcept>
#include <utility>

#include "algo/cole_vishkin.hpp"
#include "algo/greedy_colouring.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/mis_ring.hpp"
#include "algo/validity.hpp"
#include "graph/properties.hpp"
#include "support/assert.hpp"

namespace avglocal::algo {

namespace {

bool validate_largest_id(const graph::Graph&, const graph::IdAssignment& ids,
                         const std::vector<std::int64_t>& outputs) {
  return is_valid_largest_id(ids, outputs);
}

bool validate_three_colouring(const graph::Graph& g, const graph::IdAssignment&,
                              const std::vector<std::int64_t>& outputs) {
  return is_valid_colouring(g, outputs, 3);
}

bool validate_mis(const graph::Graph& g, const graph::IdAssignment&,
                  const std::vector<std::int64_t>& outputs) {
  return is_maximal_independent_set(g, outputs);
}

bool validate_greedy_colouring(const graph::Graph& g, const graph::IdAssignment&,
                               const std::vector<std::int64_t>& outputs) {
  return is_valid_colouring(g, outputs,
                            static_cast<std::int64_t>(graph::max_degree(g)) + 1);
}

AlgorithmRegistry build_global_registry() {
  AlgorithmRegistry registry;

  AlgorithmInfo largest_id;
  largest_id.name = "largest-id";
  largest_id.description = "the paper's largest-ID election (grow until a larger id or closure)";
  largest_id.kind = AlgorithmKind::kView;
  largest_id.constraint = "any connected graph";
  largest_id.view = [](std::size_t) { return make_largest_id_view(); };
  largest_id.validate = validate_largest_id;
  registry.register_algorithm(std::move(largest_id));

  AlgorithmInfo largest_id_ua;
  largest_id_ua.name = "largest-id-ua";
  largest_id_ua.description = "universe-aware largest-ID (ids known to be a permutation of 1..n)";
  largest_id_ua.kind = AlgorithmKind::kView;
  largest_id_ua.constraint = "any connected graph";
  largest_id_ua.view = [](std::size_t) { return make_largest_id_universe_aware_view(); };
  largest_id_ua.validate = validate_largest_id;
  registry.register_algorithm(std::move(largest_id_ua));

  AlgorithmInfo cv3;
  cv3.name = "cv3";
  cv3.description = "Cole-Vishkin 3-colouring on the known-n schedule";
  cv3.kind = AlgorithmKind::kView;
  cv3.constraint = "oriented cycles (make_cycle ports)";
  cv3.view = [](std::size_t n) { return make_cole_vishkin_view(n); };
  cv3.validate = validate_three_colouring;
  registry.register_algorithm(std::move(cv3));

  AlgorithmInfo mis;
  mis.name = "mis";
  mis.description = "maximal independent set via 3-colouring";
  mis.kind = AlgorithmKind::kView;
  mis.constraint = "oriented cycles (make_cycle ports)";
  mis.view = [](std::size_t n) { return make_mis_ring_view(n); };
  mis.validate = validate_mis;
  registry.register_algorithm(std::move(mis));

  AlgorithmInfo greedy;
  greedy.name = "greedy";
  greedy.description = "greedy (Delta+1)-colouring by identifier order";
  greedy.kind = AlgorithmKind::kView;
  greedy.constraint = "any connected graph";
  greedy.view = [](std::size_t) { return make_greedy_colouring_view(); };
  greedy.validate = validate_greedy_colouring;
  registry.register_algorithm(std::move(greedy));

  AlgorithmInfo local3;
  local3.name = "local3";
  local3.description = "locally-terminating 3-colouring, unknown n (message engine)";
  local3.kind = AlgorithmKind::kMessage;
  local3.constraint = "oriented cycles (make_cycle ports)";
  local3.messages = [](std::size_t) { return make_local_three_colouring(); };
  local3.knowledge = local::Knowledge::kUnknownN;
  local3.validate = validate_three_colouring;
  registry.register_algorithm(std::move(local3));

  AlgorithmInfo largest_id_msg;
  largest_id_msg.name = "largest-id-msg";
  largest_id_msg.description = "largest-ID by token flooding (message engine)";
  largest_id_msg.kind = AlgorithmKind::kMessage;
  largest_id_msg.constraint = "any connected graph";
  largest_id_msg.messages = [](std::size_t) { return make_largest_id_messages(); };
  largest_id_msg.knowledge = local::Knowledge::kUnknownN;
  largest_id_msg.validate = validate_largest_id;
  registry.register_algorithm(std::move(largest_id_msg));

  AlgorithmInfo cv3_msg;
  cv3_msg.name = "cv3-msg";
  cv3_msg.description = "Cole-Vishkin 3-colouring (message engine, knows n)";
  cv3_msg.kind = AlgorithmKind::kMessage;
  cv3_msg.constraint = "oriented cycles (make_cycle ports)";
  cv3_msg.messages = [](std::size_t) { return make_cole_vishkin_messages(); };
  cv3_msg.knowledge = local::Knowledge::kKnowsN;
  cv3_msg.validate = validate_three_colouring;
  registry.register_algorithm(std::move(cv3_msg));

  AlgorithmInfo greedy_msg;
  greedy_msg.name = "greedy-msg";
  greedy_msg.description = "greedy (Delta+1)-colouring (message engine)";
  greedy_msg.kind = AlgorithmKind::kMessage;
  greedy_msg.constraint = "any connected graph";
  greedy_msg.messages = [](std::size_t) { return make_greedy_colouring_messages(); };
  greedy_msg.knowledge = local::Knowledge::kUnknownN;
  greedy_msg.validate = validate_greedy_colouring;
  registry.register_algorithm(std::move(greedy_msg));

  return registry;
}

}  // namespace

const AlgorithmRegistry& AlgorithmRegistry::global() {
  static const AlgorithmRegistry registry = build_global_registry();
  return registry;
}

const AlgorithmInfo* AlgorithmRegistry::find(std::string_view name) const noexcept {
  for (const AlgorithmInfo& info : algorithms_) {
    if (info.name == name) return &info;
  }
  return nullptr;
}

const AlgorithmInfo& AlgorithmRegistry::at(std::string_view name) const {
  const AlgorithmInfo* info = find(name);
  if (info == nullptr) {
    std::string known;
    for (const AlgorithmInfo& a : algorithms_) {
      if (!known.empty()) known += ' ';
      known += a.name;
    }
    throw std::invalid_argument("unknown algorithm '" + std::string(name) +
                                "' (known: " + known + ")");
  }
  return *info;
}

std::vector<std::string> AlgorithmRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(algorithms_.size());
  for (const AlgorithmInfo& info : algorithms_) out.push_back(info.name);
  return out;
}

std::vector<std::string> AlgorithmRegistry::names(AlgorithmKind kind) const {
  std::vector<std::string> out;
  for (const AlgorithmInfo& info : algorithms_) {
    if (info.kind == kind) out.push_back(info.name);
  }
  return out;
}

ViewCapabilities AlgorithmRegistry::probe(const AlgorithmInfo& info, std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(info.kind == AlgorithmKind::kView,
                       "capabilities exist for view algorithms only");
  const local::ViewAlgorithmFactory factory = info.view(n);
  const auto instance = factory();
  AVGLOCAL_REQUIRE(instance != nullptr);
  ViewCapabilities caps;
  caps.ids_only_view = instance->ids_only_view();
  caps.min_radius = instance->min_radius();
  return caps;
}

void AlgorithmRegistry::register_algorithm(AlgorithmInfo info) {
  AVGLOCAL_REQUIRE_MSG(find(info.name) == nullptr, "duplicate algorithm registration");
  algorithms_.push_back(std::move(info));
}

}  // namespace avglocal::algo
