// Output validators for the problems studied in the paper.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace avglocal::algo {

/// Largest-ID outputs: exactly the vertex holding the maximum identifier
/// output 1 (Yes), all others 0 (No).
bool is_valid_largest_id(const graph::IdAssignment& ids, const std::vector<std::int64_t>& outputs);

/// Proper colouring with colours in [0, palette).
bool is_valid_colouring(const graph::Graph& g, const std::vector<std::int64_t>& outputs,
                        std::int64_t palette);

/// Outputs are 0/1 and the 1-set is an independent set that is maximal
/// (every 0-vertex has a 1-neighbour).
bool is_maximal_independent_set(const graph::Graph& g, const std::vector<std::int64_t>& outputs);

}  // namespace avglocal::algo
