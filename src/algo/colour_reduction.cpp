#include "algo/colour_reduction.hpp"

#include <bit>

#include "support/assert.hpp"
#include "support/math.hpp"

namespace avglocal::algo {

std::uint64_t cv_reduce(std::uint64_t colour, std::uint64_t successor_colour) {
  AVGLOCAL_EXPECTS_MSG(colour != successor_colour, "cv_reduce needs a valid colouring");
  const int i = std::countr_zero(colour ^ successor_colour);
  const std::uint64_t bit = (colour >> i) & 1u;
  return 2 * static_cast<std::uint64_t>(i) + bit;
}

int cv_iterations_to_six(int bits) {
  AVGLOCAL_EXPECTS(bits >= 1 && bits <= 64);
  // Colours < 2^L map to colours <= 2*(L-1)+1, i.e. < 2^bit_width(2L-1).
  int level = bits;
  int steps = 0;
  while (level > 3) {
    level = support::bit_width_u64(static_cast<std::uint64_t>(2 * level - 1));
    ++steps;
  }
  // One more step takes colours < 8 (3 bits) to colours < 6.
  return steps + 1;
}

std::size_t cv_schedule_rounds(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 2);
  const int bits = support::bit_width_u64(n);
  return static_cast<std::size_t>(cv_iterations_to_six(bits)) + 3;
}

namespace {

/// Greedy recolour: the smallest colour in {0,1,2} used by neither
/// neighbour. Valid whenever at most two values are excluded.
std::uint64_t smallest_free(std::uint64_t left, std::uint64_t right) {
  for (std::uint64_t c = 0; c < 3; ++c) {
    if (c != left && c != right) return c;
  }
  AVGLOCAL_REQUIRE_MSG(false, "no free colour below 3 with two exclusions");
  return 0;  // unreachable
}

}  // namespace

std::vector<std::uint64_t> cv_colour_ring(std::span<const std::uint64_t> ring_ids, int t6) {
  const std::size_t n = ring_ids.size();
  AVGLOCAL_EXPECTS(n >= 3);
  std::vector<std::uint64_t> colour(ring_ids.begin(), ring_ids.end());
  std::vector<std::uint64_t> next(n);
  for (int k = 0; k < t6; ++k) {
    for (std::size_t i = 0; i < n; ++i) next[i] = cv_reduce(colour[i], colour[(i + 1) % n]);
    colour.swap(next);
  }
  for (std::uint64_t cls = 5; cls >= 3; --cls) {
    for (std::size_t i = 0; i < n; ++i) {
      next[i] = (colour[i] == cls)
                    ? smallest_free(colour[(i + n - 1) % n], colour[(i + 1) % n])
                    : colour[i];
    }
    colour.swap(next);
  }
  return colour;
}

SegmentColours cv_colour_segment(std::span<const std::uint64_t> window, int t6) {
  const std::size_t m = window.size();
  AVGLOCAL_EXPECTS_MSG(m >= static_cast<std::size_t>(t6) + 7,
                       "window too small for any final colour");
  // Reduction: after iteration k, colours are valid for positions
  // [0, m-1-k]. Run in place over a shrinking suffix bound.
  std::vector<std::uint64_t> colour(window.begin(), window.end());
  std::size_t valid_end = m - 1;  // inclusive
  for (int k = 0; k < t6; ++k) {
    for (std::size_t j = 0; j < valid_end; ++j) colour[j] = cv_reduce(colour[j], colour[j + 1]);
    --valid_end;
  }
  // Eliminations consume one position from each side per step.
  std::size_t lo = 0;
  std::vector<std::uint64_t> next = colour;
  for (std::uint64_t cls = 5; cls >= 3; --cls) {
    for (std::size_t j = lo + 1; j < valid_end; ++j) {
      next[j] =
          (colour[j] == cls) ? smallest_free(colour[j - 1], colour[j + 1]) : colour[j];
    }
    ++lo;
    --valid_end;
    for (std::size_t j = lo; j <= valid_end; ++j) colour[j] = next[j];
  }
  SegmentColours out;
  out.first = lo;  // == 3
  out.colours.assign(colour.begin() + static_cast<std::ptrdiff_t>(lo),
                     colour.begin() + static_cast<std::ptrdiff_t>(valid_end + 1));
  return out;
}

}  // namespace avglocal::algo
