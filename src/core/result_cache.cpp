#include "core/result_cache.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "core/sweep_driver.hpp"
#include "graph/graph.hpp"
#include "support/assert.hpp"

namespace avglocal::core {

/// Everything resident for one workload identity. The members own each
/// other bottom-up and are declared in dependency order (graphs before
/// points: a prepared SweepDriver::Point pins its graph's address, and
/// `graphs` is never touched again after the points are prepared, so the
/// vector's element addresses stay put for the entry's lifetime).
struct ResultCache::Entry {
  ResolvedScenario resolved;  ///< from the request that created the entry
  std::unique_ptr<SweepBackend> backend;
  std::unique_ptr<SweepDriver> driver;
  std::vector<graph::Graph> graphs;
  std::vector<SweepDriver::Point> points;  ///< prepared state, one per size
  /// Exact-integer partials covering trials [0, E) per point. E only ever
  /// grows (via PointAccumulator::append), so everything served from here
  /// is a prefix of the one canonical trial stream.
  std::vector<PointAccumulator> partials;
  /// Finalized report bytes keyed by the full canonical scenario JSON
  /// (identity plus schedule - the schedule appears in the report, so two
  /// schedules over one identity memoise separately).
  std::map<std::string, std::string> reports;
};

ResultCache::ResultCache(const ResultCacheOptions& options)
    : options_(options), pool_(std::make_unique<support::ThreadPool>(options.threads)) {}

ResultCache::~ResultCache() = default;

ResultCache::Entry& ResultCache::entry_for(const std::string& key, ResolvedScenario&& resolved) {
  const auto found = entries_.find(key);
  if (found != entries_.end()) return *found->second;

  auto entry = std::make_unique<Entry>();
  entry->resolved = std::move(resolved);
  entry->backend = entry->resolved.make_backend();

  BatchedSweepOptions base = entry->resolved.sweep_options();
  base.threads = options_.threads;
  base.batch_size = options_.batch_size;
  base.pool = pool_.get();
  entry->driver = std::make_unique<SweepDriver>(*entry->backend, base, pool_.get());

  const std::vector<std::size_t>& ns = entry->resolved.spec.ns;
  entry->graphs.reserve(ns.size());
  for (const std::size_t n : ns) {
    entry->graphs.push_back(entry->resolved.graphs(n));
    AVGLOCAL_REQUIRE_MSG(entry->graphs.back().vertex_count() == n,
                         "graph factory size mismatch");
  }
  // All graphs built; from here their addresses are stable to pin.
  entry->points.reserve(ns.size());
  for (std::size_t index = 0; index < ns.size(); ++index) {
    entry->points.push_back(entry->driver->prepare(entry->graphs[index], index));
  }

  Entry& ref = *entry;
  entries_.emplace(key, std::move(entry));
  return ref;
}

ResultCacheOutcome ResultCache::sweep(const ScenarioSpec& spec) {
  ResolvedScenario resolved = resolve_scenario(spec);
  if (resolved.spec.schedule.adaptive()) {
    throw std::invalid_argument(
        "result cache: adaptive schedules are not cacheable (their trial count "
        "depends on schedule-specific convergence checks); run them through "
        "run_scenario or request a fixed trial count");
  }
  // The request's canonical spec - the entry may have been created by a
  // request with a different schedule, so the report and the half-width
  // must come from this one.
  const ScenarioSpec request_spec = resolved.spec;
  const TrialSchedule& schedule = request_spec.schedule;
  const std::size_t requested = schedule.max_trials;

  ResultCacheOutcome outcome;
  outcome.key = scenario_cache_key(request_spec);

  const std::lock_guard<std::mutex> lock(mutex_);
  ++stats_.requests;
  Entry& entry = entry_for(outcome.key, std::move(resolved));
  stats_.entries = entries_.size();

  const std::string memo_key = scenario_to_json(request_spec);
  const auto memo = entry.reports.find(memo_key);
  if (memo != entry.reports.end()) {
    ++stats_.full_hits;
    outcome.report = memo->second;
    outcome.warm = true;
    return outcome;
  }

  const std::size_t cached_before =
      entry.partials.empty() ? 0 : entry.partials.front().trial_count();

  std::vector<ScenarioPoint> points;
  points.reserve(request_spec.ns.size());
  std::uint64_t computed = 0;
  for (std::size_t index = 0; index < request_spec.ns.size(); ++index) {
    if (index >= entry.partials.size()) {
      // Nothing cached for this point yet: run the full range and keep it.
      entry.partials.push_back(entry.driver->run_trials(entry.points[index], 0, requested));
      computed += requested;
    } else if (entry.partials[index].trial_count() < requested) {
      // The heart of the cache: compute only the missing tail and extend
      // the exact-integer partial. append() verifies the ranges abut, so
      // the result is bit-identical to a monolithic `requested`-trial run.
      const std::size_t have = entry.partials[index].trial_count();
      entry.partials[index].append(
          entry.driver->run_trials(entry.points[index], have, requested));
      computed += requested - have;
    }

    ScenarioPoint point;
    point.converged = true;  // fixed schedules always run to their count
    if (entry.partials[index].trial_count() == requested) {
      point.point =
          finalize_point(entry.partials[index], entry.resolved.sweep_options(requested));
    } else {
      // Cached range is longer than the request. The aggregated fields
      // (histograms, node sums) cannot be truncated, so recompute [0,
      // requested) on the resident prepared point - the cached partial
      // stays untouched for future longer requests.
      const PointAccumulator fresh =
          entry.driver->run_trials(entry.points[index], 0, requested);
      computed += requested;
      point.point = finalize_point(fresh, entry.resolved.sweep_options(requested));
    }
    point.half_width = schedule.half_width(point.point.avg_sd, requested);
    points.push_back(std::move(point));
  }

  if (computed == 0) {
    ++stats_.full_hits;
  } else if (cached_before == 0 || cached_before >= requested) {
    ++stats_.misses;
  } else {
    ++stats_.extensions;
  }
  stats_.trials_computed += computed;

  outcome.report = sweep_report_json(request_spec, points);
  outcome.trials_computed = computed;
  outcome.warm = computed == 0;
  entry.reports.emplace(memo_key, outcome.report);
  return outcome;
}

bool ResultCache::offer_partials(const ScenarioSpec& spec,
                                 std::vector<PointAccumulator> partials) {
  ResolvedScenario resolved = resolve_scenario(spec);
  if (resolved.spec.schedule.adaptive()) return false;
  const std::string key = scenario_cache_key(resolved.spec);
  const std::vector<std::size_t> ns = resolved.spec.ns;

  // Shape check before anything is trusted: one accumulator per point,
  // each starting at trial 0, all covering the same range - the exact
  // invariant entry.partials maintains for locally computed trials.
  if (partials.size() != ns.size() || partials.empty()) return false;
  const std::size_t covered = partials.front().trial_count();
  if (covered == 0) return false;
  for (std::size_t index = 0; index < partials.size(); ++index) {
    if (partials[index].point_index != index || partials[index].n != ns[index] ||
        partials[index].trial_begin != 0 || partials[index].trial_count() != covered) {
      return false;
    }
  }

  const std::lock_guard<std::mutex> lock(mutex_);
  Entry& entry = entry_for(key, std::move(resolved));
  stats_.entries = entries_.size();
  const std::size_t cached =
      entry.partials.empty() ? 0 : entry.partials.front().trial_count();
  if (covered <= cached) return false;  // nothing the cache doesn't have
  entry.partials = std::move(partials);
  return true;
}

ResultCacheStats ResultCache::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t ResultCache::entry_count() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return entries_.size();
}

}  // namespace avglocal::core
