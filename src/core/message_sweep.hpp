// Batched random sweeps over the message engine: the counterpart of
// core/batched_sweep.hpp for the paper's first formulation of the LOCAL
// model. Since the SweepBackend redesign both entry points are thin shims
// over core::SweepDriver + core::MessageBackend (core/sweep_driver.hpp);
// new callers should hold a driver directly.
//
// run_message_sweep runs batches of id-assignments through persistent
// arena-backed engines (local::MessageBatchRunner): topology tables,
// message arenas and inbox are built once per (point, worker lane) and
// rebound per assignment, and per-node output rounds land in the exact
// same integer PointAccumulators the view sweeps use. Trial streams derive
// from (seed, point, trial) exactly as in accumulate_point, so a message
// sweep and a view sweep of the same scenario see identical id
// permutations - which is what lets the cross-engine oracle tests compare
// the two engines sample by sample, and what makes message shards merge
// bit-identically through core/shard.hpp.
//
// One run is inherently sequential (all nodes interact through the
// arenas), but the sweep is not: run_message_sweep honours
// BatchedSweepOptions::threads/pool by splitting each point's trial range
// into contiguous chunks, one private engine per pool worker lane, and
// appending the exact-integer partials in trial order - bit-identical to
// the serial sweep for every worker count (test- and CI-pinned).
#pragma once

#include <cstdint>
#include <vector>

#include "core/batched_sweep.hpp"
#include "local/engine.hpp"

namespace avglocal::core {

/// Builds the message-algorithm factory for the size-n member of a family
/// (the message analogue of AlgorithmProvider).
using MessageAlgorithmProvider = std::function<local::AlgorithmFactory(std::size_t)>;

/// Engine-level knobs of a message sweep. Results depend on `knowledge`
/// (it is part of the workload, carried by the algorithm registry), never
/// on `max_rounds` (a liveness guard).
struct MessageEngineOptions {
  local::Knowledge knowledge = local::Knowledge::kUnknownN;
  std::size_t max_rounds = 1u << 20;
};

/// Runs trials [trial_begin, trial_end) of point `point_index` on `g`
/// through one reused engine and returns exact partials - the message
/// analogue of accumulate_point, filling the same fields (radii are the
/// rounds at which nodes output, r(v) of the message formulation).
/// Deliberately serial; sweeping callers go through core::SweepDriver.
PointAccumulator accumulate_message_point(const graph::Graph& g, std::size_t point_index,
                                          const local::AlgorithmFactory& algorithm,
                                          const MessageEngineOptions& engine,
                                          const BatchedSweepOptions& options,
                                          std::size_t trial_begin, std::size_t trial_end);

/// Message counterpart of run_batched_sweep: same seeds, same aggregates
/// and distributions (node- and edge-averaged), one persistent engine per
/// (point, worker lane). BatchedSweepOptions::semantics is ignored;
/// threads/pool parallelise disjoint trial ranges (see header).
std::vector<BatchedSweepPoint> run_message_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const MessageAlgorithmProvider& algorithms,
                                                 const MessageEngineOptions& engine = {},
                                                 const BatchedSweepOptions& options = {});

}  // namespace avglocal::core
