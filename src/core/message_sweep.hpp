// Batched random sweeps over the message engine: the counterpart of
// core/batched_sweep.hpp for the paper's first formulation of the LOCAL
// model.
//
// run_message_sweep runs batches of id-assignments through ONE arena-backed
// engine per point (local::run_messages_batch): topology tables, message
// arenas and inbox are built once per graph and rebound per assignment, and
// per-node output rounds land in the exact same integer PointAccumulators
// the view sweeps use. Trial streams derive from (seed, point, trial)
// exactly as in accumulate_point, so a message sweep and a view sweep of
// the same scenario see identical id permutations - which is what lets the
// cross-engine oracle tests compare the two engines sample by sample, and
// what makes message shards merge bit-identically through core/shard.hpp.
//
// The engine is inherently sequential over trials (all nodes of a run
// interact through the arenas), so threads/pool options are ignored here;
// parallelism comes from sharding points and trial ranges across processes.
#pragma once

#include <cstdint>
#include <vector>

#include "core/batched_sweep.hpp"
#include "local/engine.hpp"

namespace avglocal::core {

/// Builds the message-algorithm factory for the size-n member of a family
/// (the message analogue of AlgorithmProvider).
using MessageAlgorithmProvider = std::function<local::AlgorithmFactory(std::size_t)>;

/// Engine-level knobs of a message sweep. Results depend on `knowledge`
/// (it is part of the workload, carried by the algorithm registry), never
/// on `max_rounds` (a liveness guard).
struct MessageEngineOptions {
  local::Knowledge knowledge = local::Knowledge::kUnknownN;
  std::size_t max_rounds = 1u << 20;
};

/// Runs trials [trial_begin, trial_end) of point `point_index` on `g`
/// through one reused engine and returns exact partials - the message
/// analogue of accumulate_point, filling the same fields (radii are the
/// rounds at which nodes output, r(v) of the message formulation).
PointAccumulator accumulate_message_point(const graph::Graph& g, std::size_t point_index,
                                          const local::AlgorithmFactory& algorithm,
                                          const MessageEngineOptions& engine,
                                          const BatchedSweepOptions& options,
                                          std::size_t trial_begin, std::size_t trial_end);

/// Message counterpart of run_batched_sweep: same seeds, same aggregates
/// and distributions (node- and edge-averaged), one engine per point.
/// BatchedSweepOptions::semantics/threads/pool are ignored (see header).
std::vector<BatchedSweepPoint> run_message_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const MessageAlgorithmProvider& algorithms,
                                                 const MessageEngineOptions& engine = {},
                                                 const BatchedSweepOptions& options = {});

}  // namespace avglocal::core
