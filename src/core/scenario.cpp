#include "core/scenario.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <memory>
#include <stdexcept>

#include "algo/registry.hpp"
#include "core/sweep_driver.hpp"
#include "support/assert.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace avglocal::core {

namespace {

/// Seed-space tag separating graph construction from id-assignment streams
/// (ASCII "graph_"); shared with the pre-registry CLI so artefacts stay
/// comparable across versions.
constexpr std::uint64_t kGraphSeedTag = 0x67726170685fULL;

local::ViewSemantics semantics_from_name(const std::string& name) {
  const auto semantics = local::view_semantics_from_name(name);
  if (!semantics) throw std::runtime_error("scenario: unknown view semantics '" + name + "'");
  return *semantics;
}

void validate_schedule(const TrialSchedule& schedule) {
  AVGLOCAL_EXPECTS_MSG(schedule.max_trials >= 1, "schedule needs at least one trial");
  if (schedule.adaptive()) {
    // The variance floor must bind the cap too: with max_trials == 1 the
    // first (and only) round would see a single sample, whose sd of 0
    // reports instant "convergence" from a zero-width interval.
    AVGLOCAL_EXPECTS_MSG(schedule.max_trials >= 2,
                         "adaptive schedules need a cap of >= 2 trials");
    AVGLOCAL_EXPECTS_MSG(schedule.min_trials >= 2,
                         "adaptive schedules need >= 2 trials for a variance estimate");
    AVGLOCAL_EXPECTS_MSG(schedule.batch >= 1, "adaptive schedules need a positive batch");
    AVGLOCAL_EXPECTS_MSG(schedule.z > 0.0, "confidence quantile z must be positive");
  }
}

/// Sample sd of the per-trial average radius, exactly as finalize_point
/// computes avg_sd (same Welford accumulation in global trial order), so
/// convergence decisions and the reported point agree to the last bit.
double partial_avg_sd(const PointAccumulator& acc) {
  support::RunningStats stats;
  for (std::size_t t = 0; t < acc.trial_count(); ++t) {
    stats.add(static_cast<double>(acc.trial_sum[t]) / static_cast<double>(acc.n));
  }
  return stats.stddev();
}

}  // namespace

double TrialSchedule::half_width(double sd, std::size_t trials) const noexcept {
  return z * sd / std::sqrt(static_cast<double>(trials));
}

std::unique_ptr<SweepBackend> ResolvedScenario::make_backend() const {
  if (is_message()) return std::make_unique<MessageBackend>(messages, message_engine);
  return std::make_unique<ViewBackend>(algorithms, spec.semantics);
}

BatchedSweepOptions ResolvedScenario::sweep_options() const {
  return sweep_options(spec.schedule.max_trials);
}

BatchedSweepOptions ResolvedScenario::sweep_options(std::size_t trials) const {
  BatchedSweepOptions options;
  options.trials = trials;
  options.seed = spec.seed;
  options.semantics = spec.semantics;
  options.quantile_probs = spec.quantile_probs;
  options.node_profile = spec.node_profile;
  return options;
}

ResolvedScenario resolve_scenario(const ScenarioSpec& spec) {
  const graph::FamilyRegistry& families = graph::FamilyRegistry::global();
  const graph::GraphFamily& family = families.at(spec.family.family);
  const std::vector<double> params =
      graph::FamilyRegistry::resolve_params(family, spec.family.params);

  const algo::AlgorithmRegistry& algorithms = algo::AlgorithmRegistry::global();
  const algo::AlgorithmInfo& algorithm = algorithms.at(spec.algorithm);
  const bool is_message = algorithm.kind == algo::AlgorithmKind::kMessage;
  const std::string engine_name = is_message ? "message" : "view";
  if (!spec.engine.empty() && spec.engine != "view" && spec.engine != "message") {
    throw std::invalid_argument("scenario: unknown engine '" + spec.engine +
                                "' (known: view message)");
  }
  if (!spec.engine.empty() && spec.engine != engine_name) {
    throw std::invalid_argument("scenario: engine '" + spec.engine + "' does not run algorithm '" +
                                spec.algorithm + "', which is a " + engine_name +
                                " algorithm; drop the engine field or use '" + engine_name + "'");
  }

  AVGLOCAL_EXPECTS_MSG(!spec.ns.empty(), "scenario needs at least one size");
  validate_schedule(spec.schedule);

  ResolvedScenario resolved;
  resolved.spec = spec;
  resolved.spec.engine = engine_name;
  // The message engine has no view-semantics knob; its rounds deliver
  // flooding knowledge. Canonicalising the field keeps two descriptions of
  // the same message workload byte-identical in artefacts.
  if (is_message) resolved.spec.semantics = local::ViewSemantics::kFloodingKnowledge;

  // Canonical parameter list: every declared parameter, declaration order,
  // defaults filled in.
  resolved.spec.family.params.clear();
  for (std::size_t i = 0; i < family.params.size(); ++i) {
    resolved.spec.family.params.emplace_back(family.params[i].name, params[i]);
  }

  // Snap requested sizes to realisable ones; drop duplicates (two requests
  // can snap to the same square), keeping first-occurrence order.
  resolved.spec.ns.clear();
  for (const std::size_t requested : spec.ns) {
    const std::size_t realised =
        family.realised_size(std::max(requested, family.min_size), params);
    if (std::find(resolved.spec.ns.begin(), resolved.spec.ns.end(), realised) ==
        resolved.spec.ns.end()) {
      resolved.spec.ns.push_back(realised);
    }
  }

  // Randomised families derive their stream from (seed, n) only, so every
  // shard and every adaptive round of a plan builds identical graphs.
  const graph::FamilySpec family_spec = resolved.spec.family;
  const std::uint64_t seed = spec.seed;
  resolved.graphs = [family_spec, seed](std::size_t n) {
    support::Xoshiro256 rng(support::derive_seed(seed ^ kGraphSeedTag, n));
    return graph::FamilyRegistry::global().build(family_spec, n, rng);
  };

  const std::string algorithm_name = spec.algorithm;
  if (is_message) {
    resolved.messages = [algorithm_name](std::size_t n) {
      return algo::AlgorithmRegistry::global().at(algorithm_name).messages(n);
    };
    resolved.message_engine.knowledge = algorithm.knowledge;
  } else {
    resolved.algorithms = [algorithm_name](std::size_t n) {
      return algo::AlgorithmRegistry::global().at(algorithm_name).view(n);
    };
  }
  return resolved;
}

namespace {

/// One body behind the canonical scenario block and the workload-identity
/// block: same keys, same order, the identity variant simply omits the
/// `schedule` object. The canonical block's byte stream is pinned by the
/// golden-artefact corpus, so the refactor must not move a single byte of
/// the with-schedule output.
void write_scenario_block(support::JsonWriter& json, const ScenarioSpec& spec,
                          bool with_schedule) {
  json.begin_object();
  json.key("family").value(spec.family.family);
  json.key("family_params").begin_object();
  for (const auto& [name, value] : spec.family.params) json.key(name).value(value);
  json.end_object();
  json.key("algorithm").value(spec.algorithm);
  json.key("engine").value(spec.engine);
  json.key("ns").begin_array();
  for (const std::size_t n : spec.ns) json.value(static_cast<std::uint64_t>(n));
  json.end_array();
  json.key("semantics").value(local::to_string(spec.semantics));
  json.key("seed").value(spec.seed);
  if (with_schedule) {
    json.key("schedule").begin_object();
    json.key("max_trials").value(static_cast<std::uint64_t>(spec.schedule.max_trials));
    json.key("min_trials").value(static_cast<std::uint64_t>(spec.schedule.min_trials));
    json.key("batch").value(static_cast<std::uint64_t>(spec.schedule.batch));
    json.key("target_half_width").value(spec.schedule.target_half_width);
    json.key("z").value(spec.schedule.z);
    json.end_object();
  }
  json.key("quantile_probs").begin_array();
  for (const double q : spec.quantile_probs) json.value(q);
  json.end_array();
  json.key("node_profile").value(spec.node_profile);
  json.end_object();
}

}  // namespace

std::string scenario_to_json(const ScenarioSpec& spec) {
  support::JsonWriter json;
  write_scenario_json(json, spec);
  return json.str();
}

void write_scenario_json(support::JsonWriter& json, const ScenarioSpec& spec) {
  write_scenario_block(json, spec, /*with_schedule=*/true);
}

std::string scenario_identity_json(const ScenarioSpec& spec) {
  support::JsonWriter json;
  write_scenario_block(json, spec, /*with_schedule=*/false);
  return json.str();
}

std::string scenario_cache_key(const ScenarioSpec& spec) {
  const std::string identity = scenario_identity_json(spec);
  // FNV-1a, 64-bit: tiny, dependency-free and stable across platforms -
  // the key is a cache address, not a cryptographic commitment (entries
  // verify nothing against it; the identity JSON is what is compared).
  std::uint64_t hash = 14695981039346656037ULL;
  for (const char c : identity) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 1099511628211ULL;
  }
  char hex[17];
  std::snprintf(hex, sizeof hex, "%016llx", static_cast<unsigned long long>(hash));
  return std::string(hex, 16);
}

std::string sweep_report_json(const ScenarioSpec& spec,
                              const std::vector<ScenarioPoint>& points) {
  support::JsonWriter json;
  json.begin_object();
  json.key("avglocal_sweep").value(std::uint64_t{3});
  json.key("scenario");
  write_scenario_json(json, spec);
  json.key("points").begin_array();
  for (const auto& sp : points) {
    const auto& p = sp.point;
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(p.n));
    json.key("trials").value(static_cast<std::uint64_t>(p.trials));
    json.key("converged").value(sp.converged);
    json.key("half_width").value(sp.half_width);
    json.key("avg_mean").value(p.avg_mean);
    json.key("avg_sd").value(p.avg_sd);
    json.key("avg_worst").value(p.avg_worst);
    json.key("max_mean").value(p.max_mean);
    json.key("max_worst").value(static_cast<std::uint64_t>(p.max_worst));
    json.key("radius_mean").value(p.radius.mean);
    json.key("radius_max").value(static_cast<std::uint64_t>(p.radius.max));
    json.key("quantile_probs").begin_array();
    for (double q : p.radius.probs) json.value(q);
    json.end_array();
    json.key("quantiles").begin_array();
    for (std::size_t r : p.radius.quantiles) json.value(static_cast<std::uint64_t>(r));
    json.end_array();
    json.key("node_mean_min").value(p.node_mean_min);
    json.key("node_mean_max").value(p.node_mean_max);
    if (!p.node_mean.empty()) {
      json.key("node_mean").begin_array();
      for (double m : p.node_mean) json.value(m);
      json.end_array();
    }
    json.key("edges").value(static_cast<std::uint64_t>(p.edges));
    json.key("edge_avg_mean").value(p.edge_avg_mean);
    json.key("edge_avg_sd").value(p.edge_avg_sd);
    json.key("edge_time_mean").value(p.edge_time.mean);
    json.key("edge_time_max").value(static_cast<std::uint64_t>(p.edge_time.max));
    json.key("edge_quantiles").begin_array();
    for (std::size_t r : p.edge_time.quantiles) json.value(static_cast<std::uint64_t>(r));
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

ScenarioSpec scenario_from_json(const support::JsonValue& value) {
  ScenarioSpec spec;
  spec.family.family = value.at("family").as_string();
  spec.family.params.clear();
  for (const auto& [name, param] : value.at("family_params").members()) {
    spec.family.params.emplace_back(name, param.as_double());
  }
  spec.algorithm = value.at("algorithm").as_string();
  // Pre-engine-routing (shard format v2) scenario blocks have no engine
  // key; leave it empty and let resolve_scenario fill it in.
  const support::JsonValue* engine = value.find("engine");
  spec.engine = engine == nullptr ? "" : engine->as_string();
  spec.ns.clear();
  const support::JsonValue& ns = value.at("ns");
  for (std::size_t i = 0; i < ns.size(); ++i) spec.ns.push_back(ns[i].as_u64());
  spec.semantics = semantics_from_name(value.at("semantics").as_string());
  spec.seed = value.at("seed").as_u64();
  const support::JsonValue& schedule = value.at("schedule");
  spec.schedule.max_trials = schedule.at("max_trials").as_u64();
  spec.schedule.min_trials = schedule.at("min_trials").as_u64();
  spec.schedule.batch = schedule.at("batch").as_u64();
  spec.schedule.target_half_width = schedule.at("target_half_width").as_double();
  spec.schedule.z = schedule.at("z").as_double();
  spec.quantile_probs.clear();
  const support::JsonValue& probs = value.at("quantile_probs");
  for (std::size_t i = 0; i < probs.size(); ++i) spec.quantile_probs.push_back(probs[i].as_double());
  spec.node_profile = value.at("node_profile").as_bool();
  return spec;
}

ScenarioSpec scenario_from_json(std::string_view text) {
  return scenario_from_json(support::parse_json(text));
}

ScenarioResult run_scenario(const ScenarioSpec& spec, const ScenarioExecution& execution) {
  const ResolvedScenario resolved = resolve_scenario(spec);
  const TrialSchedule& schedule = resolved.spec.schedule;

  ScenarioResult result;
  result.spec = resolved.spec;
  result.points.reserve(resolved.spec.ns.size());

  BatchedSweepOptions base = resolved.sweep_options();
  base.batch_size = execution.batch_size;
  base.threads = execution.threads;
  base.pool = execution.pool;
  // One pool for the whole run (SweepPool's sizing rule), whichever engine
  // executes: the view backend shares each point's vertices across the
  // workers, the message backend runs one private engine per worker lane
  // over disjoint trial ranges. Neither changes results (execution knobs
  // never do).
  const SweepPool pool(base);
  const std::unique_ptr<SweepBackend> backend = resolved.make_backend();
  const SweepDriver driver(*backend, base, pool.get());

  for (std::size_t index = 0; index < resolved.spec.ns.size(); ++index) {
    const std::size_t n = resolved.spec.ns[index];
    const graph::Graph g = resolved.graphs(n);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == n, "graph factory size mismatch");

    // The prepared point persists across adaptive rounds: the backend's
    // state - for messages, the arena-backed engine and its topology
    // tables - is built once here, not once per accumulate call. The
    // schedule below is agnostic to which engine fills the exact-integer
    // accumulators.
    SweepDriver::Point prepared = driver.prepare(g, index);

    const std::size_t first =
        schedule.adaptive() ? std::min(schedule.min_trials, schedule.max_trials)
                            : schedule.max_trials;
    PointAccumulator acc = driver.run_trials(prepared, 0, first);

    ScenarioPoint point;
    point.converged = !schedule.adaptive();
    while (schedule.adaptive()) {
      const std::size_t trials = acc.trial_count();
      if (schedule.half_width(partial_avg_sd(acc), trials) <= schedule.target_half_width) {
        point.converged = true;
        break;
      }
      if (trials >= schedule.max_trials) break;
      const std::size_t next = std::min(trials + schedule.batch, schedule.max_trials);
      acc.append(driver.run_trials(prepared, trials, next));
    }

    point.point = finalize_point(acc, resolved.sweep_options(acc.trial_count()));
    point.half_width = schedule.half_width(point.point.avg_sd, acc.trial_count());
    result.points.push_back(std::move(point));
  }
  return result;
}

std::vector<PointAccumulator> run_scenario_shard(const ResolvedScenario& resolved,
                                                 const BatchedSweepOptions& options,
                                                 const SweepShard& shard) {
  AVGLOCAL_EXPECTS(!shard.empty());
  AVGLOCAL_EXPECTS(shard.point_end <= resolved.spec.ns.size());
  AVGLOCAL_EXPECTS(shard.trial_end <= options.trials);

  const std::unique_ptr<SweepBackend> backend = resolved.make_backend();
  const SweepPool pool(options);
  const SweepDriver driver(*backend, options, pool.get());

  std::vector<PointAccumulator> partials;
  partials.reserve(shard.point_end - shard.point_begin);
  for (std::size_t point = shard.point_begin; point < shard.point_end; ++point) {
    const std::size_t n = resolved.spec.ns[point];
    const graph::Graph g = resolved.graphs(n);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == n, "graph factory size mismatch");
    SweepDriver::Point prepared = driver.prepare(g, point);
    partials.push_back(driver.run_trials(prepared, shard.trial_begin, shard.trial_end));
  }
  return partials;
}

SweepPlanMeta scenario_plan_meta(const ResolvedScenario& resolved) {
  SweepPlanMeta meta = SweepPlanMeta::from_options(resolved.spec.ns, resolved.sweep_options());
  meta.algorithm = resolved.spec.algorithm;
  meta.graph = graph::family_spec_to_string(resolved.spec.family);
  meta.scenario = scenario_to_json(resolved.spec);
  meta.engine = resolved.spec.engine;
  return meta;
}

}  // namespace avglocal::core
