#include "core/runner.hpp"

#include <atomic>
#include <thread>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace avglocal::core {

Measurement run_assignment(const graph::Graph& g, const graph::IdAssignment& ids,
                           const local::ViewAlgorithmFactory& algorithm,
                           local::ViewSemantics semantics) {
  local::ViewEngineOptions options;
  options.semantics = semantics;
  return measure(local::run_views(g, ids, algorithm, options));
}

std::vector<SweepPoint> run_random_sweep(const std::vector<std::size_t>& ns,
                                         const GraphFactory& graphs,
                                         const local::ViewAlgorithmFactory& algorithm,
                                         const SweepOptions& options) {
  AVGLOCAL_EXPECTS(options.trials >= 1);
  std::size_t workers = options.threads;
  if (workers == 0) {
    workers = std::max(1u, std::thread::hardware_concurrency());
  }
  std::vector<SweepPoint> points;
  points.reserve(ns.size());
  for (std::size_t point_index = 0; point_index < ns.size(); ++point_index) {
    const std::size_t n = ns[point_index];
    const graph::Graph g = graphs(n);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == n, "graph factory size mismatch");

    std::vector<Measurement> results(options.trials);
    std::atomic<std::size_t> next{0};
    const auto worker = [&]() {
      while (true) {
        const std::size_t trial = next.fetch_add(1);
        if (trial >= options.trials) return;
        // Seed derived from (seed, point, trial): deterministic regardless
        // of which thread runs which trial.
        support::Xoshiro256 rng(
            support::derive_seed(options.seed, point_index * 1'000'003 + trial));
        const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
        results[trial] = run_assignment(g, ids, algorithm, options.semantics);
      }
    };
    std::vector<std::thread> threads;
    const std::size_t spawn = std::min(workers, options.trials);
    threads.reserve(spawn);
    for (std::size_t t = 0; t < spawn; ++t) threads.emplace_back(worker);
    for (auto& t : threads) t.join();

    support::RunningStats avg_stats;
    support::RunningStats max_stats;
    SweepPoint point;
    point.n = n;
    point.trials = options.trials;
    for (const Measurement& m : results) {
      avg_stats.add(m.avg_radius);
      max_stats.add(static_cast<double>(m.max_radius));
      point.max_worst = std::max(point.max_worst, m.max_radius);
    }
    point.avg_mean = avg_stats.mean();
    point.avg_sd = avg_stats.stddev();
    point.avg_worst = avg_stats.max();
    point.max_mean = max_stats.mean();
    points.push_back(point);
  }
  return points;
}

}  // namespace avglocal::core
