#include "core/runner.hpp"

#include <algorithm>
#include <memory>
#include <thread>

#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace avglocal::core {

Measurement run_assignment(const graph::Graph& g, const graph::IdAssignment& ids,
                           const local::ViewAlgorithmFactory& algorithm,
                           local::ViewSemantics semantics) {
  local::ViewEngineOptions options;
  options.semantics = semantics;
  return measure(local::run_views(g, ids, algorithm, options));
}

std::vector<SweepPoint> run_random_sweep(const std::vector<std::size_t>& ns,
                                         const GraphFactory& graphs,
                                         const local::ViewAlgorithmFactory& algorithm,
                                         const SweepOptions& options) {
  AVGLOCAL_EXPECTS(options.trials >= 1);

  // One pool for the whole sweep: workers outlive every point, so threads
  // are created exactly once no matter how many sizes are measured. An
  // explicit thread count is honoured exactly (see SweepOptions::threads);
  // only the default is capped at `trials`, the most this trial-parallel
  // sweep can use.
  std::unique_ptr<support::ThreadPool> owned_pool;
  support::ThreadPool* pool = options.pool;
  if (pool == nullptr) {
    const std::size_t workers =
        options.threads != 0
            ? options.threads
            : std::min(std::max<std::size_t>(1, std::thread::hardware_concurrency()),
                       options.trials);
    owned_pool = std::make_unique<support::ThreadPool>(workers);
    pool = owned_pool.get();
  }

  std::vector<SweepPoint> points;
  points.reserve(ns.size());
  for (std::size_t point_index = 0; point_index < ns.size(); ++point_index) {
    const std::size_t n = ns[point_index];
    const graph::Graph g = graphs(n);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == n, "graph factory size mismatch");

    // Trials are embarrassingly parallel, so the pool sweeps trials and each
    // trial runs the view engine serially (per-worker grower reuse happens
    // inside run_views). Seeds derive from (seed, point, trial) by nested
    // mixing - streams never alias across points at any trial count - so
    // results are identical for every pool size and schedule.
    std::vector<Measurement> results(options.trials);
    const std::uint64_t point_seed = support::derive_seed(options.seed, point_index);
    pool->for_range(options.trials, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t trial = begin; trial < end; ++trial) {
        support::Xoshiro256 rng(support::derive_seed(point_seed, trial));
        const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
        results[trial] = run_assignment(g, ids, algorithm, options.semantics);
      }
    });

    support::RunningStats avg_stats;
    support::RunningStats max_stats;
    SweepPoint point;
    point.n = n;
    point.trials = options.trials;
    for (const Measurement& m : results) {
      avg_stats.add(m.avg_radius);
      max_stats.add(static_cast<double>(m.max_radius));
      point.max_worst = std::max(point.max_worst, m.max_radius);
    }
    point.avg_mean = avg_stats.mean();
    point.avg_sd = avg_stats.stddev();
    point.avg_worst = avg_stats.max();
    point.max_mean = max_stats.mean();
    points.push_back(point);
  }
  return points;
}

}  // namespace avglocal::core
