#include "core/message_sweep.hpp"

#include "core/sweep_driver.hpp"

namespace avglocal::core {

PointAccumulator accumulate_message_point(const graph::Graph& g, std::size_t point_index,
                                          const local::AlgorithmFactory& algorithm,
                                          const MessageEngineOptions& engine,
                                          const BatchedSweepOptions& options,
                                          std::size_t trial_begin, std::size_t trial_end) {
  // Thin shim over the engine-agnostic driver (core/sweep_driver.hpp),
  // deliberately serial like the pre-driver entry point: callers wanting
  // pooled trial ranges or a persistent engine across calls hold a
  // SweepDriver (and its prepared Point) themselves.
  const MessageBackend backend([&algorithm](std::size_t) { return algorithm; }, engine);
  SweepDriver driver(backend, options, nullptr);
  SweepDriver::Point point = driver.prepare(g, point_index);
  return driver.run_trials(point, trial_begin, trial_end);
}

std::vector<BatchedSweepPoint> run_message_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const MessageAlgorithmProvider& algorithms,
                                                 const MessageEngineOptions& engine,
                                                 const BatchedSweepOptions& options) {
  const MessageBackend backend(algorithms, engine);
  const SweepPool pool(options);
  return SweepDriver(backend, options, pool.get()).run(ns, graphs);
}

}  // namespace avglocal::core
