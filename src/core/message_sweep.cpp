#include "core/message_sweep.hpp"

#include <algorithm>

#include "graph/ids.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"

namespace avglocal::core {

PointAccumulator accumulate_message_point(const graph::Graph& g, std::size_t point_index,
                                          const local::AlgorithmFactory& algorithm,
                                          const MessageEngineOptions& engine,
                                          const BatchedSweepOptions& options,
                                          std::size_t trial_begin, std::size_t trial_end) {
  PointAccumulator acc = make_point_accumulator(g, point_index, trial_begin, trial_end);
  const std::size_t n = g.vertex_count();
  const std::size_t total = trial_end - trial_begin;

  const std::uint64_t point_seed = support::derive_seed(options.seed, point_index);
  const std::size_t batch_cap =
      options.batch_size == 0 ? total : std::min(options.batch_size, total);

  local::EngineOptions engine_options;
  engine_options.knowledge = engine.knowledge;
  engine_options.max_rounds = engine.max_rounds;

  const auto edge_list = canonical_edges(g);
  std::vector<std::uint32_t> radius_matrix(batch_cap * n);
  std::vector<std::uint64_t> edge_counts;

  std::vector<graph::IdAssignment> batch;
  batch.reserve(batch_cap);
  for (std::size_t batch_begin = 0; batch_begin < total; batch_begin += batch_cap) {
    const std::size_t batch_size = std::min(batch_cap, total - batch_begin);
    // fill_sweep_batch is what guarantees a message sweep and a view sweep
    // of one scenario run the same id permutations trial by trial.
    fill_sweep_batch(batch, n, point_seed, trial_begin + batch_begin, batch_size);

    local::run_messages_batch(
        g, batch, algorithm, engine_options,
        [&](std::size_t trial, graph::Vertex v, std::int64_t /*output*/, std::size_t radius) {
          const auto r = static_cast<std::uint64_t>(radius);
          acc.trial_sum[batch_begin + trial] += r;
          acc.trial_max[batch_begin + trial] = std::max(acc.trial_max[batch_begin + trial], r);
          acc.histogram.add(radius);
          acc.node_sum[v] += r;
          radius_matrix[trial * n + v] = static_cast<std::uint32_t>(radius);
        });

    accumulate_edge_partials(edge_list, radius_matrix, batch_begin, batch_size, acc, edge_counts);
  }
  acc.edge_histogram = local::RadiusHistogram(std::move(edge_counts));
  return acc;
}

std::vector<BatchedSweepPoint> run_message_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const MessageAlgorithmProvider& algorithms,
                                                 const MessageEngineOptions& engine,
                                                 const BatchedSweepOptions& options) {
  AVGLOCAL_EXPECTS(options.trials >= 1);
  std::vector<BatchedSweepPoint> points;
  points.reserve(ns.size());
  for (std::size_t point_index = 0; point_index < ns.size(); ++point_index) {
    const graph::Graph g = graphs(ns[point_index]);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == ns[point_index], "graph factory size mismatch");
    const PointAccumulator acc = accumulate_message_point(
        g, point_index, algorithms(ns[point_index]), engine, options, 0, options.trials);
    points.push_back(finalize_point(acc, options));
  }
  return points;
}

}  // namespace avglocal::core
