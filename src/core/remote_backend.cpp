#include "core/remote_backend.hpp"

#include <utility>
#include <vector>

namespace avglocal::core {

RemoteBackend::RemoteBackend(const ScenarioSpec& spec, const FabricOptions& options)
    : resolved_(resolve_scenario(spec)), coordinator_(resolved_, options) {}

void RemoteBackend::start() { coordinator_.start(); }

RemoteSweepOutcome RemoteBackend::run(ResultCache* cache) {
  coordinator_.run();

  RemoteSweepOutcome outcome;
  outcome.stats = coordinator_.stats();
  outcome.complete = coordinator_.complete();
  if (!outcome.complete) return outcome;  // drained before the last unit

  std::vector<PointAccumulator> merged = merge_unit_results(
      coordinator_.work_units(), coordinator_.take_unit_results(), resolved_.spec.ns.size());

  // Finalize exactly as run_scenario does: floats appear only here, in
  // global trial order, so the report below matches the monolithic one
  // byte for byte.
  const TrialSchedule& schedule = resolved_.spec.schedule;
  outcome.result.spec = resolved_.spec;
  outcome.result.points.reserve(merged.size());
  for (const PointAccumulator& acc : merged) {
    ScenarioPoint point;
    point.converged = true;  // fixed schedules always run to their count
    point.point = finalize_point(acc, resolved_.sweep_options(acc.trial_count()));
    point.half_width = schedule.half_width(point.point.avg_sd, acc.trial_count());
    outcome.result.points.push_back(std::move(point));
  }
  outcome.report = sweep_report_json(outcome.result.spec, outcome.result.points);

  if (cache != nullptr) {
    // Remote-computed partials are as good as local ones: land them in
    // the resident cache so follow-up requests for this workload are warm.
    cache->offer_partials(resolved_.spec, std::move(merged));
  }
  return outcome;
}

}  // namespace avglocal::core
