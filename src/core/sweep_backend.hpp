// The engine-agnostic sweep backend interface.
//
// The paper's average-complexity measures are engine-independent: node- and
// edge-averaged statistics (arXiv:1704.05739, arXiv:2208.08213) come out of
// the same exact-integer PointAccumulators whether trials run through the
// view engine or the message engine. A SweepBackend is the one seam where
// the engines differ: it prepares identifier-independent per-point state
// (ball geometry caches, arena-backed engines, per-size algorithm
// factories) and runs batches of id-assignments into an accumulator. All
// the engine-independent machinery - deriving (seed, point, trial) streams,
// batching, the thread pool, splitting trial ranges across workers, merging
// partials, edge-time accumulation - lives in core::SweepDriver
// (core/sweep_driver.hpp), written once for every backend.
//
// Contract for implementations:
//  * prepare(g, point) may cache anything derived from the graph and the
//    point index, never from identifiers: the driver reuses the state
//    across batches, adaptive rounds and sharded trial ranges, and results
//    must be bit-identical to a fresh state per call (the conformance suite
//    in tests/test_sweep_backend.cpp pins this against the golden corpus).
//  * run_batch fills acc.trial_sum/trial_max/histogram/node_sum for trials
//    [batch_begin, batch_begin + batch.size()) of the accumulator's range,
//    and writes every radius into radius_matrix[t * n + v]; the driver
//    derives the edge measures from the matrix. All writes are exact
//    integers, so partials merge bit-identically in any arrangement.
//  * A prepared state is confined to one worker at a time; parallelism
//    across a state is declared via parallel_granularity and orchestrated
//    by the driver, never improvised by the backend.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string_view>

#include "core/batched_sweep.hpp"
#include "core/memory_model.hpp"
#include "core/message_sweep.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::core {

/// Identifier-independent state a backend prepares once per (graph, point)
/// and reuses across every trial range the driver runs through it.
class BackendPointState {
 public:
  virtual ~BackendPointState() = default;
};

class SweepBackend {
 public:
  /// How the driver may parallelise one point's trial range:
  ///  * kVertices: one run_batch call shares its vertices across the pool
  ///    (the view engine parallelises internally; the driver passes the
  ///    pool through);
  ///  * kTrials: runs are inherently sequential over a state (message
  ///    engine: all nodes of a run interact through the arenas), so the
  ///    driver splits the trial range into contiguous chunks, runs each on
  ///    a private per-lane state, and appends the partials in trial order.
  enum class Granularity { kVertices, kTrials };

  virtual ~SweepBackend() = default;

  /// Engine label as carried by ScenarioSpec::engine and shard artefact
  /// metas: "view" or "message".
  virtual std::string_view name() const noexcept = 0;

  /// True when one prepared state amortises warm-up across a whole batch of
  /// assignments (both bundled backends do; a hypothetical subprocess or
  /// remote backend would not).
  virtual bool supports_batching() const noexcept = 0;

  virtual Granularity parallel_granularity() const noexcept = 0;

  /// Builds the per-point state for point `point_index` on `g`. Called by
  /// the driver once per (point, worker lane), never per batch or round,
  /// and always on the driver's calling thread - so algorithm providers
  /// need not be safe to invoke concurrently (run_batch, by contrast, may
  /// execute on pool workers, and view factories are invoked from workers
  /// exactly as documented on ViewEngineOptions::pool).
  virtual std::unique_ptr<BackendPointState> prepare(const graph::Graph& g,
                                                     std::size_t point_index) const = 0;

  /// Runs the id-assignments of `batch` (trials [batch_begin,
  /// batch_begin + batch.size()) of acc's range) through `state`. `pool` is
  /// non-null only for kVertices backends; radius_matrix holds at least
  /// batch.size() * n entries.
  virtual void run_batch(BackendPointState& state, std::span<const graph::IdAssignment> batch,
                         std::size_t batch_begin, support::ThreadPool* pool,
                         PointAccumulator& acc, std::span<std::uint32_t> radius_matrix) const = 0;

  /// Resident-footprint model of one lane sweeping `g` through this
  /// backend (driver-owned buffers included). SweepDriver inverts it to
  /// derive batch widths from BatchedSweepOptions::memory_budget_bytes;
  /// tests and the bench assert real alloc-hook bytes stay inside it.
  virtual SweepMemoryModel memory_model(const graph::Graph& g) const noexcept = 0;
};

/// The ball-formulation backend, wrapping local::run_views_batched: ball
/// geometry is grown once per vertex and replayed per assignment, and one
/// call parallelises over vertices (Granularity::kVertices).
class ViewBackend final : public SweepBackend {
 public:
  /// `layer_jump` toggles the engine's min_radius layer-jump (see
  /// local::ViewEngineOptions::layer_jump); outputs are bit-identical
  /// either way - the off position exists so tests can pin byte-identical
  /// shard artefacts across the toggle.
  ViewBackend(AlgorithmProvider algorithms,
              local::ViewSemantics semantics = local::ViewSemantics::kInducedBall,
              bool layer_jump = true);

  std::string_view name() const noexcept override { return "view"; }
  bool supports_batching() const noexcept override { return true; }
  Granularity parallel_granularity() const noexcept override { return Granularity::kVertices; }
  std::unique_ptr<BackendPointState> prepare(const graph::Graph& g,
                                             std::size_t point_index) const override;
  void run_batch(BackendPointState& state, std::span<const graph::IdAssignment> batch,
                 std::size_t batch_begin, support::ThreadPool* pool, PointAccumulator& acc,
                 std::span<std::uint32_t> radius_matrix) const override;
  SweepMemoryModel memory_model(const graph::Graph& g) const noexcept override;

 private:
  AlgorithmProvider algorithms_;
  local::ViewSemantics semantics_;
  bool layer_jump_;
};

/// The message-formulation backend, wrapping a persistent
/// local::MessageBatchRunner per prepared state: topology tables and arenas
/// are built once per (point, lane) and rebound per assignment, surviving
/// adaptive rounds. Runs are sequential over a state
/// (Granularity::kTrials), so the driver parallelises by giving each pool
/// worker lane its own engine over a disjoint trial range.
class MessageBackend final : public SweepBackend {
 public:
  MessageBackend(MessageAlgorithmProvider algorithms, MessageEngineOptions engine = {});

  std::string_view name() const noexcept override { return "message"; }
  bool supports_batching() const noexcept override { return true; }
  Granularity parallel_granularity() const noexcept override { return Granularity::kTrials; }
  std::unique_ptr<BackendPointState> prepare(const graph::Graph& g,
                                             std::size_t point_index) const override;
  void run_batch(BackendPointState& state, std::span<const graph::IdAssignment> batch,
                 std::size_t batch_begin, support::ThreadPool* pool, PointAccumulator& acc,
                 std::span<std::uint32_t> radius_matrix) const override;
  SweepMemoryModel memory_model(const graph::Graph& g) const noexcept override;

 private:
  MessageAlgorithmProvider algorithms_;
  MessageEngineOptions engine_;
};

}  // namespace avglocal::core
