// The fabric's driver seam: RemoteBackend sits where SweepDriver sits for
// local execution, but fills its accumulators from fabric workers instead
// of a thread pool. It owns one FabricCoordinator, runs the coordinator's
// accept loop to completion, recombines the accepted unit results through
// merge_unit_results (unit-id order per point - canonical trial order by
// construction) and finalizes exactly like run_scenario, so the report it
// emits is byte-identical to the monolithic sweep's for any worker count,
// steal order or straggler kill.
//
// Cache integration: pass a ResultCache to run() and the merged exact-
// integer partials are offered to the resident cache under the sweep's
// identity - a later `sweep` request for the same workload (same or fewer
// trials; extensions compute only the tail) is served warm, exactly as if
// the trials had been computed locally.
#pragma once

#include <string>

#include "core/fabric.hpp"
#include "core/result_cache.hpp"
#include "core/scenario.hpp"

namespace avglocal::core {

/// One fabric-driven sweep: the finalized result plus how it was produced.
struct RemoteSweepOutcome {
  ScenarioResult result;  ///< canonical spec + finalized points
  std::string report;     ///< sweep report JSON, byte-identical to run_scenario's
  FabricStats stats;
  /// False when the run was stopped (SIGTERM drain) before every unit was
  /// accepted - result/report are empty then.
  bool complete = false;
};

class RemoteBackend {
 public:
  /// Resolves the spec (throws std::invalid_argument like run_scenario;
  /// adaptive schedules are rejected - the fabric pre-plans trial ranges).
  RemoteBackend(const ScenarioSpec& spec, const FabricOptions& options);

  /// Binds the coordinator's listener; endpoint() is resolved after this.
  void start();

  const support::Endpoint& endpoint() const noexcept { return coordinator_.endpoint(); }
  FabricCoordinator& coordinator() noexcept { return coordinator_; }

  /// Async-signal-safe stop request, forwarded to the coordinator.
  void request_stop() noexcept { coordinator_.request_stop(); }

  /// Runs the coordinator until the sweep completes (or a stop drains it),
  /// merges and finalizes. With a non-null `cache`, complete runs also
  /// land their merged partials in the resident cache.
  RemoteSweepOutcome run(ResultCache* cache = nullptr);

 private:
  ResolvedScenario resolved_;
  FabricCoordinator coordinator_;
};

}  // namespace avglocal::core
