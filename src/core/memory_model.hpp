// The bytes-per-trial model behind memory-budgeted batching.
//
// A sweep lane's resident footprint is affine in its batch width: a fixed
// part (edge lists, ball scratch, engine arenas - whatever one lane keeps
// alive regardless of how many assignments are in flight) plus a per-trial
// part (the id buffer, the radius-matrix row, and for the lockstep view
// engine the transpose row and worst-case spill). Each backend reports its
// model through SweepBackend::memory_model; SweepDriver inverts it to pick
// the widest batch that keeps `lanes` concurrent lanes inside
// BatchedSweepOptions::memory_budget_bytes.
//
// The model is a prediction, not an accounting identity - allocator
// rounding and growth slack sit on top - so it is validated where it can
// be measured: tests and bench_regression run a budgeted sweep under the
// alloc hook and assert the observed bytes stay within the predicted
// envelope. Batch width never changes results (driver contract), so a
// budget-derived width is automatically bit-identical to any other.
#pragma once

#include <cstddef>

namespace avglocal::core {

/// Affine footprint model of one sweep lane: predicted resident bytes for
/// batch width b are fixed_bytes + b * bytes_per_trial.
struct SweepMemoryModel {
  std::size_t fixed_bytes = 0;      ///< per lane, batch-width independent
  std::size_t bytes_per_trial = 0;  ///< per resident id-assignment

  /// Predicted resident bytes of one lane running `batch_width` trials.
  std::size_t predicted_lane_bytes(std::size_t batch_width) const noexcept {
    return fixed_bytes + batch_width * bytes_per_trial;
  }

  /// Widest batch keeping `lanes` concurrent lanes inside `budget_bytes`.
  /// Never returns 0: one resident trial per lane is the floor below which
  /// a sweep cannot run at all - a budget that cannot even cover that is
  /// reported as 1 and caught by the runtime envelope check, not by a
  /// silent refusal to sweep.
  std::size_t max_batch(std::size_t budget_bytes, std::size_t lanes) const noexcept {
    const std::size_t share = budget_bytes / (lanes == 0 ? 1 : lanes);
    if (bytes_per_trial == 0 || share <= fixed_bytes) return 1;
    const std::size_t width = (share - fixed_bytes) / bytes_per_trial;
    return width == 0 ? 1 : width;
  }
};

}  // namespace avglocal::core
