// The engine-agnostic sweep driver: one implementation of everything a
// sweep does besides running the engine.
//
// SweepDriver owns the pieces both engines used to duplicate:
//  * the (seed, point, trial) id streams (fill_sweep_batch is called here
//    and only here, so a view sweep and a message sweep of one scenario
//    run identical permutations trial by trial);
//  * batching (BatchedSweepOptions::batch_size bounds resident
//    assignments and the radius matrix, never results);
//  * the thread pool: kVertices backends get the pool passed into each
//    run_batch call (the view engine shares vertices across workers);
//    kTrials backends are parallelised by the driver itself - the trial
//    range splits into contiguous near-equal chunks, each chunk runs on a
//    private per-lane backend state (one arena-backed engine per lane),
//    and the partial accumulators append in trial order. Exact-integer
//    accumulators make the merge bit-identical to the serial path for
//    every pool size (conformance- and CI-pinned);
//  * edge-time accumulation over the canonical edge list and the final
//    histogram conversion;
//  * accumulator shaping and merging.
//
// Points are prepared once and reused: SweepDriver::Point carries the
// backend's prepared state (for the message backend: the engine, with its
// topology tables and arenas), the canonical edge list and all scratch
// buffers across run_trials calls, so adaptive TrialSchedule rounds stop
// rebuilding the world per batch of trials.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "core/sweep_backend.hpp"

namespace avglocal::core {

/// Resolves the worker pool a sweep call should use: `options.pool` when
/// set, else an owned pool of options.threads workers (0 = hardware
/// concurrency). Shared by every sweep entry point so pool sizing rules
/// cannot drift between them.
class SweepPool {
 public:
  explicit SweepPool(const BatchedSweepOptions& options);
  support::ThreadPool* get() const noexcept { return pool_; }

 private:
  std::unique_ptr<support::ThreadPool> owned_;
  support::ThreadPool* pool_ = nullptr;
};

class SweepDriver {
 public:
  /// `backend` is not owned and must outlive the driver. `pool` may be
  /// null (serial); execution knobs never change results.
  SweepDriver(const SweepBackend& backend, BatchedSweepOptions options,
              support::ThreadPool* pool = nullptr);

  /// Prepared per-point state, reusable across run_trials calls (adaptive
  /// rounds, shard ranges). Holds the backend state per worker lane, the
  /// canonical edge list and reusable scratch; the graph must outlive it.
  class Point {
   public:
    Point() = default;
    Point(Point&&) noexcept = default;
    Point& operator=(Point&&) noexcept = default;

   private:
    friend class SweepDriver;
    struct Lane {
      std::unique_ptr<BackendPointState> state;
      std::vector<graph::IdAssignment> batch;
      std::vector<std::uint32_t> radius_matrix;
      std::vector<std::uint64_t> edge_counts;
      EdgeAccumScratch edge_scratch;  // SoA edge arrays for edge_times_u32
    };
    const SweepBackend* backend_ = nullptr;  // who prepared the lane states
    const graph::Graph* g_ = nullptr;
    std::size_t point_index_ = 0;
    std::uint64_t point_seed_ = 0;
    std::vector<std::pair<graph::Vertex, graph::Vertex>> edge_list_;
    std::vector<Lane> lanes_;  // lane = trial-chunk slot; [0] serves serial runs
  };

  Point prepare(const graph::Graph& g, std::size_t point_index) const;

  /// Runs global trials [trial_begin, trial_end) of the prepared point and
  /// returns exact partials, bit-identical for every pool size, batch
  /// width and call pattern (one call or appended sub-ranges).
  PointAccumulator run_trials(Point& point, std::size_t trial_begin,
                              std::size_t trial_end) const;

  /// Whole-sweep convenience: options.trials trials of every size through
  /// prepare + run_trials + finalize_point.
  std::vector<BatchedSweepPoint> run(const std::vector<std::size_t>& ns,
                                     const GraphFactory& graphs) const;

  const BatchedSweepOptions& options() const noexcept { return options_; }
  const SweepBackend& backend() const noexcept { return *backend_; }

 private:
  /// `concurrent_lanes` is how many lanes share the point's memory budget
  /// at this moment (1 serial / kVertices, the chunk count for a kTrials
  /// split) - the divisor of SweepMemoryModel::max_batch.
  PointAccumulator run_lane(Point& point, std::size_t lane_index, std::size_t trial_begin,
                            std::size_t trial_end, support::ThreadPool* vertex_pool,
                            std::size_t concurrent_lanes) const;

  const SweepBackend* backend_;
  BatchedSweepOptions options_;
  support::ThreadPool* pool_;
};

}  // namespace avglocal::core
