#include "core/sweep_driver.hpp"

#include <algorithm>
#include <thread>
#include <utility>

#include "support/assert.hpp"
#include "support/rng.hpp"

namespace avglocal::core {

SweepPool::SweepPool(const BatchedSweepOptions& options) {
  if (options.pool != nullptr) {
    pool_ = options.pool;
    return;
  }
  const std::size_t workers = options.threads != 0
                                  ? options.threads
                                  : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  owned_ = std::make_unique<support::ThreadPool>(workers);
  pool_ = owned_.get();
}

SweepDriver::SweepDriver(const SweepBackend& backend, BatchedSweepOptions options,
                         support::ThreadPool* pool)
    : backend_(&backend), options_(std::move(options)), pool_(pool) {}

SweepDriver::Point SweepDriver::prepare(const graph::Graph& g, std::size_t point_index) const {
  AVGLOCAL_EXPECTS(g.vertex_count() > 0);
  Point point;
  point.backend_ = backend_;
  point.g_ = &g;
  point.point_index_ = point_index;
  point.point_seed_ = support::derive_seed(options_.seed, point_index);
  point.edge_list_ = canonical_edges(g);
  return point;
}

PointAccumulator SweepDriver::run_lane(Point& point, std::size_t lane_index,
                                       std::size_t trial_begin, std::size_t trial_end,
                                       support::ThreadPool* vertex_pool,
                                       std::size_t concurrent_lanes) const {
  Point::Lane& lane = point.lanes_[lane_index];
  // Lazy lane warm-up: the backend state (for messages: the arena-backed
  // engine) is built on first touch and survives every later call through
  // this lane - adaptive rounds included.
  if (lane.state == nullptr) lane.state = backend_->prepare(*point.g_, point.point_index_);

  const graph::Graph& g = *point.g_;
  const std::size_t n = g.vertex_count();
  const std::size_t total = trial_end - trial_begin;
  PointAccumulator acc = make_point_accumulator(g, point.point_index_, trial_begin, trial_end);

  std::size_t batch_cap =
      options_.batch_size == 0 ? total : std::min(options_.batch_size, total);
  if (options_.memory_budget_bytes != 0) {
    // Budgeted batching: the backend's bytes-per-trial model, inverted for
    // the widest batch that keeps every concurrent lane inside the budget.
    // Purely a width clamp - results are batch-width independent.
    const SweepMemoryModel model = backend_->memory_model(g);
    batch_cap = std::min(batch_cap,
                         model.max_batch(options_.memory_budget_bytes, concurrent_lanes));
  }
  if (lane.radius_matrix.size() < batch_cap * n) lane.radius_matrix.resize(batch_cap * n);
  lane.batch.reserve(batch_cap);
  lane.edge_counts.clear();

  for (std::size_t batch_begin = 0; batch_begin < total; batch_begin += batch_cap) {
    const std::size_t batch_size = std::min(batch_cap, total - batch_begin);
    // fill_sweep_batch is THE definition of the sweep's id streams: every
    // backend sees the same (seed, point, trial) permutations.
    fill_sweep_batch(lane.batch, n, point.point_seed_, trial_begin + batch_begin, batch_size);
    backend_->run_batch(*lane.state, lane.batch, batch_begin, vertex_pool, acc,
                        lane.radius_matrix);
    accumulate_edge_partials(point.edge_list_, lane.radius_matrix, batch_begin, batch_size, acc,
                             lane.edge_counts, lane.edge_scratch);
  }
  acc.edge_histogram = local::RadiusHistogram(std::move(lane.edge_counts));
  lane.edge_counts.clear();  // moved-from; leave it well-defined for the next call
  return acc;
}

PointAccumulator SweepDriver::run_trials(Point& point, std::size_t trial_begin,
                                         std::size_t trial_end) const {
  AVGLOCAL_EXPECTS(point.g_ != nullptr);
  // Lane states are backend-specific (run_batch downcasts them); a Point
  // prepared by a driver over a different backend must be rejected here,
  // not discovered as undefined behaviour inside the cast.
  AVGLOCAL_EXPECTS_MSG(point.backend_ == backend_,
                       "SweepDriver::Point used with a different backend than prepared it");
  AVGLOCAL_EXPECTS(trial_begin < trial_end);
  const std::size_t total = trial_end - trial_begin;

  const bool split_trials = backend_->parallel_granularity() == SweepBackend::Granularity::kTrials &&
                            pool_ != nullptr && pool_->size() > 1 && total > 1;
  if (!split_trials) {
    const bool share_vertices =
        backend_->parallel_granularity() == SweepBackend::Granularity::kVertices;
    if (point.lanes_.empty()) point.lanes_.resize(1);
    return run_lane(point, 0, trial_begin, trial_end, share_vertices ? pool_ : nullptr, 1);
  }

  // Parallel trial split: contiguous near-equal chunks (the first
  // total % chunks take one extra trial), one private lane - and hence one
  // private engine - per chunk, partials appended in trial order. Every
  // trial's stream derives from (seed, point, trial), so the merged
  // accumulator is bit-identical to the serial path for any worker count.
  const std::size_t chunks = std::min(pool_->size(), total);
  if (point.lanes_.size() < chunks) point.lanes_.resize(chunks);
  // Lane states are prepared on the calling thread, never inside the pool:
  // backend prepare() runs the caller's algorithm provider, which the
  // pre-driver sweep API never required to be thread-safe and which this
  // API does not either (run_batch, by contrast, runs on workers).
  for (std::size_t c = 0; c < chunks; ++c) {
    Point::Lane& lane = point.lanes_[c];
    if (lane.state == nullptr) lane.state = backend_->prepare(*point.g_, point.point_index_);
  }
  const std::size_t base = total / chunks;
  const std::size_t extra = total % chunks;
  std::vector<std::pair<std::size_t, std::size_t>> ranges;
  ranges.reserve(chunks);
  std::size_t begin = trial_begin;
  for (std::size_t c = 0; c < chunks; ++c) {
    const std::size_t size = base + (c < extra ? 1 : 0);
    ranges.emplace_back(begin, begin + size);
    begin += size;
  }

  std::vector<PointAccumulator> partials(chunks);
  pool_->for_range(chunks, 1, [&](std::size_t /*worker*/, std::size_t chunk_begin,
                                  std::size_t chunk_end) {
    for (std::size_t c = chunk_begin; c < chunk_end; ++c) {
      partials[c] = run_lane(point, c, ranges[c].first, ranges[c].second, nullptr, chunks);
    }
  });

  PointAccumulator acc = std::move(partials.front());
  for (std::size_t c = 1; c < chunks; ++c) acc.append(std::move(partials[c]));
  return acc;
}

std::vector<BatchedSweepPoint> SweepDriver::run(const std::vector<std::size_t>& ns,
                                                const GraphFactory& graphs) const {
  AVGLOCAL_EXPECTS(options_.trials >= 1);
  std::vector<BatchedSweepPoint> points;
  points.reserve(ns.size());
  for (std::size_t point_index = 0; point_index < ns.size(); ++point_index) {
    const graph::Graph g = graphs(ns[point_index]);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == ns[point_index], "graph factory size mismatch");
    Point point = prepare(g, point_index);
    const PointAccumulator acc = run_trials(point, 0, options_.trials);
    points.push_back(finalize_point(acc, options_));
  }
  return points;
}

}  // namespace avglocal::core
