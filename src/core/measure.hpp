// The paper's two running-time measures, as values computed from runs.
//
// For an algorithm A, a graph G and an identifier assignment sigma, the run
// produces radii r(v). The classic (worst-case) measure of the run is
// max_v r(v); the paper's average measure is (sum_v r(v)) / n. The
// complexity of A at size n is the maximum of these quantities over sigma
// (and over graphs of size n), which the library approaches by explicit
// adversarial constructions, exhaustive search at small n, and random
// sampling.
#pragma once

#include <cstdint>

#include "local/metrics.hpp"

namespace avglocal::core {

/// Both measures of one run.
struct Measurement {
  std::size_t n = 0;
  std::uint64_t sum_radius = 0;
  std::size_t max_radius = 0;
  double avg_radius = 0.0;
};

/// Extracts the measures from a run result.
Measurement measure(const local::RunResult& run);

/// max / avg: the per-run gap between the two measures (>= 1 whenever some
/// radius is positive).
double measure_gap(const Measurement& m);

}  // namespace avglocal::core
