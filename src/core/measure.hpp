// The paper's two running-time measures, as values computed from runs.
//
// For an algorithm A, a graph G and an identifier assignment sigma, the run
// produces radii r(v). The classic (worst-case) measure of the run is
// max_v r(v); the paper's average measure is (sum_v r(v)) / n. The
// complexity of A at size n is the maximum of these quantities over sigma
// (and over graphs of size n), which the library approaches by explicit
// adversarial constructions, exhaustive search at small n, and random
// sampling.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "local/metrics.hpp"

namespace avglocal::core {

/// Both measures of one run.
struct Measurement {
  std::size_t n = 0;
  std::uint64_t sum_radius = 0;
  std::size_t max_radius = 0;
  double avg_radius = 0.0;
};

/// Extracts the measures from a run result.
Measurement measure(const local::RunResult& run);

/// max / avg: the per-run gap between the two measures (>= 1 whenever some
/// radius is positive).
double measure_gap(const Measurement& m);

/// Summary of the r(v) sample distribution over many runs: the averaged
/// measures of arXiv:1704.05739 (the mean is the node- and ID-averaged
/// radius; quantiles are the percentile profile of an "ordinary" node under
/// an "ordinary" identifier assignment) next to the worst-case tail.
struct RadiusDistribution {
  std::uint64_t samples = 0;
  double mean = 0.0;       ///< E over (vertex, assignment) of r(v)
  std::size_t max = 0;     ///< largest radius in any sample
  std::vector<double> probs;            ///< requested quantile probabilities
  std::vector<std::size_t> quantiles;   ///< quantiles[i] pairs with probs[i]

  friend bool operator==(const RadiusDistribution&, const RadiusDistribution&) = default;
};

/// Extracts the distribution measures from an accumulated histogram.
/// `probs` entries must lie in [0, 1]; quantiles of an empty histogram are
/// all zero.
RadiusDistribution summarize_radius_histogram(const local::RadiusHistogram& histogram,
                                              std::span<const double> probs);

}  // namespace avglocal::core
