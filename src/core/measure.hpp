// The paper's two running-time measures, as values computed from runs.
//
// For an algorithm A, a graph G and an identifier assignment sigma, the run
// produces radii r(v). The classic (worst-case) measure of the run is
// max_v r(v); the paper's average measure is (sum_v r(v)) / n. The
// complexity of A at size n is the maximum of these quantities over sigma
// (and over graphs of size n), which the library approaches by explicit
// adversarial constructions, exhaustive search at small n, and random
// sampling.
//
// Alongside the node-averaged family sits the *edge-averaged* family of
// arXiv:2208.08213: an edge e = {u, v} finishes when both endpoints have
// output, at time t(e) = max(r(u), r(v)), and the edge-averaged measure of
// the run is (sum_e t(e)) / m. Edges are enumerated canonically (each
// undirected edge once, by its smaller CSR arc index), so every layer -
// single-run measures, batched sweeps, message sweeps, shard merges -
// counts the exact same multiset of edge times.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "local/metrics.hpp"
#include "support/annotations.hpp"

namespace avglocal::core {

/// Both measures of one run.
struct Measurement {
  std::size_t n = 0;
  std::uint64_t sum_radius = 0;
  std::size_t max_radius = 0;
  double avg_radius = 0.0;
};

/// Extracts the measures from a run result.
Measurement measure(const local::RunResult& run);

/// max / avg: the per-run gap between the two measures (>= 1 whenever some
/// radius is positive).
double measure_gap(const Measurement& m);

/// Summary of the r(v) sample distribution over many runs: the averaged
/// measures of arXiv:1704.05739 (the mean is the node- and ID-averaged
/// radius; quantiles are the percentile profile of an "ordinary" node under
/// an "ordinary" identifier assignment) next to the worst-case tail.
struct RadiusDistribution {
  std::uint64_t samples = 0;
  double mean = 0.0;       ///< E over (vertex, assignment) of r(v)
  std::size_t max = 0;     ///< largest radius in any sample
  std::vector<double> probs;            ///< requested quantile probabilities
  std::vector<std::size_t> quantiles;   ///< quantiles[i] pairs with probs[i]

  friend bool operator==(const RadiusDistribution&, const RadiusDistribution&) = default;
};

/// Extracts the distribution measures from an accumulated histogram.
/// `probs` entries must lie in [0, 1]; quantiles of an empty histogram are
/// all zero.
RadiusDistribution summarize_radius_histogram(const local::RadiusHistogram& histogram,
                                              std::span<const double> probs);

/// The edge-averaged measures of one run (arXiv:2208.08213).
struct EdgeMeasurement {
  std::size_t edges = 0;
  std::uint64_t sum_time = 0;   ///< sum_e max(r(u), r(v))
  std::size_t max_time = 0;     ///< max_e max(r(u), r(v))
  double avg_time = 0.0;        ///< sum_time / edges (0 on edgeless graphs)
};

/// Computes the edge measures of a radius profile over `g` (radii indexed
/// by vertex, as in RunResult::radii).
EdgeMeasurement measure_edges(const graph::Graph& g, std::span<const std::size_t> radii);

/// The canonical undirected edge list of `g`: each edge {u, v} exactly once,
/// ordered by its smaller directed-arc index. Every edge-measure
/// accumulation walks this order, so histogram and sum partials are
/// reproducible across engines, batches and shards.
std::vector<std::pair<graph::Vertex, graph::Vertex>> canonical_edges(const graph::Graph& g);

/// THE definition of a run's edge times: t(e) = max(radii[u], radii[v])
/// over the canonical edge list, streamed to `sink(t)`; returns sum_e t(e).
/// Every consumer - single-run measures, both sweep engines' accumulators,
/// the oracle tests - goes through this one loop, so the edge convention
/// cannot drift between them. `radii` is indexed by vertex (any integral
/// element type: RunResult profiles are size_t, the sweeps' dense radius
/// matrices uint32).
template <typename Radii, typename Sink>
AVGLOCAL_HOT std::uint64_t for_each_edge_time(
    std::span<const std::pair<graph::Vertex, graph::Vertex>> edges, const Radii& radii,
    Sink&& sink) {
  std::uint64_t sum = 0;
  for (const auto& [v, u] : edges) {
    const auto t = static_cast<std::size_t>(std::max(radii[v], radii[u]));
    sink(t);
    sum += t;
  }
  return sum;
}

/// Adds every edge time of one run into `histogram` and returns their sum.
/// `edges` must come from canonical_edges(g) for the graph that produced
/// the radii. The sweep hot loops use flat count arrays instead (one
/// increment per sample, converted to a histogram once per point) but
/// stream through the same for_each_edge_time.
std::uint64_t accumulate_edge_times(std::span<const std::pair<graph::Vertex, graph::Vertex>> edges,
                                    std::span<const std::size_t> radii,
                                    local::RadiusHistogram& histogram);

}  // namespace avglocal::core
