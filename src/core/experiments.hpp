// The experiment suite: every "table/figure" of the reproduction (E1..E10
// in DESIGN.md), runnable at full bench scale or at smoke-test scale.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "support/table.hpp"

namespace avglocal::core {

/// Output of one experiment: a title, one or more rendered tables, and
/// free-form notes (expected shapes, caveats).
struct ExperimentResult {
  std::string id;
  std::string title;
  std::vector<std::pair<std::string, support::Table>> tables;
  std::vector<std::string> notes;
};

/// Scale knob: 1.0 = the defaults used by the bench binaries; smoke tests
/// run ~0.1 to finish fast. Affects sizes and trial counts, never semantics.
struct ExperimentScale {
  double factor = 1.0;

  /// Scales a size, keeping at least `min_value`.
  std::size_t at_least(std::size_t value, std::size_t min_value) const;
};

ExperimentResult experiment_recurrence_table(const ExperimentScale& scale);      // E1
ExperimentResult experiment_largest_id_gap(const ExperimentScale& scale);        // E2
ExperimentResult experiment_colouring_logstar(const ExperimentScale& scale);     // E3
ExperimentResult experiment_neighbourhood_chi(const ExperimentScale& scale);     // E4
ExperimentResult experiment_adversaries(const ExperimentScale& scale);           // E5
ExperimentResult experiment_exact_small_n(const ExperimentScale& scale);         // E6
ExperimentResult experiment_dynamic_update(const ExperimentScale& scale);        // E7
ExperimentResult experiment_parallel_makespan(const ExperimentScale& scale);     // E8
ExperimentResult experiment_general_graphs(const ExperimentScale& scale);        // E10
ExperimentResult experiment_expected_complexity(const ExperimentScale& scale);   // E11
ExperimentResult experiment_greedy_colouring(const ExperimentScale& scale);      // E12
ExperimentResult experiment_topology_matrix(const ExperimentScale& scale);       // E13
ExperimentResult experiment_message_vs_view(const ExperimentScale& scale);       // E14

/// All experiments in order (E9, engine cross-validation, lives in
/// bench_simulator and the integration tests).
std::vector<std::function<ExperimentResult(const ExperimentScale&)>> all_experiments();

/// Renders an ExperimentResult to markdown.
std::string render(const ExperimentResult& result);

}  // namespace avglocal::core
