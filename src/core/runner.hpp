// Measurement runners: one-shot adversarial runs and multi-trial random
// sweeps (parallelised over trials, deterministic per seed regardless of
// thread schedule).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/measure.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::core {

/// Builds the size-n member of a graph family.
using GraphFactory = std::function<graph::Graph(std::size_t)>;

/// Runs the view algorithm once on an explicit assignment.
Measurement run_assignment(const graph::Graph& g, const graph::IdAssignment& ids,
                           const local::ViewAlgorithmFactory& algorithm,
                           local::ViewSemantics semantics = local::ViewSemantics::kInducedBall);

/// Aggregate of `trials` random-permutation runs at one size.
struct SweepPoint {
  std::size_t n = 0;
  std::size_t trials = 0;
  double avg_mean = 0.0;   ///< mean over trials of the per-run average radius
  double avg_sd = 0.0;     ///< sample sd of the per-run average radius
  double avg_worst = 0.0;  ///< worst per-run average radius observed
  double max_mean = 0.0;   ///< mean over trials of the per-run max radius
  std::size_t max_worst = 0;  ///< worst per-run max radius observed
};

struct SweepOptions {
  std::size_t trials = 32;
  std::uint64_t seed = 42;
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;
  /// Worker threads; ignored when `pool` is set. The sizing rule:
  ///  * 0 (default): min(hardware concurrency, trials) - this sweep
  ///    parallelises over trials only, so more workers than trials would
  ///    idle here;
  ///  * explicit non-zero: honoured exactly, never clamped. Callers sizing
  ///    one pool for a larger workload (e.g. the batched sweep engine,
  ///    which parallelises over vertices and can keep more workers busy
  ///    than one point has trials) must get the count they asked for.
  std::size_t threads = 0;
  /// Optional externally owned worker pool, reused across sweeps. When
  /// nullptr, the sweep creates one pool of `threads` workers up front and
  /// reuses it for every point (threads are never created per point).
  support::ThreadPool* pool = nullptr;
};

/// Runs the algorithm on `trials` uniformly random identifier permutations
/// for each size in `ns` and aggregates both measures.
std::vector<SweepPoint> run_random_sweep(const std::vector<std::size_t>& ns,
                                         const GraphFactory& graphs,
                                         const local::ViewAlgorithmFactory& algorithm,
                                         const SweepOptions& options = {});

}  // namespace avglocal::core
