#include "core/measure.hpp"

namespace avglocal::core {

Measurement measure(const local::RunResult& run) {
  Measurement m;
  m.n = run.radii.size();
  m.sum_radius = run.sum_radius();
  m.max_radius = run.max_radius();
  m.avg_radius = run.average_radius();
  return m;
}

double measure_gap(const Measurement& m) {
  if (m.avg_radius <= 0.0) return 1.0;
  return static_cast<double>(m.max_radius) / m.avg_radius;
}

RadiusDistribution summarize_radius_histogram(const local::RadiusHistogram& histogram,
                                              std::span<const double> probs) {
  RadiusDistribution d;
  d.samples = histogram.samples();
  d.mean = histogram.mean();
  d.max = histogram.max_radius();
  d.probs.assign(probs.begin(), probs.end());
  d.quantiles.reserve(probs.size());
  for (double q : probs) {
    d.quantiles.push_back(histogram.empty() ? 0 : histogram.quantile(q));
  }
  return d;
}

}  // namespace avglocal::core
