#include "core/measure.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace avglocal::core {

Measurement measure(const local::RunResult& run) {
  Measurement m;
  m.n = run.radii.size();
  m.sum_radius = run.sum_radius();
  m.max_radius = run.max_radius();
  m.avg_radius = run.average_radius();
  return m;
}

double measure_gap(const Measurement& m) {
  if (m.avg_radius <= 0.0) return 1.0;
  return static_cast<double>(m.max_radius) / m.avg_radius;
}

RadiusDistribution summarize_radius_histogram(const local::RadiusHistogram& histogram,
                                              std::span<const double> probs) {
  RadiusDistribution d;
  d.samples = histogram.samples();
  d.mean = histogram.mean();
  d.max = histogram.max_radius();
  d.probs.assign(probs.begin(), probs.end());
  d.quantiles.reserve(probs.size());
  for (double q : probs) {
    d.quantiles.push_back(histogram.empty() ? 0 : histogram.quantile(q));
  }
  return d;
}

std::vector<std::pair<graph::Vertex, graph::Vertex>> canonical_edges(const graph::Graph& g) {
  std::vector<std::pair<graph::Vertex, graph::Vertex>> edges;
  edges.reserve(g.edge_count());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    for (std::size_t q = 0; q < g.degree(v); ++q) {
      const graph::Vertex u = g.neighbour(v, q);
      // Take the arc whose index is not larger than its mirror's: exactly
      // one of an edge's two arcs qualifies (a self-loop arc mirrors to
      // itself and also qualifies exactly once).
      if (g.arc_index(v, q) <= g.arc_index(u, g.mirror_port(v, q))) {
        edges.emplace_back(v, u);
      }
    }
  }
  AVGLOCAL_ASSERT(edges.size() == g.edge_count());
  return edges;
}

std::uint64_t accumulate_edge_times(std::span<const std::pair<graph::Vertex, graph::Vertex>> edges,
                                    std::span<const std::size_t> radii,
                                    local::RadiusHistogram& histogram) {
  return for_each_edge_time(edges, radii, [&histogram](std::size_t t) { histogram.add(t); });
}

EdgeMeasurement measure_edges(const graph::Graph& g, std::span<const std::size_t> radii) {
  AVGLOCAL_EXPECTS(radii.size() == g.vertex_count());
  EdgeMeasurement m;
  m.edges = g.edge_count();
  const auto edges = canonical_edges(g);
  m.sum_time = for_each_edge_time(
      edges, radii, [&m](std::size_t t) { m.max_time = std::max(m.max_time, t); });
  m.avg_time = m.edges == 0 ? 0.0
                            : static_cast<double>(m.sum_time) / static_cast<double>(m.edges);
  return m;
}

}  // namespace avglocal::core
