// Sweep-as-a-service: a resident daemon over core::ResultCache.
//
// The server listens on a Unix-domain stream socket and speaks
// newline-delimited JSON - one request object per line, one response
// object per line, in order, per connection. Ops:
//
//   {"op":"ping"}                     -> {"ok":true,"op":"ping"}
//   {"op":"stats"}                    -> {"ok":true,"op":"stats", ...counters}
//   {"op":"shutdown"}                 -> {"ok":true,"op":"shutdown"}, then stop
//   {"op":"sweep","scenario":{...}}   -> {"ok":true,"op":"sweep",
//                                         "key":"<cache key>","warm":bool,
//                                         "trials_computed":N,
//                                         "report":"<full report document>"}
//
// The scenario block is exactly the canonical block sweep reports embed
// (core/scenario.hpp), and the returned report string is byte-identical to
// what `avglocal_cli sweep --json` writes for the same spec - CI compares
// them with cmp. Any malformed line or failed request yields
// {"ok":false,"error":"..."} and the connection stays open.
//
// Concurrency: one handler thread per connection (at most
// ServeOptions::max_clients at once; a connection accepted while every
// slot is taken gets one {"ok":false,"error":"busy"} line and is closed,
// so clients see an explicit reply to retry on, never a silent drop), all
// funnelling into the shared ResultCache, which serialises sweeps
// internally. Shutdown - via the shutdown op or request_stop(),
// which is async-signal-safe for SIGTERM handlers - interrupts the accept
// loop, half-closes idle connections (in-flight responses still flush)
// and joins every handler before run() returns.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/result_cache.hpp"
#include "support/socket.hpp"

namespace avglocal::core {

struct ServeOptions {
  std::string socket_path;
  /// ResultCacheOptions::threads for the shared sweep pool.
  std::size_t threads = 0;
  /// ResultCacheOptions::batch_size for cache-run sweeps.
  std::size_t batch_size = 0;
  /// Concurrent connections served at once; a connection beyond this gets
  /// a {"ok":false,"error":"busy"} reply and is closed.
  std::size_t max_clients = 16;
};

class Server {
 public:
  explicit Server(const ServeOptions& options);
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;
  ~Server();

  /// Binds and listens on options.socket_path. Throws std::runtime_error
  /// when the path is unusable or already served. Separate from run() so
  /// callers can install signal handlers between "the socket exists" and
  /// "requests are being accepted".
  void start();

  /// Accept loop; returns only after a stop request, with every handler
  /// joined and the socket file unlinked.
  void run();

  /// Requests shutdown. Async-signal-safe (an atomic store plus a socket
  /// shutdown()) - this is the SIGTERM handler's one call.
  void request_stop() noexcept;

  bool stopping() const noexcept { return stop_.load(std::memory_order_relaxed); }

  ResultCache& cache() noexcept { return cache_; }

  /// One handled request line. `shutdown` marks the response to a shutdown
  /// op: the handler sends the line, then stops the server.
  struct Reply {
    std::string line;
    bool shutdown = false;
  };

  /// Parses and executes one request line and builds the response line.
  /// Never throws: malformed input becomes an {"ok":false,...} reply.
  /// Public so protocol tests can drive it without a socket.
  Reply handle_request(const std::string& line);

 private:
  /// One connection's lifetime. `fd` mirrors the handler's stream fd while
  /// live so shutdown can half-close blocked readers; `done` flags the
  /// slot for reaping by the accept loop.
  struct ClientSlot {
    std::thread thread;
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
  };

  void serve_connection(support::UnixStream stream, ClientSlot* slot);
  void reap_finished_slots_locked();

  ServeOptions options_;
  ResultCache cache_;
  support::UnixListener listener_;
  std::atomic<bool> stop_{false};

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<ClientSlot>> slots_;
};

}  // namespace avglocal::core
