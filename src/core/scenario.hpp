// The declarative workload layer: one ScenarioSpec names everything a sweep
// needs - graph family (registry key + parameters), view algorithm
// (registry key), semantics, sizes, seed, measure options and a trial
// schedule - and every tool (avglocal_cli run/sweep/drive, experiments,
// benches) consumes the same resolved plumbing instead of re-wiring its own
// factory dispatch.
//
// Resolution is strict and happens before any sweep work: unknown families,
// algorithms or parameters throw std::invalid_argument listing the known
// keys, and requested sizes are snapped to the sizes the family can realise
// exactly (a torus needs a square), so the engine-level contract
// `vertex_count() == n` holds by construction.
//
// The trial schedule is either fixed (run exactly max_trials) or adaptive:
// batches run through the exact-integer accumulators of
// core/batched_sweep.hpp until the half-width of the normal-approximation
// confidence interval around avg_mean closes below a target (or the cap
// hits). Because every trial's stream derives from (seed, point, trial),
// an adaptive run that stops after T trials is bit-identical to a fixed
// T-trial sweep - adaptivity changes how many trials run, never what any
// trial computes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "core/batched_sweep.hpp"
#include "core/message_sweep.hpp"
#include "core/shard.hpp"
#include "graph/family_registry.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace avglocal::core {

class SweepBackend;

/// How many random id-assignments a sweep point runs.
struct TrialSchedule {
  /// Hard cap; with target_half_width == 0 this is the exact trial count.
  std::size_t max_trials = 100;
  /// Adaptive mode: trials run before the first convergence check (>= 2,
  /// one sample has no variance estimate).
  std::size_t min_trials = 16;
  /// Adaptive mode: trials added per round after the first check.
  std::size_t batch = 16;
  /// Target half-width of the confidence interval around avg_mean
  /// (z * sd / sqrt(trials)); 0 disables adaptation.
  double target_half_width = 0.0;
  /// Normal quantile of the interval (1.96 ~ 95%).
  double z = 1.96;

  bool adaptive() const noexcept { return target_half_width > 0.0; }

  /// Half-width of the avg-mean confidence interval after `trials` trials.
  /// The single definition behind convergence decisions, reported points
  /// and reconstructed merge/drive reports - reports recombined from shard
  /// artefacts must be byte-identical to the monolithic run's, so every
  /// consumer must evaluate the exact same expression.
  double half_width(double sd, std::size_t trials) const noexcept;

  friend bool operator==(const TrialSchedule&, const TrialSchedule&) = default;
};

/// A declarative sweep workload. String keys resolve against
/// graph::FamilyRegistry and algo::AlgorithmRegistry; both view and
/// message algorithms are sweepable (the registry kind selects the
/// engine).
struct ScenarioSpec {
  graph::FamilySpec family{"cycle", {}};
  std::string algorithm = "largest-id";
  std::vector<std::size_t> ns = {256};
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;
  std::uint64_t seed = 42;
  TrialSchedule schedule;
  std::vector<double> quantile_probs = {0.5, 0.9, 0.99};
  bool node_profile = false;
  /// Executing engine: "view" or "message". Normally left empty and filled
  /// in by resolve_scenario from the algorithm's registry kind; a non-empty
  /// value is validated against that kind (a precise mismatch error beats a
  /// radii mix-up). Canonical specs always carry it, so artefact scenario
  /// blocks are self-describing about the formulation that produced them.
  std::string engine;

  friend bool operator==(const ScenarioSpec&, const ScenarioSpec&) = default;
};

/// A validated, runnable scenario. `spec` is the canonical form: family
/// parameters resolved to the full declaration-order list (defaults
/// included), sizes snapped to realised sizes (deduplicated, order kept)
/// and the engine filled in, so two specs that describe the same workload
/// resolve to equal - and identically serialised - canonical specs.
///
/// Exactly one of `algorithms` (view engine) and `messages` (message
/// engine) is set, per the algorithm's registry kind.
struct ResolvedScenario {
  ScenarioSpec spec;
  GraphFactory graphs;
  AlgorithmProvider algorithms;          ///< view scenarios only
  MessageAlgorithmProvider messages;     ///< message scenarios only
  MessageEngineOptions message_engine;   ///< knowledge et al. (message only)

  bool is_message() const noexcept { return static_cast<bool>(messages); }

  /// Builds the SweepBackend the spec's engine field names (ViewBackend or
  /// MessageBackend, core/sweep_backend.hpp), ready to drive through a
  /// core::SweepDriver. Every scenario consumer - run_scenario,
  /// run_scenario_shard, the CLI, benches, the conformance tests - runs
  /// sweeps through this one seam.
  std::unique_ptr<SweepBackend> make_backend() const;

  /// Sweep options for a fixed run of `trials` trials (defaults to the
  /// schedule cap; shards and adaptive rounds override the count).
  BatchedSweepOptions sweep_options() const;
  BatchedSweepOptions sweep_options(std::size_t trials) const;
};

/// Validates every registry key and parameter and builds the factories.
/// Throws std::invalid_argument before any graph or engine work happens.
ResolvedScenario resolve_scenario(const ScenarioSpec& spec);

/// Canonical JSON block of a spec (single line, fixed key order). Embedded
/// in sweep reports and shard artefacts so merges reject mismatched
/// workloads by construction; resolve first for a canonical spec.
std::string scenario_to_json(const ScenarioSpec& spec);

/// Emits the same block as one object value of a larger document.
void write_scenario_json(support::JsonWriter& json, const ScenarioSpec& spec);

ScenarioSpec scenario_from_json(const support::JsonValue& value);
ScenarioSpec scenario_from_json(std::string_view text);

/// The workload-identity block: the canonical scenario block minus the
/// trial schedule (same keys, same order, `schedule` omitted). Everything
/// in it changes what any trial computes; nothing in it changes with how
/// many trials are requested. Two requests that differ only in their
/// schedule therefore share an identity - which is exactly what lets the
/// result cache (core/result_cache.hpp) extend a cached exact-integer
/// partial with fresh trials instead of recomputing. Resolve first:
/// identity is only canonical on resolved specs.
std::string scenario_identity_json(const ScenarioSpec& spec);

/// Content-addressable cache key of a scenario: the FNV-1a 64-bit digest
/// of scenario_identity_json in fixed-width lowercase hex. The daemon, the
/// result cache and clients all name cached workloads by this key.
std::string scenario_cache_key(const ScenarioSpec& spec);

/// One sweep point of a scenario run, plus how the schedule ended there.
struct ScenarioPoint {
  BatchedSweepPoint point;
  /// Half-width of the avg_mean confidence interval at the final count.
  double half_width = 0.0;
  /// Adaptive runs: target reached before the cap. Fixed runs: true.
  bool converged = true;
};

struct ScenarioResult {
  ScenarioSpec spec;  ///< canonical spec the run used
  std::vector<ScenarioPoint> points;
};

/// The sweep report document (format v3). Produced identically by the
/// monolithic `sweep`, by `merge`, by `drive` and by the daemon's cache
/// hits, so any two paths that ran the same workload can be compared byte
/// for byte (CI does, with cmp).
std::string sweep_report_json(const ScenarioSpec& spec,
                              const std::vector<ScenarioPoint>& points);

/// Execution knobs that never change results (pinned by the batched-sweep
/// tests): worker pool sizing and engine batch width. Deliberately outside
/// ScenarioSpec - two runs of one scenario on different machines are the
/// same workload.
struct ScenarioExecution {
  /// Worker threads when `pool` is null; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// BatchedSweepOptions::batch_size (memory bound; 0 = whole trial range).
  std::size_t batch_size = 0;
  /// Optional externally owned pool, reused across runs.
  support::ThreadPool* pool = nullptr;
};

/// Runs the scenario monolithically, applying the trial schedule per point.
ScenarioResult run_scenario(const ScenarioSpec& spec, const ScenarioExecution& execution = {});

/// Runs one shard of a resolved scenario through the engine its spec names
/// (the scenario-level counterpart of run_sweep_shard): accumulators for
/// points [shard.point_begin, point_end), trials [trial_begin, trial_end).
/// `options` must come from resolved.sweep_options() (threads/batch may be
/// adjusted; they never change results).
std::vector<PointAccumulator> run_scenario_shard(const ResolvedScenario& resolved,
                                                 const BatchedSweepOptions& options,
                                                 const SweepShard& shard);

/// The plan header a resolved scenario's shard artefacts carry: the
/// numeric plan from sweep_options() plus the workload labels (algorithm,
/// graph family, canonical scenario block, engine). Every producer of
/// scenario-level artefacts - `sweep --shard`, fabric workers - and every
/// consumer that validates them (merge, the fabric coordinator) builds the
/// expected meta through this one helper, so the equality check in
/// merge_shards compares like with like. Execution knobs (threads, batch)
/// are not part of the meta; they never change results.
SweepPlanMeta scenario_plan_meta(const ResolvedScenario& resolved);

}  // namespace avglocal::core
