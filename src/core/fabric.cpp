#include "core/fabric.hpp"

#include <sys/socket.h>

#include <exception>
#include <stdexcept>
#include <utility>

#include "core/sweep_driver.hpp"
#include "graph/graph.hpp"
#include "support/assert.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace avglocal::core {

namespace {

std::string error_reply(const std::string& message) {
  support::JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

/// How long a drained worker waits before asking again. Short next to the
/// straggler deadline so a freed unit is picked up promptly, long enough
/// that an idle worker is not a busy-loop on the coordinator.
constexpr std::uint64_t kDrainRetryMs = 50;

}  // namespace

// -------------------------------------------------------- plan_work_units ----

std::vector<WorkUnit> plan_work_units(std::size_t points, std::size_t trials,
                                      std::size_t unit_trials) {
  AVGLOCAL_EXPECTS(points > 0 && trials > 0);
  if (unit_trials == 0) unit_trials = (trials + 7) / 8;
  std::vector<WorkUnit> units;
  units.reserve(points * ((trials + unit_trials - 1) / unit_trials));
  std::size_t id = 0;
  for (std::size_t point = 0; point < points; ++point) {
    for (std::size_t begin = 0; begin < trials; begin += unit_trials) {
      WorkUnit unit;
      unit.id = id++;
      unit.point = point;
      unit.trial_begin = begin;
      unit.trial_end = std::min(begin + unit_trials, trials);
      units.push_back(unit);
    }
  }
  return units;
}

// -------------------------------------------------------------- WorkQueue ----

WorkQueue::WorkQueue(std::vector<WorkUnit> units, std::uint64_t straggler_ms)
    : units_(std::move(units)), states_(units_.size()), straggler_ms_(straggler_ms) {
  for (std::size_t index = 0; index < units_.size(); ++index) {
    AVGLOCAL_EXPECTS_MSG(units_[index].id == index, "work units must be id-ordered");
  }
}

std::optional<WorkUnit> WorkQueue::grant(std::uint64_t session, std::uint64_t now_ms) {
  // Pending units first, in id order: fresh work beats re-running a
  // straggler's unit, and id order keeps grants reproducible given the
  // same request sequence.
  std::size_t chosen = units_.size();
  for (std::size_t index = 0; index < units_.size(); ++index) {
    if (states_[index].status == UnitState::Status::kPending) {
      chosen = index;
      break;
    }
  }
  if (chosen == units_.size()) {
    // No pending work. Re-dispatch the most starved overdue unit: fewest
    // dispatches first (a unit re-granted twice already is likely held by
    // a live-but-slow worker), lowest id to break ties.
    for (std::size_t index = 0; index < units_.size(); ++index) {
      const UnitState& state = states_[index];
      if (state.status != UnitState::Status::kInFlight || state.deadline_ms > now_ms) continue;
      if (chosen == units_.size() || state.dispatches < states_[chosen].dispatches) {
        chosen = index;
      }
    }
    if (chosen == units_.size()) return std::nullopt;
    ++redispatches_;
  }
  UnitState& state = states_[chosen];
  state.status = UnitState::Status::kInFlight;
  ++state.dispatches;
  state.deadline_ms = now_ms + straggler_ms_;
  state.holders.push_back(session);
  return units_[chosen];
}

bool WorkQueue::accept(std::size_t unit_id) {
  AVGLOCAL_EXPECTS(unit_id < units_.size());
  UnitState& state = states_[unit_id];
  if (state.status == UnitState::Status::kDone) return false;
  state.status = UnitState::Status::kDone;
  state.holders.clear();
  ++done_;
  return true;
}

void WorkQueue::release(std::uint64_t session) {
  for (UnitState& state : states_) {
    if (state.status != UnitState::Status::kInFlight) continue;
    for (const std::uint64_t holder : state.holders) {
      if (holder == session) {
        // Zeroing the deadline makes the unit immediately overdue; if a
        // second holder is still computing it, the duplicate its copy
        // would produce is discarded by accept() anyway.
        state.deadline_ms = 0;
        break;
      }
    }
  }
}

// ------------------------------------------------------ FabricCoordinator ----

FabricCoordinator::FabricCoordinator(ResolvedScenario resolved, const FabricOptions& options)
    : options_(options),
      resolved_(std::move(resolved)),
      expected_meta_(scenario_plan_meta(resolved_)),
      work_units_(plan_work_units(resolved_.spec.ns.size(), resolved_.spec.schedule.max_trials,
                                  options.unit_trials)),
      epoch_(std::chrono::steady_clock::now()),
      queue_(work_units_, options.straggler_ms),
      unit_results_(work_units_.size()) {
  AVGLOCAL_EXPECTS_MSG(!resolved_.spec.schedule.adaptive(),
                       "the fabric runs fixed schedules only: an adaptive trial count is "
                       "decided by the monolithic driver");
  AVGLOCAL_EXPECTS_MSG(options_.max_workers >= 1, "fabric needs at least one worker slot");
}

FabricCoordinator::~FabricCoordinator() {
  // Normal lifecycle joins everything inside run(); this only covers a
  // coordinator destroyed between start() and run().
  request_stop();
  for (const auto& slot : slots_) {
    const int fd = slot->fd.load(std::memory_order_relaxed);
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void FabricCoordinator::start() { listener_ = support::Listener::bind(options_.endpoint); }

void FabricCoordinator::request_stop() noexcept {
  // Called from SIGTERM/SIGINT handlers: only the atomic store and
  // shutdown(2) below are async-signal-safe, so nothing else happens here.
  stop_.store(true, std::memory_order_relaxed);
  listener_.interrupt();
}

bool FabricCoordinator::complete() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return queue_.complete();
}

FabricStats FabricCoordinator::stats() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  FabricStats stats = stats_;
  stats.redispatches = queue_.redispatches();
  return stats;
}

std::vector<std::optional<PointAccumulator>> FabricCoordinator::take_unit_results() {
  const std::lock_guard<std::mutex> lock(mutex_);
  return std::move(unit_results_);
}

std::uint64_t FabricCoordinator::now_ms() const {
  const auto elapsed = std::chrono::steady_clock::now() - epoch_;
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(elapsed).count());
}

FabricCoordinator::Reply FabricCoordinator::handle_request(std::uint64_t session,
                                                           const std::string& line) {
  Reply reply;
  try {
    const support::JsonValue request = support::parse_json(line);
    const std::string& op = request.at("op").as_string();
    support::JsonWriter json;
    if (op == "hello") {
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        ++stats_.workers_seen;
      }
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("hello");
      json.key("trials")
          .value(static_cast<std::uint64_t>(resolved_.spec.schedule.max_trials));
      json.key("points").value(static_cast<std::uint64_t>(resolved_.spec.ns.size()));
      json.key("scenario");
      write_scenario_json(json, resolved_.spec);
      json.end_object();
    } else if (op == "work-request") {
      const std::lock_guard<std::mutex> lock(mutex_);
      if (stopping() || queue_.complete()) {
        json.begin_object();
        json.key("ok").value(true);
        json.key("op").value("shutdown");
        json.end_object();
        reply.disconnect = true;
      } else if (const std::optional<WorkUnit> unit = queue_.grant(session, now_ms())) {
        ++stats_.units_granted;
        json.begin_object();
        json.key("ok").value(true);
        json.key("op").value("work-grant");
        json.key("unit").begin_object();
        json.key("id").value(static_cast<std::uint64_t>(unit->id));
        json.key("point").value(static_cast<std::uint64_t>(unit->point));
        json.key("trial_begin").value(static_cast<std::uint64_t>(unit->trial_begin));
        json.key("trial_end").value(static_cast<std::uint64_t>(unit->trial_end));
        json.end_object();
        json.end_object();
      } else {
        json.begin_object();
        json.key("ok").value(true);
        json.key("op").value("drain");
        json.key("retry_ms").value(kDrainRetryMs);
        json.end_object();
      }
    } else if (op == "result") {
      const std::size_t unit_id = request.at("unit").as_u64();
      if (unit_id >= work_units_.size()) {
        reply.line = error_reply("unknown unit id " + std::to_string(unit_id));
        return reply;
      }
      const WorkUnit& unit = work_units_[unit_id];
      ShardDocument doc = parse_shard_json(request.at("artefact").as_string());
      if (doc.meta != expected_meta_) {
        reply.line = error_reply("artefact meta does not match this sweep's plan");
        return reply;
      }
      const SweepShard expected{unit.point, unit.point + 1, unit.trial_begin, unit.trial_end};
      if (doc.shard != expected || doc.points.size() != 1) {
        reply.line = error_reply("artefact rectangle does not match unit " +
                                 std::to_string(unit_id));
        return reply;
      }
      bool accepted = false;
      {
        const std::lock_guard<std::mutex> lock(mutex_);
        accepted = queue_.accept(unit_id);
        if (accepted) {
          // Keyed by unit id, never by session or arrival order: the
          // merge below reads this vector front to back.
          unit_results_[unit_id] = std::move(doc.points.front());
          ++stats_.results_accepted;
        } else {
          ++stats_.duplicates_discarded;
        }
        if (queue_.complete()) {
          complete_.store(true, std::memory_order_relaxed);
          listener_.interrupt();  // wake the accept loop for teardown
        }
      }
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("result");
      json.key("accepted").value(accepted);
      json.end_object();
    } else {
      reply.line = error_reply("unknown op '" + op + "'");
      return reply;
    }
    reply.line = json.str();
  } catch (const std::exception& error) {
    reply.line = error_reply(error.what());
    reply.disconnect = false;
  }
  return reply;
}

void FabricCoordinator::release_session(std::uint64_t session) {
  const std::lock_guard<std::mutex> lock(mutex_);
  queue_.release(session);
}

void FabricCoordinator::serve_worker(support::Stream stream, WorkerSlot* slot,
                                     std::uint64_t session) {
  std::string line;
  while (!stopping() && stream.read_line(line)) {
    const Reply reply = handle_request(session, line);
    if (!stream.write_line(reply.line)) break;
    if (reply.disconnect) break;
  }
  // Whatever this worker still held goes back into circulation - a
  // vanished worker must not stall the sweep for a full straggler window.
  release_session(session);
  slot->fd.store(-1, std::memory_order_relaxed);
  slot->done.store(true, std::memory_order_release);
}

void FabricCoordinator::reap_finished_slots_locked() {
  for (std::size_t index = 0; index < slots_.size();) {
    if (slots_[index]->done.load(std::memory_order_acquire)) {
      if (slots_[index]->thread.joinable()) slots_[index]->thread.join();
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      ++index;
    }
  }
}

void FabricCoordinator::run() {
  AVGLOCAL_EXPECTS_MSG(listener_.valid(), "FabricCoordinator::run called before start()");
  while (!stopping() && !complete_.load(std::memory_order_relaxed)) {
    support::Stream stream = listener_.accept_client();
    if (stopping() || complete_.load(std::memory_order_relaxed)) break;
    if (!stream.valid()) continue;  // interrupted accept; loop re-checks flags

    std::unique_lock<std::mutex> lock(slots_mutex_);
    reap_finished_slots_locked();
    if (slots_.size() >= options_.max_workers) {
      lock.unlock();
      stream.write_line(error_reply("busy"));
      continue;
    }
    const std::uint64_t session = next_session_++;
    auto slot = std::make_unique<WorkerSlot>();
    WorkerSlot* raw = slot.get();
    raw->fd.store(stream.fd(), std::memory_order_relaxed);
    raw->thread = std::thread([this, raw, session, s = std::move(stream)]() mutable {
      serve_worker(std::move(s), raw, session);
    });
    slots_.push_back(std::move(slot));
  }

  if (stopping()) {
    // SIGTERM drain: half-close every worker connection's read side.
    // Blocked handlers return, workers see EOF (or EPIPE on their next
    // submit) and exit cleanly - run_fabric_worker reports drained, not
    // an error.
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_) {
      const int fd = slot->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }
  }
  // On normal completion every connected worker's next work-request gets
  // a shutdown reply, so every handler reaches its natural end; join them
  // all before returning (handlers only flip their own flags now - the
  // accept loop is done, nobody resizes slots_).
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  slots_.clear();
  listener_.close();
}

// ------------------------------------------------------ run_fabric_worker ----

namespace {

support::JsonValue parse_reply(const std::string& line, const char* context) {
  const support::JsonValue reply = support::parse_json(line);
  if (!reply.at("ok").as_bool()) {
    throw std::runtime_error(std::string("fabric ") + context +
                             " rejected: " + reply.at("error").as_string());
  }
  return reply;
}

}  // namespace

FabricWorkerOutcome run_fabric_worker(const FabricWorkerOptions& options) {
  FabricWorkerOutcome outcome;
  support::Stream stream =
      support::Stream::connect_with_retry(options.endpoint, options.connect_timeout_ms);

  // Hello: learn the workload from the coordinator - the worker is
  // workload-agnostic and resolves the canonical scenario block exactly
  // like every other consumer.
  {
    support::JsonWriter hello;
    hello.begin_object();
    hello.key("op").value("hello");
    hello.key("worker").value(options.name);
    hello.end_object();
    if (!stream.write_line(hello.str())) {
      throw std::runtime_error("fabric hello: coordinator hung up");
    }
  }
  std::string line;
  if (!stream.read_line(line)) {
    throw std::runtime_error("fabric hello: no reply from coordinator");
  }
  const support::JsonValue hello_reply = parse_reply(line, "hello");
  const ResolvedScenario resolved =
      resolve_scenario(scenario_from_json(hello_reply.at("scenario")));
  const SweepPlanMeta meta = scenario_plan_meta(resolved);

  // Resident engines for the whole session: one backend, one pool, one
  // driver; graphs and prepared points built lazily per sweep point and
  // reused across every unit that lands on that point. unique_ptr keeps
  // each graph's address stable - prepared points pin it.
  BatchedSweepOptions base = resolved.sweep_options();
  base.threads = options.threads;
  base.batch_size = options.batch;
  const SweepPool pool(base);
  const std::unique_ptr<SweepBackend> backend = resolved.make_backend();
  const SweepDriver driver(*backend, base, pool.get());
  std::vector<std::unique_ptr<graph::Graph>> graphs(resolved.spec.ns.size());
  std::vector<std::optional<SweepDriver::Point>> prepared(resolved.spec.ns.size());

  for (;;) {
    support::JsonWriter request;
    request.begin_object();
    request.key("op").value("work-request");
    request.end_object();
    if (!stream.write_line(request.str()) || !stream.read_line(line)) {
      outcome.drained = true;  // coordinator drained us (SIGTERM teardown)
      return outcome;
    }
    const support::JsonValue reply = parse_reply(line, "work-request");
    const std::string& op = reply.at("op").as_string();
    if (op == "shutdown") return outcome;
    if (op == "drain") {
      std::this_thread::sleep_for(std::chrono::milliseconds(reply.at("retry_ms").as_u64()));
      continue;
    }
    if (op != "work-grant") {
      throw std::runtime_error("fabric work-request: unexpected reply op '" + op + "'");
    }

    const support::JsonValue& granted = reply.at("unit");
    WorkUnit unit;
    unit.id = granted.at("id").as_u64();
    unit.point = granted.at("point").as_u64();
    unit.trial_begin = granted.at("trial_begin").as_u64();
    unit.trial_end = granted.at("trial_end").as_u64();
    if (unit.point >= resolved.spec.ns.size() || unit.trial_begin >= unit.trial_end) {
      throw std::runtime_error("fabric work-grant: malformed unit");
    }
    if (options.on_grant) options.on_grant(unit);

    if (!prepared[unit.point]) {
      const std::size_t n = resolved.spec.ns[unit.point];
      graphs[unit.point] = std::make_unique<graph::Graph>(resolved.graphs(n));
      AVGLOCAL_REQUIRE_MSG(graphs[unit.point]->vertex_count() == n,
                           "graph factory size mismatch");
      prepared[unit.point] = driver.prepare(*graphs[unit.point], unit.point);
    }

    ShardDocument doc;
    doc.meta = meta;
    doc.shard = SweepShard{unit.point, unit.point + 1, unit.trial_begin, unit.trial_end};
    doc.points.push_back(
        driver.run_trials(*prepared[unit.point], unit.trial_begin, unit.trial_end));

    support::JsonWriter result;
    result.begin_object();
    result.key("op").value("result");
    result.key("unit").value(static_cast<std::uint64_t>(unit.id));
    result.key("artefact").value(shard_to_json(doc));
    result.end_object();
    if (!stream.write_line(result.str()) || !stream.read_line(line)) {
      outcome.drained = true;  // hung up between our submit and its ack
      return outcome;
    }
    parse_reply(line, "result");  // accepted or duplicate - both fine
    ++outcome.units;
    outcome.trials += unit.trial_end - unit.trial_begin;
  }
}

// ----------------------------------------------------- merge_unit_results ----

std::vector<PointAccumulator> merge_unit_results(
    const std::vector<WorkUnit>& units,
    std::vector<std::optional<PointAccumulator>> unit_results, std::size_t point_count) {
  AVGLOCAL_EXPECTS(units.size() == unit_results.size());
  std::vector<PointAccumulator> merged;
  merged.reserve(point_count);
  // Unit ids are point-major in ascending trial order, so a single id-
  // ordered pass appends each point's ranges in canonical trial order.
  // Nothing here knows which worker produced a unit or when it arrived.
  for (std::size_t index = 0; index < units.size(); ++index) {
    if (!unit_results[index].has_value()) {
      throw std::runtime_error("fabric merge: unit " + std::to_string(units[index].id) +
                               " has no accepted result (aborted run?)");
    }
    PointAccumulator& partial = *unit_results[index];
    if (units[index].trial_begin == 0) {
      merged.push_back(std::move(partial));
    } else {
      AVGLOCAL_REQUIRE_MSG(!merged.empty() && merged.back().point_index == units[index].point,
                           "fabric merge: unit ids out of point-major order");
      merged.back().append(std::move(partial));
    }
  }
  AVGLOCAL_REQUIRE_MSG(merged.size() == point_count,
                       "fabric merge: units do not cover every sweep point");
  return merged;
}

}  // namespace avglocal::core
