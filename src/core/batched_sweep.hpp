// Batched random sweeps: many identifier assignments per graph in one pass.
//
// run_random_sweep (core/runner.hpp) pays one full view-engine run per
// trial: every trial regrows every vertex's ball from scratch. The batched
// engine inverts the loops - vertices outside, assignments inside - so each
// vertex's ball geometry (BFS order, port structure: identifier-independent)
// is grown once and replayed per assignment (local::BallReplayer), and all
// per-trial state (id buffers, growers, scratch, the algorithm instance
// where ViewAlgorithm::reset allows) is reused across the batch.
//
// Everything downstream of the engine is accumulated as exact integers
// (PointAccumulator), so partial results - per pool worker, or per shard of
// a distributed sweep (core/shard.hpp) - merge bit-identically into the
// monolithic sweep, independent of batching, sharding and thread schedule.
// Floating point appears only in finalize_point, which always iterates
// trials in global order.
#pragma once

#include <cstdint>
#include <vector>

#include "core/measure.hpp"
#include "core/runner.hpp"
#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/metrics.hpp"
#include "local/view_engine.hpp"
#include "support/aligned.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::core {

struct BatchedSweepOptions {
  std::size_t trials = 32;
  /// Master seed; trial streams derive from (seed, point, trial) exactly as
  /// in run_random_sweep, so both sweeps see identical id permutations.
  std::uint64_t seed = 42;
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;
  /// Worker threads; 0 = hardware concurrency, explicit values honoured
  /// exactly. The batched engine parallelises over vertices, so - unlike
  /// run_random_sweep - more workers than trials stay busy. Ignored when
  /// `pool` is set.
  std::size_t threads = 0;
  /// Optional externally owned worker pool, reused across sweeps.
  support::ThreadPool* pool = nullptr;
  /// Identifier assignments resident at once; 0 = the whole trial range.
  /// Smaller batches bound memory (~ batch_size * n * 12 bytes per point:
  /// the id buffers plus the radius matrix the edge measures read) at the
  /// cost of regrowing ball geometry once per batch. Results do not depend
  /// on the batch size.
  std::size_t batch_size = 0;
  /// Resident-memory budget for one sweep point, in bytes; 0 = unlimited.
  /// When set, SweepDriver derives the batch width from the backend's
  /// bytes-per-trial model (core/memory_model.hpp, shared across all
  /// concurrent worker lanes) instead of fixed constants, clamping
  /// batch_size further if needed. A budget too small for even one
  /// resident trial per lane still runs at width 1 - the model's envelope
  /// is asserted against the alloc hook by tests and bench_regression, so
  /// an undershootable budget fails there rather than silently. Like
  /// batch_size, the budget never changes results, only footprint.
  std::size_t memory_budget_bytes = 0;
  /// Probabilities of the radius quantiles reported per point.
  std::vector<double> quantile_probs = {0.5, 0.9, 0.99};
  /// Also report the per-vertex mean radius profile (n doubles per point).
  bool node_profile = false;
};

/// Exact integer partials of (a trial range of) one sweep point. Every
/// field is a sum, maximum or count of per-run integers; merging worker or
/// shard partials in any order reproduces the monolithic totals bit for
/// bit.
struct PointAccumulator {
  std::size_t point_index = 0;
  std::size_t n = 0;
  std::size_t edges = 0;                 ///< edge count m of the point's graph
  std::size_t trial_begin = 0;           ///< global index of trial_sum[0]
  std::vector<std::uint64_t> trial_sum;  ///< per trial: sum_v r(v)
  std::vector<std::uint64_t> trial_max;  ///< per trial: max_v r(v)
  local::RadiusHistogram histogram;      ///< over all (vertex, trial) samples
  std::vector<std::uint64_t> node_sum;   ///< per vertex: sum over trials of r(v)
  /// Edge-averaged family (arXiv:2208.08213): per trial, sum over canonical
  /// edges of the edge time max(r(u), r(v)); the histogram counts every
  /// (edge, trial) sample. Both stay exact integers, so they merge exactly
  /// like the node measures.
  std::vector<std::uint64_t> trial_edge_sum;
  local::RadiusHistogram edge_histogram;

  std::size_t trial_count() const noexcept { return trial_sum.size(); }
  std::size_t trial_end() const noexcept { return trial_begin + trial_sum.size(); }

  /// Absorbs `other`, which must continue this accumulator's trial range
  /// (same point and n, other.trial_begin == this->trial_end()).
  void append(PointAccumulator&& other);

  friend bool operator==(const PointAccumulator&, const PointAccumulator&) = default;
};

/// Aggregate of one sweep point: the SweepPoint measures (bit-identical to
/// run_random_sweep under the same options) plus the averaged measures of
/// arXiv:1704.05739 - the full r(v) sample distribution and the per-vertex
/// (node-averaged) means.
struct BatchedSweepPoint {
  std::size_t n = 0;
  std::size_t trials = 0;

  // ID-averaged aggregates, exactly as in SweepPoint.
  double avg_mean = 0.0;
  double avg_sd = 0.0;
  double avg_worst = 0.0;
  double max_mean = 0.0;
  std::size_t max_worst = 0;

  /// Distribution of r(v) over all (vertex, assignment) samples.
  RadiusDistribution radius;

  /// Node-averaged measures: extrema over vertices of E_sigma[r(v)].
  double node_mean_max = 0.0;
  double node_mean_min = 0.0;
  /// Per-vertex mean radii (only when options.node_profile).
  std::vector<double> node_mean;

  /// Edge-averaged measures (arXiv:2208.08213). edge_avg_mean/sd aggregate
  /// the per-trial edge averages (sum_e t(e) / m) exactly as avg_mean/sd
  /// aggregate the per-trial node averages; edge_time is the t(e)
  /// distribution over all (edge, assignment) samples, with the same
  /// quantile probabilities as `radius`. All zero on edgeless graphs.
  std::size_t edges = 0;
  double edge_avg_mean = 0.0;
  double edge_avg_sd = 0.0;
  RadiusDistribution edge_time;

  friend bool operator==(const BatchedSweepPoint&, const BatchedSweepPoint&) = default;
};

/// An accumulator with every field sized (and zeroed) for trials
/// [trial_begin, trial_end) of point (point_index, g). Shared by both
/// engines' accumulate functions so the two can never disagree on shape.
PointAccumulator make_point_accumulator(const graph::Graph& g, std::size_t point_index,
                                        std::size_t trial_begin, std::size_t trial_end);

/// Regenerates the sweep's id assignments for global trials
/// [global_begin, global_begin + count) of the point whose stream root is
/// `point_seed` (= derive_seed(options.seed, point_index)) into `batch`
/// (cleared first). THE definition of a sweep's id streams: both engines'
/// accumulate functions call this, which is what makes a message sweep and
/// a view sweep of one scenario run identical permutations trial by trial.
void fill_sweep_batch(std::vector<graph::IdAssignment>& batch, std::size_t n,
                      std::uint64_t point_seed, std::size_t global_begin, std::size_t count);

/// Folds one batch's dense radius matrix (`batch_size` rows of n radii,
/// row t = global trial batch_begin + t) into the accumulator's per-trial
/// edge sums and the flat per-time sample counts (grown on demand;
/// local::RadiusHistogram(std::move(counts)) converts exactly once per
/// point). The third piece both engines' accumulate functions share.
void accumulate_edge_partials(std::span<const std::pair<graph::Vertex, graph::Vertex>> edge_list,
                              std::span<const std::uint32_t> radius_matrix,
                              std::size_t batch_begin, std::size_t batch_size,
                              PointAccumulator& acc, std::vector<std::uint64_t>& edge_counts);

/// SoA mirror of a canonical edge list plus an edge-time row, the operands
/// of the simd::edge_times_u32 kernel: 64-byte-aligned u32 endpoint arrays
/// (two gathers per vector of edges) and the per-trial times they produce.
/// bind() rebuilds the arrays only when the edge count changes, so a lane
/// that sticks to one point (every lane does) converts its edge list once.
struct EdgeAccumScratch {
  support::AlignedVector<std::uint32_t> edge_u;
  support::AlignedVector<std::uint32_t> edge_v;
  support::AlignedVector<std::uint32_t> times;

  void bind(std::span<const std::pair<graph::Vertex, graph::Vertex>> edges);
};

/// Vectorised twin of accumulate_edge_partials: per trial row, one
/// simd::edge_times_u32 sweep over the SoA edge arrays, then a scalar fold
/// of the times into the counts and the trial's edge sum. Exact integers
/// in canonical edge order, so the partials are bit-identical to the
/// scalar overload (pinned in tests) - this is the driver's hot path.
void accumulate_edge_partials(std::span<const std::pair<graph::Vertex, graph::Vertex>> edge_list,
                              std::span<const std::uint32_t> radius_matrix,
                              std::size_t batch_begin, std::size_t batch_size,
                              PointAccumulator& acc, std::vector<std::uint64_t>& edge_counts,
                              EdgeAccumScratch& scratch);

/// Runs trials [trial_begin, trial_end) of point `point_index` on `g` and
/// returns exact partials. Since the SweepBackend redesign this is a thin
/// shim over core::SweepDriver + core::ViewBackend (core/sweep_driver.hpp);
/// callers that revisit a point should hold a driver and a prepared Point
/// instead. `pool` may be null (serial).
PointAccumulator accumulate_point(const graph::Graph& g, std::size_t point_index,
                                  const local::ViewAlgorithmFactory& algorithm,
                                  const BatchedSweepOptions& options, std::size_t trial_begin,
                                  std::size_t trial_end, support::ThreadPool* pool);

/// Derives the reported point from complete partials; the accumulator must
/// cover the full trial range [0, options.trials).
BatchedSweepPoint finalize_point(const PointAccumulator& acc, const BatchedSweepOptions& options);

/// Builds the view-algorithm factory for the size-n member of a family.
/// Schedule-driven algorithms (Cole-Vishkin, ring MIS) parameterise their
/// target radius on n, so a multi-point sweep needs one factory per point,
/// not one for the whole sweep.
using AlgorithmProvider = std::function<local::ViewAlgorithmFactory(std::size_t)>;

/// Batched counterpart of run_random_sweep: same seeds, same per-trial
/// radii, bit-identical avg/max aggregates - plus distribution and
/// node-averaged measures - at a fraction of the per-trial cost.
std::vector<BatchedSweepPoint> run_batched_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const AlgorithmProvider& algorithms,
                                                 const BatchedSweepOptions& options = {});

/// Convenience overload for size-independent algorithms: one factory serves
/// every point.
std::vector<BatchedSweepPoint> run_batched_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const local::ViewAlgorithmFactory& algorithm,
                                                 const BatchedSweepOptions& options = {});

}  // namespace avglocal::core
