#include "core/serve.hpp"

#include <sys/socket.h>

#include <exception>
#include <utility>

#include "support/assert.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace avglocal::core {

namespace {

std::string error_reply(const std::string& message) {
  support::JsonWriter json;
  json.begin_object();
  json.key("ok").value(false);
  json.key("error").value(message);
  json.end_object();
  return json.str();
}

}  // namespace

Server::Server(const ServeOptions& options)
    : options_(options), cache_(ResultCacheOptions{options.threads, options.batch_size}) {
  AVGLOCAL_EXPECTS_MSG(options_.max_clients >= 1, "serve needs at least one client slot");
}

Server::~Server() {
  // Normal lifecycle joins everything inside run(); this only covers a
  // server destroyed between start() and run().
  request_stop();
  for (const auto& slot : slots_) {
    const int fd = slot->fd.load(std::memory_order_relaxed);
    if (fd >= 0) ::shutdown(fd, SHUT_RD);
  }
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
}

void Server::start() { listener_ = support::UnixListener::bind(options_.socket_path); }

void Server::request_stop() noexcept {
  // Called from SIGTERM/SIGINT handlers: only the atomic store and
  // shutdown(2) below are async-signal-safe, so nothing else happens here.
  stop_.store(true, std::memory_order_relaxed);
  listener_.interrupt();
}

Server::Reply Server::handle_request(const std::string& line) {
  Reply reply;
  try {
    const support::JsonValue request = support::parse_json(line);
    const std::string& op = request.at("op").as_string();
    support::JsonWriter json;
    if (op == "ping") {
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("ping");
      json.end_object();
    } else if (op == "stats") {
      const ResultCacheStats stats = cache_.stats();
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("stats");
      json.key("requests").value(stats.requests);
      json.key("full_hits").value(stats.full_hits);
      json.key("extensions").value(stats.extensions);
      json.key("misses").value(stats.misses);
      json.key("trials_computed").value(stats.trials_computed);
      json.key("entries").value(stats.entries);
      json.end_object();
    } else if (op == "shutdown") {
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("shutdown");
      json.end_object();
      reply.shutdown = true;
    } else if (op == "sweep") {
      const ScenarioSpec spec = scenario_from_json(request.at("scenario"));
      const ResultCacheOutcome outcome = cache_.sweep(spec);
      json.begin_object();
      json.key("ok").value(true);
      json.key("op").value("sweep");
      json.key("key").value(outcome.key);
      json.key("warm").value(outcome.warm);
      json.key("trials_computed").value(outcome.trials_computed);
      // The full report document rides along as one (escaped) string
      // value; the client writes it back out verbatim, so the file it
      // saves is byte-identical to a one-shot `sweep --json` run's.
      json.key("report").value(outcome.report);
      json.end_object();
    } else {
      reply.line = error_reply("unknown op '" + op + "'");
      return reply;
    }
    reply.line = json.str();
  } catch (const std::exception& error) {
    reply.line = error_reply(error.what());
    reply.shutdown = false;
  }
  return reply;
}

void Server::serve_connection(support::UnixStream stream, ClientSlot* slot) {
  std::string line;
  while (!stopping() && stream.read_line(line)) {
    const Reply reply = handle_request(line);
    if (!stream.write_line(reply.line)) break;
    if (reply.shutdown) {
      request_stop();
      break;
    }
  }
  slot->fd.store(-1, std::memory_order_relaxed);
  slot->done.store(true, std::memory_order_release);
}

void Server::reap_finished_slots_locked() {
  for (std::size_t index = 0; index < slots_.size();) {
    if (slots_[index]->done.load(std::memory_order_acquire)) {
      if (slots_[index]->thread.joinable()) slots_[index]->thread.join();
      slots_.erase(slots_.begin() + static_cast<std::ptrdiff_t>(index));
    } else {
      ++index;
    }
  }
}

void Server::run() {
  AVGLOCAL_EXPECTS_MSG(listener_.valid(), "Server::run called before start()");
  while (!stopping()) {
    support::UnixStream stream = listener_.accept_client();
    if (stopping()) break;
    if (!stream.valid()) continue;  // interrupted accept; loop re-checks stop

    std::unique_lock<std::mutex> lock(slots_mutex_);
    reap_finished_slots_locked();
    if (slots_.size() >= options_.max_clients) {
      // Every slot is taken. Tell the client so instead of dropping the
      // connection on the floor: an explicit busy line lets it back off
      // and retry, where a silent close is indistinguishable from a
      // crashed daemon.
      lock.unlock();
      stream.write_line(error_reply("busy"));
      continue;
    }

    auto slot = std::make_unique<ClientSlot>();
    ClientSlot* raw = slot.get();
    raw->fd.store(stream.fd(), std::memory_order_relaxed);
    raw->thread = std::thread(
        [this, raw, s = std::move(stream)]() mutable { serve_connection(std::move(s), raw); });
    slots_.push_back(std::move(slot));
  }

  // Half-close every live connection's read side: blocked read_line calls
  // return, responses already being written still flush.
  {
    const std::lock_guard<std::mutex> lock(slots_mutex_);
    for (const auto& slot : slots_) {
      const int fd = slot->fd.load(std::memory_order_relaxed);
      if (fd >= 0) ::shutdown(fd, SHUT_RD);
    }
  }
  // The accept loop is done, so nobody resizes slots_ anymore; handlers
  // only flip their own flags. Join without the lock (handlers take it on
  // exit).
  for (const auto& slot : slots_) {
    if (slot->thread.joinable()) slot->thread.join();
  }
  slots_.clear();
  listener_.close();
}

}  // namespace avglocal::core
