// The distributed sweep fabric: a coordinator/worker execution topology
// over the socket layer (support/socket.hpp, Unix-domain or TCP), with
// dynamic work stealing and straggler re-dispatch.
//
// The coordinator decomposes one fixed-schedule scenario sweep into
// (point, trial-range) WorkUnits and streams them to worker processes
// over a pull-based newline-JSON protocol - workers request work when
// idle, so load balance emerges from the pull pattern instead of a static
// pre-partition. One request or reply object per line:
//
//   {"op":"hello","worker":NAME}
//     -> {"ok":true,"op":"hello","trials":T,"points":K,"scenario":{...}}
//        (the canonical scenario block; the worker resolves it once and
//        serves every unit from the same resident engines)
//   {"op":"work-request"}
//     -> {"ok":true,"op":"work-grant",
//         "unit":{"id":I,"point":P,"trial_begin":A,"trial_end":B}}
//     -> {"ok":true,"op":"drain","retry_ms":R}   nothing grantable right
//        now (every remaining unit is in flight and none is overdue);
//        retry after R ms
//     -> {"ok":true,"op":"shutdown"}             all units accepted (or
//        the coordinator is stopping); the worker exits
//   {"op":"result","unit":I,"artefact":"<shard artefact JSON>"}
//     -> {"ok":true,"op":"result","accepted":true|false}
//
// Results travel as the existing v3 shard artefacts (core/shard.hpp): one
// ShardDocument whose shard rectangle is exactly the unit's (one point,
// the unit's trial range) and whose meta must equal scenario_plan_meta of
// the coordinator's resolved scenario - a worker that somehow ran a
// different workload is rejected, not merged.
//
// Straggler policy: every grant stamps a deadline (steady_clock,
// FabricOptions::straggler_ms ahead). A unit past its deadline - or held
// only by a worker whose connection dropped - becomes grantable again to
// the next idle worker. The first artefact accepted for a unit id wins;
// later copies are discarded (counted, never merged), so a straggler that
// eventually delivers is harmless.
//
// The determinism rule that makes any of this safe: unit ids are assigned
// point-major in ascending trial order, and the merge appends accepted
// accumulators in unit-id order per point. Worker count, steal order,
// straggler kills and arrival order therefore cannot appear in the output
// - the merged partials, and the report finalized from them, are byte-
// identical to the monolithic sweep. (The arrival-order-dependence lint
// check pins the "index by unit id, never by connection" half of this.)
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/scenario.hpp"
#include "support/socket.hpp"

namespace avglocal::core {

/// One (point, trial-range) unit of a fabric sweep: trials
/// [trial_begin, trial_end) of sweep point `point`. Ids are point-major in
/// ascending trial order, so unit-id order IS canonical trial order.
struct WorkUnit {
  std::size_t id = 0;
  std::size_t point = 0;
  std::size_t trial_begin = 0;
  std::size_t trial_end = 0;

  friend bool operator==(const WorkUnit&, const WorkUnit&) = default;
};

/// Decomposes points x [0, trials) into units of at most `unit_trials`
/// trials each (the last unit of a point takes the remainder), id-ordered
/// point-major ascending. unit_trials == 0 picks trials/8 (rounded up) -
/// enough granularity for stealing without drowning in round trips.
std::vector<WorkUnit> plan_work_units(std::size_t points, std::size_t trials,
                                      std::size_t unit_trials);

/// Pure dispatch bookkeeping for the coordinator: which units are pending,
/// in flight (with deadline and dispatch count) or done. No clock and no
/// locking inside - callers pass `now_ms` in and serialise access - so
/// every policy decision is unit-testable without sockets or sleeps.
class WorkQueue {
 public:
  WorkQueue(std::vector<WorkUnit> units, std::uint64_t straggler_ms);

  /// Picks the unit to grant `session`: the lowest-id pending unit, else
  /// the most re-dispatch-worthy overdue in-flight unit (fewest dispatches
  /// first, lowest id to break ties), else nothing (the caller replies
  /// drain). Stamps the deadline and records the holder.
  std::optional<WorkUnit> grant(std::uint64_t session, std::uint64_t now_ms);

  /// First result for a unit wins: returns true exactly once per unit id;
  /// every later call is a duplicate to discard.
  bool accept(std::size_t unit_id);

  /// Makes every unfinished unit held by `session` immediately grantable
  /// again (the worker's connection dropped; waiting out its deadline
  /// would only slow re-dispatch).
  void release(std::uint64_t session);

  bool complete() const { return done_ == units_.size(); }
  std::size_t unit_count() const { return units_.size(); }
  std::size_t done_count() const { return done_; }
  /// Grants beyond the first per unit (the steal/straggler traffic).
  std::uint64_t redispatches() const { return redispatches_; }
  const std::vector<WorkUnit>& units() const { return units_; }

 private:
  struct UnitState {
    enum class Status { kPending, kInFlight, kDone };
    Status status = Status::kPending;
    std::size_t dispatches = 0;
    std::uint64_t deadline_ms = 0;
    std::vector<std::uint64_t> holders;
  };

  std::vector<WorkUnit> units_;
  std::vector<UnitState> states_;
  std::uint64_t straggler_ms_ = 0;
  std::size_t done_ = 0;
  std::uint64_t redispatches_ = 0;
};

struct FabricOptions {
  /// Where the coordinator listens (unix:path or tcp:host:port; TCP port 0
  /// resolves to an ephemeral port, see endpoint() after start()).
  support::Endpoint endpoint;
  /// Trials per work unit; 0 = trials/8 rounded up (plan_work_units).
  std::size_t unit_trials = 0;
  /// A unit unfinished this long after its grant is fair game for
  /// re-dispatch to the next idle worker.
  std::uint64_t straggler_ms = 2000;
  /// Concurrent worker connections; one past this gets a busy error line.
  std::size_t max_workers = 16;
};

/// Monotone counters over one coordinator run.
struct FabricStats {
  std::uint64_t workers_seen = 0;          ///< hello ops handled
  std::uint64_t units_granted = 0;         ///< work-grant replies (re-dispatches included)
  std::uint64_t redispatches = 0;          ///< grants beyond the first per unit
  std::uint64_t results_accepted = 0;      ///< first artefact per unit id
  std::uint64_t duplicates_discarded = 0;  ///< later artefacts per unit id
};

/// The coordinator: owns the listener, one handler thread per worker
/// connection, the WorkQueue and the accepted per-unit accumulators.
/// run() returns once every unit is accepted (normal completion) or a
/// stop was requested (SIGTERM drain - workers see EOF and exit cleanly).
class FabricCoordinator {
 public:
  FabricCoordinator(ResolvedScenario resolved, const FabricOptions& options);
  FabricCoordinator(const FabricCoordinator&) = delete;
  FabricCoordinator& operator=(const FabricCoordinator&) = delete;
  ~FabricCoordinator();

  /// Binds the listener. Separate from run() so callers can install
  /// signal handlers - and read the resolved endpoint - before accepting.
  void start();

  /// The bound endpoint with TCP port 0 resolved to the real port.
  const support::Endpoint& endpoint() const noexcept { return listener_.endpoint(); }

  /// Accept loop; returns with every handler joined once the sweep is
  /// complete or a stop was requested.
  void run();

  /// Async-signal-safe stop request (atomic store + listener interrupt):
  /// the SIGTERM handler's one call. Workers' connections are half-closed
  /// by run()'s teardown, which they treat as an orderly drain.
  void request_stop() noexcept;

  bool stopping() const noexcept { return stop_.load(std::memory_order_relaxed); }
  bool complete() const;
  FabricStats stats() const;
  const std::vector<WorkUnit>& work_units() const { return work_units_; }

  /// Accepted accumulators by unit id (a slot is empty only after an
  /// aborted run). Call after run() returned.
  std::vector<std::optional<PointAccumulator>> take_unit_results();

  /// One handled request line. `disconnect` marks a shutdown reply: the
  /// handler sends the line, then closes the connection.
  struct Reply {
    std::string line;
    bool disconnect = false;
  };

  /// Parses and executes one request line from `session` and builds the
  /// reply line. Never throws: malformed input becomes {"ok":false,...}.
  /// Public so protocol tests can drive the coordinator without sockets.
  Reply handle_request(std::uint64_t session, const std::string& line);

  /// Releases every unit `session` still holds (its connection dropped).
  /// Public for the same socket-free tests.
  void release_session(std::uint64_t session);

 private:
  struct WorkerSlot {
    std::thread thread;
    std::atomic<int> fd{-1};
    std::atomic<bool> done{false};
  };

  std::uint64_t now_ms() const;
  void serve_worker(support::Stream stream, WorkerSlot* slot, std::uint64_t session);
  void reap_finished_slots_locked();

  FabricOptions options_;
  ResolvedScenario resolved_;
  SweepPlanMeta expected_meta_;        ///< what every artefact must carry
  std::vector<WorkUnit> work_units_;   ///< the immutable plan, by unit id
  std::chrono::steady_clock::time_point epoch_;  ///< origin of now_ms()

  support::Listener listener_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> complete_{false};

  mutable std::mutex mutex_;  ///< guards queue_, unit_results_, stats_
  WorkQueue queue_;
  std::vector<std::optional<PointAccumulator>> unit_results_;
  FabricStats stats_;

  std::mutex slots_mutex_;
  std::vector<std::unique_ptr<WorkerSlot>> slots_;
  std::uint64_t next_session_ = 0;
};

struct FabricWorkerOptions {
  support::Endpoint endpoint;  ///< the coordinator's endpoint
  std::string name = "worker";
  /// Execution knobs for this worker's sweep pool (never change results).
  std::size_t threads = 0;
  std::size_t batch = 0;
  /// Window for connect_with_retry while the coordinator is still binding.
  long connect_timeout_ms = 5000;
  /// Test hook, called once per granted unit before it runs (the CLI's
  /// failure-injection env vars arrive through this; empty in production).
  std::function<void(const WorkUnit&)> on_grant;
};

struct FabricWorkerOutcome {
  std::size_t units = 0;   ///< artefacts submitted (accepted or not)
  std::size_t trials = 0;  ///< trials computed, summed over units
  /// The coordinator closed the connection before a shutdown op - the
  /// orderly SIGTERM-drain (or completion-race) exit, not an error.
  bool drained = false;
};

/// Runs one worker against a coordinator: hello, resolve the scenario the
/// coordinator sent, then pull-execute-submit until shutdown or drain.
/// Resident engines and prepared points are reused across units of the
/// same sweep point. Throws std::runtime_error on connection failures
/// before hello completes and on protocol errors.
FabricWorkerOutcome run_fabric_worker(const FabricWorkerOptions& options);

/// Recombines accepted unit results into one accumulator per sweep point,
/// appending in unit-id order - canonical trial order by construction, so
/// the output is bit-identical to the monolithic sweep's partials no
/// matter which worker produced which unit or when it landed. Throws
/// std::runtime_error if any unit result is missing (aborted run).
std::vector<PointAccumulator> merge_unit_results(
    const std::vector<WorkUnit>& units,
    std::vector<std::optional<PointAccumulator>> unit_results, std::size_t point_count);

}  // namespace avglocal::core
