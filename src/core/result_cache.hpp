// The content-addressed result cache behind sweep-as-a-service: resident
// engines plus memoised exact-integer partials, so repeated and extended
// sweep requests pay only for trials nobody has run yet.
//
// Identity and the extension trick. A workload's cache key is
// scenario_cache_key(resolved spec) - the canonical scenario block minus
// the trial schedule. Everything inside the key changes what a trial
// computes; the schedule only changes how many trials are requested. Each
// cache entry therefore holds, per sweep point, one PointAccumulator
// covering trials [0, E): exact integers, so a request for T > E trials
// runs only [E, T) through the entry's resident SweepDriver::Point and
// appends - and the PointAccumulator::append contract (core/
// batched_sweep.hpp) makes the result bit-identical to a monolithic
// T-trial sweep. Floats appear only at finalize_point, in global trial
// order, exactly like every other execution topology.
//
// What stays resident. An entry keeps the resolved scenario, its backend,
// one SweepDriver, the graphs and the prepared per-point states (engine
// state, topology tables, arenas) alive across requests, so even a
// cache-missing request skips graph construction and engine setup after
// the first. Finalized report documents are additionally memoised per
// full schedule (the schedule appears in the report bytes), making an
// exact repeat a pure string copy: zero sweep trials, zero finalize work.
//
// Fixed schedules only. Adaptive schedules decide their own trial count
// from convergence checks at schedule-dependent boundaries; two adaptive
// requests with different min_trials/batch can legitimately stop at
// different T, so "extend the cached partial" has no canonical meaning.
// sweep() rejects them with std::invalid_argument; run them through
// run_scenario.
//
// Thread safety: sweep()/stats()/entry_count() are safe to call from any
// thread. Compute is serialised internally (one sweep at a time - the
// shared worker pool runs one job at a time by contract); concurrency
// above the cache comes from queueing requests, not from parallel sweeps.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "core/scenario.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::core {

/// Execution knobs for the cache's owned worker pool. Like
/// ScenarioExecution these never change results, only speed.
struct ResultCacheOptions {
  /// Worker threads for the shared sweep pool; 0 = hardware concurrency.
  std::size_t threads = 0;
  /// BatchedSweepOptions::batch_size for cache-run sweeps (memory bound).
  std::size_t batch_size = 0;
};

/// Monotone counters over the cache's lifetime (reported by the daemon's
/// `stats` op and asserted by tests).
struct ResultCacheStats {
  std::uint64_t requests = 0;        ///< sweep() calls that resolved
  std::uint64_t full_hits = 0;       ///< served with zero sweep trials
  std::uint64_t extensions = 0;      ///< cached partial + fresh tail
  std::uint64_t misses = 0;          ///< all requested trials computed
  std::uint64_t trials_computed = 0; ///< sweep trials run, summed over points
  std::uint64_t entries = 0;         ///< resident workload entries
};

/// One served request: the report document plus how it was produced.
struct ResultCacheOutcome {
  std::string report;  ///< sweep report JSON, byte-identical to run_scenario's
  std::string key;     ///< scenario_cache_key of the resolved workload
  /// Sweep trials actually computed for this request, summed over points
  /// (0 for a warm hit; (T - E) * points for an extension).
  std::uint64_t trials_computed = 0;
  bool warm = false;   ///< true iff trials_computed == 0
};

class ResultCache {
 public:
  explicit ResultCache(const ResultCacheOptions& options = {});
  ResultCache(const ResultCache&) = delete;
  ResultCache& operator=(const ResultCache&) = delete;
  ~ResultCache();

  /// Serves one sweep request: resolves the spec, locates (or creates) the
  /// workload entry, computes exactly the trials the cache is missing and
  /// returns the finalized report - byte-identical to what run_scenario +
  /// sweep_report_json produce for the same spec. Throws
  /// std::invalid_argument for unresolvable specs and adaptive schedules.
  ResultCacheOutcome sweep(const ScenarioSpec& spec);

  /// Offers externally computed exact-integer partials (one accumulator
  /// per sweep point, each covering trials [0, E) of the spec's canonical
  /// trial stream - e.g. a fabric run's merged unit results) to the
  /// workload's resident entry. Kept iff they cover more trials than
  /// what's cached; returns whether they were. A later sweep() for the
  /// same identity is then served from them exactly like locally computed
  /// partials. Partials that don't match the resolved spec's shape are
  /// rejected (returns false) rather than trusted.
  bool offer_partials(const ScenarioSpec& spec, std::vector<PointAccumulator> partials);

  ResultCacheStats stats() const;
  std::size_t entry_count() const;

 private:
  struct Entry;

  Entry& entry_for(const std::string& key, ResolvedScenario&& resolved);

  mutable std::mutex mutex_;
  ResultCacheOptions options_;
  std::unique_ptr<support::ThreadPool> pool_;
  // Ordered map: lint forbids unordered iteration, and entry counts are
  // tiny (one per distinct workload) - lookup cost is irrelevant next to
  // a single trial.
  std::map<std::string, std::unique_ptr<Entry>> entries_;
  ResultCacheStats stats_;
};

}  // namespace avglocal::core
