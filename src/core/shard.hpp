// Sharded execution of batched sweeps across processes and hosts.
//
// A SweepShard names a sub-rectangle (point range x trial range) of a sweep
// plan. Every trial's random stream derives from
// derive_seed(derive_seed(seed, point), trial) - independent of which
// shard, batch or worker runs it - and shard outputs are the exact integer
// partials of core/batched_sweep.hpp, serialised as JSON. Merging the shard
// artefacts of a plan therefore reproduces the monolithic
// run_batched_sweep bit for bit; a test pins this.
//
// Workflow: plan_shards on the coordinator, run_sweep_shard +
// shard_to_json on each worker process (see the `sweep --shard I/K`
// subcommand of examples/avglocal_cli.cpp), parse_shard_json + merge_shards
// wherever the artefacts land (`merge` subcommand).
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "core/batched_sweep.hpp"

namespace avglocal::core {

/// One sub-rectangle of a sweep plan: points [point_begin, point_end) of
/// the plan's size list x global trials [trial_begin, trial_end).
struct SweepShard {
  std::size_t point_begin = 0;
  std::size_t point_end = 0;
  std::size_t trial_begin = 0;
  std::size_t trial_end = 0;

  bool empty() const noexcept { return point_begin >= point_end || trial_begin >= trial_end; }

  friend bool operator==(const SweepShard&, const SweepShard&) = default;
};

/// Splits `trials` into `shard_count` contiguous near-equal trial ranges,
/// each covering every point. At most `trials` shards are non-empty; empty
/// shards are omitted, so the result may be shorter than `shard_count`.
std::vector<SweepShard> plan_shards(std::size_t points, std::size_t trials,
                                    std::size_t shard_count);

/// The plan header every shard artefact carries so a merge can verify all
/// artefacts describe the same sweep. `options_for` rebuilds the finalize
/// parameters a merge needs.
struct SweepPlanMeta {
  std::uint64_t seed = 42;
  std::size_t trials = 0;
  std::vector<std::size_t> ns;
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;
  std::vector<double> quantile_probs;
  bool node_profile = false;
  /// Free-form workload identity (e.g. "largest-id" / "cycle"). The
  /// numeric plan alone cannot reveal that two artefacts were produced by
  /// different algorithms or graph families - radii are just integers - so
  /// merges also require these labels to match. Callers that never mix
  /// workloads may leave them empty.
  std::string algorithm;
  std::string graph;
  /// Canonical scenario block (core::scenario_to_json of the resolved
  /// spec). Self-describing workload identity: merges compare it like
  /// every other meta field, so artefacts from different scenarios -
  /// including ones that agree on the numeric plan and the labels above
  /// but differ in family parameters - reject by construction. Empty for
  /// callers below the scenario layer.
  std::string scenario;
  /// Which engine produced the radii: "view" (run_views_batched) or
  /// "message" (run_message_sweep). Compared on merge like every other
  /// field - the two engines' radii are both just integers, so without
  /// this label artefacts from different formulations could interleave.
  std::string engine = "view";

  static SweepPlanMeta from_options(const std::vector<std::size_t>& ns,
                                    const BatchedSweepOptions& options);
  BatchedSweepOptions options_for() const;

  friend bool operator==(const SweepPlanMeta&, const SweepPlanMeta&) = default;
};

/// Runs one shard of the plan: accumulators for points
/// [shard.point_begin, shard.point_end), trials
/// [shard.trial_begin, shard.trial_end).
std::vector<PointAccumulator> run_sweep_shard(const std::vector<std::size_t>& ns,
                                              const GraphFactory& graphs,
                                              const AlgorithmProvider& algorithms,
                                              const BatchedSweepOptions& options,
                                              const SweepShard& shard);

/// Convenience overload for size-independent algorithms.
std::vector<PointAccumulator> run_sweep_shard(const std::vector<std::size_t>& ns,
                                              const GraphFactory& graphs,
                                              const local::ViewAlgorithmFactory& algorithm,
                                              const BatchedSweepOptions& options,
                                              const SweepShard& shard);

/// One parsed (or to-be-serialised) shard artefact.
struct ShardDocument {
  SweepPlanMeta meta;
  SweepShard shard;
  std::vector<PointAccumulator> points;

  friend bool operator==(const ShardDocument&, const ShardDocument&) = default;
};

/// Serialises a shard artefact; integers are emitted losslessly.
std::string shard_to_json(const ShardDocument& doc);

/// Parses a shard artefact; throws std::runtime_error on malformed input
/// and on documents that are not avglocal shard artefacts.
ShardDocument parse_shard_json(std::string_view text);

/// Merges shard artefacts into the final sweep points. Requires all metas
/// to be identical and, for every point of the plan, the shards' trial
/// ranges to exactly partition [0, meta.trials) (any artefact order).
/// The output is bit-identical to run_batched_sweep over the same plan.
std::vector<BatchedSweepPoint> merge_shards(std::vector<ShardDocument> docs);

}  // namespace avglocal::core
