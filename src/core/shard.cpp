#include "core/shard.hpp"

#include <algorithm>
#include <memory>

#include "core/sweep_driver.hpp"
#include "support/assert.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"

namespace avglocal::core {

namespace {

/// Version 3: the meta block gained the `engine` field ("view" |
/// "message") and points carry the edge-averaged partials (`edges`,
/// `trial_edge_sum`, `edge_histogram`). Version-2 artefacts still parse:
/// they read as engine "view" with empty edge data (edges == 0), which
/// finalizes to all-zero edge measures. Version 1 (no scenario field) stays
/// rejected by the version check.
constexpr std::uint64_t kShardFormatVersion = 3;
constexpr std::uint64_t kShardFormatV2 = 2;

local::ViewSemantics semantics_from_name(const std::string& name) {
  const auto semantics = local::view_semantics_from_name(name);
  if (!semantics) throw std::runtime_error("shard: unknown view semantics '" + name + "'");
  return *semantics;
}

void write_u64_array(support::JsonWriter& json, const std::vector<std::uint64_t>& values) {
  json.begin_array();
  for (std::uint64_t v : values) json.value(v);
  json.end_array();
}

std::vector<std::uint64_t> read_u64_array(const support::JsonValue& value) {
  std::vector<std::uint64_t> out;
  out.reserve(value.size());
  for (std::size_t i = 0; i < value.size(); ++i) out.push_back(value[i].as_u64());
  return out;
}

}  // namespace

std::vector<SweepShard> plan_shards(std::size_t points, std::size_t trials,
                                    std::size_t shard_count) {
  AVGLOCAL_EXPECTS(points >= 1 && trials >= 1 && shard_count >= 1);
  const std::size_t shards = std::min(shard_count, trials);
  std::vector<SweepShard> plan;
  plan.reserve(shards);
  // Near-equal contiguous ranges: the first (trials % shards) shards take
  // one extra trial, so sizes differ by at most one.
  const std::size_t base = trials / shards;
  const std::size_t extra = trials % shards;
  std::size_t begin = 0;
  for (std::size_t s = 0; s < shards; ++s) {
    const std::size_t size = base + (s < extra ? 1 : 0);
    plan.push_back({0, points, begin, begin + size});
    begin += size;
  }
  return plan;
}

SweepPlanMeta SweepPlanMeta::from_options(const std::vector<std::size_t>& ns,
                                          const BatchedSweepOptions& options) {
  SweepPlanMeta meta;
  meta.seed = options.seed;
  meta.trials = options.trials;
  meta.ns = ns;
  meta.semantics = options.semantics;
  meta.quantile_probs = options.quantile_probs;
  meta.node_profile = options.node_profile;
  return meta;
}

BatchedSweepOptions SweepPlanMeta::options_for() const {
  BatchedSweepOptions options;
  options.seed = seed;
  options.trials = trials;
  options.semantics = semantics;
  options.quantile_probs = quantile_probs;
  options.node_profile = node_profile;
  return options;
}

std::vector<PointAccumulator> run_sweep_shard(const std::vector<std::size_t>& ns,
                                              const GraphFactory& graphs,
                                              const AlgorithmProvider& algorithms,
                                              const BatchedSweepOptions& options,
                                              const SweepShard& shard) {
  AVGLOCAL_EXPECTS(!shard.empty());
  AVGLOCAL_EXPECTS(shard.point_end <= ns.size());
  AVGLOCAL_EXPECTS(shard.trial_end <= options.trials);

  const ViewBackend backend(algorithms, options.semantics);
  const SweepPool pool(options);
  const SweepDriver driver(backend, options, pool.get());

  std::vector<PointAccumulator> partials;
  partials.reserve(shard.point_end - shard.point_begin);
  for (std::size_t point = shard.point_begin; point < shard.point_end; ++point) {
    const graph::Graph g = graphs(ns[point]);
    AVGLOCAL_REQUIRE_MSG(g.vertex_count() == ns[point], "graph factory size mismatch");
    SweepDriver::Point prepared = driver.prepare(g, point);
    partials.push_back(driver.run_trials(prepared, shard.trial_begin, shard.trial_end));
  }
  return partials;
}

std::vector<PointAccumulator> run_sweep_shard(const std::vector<std::size_t>& ns,
                                              const GraphFactory& graphs,
                                              const local::ViewAlgorithmFactory& algorithm,
                                              const BatchedSweepOptions& options,
                                              const SweepShard& shard) {
  return run_sweep_shard(
      ns, graphs, [&algorithm](std::size_t) { return algorithm; }, options, shard);
}

std::string shard_to_json(const ShardDocument& doc) {
  support::JsonWriter json;
  json.begin_object();
  json.key("avglocal_shard").value(kShardFormatVersion);
  json.key("seed").value(doc.meta.seed);
  json.key("trials").value(static_cast<std::uint64_t>(doc.meta.trials));
  json.key("semantics").value(local::to_string(doc.meta.semantics));
  json.key("ns").begin_array();
  for (std::size_t n : doc.meta.ns) json.value(static_cast<std::uint64_t>(n));
  json.end_array();
  json.key("quantile_probs").begin_array();
  for (double q : doc.meta.quantile_probs) json.value(q);
  json.end_array();
  json.key("node_profile").value(doc.meta.node_profile);
  json.key("algorithm").value(doc.meta.algorithm);
  json.key("graph").value(doc.meta.graph);
  json.key("scenario").value(doc.meta.scenario);
  json.key("engine").value(doc.meta.engine);
  json.key("shard").begin_object();
  json.key("point_begin").value(static_cast<std::uint64_t>(doc.shard.point_begin));
  json.key("point_end").value(static_cast<std::uint64_t>(doc.shard.point_end));
  json.key("trial_begin").value(static_cast<std::uint64_t>(doc.shard.trial_begin));
  json.key("trial_end").value(static_cast<std::uint64_t>(doc.shard.trial_end));
  json.end_object();
  json.key("points").begin_array();
  for (const PointAccumulator& acc : doc.points) {
    json.begin_object();
    json.key("point_index").value(static_cast<std::uint64_t>(acc.point_index));
    json.key("n").value(static_cast<std::uint64_t>(acc.n));
    json.key("edges").value(static_cast<std::uint64_t>(acc.edges));
    json.key("trial_begin").value(static_cast<std::uint64_t>(acc.trial_begin));
    json.key("trial_sum");
    write_u64_array(json, acc.trial_sum);
    json.key("trial_max");
    write_u64_array(json, acc.trial_max);
    json.key("histogram").begin_array();
    for (std::uint64_t c : acc.histogram.counts()) json.value(c);
    json.end_array();
    json.key("node_sum");
    write_u64_array(json, acc.node_sum);
    json.key("trial_edge_sum");
    write_u64_array(json, acc.trial_edge_sum);
    json.key("edge_histogram").begin_array();
    for (std::uint64_t c : acc.edge_histogram.counts()) json.value(c);
    json.end_array();
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

ShardDocument parse_shard_json(std::string_view text) {
  const support::JsonValue root = support::parse_json(text);
  const support::JsonValue* version = root.find("avglocal_shard");
  if (version == nullptr ||
      (version->as_u64() != kShardFormatVersion && version->as_u64() != kShardFormatV2)) {
    throw std::runtime_error("shard: not an avglocal shard artefact (version 2 or 3)");
  }
  const bool v2 = version->as_u64() == kShardFormatV2;

  ShardDocument doc;
  doc.meta.seed = root.at("seed").as_u64();
  doc.meta.trials = root.at("trials").as_u64();
  doc.meta.semantics = semantics_from_name(root.at("semantics").as_string());
  const support::JsonValue& ns = root.at("ns");
  for (std::size_t i = 0; i < ns.size(); ++i) doc.meta.ns.push_back(ns[i].as_u64());
  const support::JsonValue& probs = root.at("quantile_probs");
  for (std::size_t i = 0; i < probs.size(); ++i) {
    doc.meta.quantile_probs.push_back(probs[i].as_double());
  }
  doc.meta.node_profile = root.at("node_profile").as_bool();
  doc.meta.algorithm = root.at("algorithm").as_string();
  doc.meta.graph = root.at("graph").as_string();
  doc.meta.scenario = root.at("scenario").as_string();
  doc.meta.engine = v2 ? "view" : root.at("engine").as_string();

  const support::JsonValue& shard = root.at("shard");
  doc.shard.point_begin = shard.at("point_begin").as_u64();
  doc.shard.point_end = shard.at("point_end").as_u64();
  doc.shard.trial_begin = shard.at("trial_begin").as_u64();
  doc.shard.trial_end = shard.at("trial_end").as_u64();

  const support::JsonValue& points = root.at("points");
  doc.points.reserve(points.size());
  for (std::size_t i = 0; i < points.size(); ++i) {
    const support::JsonValue& p = points[i];
    PointAccumulator acc;
    acc.point_index = p.at("point_index").as_u64();
    acc.n = p.at("n").as_u64();
    acc.trial_begin = p.at("trial_begin").as_u64();
    acc.trial_sum = read_u64_array(p.at("trial_sum"));
    acc.trial_max = read_u64_array(p.at("trial_max"));
    acc.histogram = local::RadiusHistogram(read_u64_array(p.at("histogram")));
    acc.node_sum = read_u64_array(p.at("node_sum"));
    if (v2) {
      // No edge data in version 2: edges == 0 finalizes to all-zero edge
      // measures; the zero per-trial sums keep append() and finalize_point
      // shape-consistent.
      acc.trial_edge_sum.assign(acc.trial_sum.size(), 0);
    } else {
      acc.edges = p.at("edges").as_u64();
      acc.trial_edge_sum = read_u64_array(p.at("trial_edge_sum"));
      acc.edge_histogram = local::RadiusHistogram(read_u64_array(p.at("edge_histogram")));
    }
    if (acc.trial_sum.size() != acc.trial_max.size() || acc.node_sum.size() != acc.n ||
        acc.trial_edge_sum.size() != acc.trial_sum.size()) {
      throw std::runtime_error("shard: inconsistent point arrays");
    }
    doc.points.push_back(std::move(acc));
  }
  return doc;
}

std::vector<BatchedSweepPoint> merge_shards(std::vector<ShardDocument> docs) {
  AVGLOCAL_EXPECTS(!docs.empty());
  const SweepPlanMeta& meta = docs.front().meta;
  for (const ShardDocument& doc : docs) {
    // The engine mismatch gets its own precise error: both engines' radii
    // are plain integers, so mixing a view artefact into a message plan (or
    // vice versa) is the likeliest - and least self-evident - mix-up.
    AVGLOCAL_REQUIRE_MSG(doc.meta.engine == meta.engine,
                         "shard artefacts come from different engines ('" + meta.engine +
                             "' vs '" + doc.meta.engine + "'); view and message sweeps never merge");
    AVGLOCAL_REQUIRE_MSG(doc.meta == meta, "shard artefacts describe different sweep plans");
  }

  const BatchedSweepOptions options = meta.options_for();
  std::vector<BatchedSweepPoint> points;
  points.reserve(meta.ns.size());
  for (std::size_t point = 0; point < meta.ns.size(); ++point) {
    // Collect this point's partials from every covering shard and stitch
    // them back together in global trial order.
    std::vector<PointAccumulator*> pieces;
    for (ShardDocument& doc : docs) {
      for (PointAccumulator& acc : doc.points) {
        if (acc.point_index == point) pieces.push_back(&acc);
      }
    }
    AVGLOCAL_REQUIRE_MSG(!pieces.empty(), "no shard covers a sweep point");
    std::sort(pieces.begin(), pieces.end(),
              [](const PointAccumulator* a, const PointAccumulator* b) {
                return a->trial_begin < b->trial_begin;
              });
    AVGLOCAL_REQUIRE_MSG(pieces.front()->trial_begin == 0,
                         "shard trial ranges do not start at trial 0");
    PointAccumulator merged = std::move(*pieces.front());
    for (std::size_t i = 1; i < pieces.size(); ++i) merged.append(std::move(*pieces[i]));
    AVGLOCAL_REQUIRE_MSG(merged.trial_count() == meta.trials,
                         "shard trial ranges do not cover the full plan");
    points.push_back(finalize_point(merged, options));
  }
  return points;
}

}  // namespace avglocal::core
