#include "core/sweep_backend.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::core {

namespace {

/// View-backend state: the per-size algorithm factory plus per-worker
/// partial buffers. Trial aggregates are indexed within the batch and
/// folded into the accumulator after each run_views_batched call, always by
/// integer addition / maximum, so the totals do not depend on which worker
/// ran which vertices.
struct ViewPointState final : BackendPointState {
  const graph::Graph* g = nullptr;
  local::ViewAlgorithmFactory factory;
  struct WorkerPartial {
    std::vector<std::uint64_t> trial_sum;
    std::vector<std::uint64_t> trial_max;
    local::RadiusHistogram histogram;
  };
  std::vector<WorkerPartial> partials;
};

/// Message-backend state: ONE persistent arena-backed engine. The runner
/// outlives every batch and adaptive round the driver pushes through it,
/// so warm-up (topology tables, arenas, contexts) is paid once per
/// (point, lane).
struct MessagePointState final : BackendPointState {
  explicit MessagePointState(local::MessageBatchRunner r) : runner(std::move(r)) {}
  local::MessageBatchRunner runner;
};

}  // namespace

ViewBackend::ViewBackend(AlgorithmProvider algorithms, local::ViewSemantics semantics,
                         bool layer_jump)
    : algorithms_(std::move(algorithms)), semantics_(semantics), layer_jump_(layer_jump) {
  AVGLOCAL_EXPECTS(static_cast<bool>(algorithms_));
}

std::unique_ptr<BackendPointState> ViewBackend::prepare(const graph::Graph& g,
                                                        std::size_t /*point_index*/) const {
  auto state = std::make_unique<ViewPointState>();
  state->g = &g;
  state->factory = algorithms_(g.vertex_count());
  return state;
}

void ViewBackend::run_batch(BackendPointState& state, std::span<const graph::IdAssignment> batch,
                            std::size_t batch_begin, support::ThreadPool* pool,
                            PointAccumulator& acc,
                            std::span<std::uint32_t> radius_matrix) const {
  auto& view_state = static_cast<ViewPointState&>(state);
  const std::size_t n = acc.n;
  const std::size_t batch_size = batch.size();

  view_state.partials.resize(pool != nullptr ? pool->size() : 1);
  for (ViewPointState::WorkerPartial& w : view_state.partials) {
    w.trial_sum.assign(batch_size, 0);
    w.trial_max.assign(batch_size, 0);
    w.histogram = local::RadiusHistogram();
  }

  local::ViewEngineOptions engine;
  engine.semantics = semantics_;
  engine.pool = pool;
  engine.layer_jump = layer_jump_;

  local::run_views_batched(
      *view_state.g, batch, view_state.factory, engine,
      [&](std::size_t worker, std::size_t trial, graph::Vertex v, std::int64_t /*output*/,
          std::size_t radius) {
        ViewPointState::WorkerPartial& w = view_state.partials[worker];
        const auto r = static_cast<std::uint64_t>(radius);
        w.trial_sum[trial] += r;
        w.trial_max[trial] = std::max(w.trial_max[trial], r);
        w.histogram.add(radius);
        // Workers own disjoint vertex ranges, so these shared rows are
        // safe: each (trial, v) cell has exactly one writer.
        acc.node_sum[v] += r;
        radius_matrix[trial * n + v] = support::checked_u32(radius);
      });

  for (const ViewPointState::WorkerPartial& w : view_state.partials) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      acc.trial_sum[batch_begin + i] += w.trial_sum[i];
      acc.trial_max[batch_begin + i] = std::max(acc.trial_max[batch_begin + i], w.trial_max[i]);
    }
    acc.histogram.merge(w.histogram);
  }
}

SweepMemoryModel ViewBackend::memory_model(const graph::Graph& g) const noexcept {
  const std::size_t n = g.vertex_count();
  const std::size_t arcs = g.arc_count();
  SweepMemoryModel model;
  // Per resident trial: the id assignment (8n), its radius-matrix row
  // (4n), its transpose row in the lockstep engine (8n; row_stride rounds
  // trials up to a cache line, amortised per trial), and the worst-case
  // spill id buffer should its ball reach the whole graph (8n). 28n.
  model.bytes_per_trial = n * (8 + 4 + 8 + 8);
  // Per lane: the CSR tables, the canonical edge list (8 bytes per edge),
  // the epoch-stamped ball scratch (local_of + stamps, 8n) and the
  // grower's discovery arrays (globals + dist + ports, ~16n + 4 * arcs at
  // full coverage). The transpose pads its stride to a full cache line
  // (8 id slots), so up to 7 slots beyond the batch width are resident
  // regardless of width - that worst-case rounding excess (56n) is charged
  // here, keeping predicted_lane_bytes an upper bound at every width
  // (pinned by the envelope test in tests/test_large_scale.cpp).
  model.fixed_bytes = g.memory_bytes() + 4 * arcs + 8 * (arcs / 2) + 24 * n + 56 * n;
  return model;
}

SweepMemoryModel MessageBackend::memory_model(const graph::Graph& g) const noexcept {
  const std::size_t n = g.vertex_count();
  const std::size_t arcs = g.arc_count();
  SweepMemoryModel model;
  // Message trials run one at a time through a lane's engine, so a
  // resident trial costs only its id buffer and radius-matrix row.
  model.bytes_per_trial = n * (8 + 4);
  // Per lane: the CSR tables, edge list, per-node contexts and the two
  // ping-pong arenas (8-byte slot + presence bit per arc each, plus
  // payload words at one word per arc as the steady-state floor).
  model.fixed_bytes = g.memory_bytes() + 8 * (arcs / 2) + 48 * n + 2 * (17 * arcs / 2);
  return model;
}

MessageBackend::MessageBackend(MessageAlgorithmProvider algorithms, MessageEngineOptions engine)
    : algorithms_(std::move(algorithms)), engine_(engine) {
  AVGLOCAL_EXPECTS(static_cast<bool>(algorithms_));
}

std::unique_ptr<BackendPointState> MessageBackend::prepare(const graph::Graph& g,
                                                           std::size_t /*point_index*/) const {
  local::EngineOptions options;
  options.knowledge = engine_.knowledge;
  options.max_rounds = engine_.max_rounds;
  return std::make_unique<MessagePointState>(
      local::MessageBatchRunner(g, algorithms_(g.vertex_count()), options));
}

void MessageBackend::run_batch(BackendPointState& state,
                               std::span<const graph::IdAssignment> batch,
                               std::size_t batch_begin, support::ThreadPool* /*pool*/,
                               PointAccumulator& acc,
                               std::span<std::uint32_t> radius_matrix) const {
  auto& message_state = static_cast<MessagePointState&>(state);
  const std::size_t n = acc.n;
  message_state.runner.run(
      batch, [&](std::size_t trial, graph::Vertex v, std::int64_t /*output*/,
                 std::size_t radius) {
        const auto r = static_cast<std::uint64_t>(radius);
        acc.trial_sum[batch_begin + trial] += r;
        acc.trial_max[batch_begin + trial] = std::max(acc.trial_max[batch_begin + trial], r);
        acc.histogram.add(radius);
        acc.node_sum[v] += r;
        radius_matrix[trial * n + v] = support::checked_u32(radius);
      });
}

}  // namespace avglocal::core
