#include "core/sweep_backend.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/assert.hpp"

namespace avglocal::core {

namespace {

/// View-backend state: the per-size algorithm factory plus per-worker
/// partial buffers. Trial aggregates are indexed within the batch and
/// folded into the accumulator after each run_views_batched call, always by
/// integer addition / maximum, so the totals do not depend on which worker
/// ran which vertices.
struct ViewPointState final : BackendPointState {
  const graph::Graph* g = nullptr;
  local::ViewAlgorithmFactory factory;
  struct WorkerPartial {
    std::vector<std::uint64_t> trial_sum;
    std::vector<std::uint64_t> trial_max;
    local::RadiusHistogram histogram;
  };
  std::vector<WorkerPartial> partials;
};

/// Message-backend state: ONE persistent arena-backed engine. The runner
/// outlives every batch and adaptive round the driver pushes through it,
/// so warm-up (topology tables, arenas, contexts) is paid once per
/// (point, lane).
struct MessagePointState final : BackendPointState {
  explicit MessagePointState(local::MessageBatchRunner r) : runner(std::move(r)) {}
  local::MessageBatchRunner runner;
};

}  // namespace

ViewBackend::ViewBackend(AlgorithmProvider algorithms, local::ViewSemantics semantics,
                         bool layer_jump)
    : algorithms_(std::move(algorithms)), semantics_(semantics), layer_jump_(layer_jump) {
  AVGLOCAL_EXPECTS(static_cast<bool>(algorithms_));
}

std::unique_ptr<BackendPointState> ViewBackend::prepare(const graph::Graph& g,
                                                        std::size_t /*point_index*/) const {
  auto state = std::make_unique<ViewPointState>();
  state->g = &g;
  state->factory = algorithms_(g.vertex_count());
  return state;
}

void ViewBackend::run_batch(BackendPointState& state, std::span<const graph::IdAssignment> batch,
                            std::size_t batch_begin, support::ThreadPool* pool,
                            PointAccumulator& acc,
                            std::span<std::uint32_t> radius_matrix) const {
  auto& view_state = static_cast<ViewPointState&>(state);
  const std::size_t n = acc.n;
  const std::size_t batch_size = batch.size();

  view_state.partials.resize(pool != nullptr ? pool->size() : 1);
  for (ViewPointState::WorkerPartial& w : view_state.partials) {
    w.trial_sum.assign(batch_size, 0);
    w.trial_max.assign(batch_size, 0);
    w.histogram = local::RadiusHistogram();
  }

  local::ViewEngineOptions engine;
  engine.semantics = semantics_;
  engine.pool = pool;
  engine.layer_jump = layer_jump_;

  local::run_views_batched(
      *view_state.g, batch, view_state.factory, engine,
      [&](std::size_t worker, std::size_t trial, graph::Vertex v, std::int64_t /*output*/,
          std::size_t radius) {
        ViewPointState::WorkerPartial& w = view_state.partials[worker];
        const auto r = static_cast<std::uint64_t>(radius);
        w.trial_sum[trial] += r;
        w.trial_max[trial] = std::max(w.trial_max[trial], r);
        w.histogram.add(radius);
        // Workers own disjoint vertex ranges, so these shared rows are
        // safe: each (trial, v) cell has exactly one writer.
        acc.node_sum[v] += r;
        radius_matrix[trial * n + v] = static_cast<std::uint32_t>(radius);
      });

  for (const ViewPointState::WorkerPartial& w : view_state.partials) {
    for (std::size_t i = 0; i < batch_size; ++i) {
      acc.trial_sum[batch_begin + i] += w.trial_sum[i];
      acc.trial_max[batch_begin + i] = std::max(acc.trial_max[batch_begin + i], w.trial_max[i]);
    }
    acc.histogram.merge(w.histogram);
  }
}

MessageBackend::MessageBackend(MessageAlgorithmProvider algorithms, MessageEngineOptions engine)
    : algorithms_(std::move(algorithms)), engine_(engine) {
  AVGLOCAL_EXPECTS(static_cast<bool>(algorithms_));
}

std::unique_ptr<BackendPointState> MessageBackend::prepare(const graph::Graph& g,
                                                           std::size_t /*point_index*/) const {
  local::EngineOptions options;
  options.knowledge = engine_.knowledge;
  options.max_rounds = engine_.max_rounds;
  return std::make_unique<MessagePointState>(
      local::MessageBatchRunner(g, algorithms_(g.vertex_count()), options));
}

void MessageBackend::run_batch(BackendPointState& state,
                               std::span<const graph::IdAssignment> batch,
                               std::size_t batch_begin, support::ThreadPool* /*pool*/,
                               PointAccumulator& acc,
                               std::span<std::uint32_t> radius_matrix) const {
  auto& message_state = static_cast<MessagePointState&>(state);
  const std::size_t n = acc.n;
  message_state.runner.run(
      batch, [&](std::size_t trial, graph::Vertex v, std::int64_t /*output*/,
                 std::size_t radius) {
        const auto r = static_cast<std::uint64_t>(radius);
        acc.trial_sum[batch_begin + trial] += r;
        acc.trial_max[batch_begin + trial] = std::max(acc.trial_max[batch_begin + trial], r);
        acc.histogram.add(radius);
        acc.node_sum[v] += r;
        radius_matrix[trial * n + v] = static_cast<std::uint32_t>(radius);
      });
}

}  // namespace avglocal::core
