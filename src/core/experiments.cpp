#include "core/experiments.hpp"

#include <algorithm>
#include <cmath>
#include <queue>
#include <sstream>

#include "algo/cole_vishkin.hpp"
#include "algo/colour_reduction.hpp"
#include "algo/greedy_colouring.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/validity.hpp"
#include "analysis/a000788.hpp"
#include "analysis/adversary.hpp"
#include "analysis/chromatic.hpp"
#include "analysis/exhaustive.hpp"
#include "analysis/expectation.hpp"
#include "analysis/neighbourhood_graph.hpp"
#include "analysis/recurrence.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "graph/family_registry.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "local/engine.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"

namespace avglocal::core {

using support::Table;

std::size_t ExperimentScale::at_least(std::size_t value, std::size_t min_value) const {
  const auto scaled = static_cast<std::size_t>(static_cast<double>(value) * factor);
  return std::max(min_value, scaled);
}

namespace {

std::string fmt_double(double v, int precision = 3) { return Table::cell(v, precision); }

}  // namespace

// ---------------------------------------------------------------- E1 ------

ExperimentResult experiment_recurrence_table(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E1";
  result.title = "Recurrence a(p) vs OEIS A000788 and Theta(p log p)";

  const std::size_t dp_max = scale.at_least(1u << 14, 64);
  const analysis::Recurrence rec(dp_max);

  Table table({"p", "a(p) [DP]", "A000788(p)", "equal", "a(p)/(p*log2 p)", "best split k"});
  for (std::size_t p = 4; p <= dp_max; p *= 2) {
    const std::uint64_t a = rec.a(p);
    const std::uint64_t oeis = analysis::a000788(p);
    const double ratio =
        static_cast<double>(a) / (static_cast<double>(p) * std::log2(static_cast<double>(p)));
    table.add_row({Table::cell(p), Table::cell(a), Table::cell(oeis),
                   a == oeis ? "yes" : "NO", fmt_double(ratio), Table::cell(rec.best_k(p))});
  }
  result.tables.emplace_back("a(p) by dynamic programming (paper Section 2 recurrence)", table);

  Table closed({"p", "A000788(p)", "A000788(p)/(p*log2 p)"});
  for (std::size_t p = dp_max * 2; p <= scale.at_least(1u << 20, 256); p *= 4) {
    const std::uint64_t oeis = analysis::a000788(p);
    const double ratio = static_cast<double>(oeis) /
                         (static_cast<double>(p) * std::log2(static_cast<double>(p)));
    closed.add_row({Table::cell(p), Table::cell(oeis), fmt_double(ratio)});
  }
  result.tables.emplace_back("closed form beyond the DP range", closed);

  result.notes.push_back(
      "Expected: the `equal` column is all `yes` (a(p) = A000788(p) exactly) and the "
      "normalised column approaches 1/2, i.e. a(p) ~ (p log2 p)/2 = Theta(p log p).");
  return result;
}

// ---------------------------------------------------------------- E2 ------

ExperimentResult experiment_largest_id_gap(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E2";
  result.title = "Largest-ID on the cycle: average Theta(log n) vs worst case Theta(n)";

  const std::size_t n_max = scale.at_least(1u << 12, 32);
  const analysis::Recurrence rec(n_max);
  const auto factory = algo::make_largest_id_view();

  Table table({"n", "worst avg (pred)", "worst avg (sim)", "rand avg (mean)", "rand avg (sd)",
               "worst max", "log2 n", "gap max/avg"});
  std::vector<std::size_t> ns;
  for (std::size_t n = 16; n <= n_max; n *= 2) ns.push_back(n);

  SweepOptions sweep_options;
  sweep_options.trials = std::max<std::size_t>(8, scale.at_least(25, 8));
  sweep_options.seed = 2015;
  const auto sweep =
      run_random_sweep(ns, [](std::size_t n) { return graph::make_cycle(n); }, factory,
                       sweep_options);

  for (std::size_t i = 0; i < ns.size(); ++i) {
    const std::size_t n = ns[i];
    const double predicted =
        static_cast<double>(analysis::predicted_worst_cycle_sum(rec, n)) /
        static_cast<double>(n);
    const graph::Graph cycle = graph::make_cycle(n);
    const Measurement worst =
        run_assignment(cycle, analysis::worst_case_cycle_ids(rec, n), factory);
    table.add_row({Table::cell(n), fmt_double(predicted), fmt_double(worst.avg_radius),
                   fmt_double(sweep[i].avg_mean), fmt_double(sweep[i].avg_sd),
                   Table::cell(worst.max_radius),
                   fmt_double(std::log2(static_cast<double>(n)), 2),
                   fmt_double(measure_gap(worst), 1)});
  }
  result.tables.emplace_back("both measures per size (worst = extremal construction)", table);

  // Closed-form extension of the series (worst case via a(n-1) = A000788(n-1),
  // random via the exact expectation): two more decades without the engine.
  Table closed({"n", "worst avg (closed form)", "E[rand avg] (closed form)", "worst max",
                "gap max/avg"});
  for (std::size_t n = n_max * 4; n <= scale.at_least(1u << 20, 64); n *= 4) {
    const double worst_avg =
        (static_cast<double>(n / 2) + static_cast<double>(analysis::a000788(n - 1))) /
        static_cast<double>(n);
    closed.add_row({Table::cell(n), fmt_double(worst_avg),
                    fmt_double(analysis::expected_largest_id_average(n)),
                    Table::cell(n / 2),
                    fmt_double(static_cast<double>(n / 2) / worst_avg, 1)});
  }
  result.tables.emplace_back(
      "closed-form series beyond engine scale (identities proven by E1/E6/E11)", closed);
  result.notes.push_back(
      "Expected: `worst avg (sim)` equals `worst avg (pred)` exactly; both average columns "
      "grow like log n (doubling n adds a constant) while `worst max` = ceil((n-1)/2) grows "
      "linearly: the paper's exponential separation between the measures.");
  return result;
}

// ---------------------------------------------------------------- E3 ------

ExperimentResult experiment_colouring_logstar(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E3";
  result.title = "3-colouring the ring: max = avg = Theta(log* n)";

  Table known({"n", "log*2(n)", "schedule T(n)", "max r", "avg r", "valid"});
  const std::size_t n_max = scale.at_least(1u << 18, 64);
  support::Xoshiro256 rng(7);
  for (std::size_t n = 8; n <= n_max; n *= 4) {
    const graph::Graph cycle = graph::make_cycle(n);
    const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
    const local::RunResult run =
        local::run_views(cycle, ids, algo::make_cole_vishkin_view(n));
    const bool valid = algo::is_valid_colouring(cycle, run.outputs, 3);
    known.add_row({Table::cell(n),
                   Table::cell(support::log_star(static_cast<double>(n))),
                   Table::cell(algo::cv_schedule_rounds(n)), Table::cell(run.max_radius()),
                   fmt_double(run.average_radius()), valid ? "yes" : "NO"});
  }
  result.tables.emplace_back("Cole-Vishkin, n known (ball formulation)", known);

  Table unknown({"n", "max round", "avg round", "p25", "median", "p75", "avg / T(n)",
                 "valid"});
  const std::size_t mn_max = scale.at_least(1u << 12, 32);
  for (std::size_t n = 8; n <= mn_max; n *= 4) {
    const graph::Graph cycle = graph::make_cycle(n);
    const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
    const local::RunResult run =
        local::run_messages(cycle, ids, algo::make_local_three_colouring());
    const bool valid = algo::is_valid_colouring(cycle, run.outputs, 3);
    std::vector<double> rounds;
    rounds.reserve(n);
    for (const std::size_t r : run.radii) rounds.push_back(static_cast<double>(r));
    const support::Summary summary = support::summarize(rounds);
    unknown.add_row({Table::cell(n), Table::cell(run.max_radius()),
                     fmt_double(run.average_radius()), fmt_double(summary.p25, 1),
                     fmt_double(summary.median, 1), fmt_double(summary.p75, 1),
                     fmt_double(run.average_radius() /
                                static_cast<double>(algo::cv_schedule_rounds(n))),
                     valid ? "yes" : "NO"});
  }
  result.tables.emplace_back(
      "freeze/repair colouring, n unknown (message formulation); round percentiles show "
      "the early stoppers",
      unknown);
  result.notes.push_back(
      "Expected: `max r` and `avg r` coincide for the known-n schedule and track log* n "
      "(flat, with occasional +1 steps); the unknown-n variant pays a small constant "
      "factor but keeps the log* shape. Theorem 1 of the paper explains why no algorithm "
      "can push the average below Omega(log* n).");
  return result;
}

// ---------------------------------------------------------------- E4 ------

ExperimentResult experiment_neighbourhood_chi(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E4";
  result.title = "Linial lower-bound machinery: chi of neighbourhood graphs B_t(n)";

  Table b0({"n", "vertices", "chi(B_0(n))", "expected n"});
  for (std::size_t n = 4; n <= scale.at_least(8, 5); ++n) {
    const graph::Graph g = analysis::build_neighbourhood_graph(n, 0);
    const auto chi = analysis::chromatic_number(g);
    b0.add_row({Table::cell(n), Table::cell(g.vertex_count()),
                chi ? Table::cell(*chi) : "budget", Table::cell(n)});
  }
  result.tables.emplace_back("radius 0 (B_0(n) is the complete graph K_n)", b0);

  Table b1({"n", "vertices", "edges", "clique LB", "chi(B_1(n))", "greedy UB",
            "3-colourable"});
  const std::size_t n1_max = scale.at_least(11, 5);
  bool three_failed = false;  // B_1(n) is a subgraph of B_1(n+1): once
                              // 3-colouring fails it fails for all larger n,
                              // and chi is non-decreasing in n.
  std::size_t chi_floor = 1;
  for (std::size_t n = 4; n <= n1_max; ++n) {
    const graph::Graph g = analysis::build_neighbourhood_graph(n, 1);
    // Exact chi is kept to sizes where the branch-and-bound settles within
    // seconds, starting the search at the previous size's chi (monotone);
    // 3-colourability (the question the lower bound asks) is decided
    // directly until the first failure and by monotonicity after.
    std::optional<std::size_t> chi;
    if (n <= 8) {
      for (std::size_t k = chi_floor; k <= analysis::greedy_chromatic_upper(g); ++k) {
        const auto feasible = analysis::k_colourable(g, k, 50'000'000);
        if (!feasible.has_value()) break;  // budget
        if (*feasible) {
          chi = k;
          break;
        }
      }
      if (chi) chi_floor = *chi;
    }
    std::string three_cell;
    if (three_failed) {
      three_cell = "no (monotone)";
    } else if (chi.has_value()) {
      // The chi search already settled 3-colourability.
      three_cell = *chi <= 3 ? "yes" : "no";
      if (*chi > 3) three_failed = true;
    } else {
      const auto three = analysis::k_colourable(g, 3, 100'000'000);
      three_cell = three.has_value() ? (*three ? "yes" : "no") : "budget";
      if (three.has_value() && !*three) three_failed = true;
    }
    b1.add_row({Table::cell(n), Table::cell(g.vertex_count()), Table::cell(g.edge_count()),
                Table::cell(analysis::greedy_clique_lower(g)),
                chi ? Table::cell(*chi) : (n <= 8 ? "budget" : "-"),
                Table::cell(analysis::greedy_chromatic_upper(g)), three_cell});
  }
  result.tables.emplace_back("radius 1", b1);
  result.notes.push_back(
      "chi(B_t(n)) <= 3 iff t rounds suffice to 3-colour rings with identifiers from "
      "{1..n}. Expected: chi(B_0(n)) = n; chi(B_1(n)) exceeds 3 already for small n, so "
      "one round is not enough - the concrete base of Linial's Omega(log* n) bound, which "
      "Theorem 1 lifts to the average measure.");
  return result;
}

// ---------------------------------------------------------------- E5 ------

ExperimentResult experiment_adversaries(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E5";
  result.title = "Theorem-1 slice adversary vs random and exact worst case";

  const std::size_t n_max = scale.at_least(512, 64);
  const analysis::Recurrence rec(n_max);
  const auto factory = algo::make_largest_id_view();

  Table table({"n", "rand avg", "slice-adv avg", "hill-climb avg", "exact worst avg",
               "slice/exact", "hill/exact"});
  for (std::size_t n = 64; n <= n_max; n *= 2) {
    const graph::Graph cycle = graph::make_cycle(n);

    SweepOptions sweep_options;
    sweep_options.trials = std::max<std::size_t>(4, scale.at_least(10, 4));
    sweep_options.seed = 99;
    const auto sweep = run_random_sweep(
        {n}, [](std::size_t m) { return graph::make_cycle(m); }, factory, sweep_options);

    analysis::SliceAdversaryOptions slice_options;
    slice_options.seed = 4;
    slice_options.probes = std::max<std::size_t>(2, scale.at_least(4, 2));
    const Measurement slice = run_assignment(
        cycle, analysis::build_slice_adversary(n, factory, slice_options), factory);

    analysis::HillClimbOptions hill_options;
    hill_options.seed = 5;
    hill_options.iterations = std::max<std::size_t>(50, scale.at_least(400, 50));
    const Measurement hill = run_assignment(
        cycle, analysis::hill_climb_adversary(n, factory, hill_options), factory);

    const double exact = static_cast<double>(analysis::predicted_worst_cycle_sum(rec, n)) /
                         static_cast<double>(n);
    table.add_row({Table::cell(n), fmt_double(sweep[0].avg_mean),
                   fmt_double(slice.avg_radius), fmt_double(hill.avg_radius),
                   fmt_double(exact), fmt_double(slice.avg_radius / exact, 2),
                   fmt_double(hill.avg_radius / exact, 2)});
  }
  result.tables.emplace_back("largest-ID under adversarial permutations", table);
  result.notes.push_back(
      "Expected: hill-climb approaches the exact worst case; the slice construction (the "
      "proof device of Theorem 1) deterministically plants high-radius slice centres - its "
      "average sits near the random baseline for largest-ID because this problem's "
      "extremal structure is recursive (captured exactly by the recurrence), whereas for "
      "the colouring lower bound planting per-vertex cost is precisely what the proof "
      "needs (Lemma 3 then spreads it over each slice).");
  return result;
}

// ---------------------------------------------------------------- E6 ------

ExperimentResult experiment_exact_small_n(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E6";
  result.title = "Exact small-n validation and pointwise minimality";

  const std::size_t brute_max = scale.factor >= 1.0 ? 9 : 7;
  const analysis::Recurrence rec(brute_max);

  Table table({"n", "exhaustive worst sum", "predicted n/2 + a(n-1)", "match",
               "permutations"});
  for (std::size_t n = 4; n <= brute_max; ++n) {
    const auto brute = analysis::exhaustive_worst_largest_id_cycle(n);
    const std::uint64_t predicted = analysis::predicted_worst_cycle_sum(rec, n);
    table.add_row({Table::cell(n), Table::cell(brute.max_sum), Table::cell(predicted),
                   brute.max_sum == predicted ? "yes" : "NO",
                   Table::cell(brute.permutations_checked)});
  }
  result.tables.emplace_back("brute force over all cyclic permutations", table);

  Table minimality({"n", "pointwise-minimality violations"});
  for (std::size_t n = 4; n <= std::min<std::size_t>(brute_max, 7); ++n) {
    minimality.add_row(
        {Table::cell(n), Table::cell(analysis::count_pointwise_minimality_violations(n))});
  }
  result.tables.emplace_back("engine radii vs information-theoretic minimum", minimality);

  Table universe({"n", "paper alg rand avg", "universe-aware rand avg", "paper worst avg",
                  "universe-aware on same ids"});
  const std::size_t un_max = scale.at_least(1024, 64);
  const analysis::Recurrence rec_big(un_max);
  for (std::size_t n = 64; n <= un_max; n *= 4) {
    const graph::Graph cycle = graph::make_cycle(n);
    SweepOptions sweep_options;
    sweep_options.trials = std::max<std::size_t>(4, scale.at_least(16, 4));
    sweep_options.seed = 31;
    const auto paper = run_random_sweep(
        {n}, [](std::size_t m) { return graph::make_cycle(m); },
        algo::make_largest_id_view(), sweep_options);
    const auto aware = run_random_sweep(
        {n}, [](std::size_t m) { return graph::make_cycle(m); },
        algo::make_largest_id_universe_aware_view(), sweep_options);
    const graph::IdAssignment worst_ids = analysis::worst_case_cycle_ids(rec_big, n);
    const Measurement worst_paper =
        run_assignment(cycle, worst_ids, algo::make_largest_id_view());
    const Measurement worst_aware =
        run_assignment(cycle, worst_ids, algo::make_largest_id_universe_aware_view());
    universe.add_row({Table::cell(n), fmt_double(paper[0].avg_mean),
                      fmt_double(aware[0].avg_mean), fmt_double(worst_paper.avg_radius),
                      fmt_double(worst_aware.avg_radius)});
  }
  result.tables.emplace_back(
      "ablation: universe-aware refinement (identifiers known to be a permutation)",
      universe);
  result.notes.push_back(
      "Expected: exhaustive == predicted for every n (four independent computations of the "
      "same number agree); zero minimality violations (no correct algorithm can stop "
      "earlier at any vertex under unknown-universe semantics); the universe-aware variant "
      "shaves a constant factor but stays Theta(log n) on average.");
  return result;
}

// ---------------------------------------------------------------- E7 ------

ExperimentResult experiment_dynamic_update(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E7";
  result.title = "Application: label update cost in a dynamic ring";

  Table table({"n", "mean affected", "mean update cost", "full recompute cost",
               "update/full"});
  const std::size_t n_max = scale.at_least(4096, 256);
  const std::size_t trials = std::max<std::size_t>(4, scale.at_least(24, 4));
  support::Xoshiro256 rng(1234);
  for (std::size_t n = 256; n <= n_max; n *= 4) {
    support::RunningStats affected_stats;
    support::RunningStats cost_stats;
    support::RunningStats full_stats;
    for (std::size_t t = 0; t < trials; ++t) {
      const graph::IdAssignment before = graph::IdAssignment::random(n, rng);
      const auto u = support::checked_u32(rng.below(n));
      auto v = support::checked_u32(rng.below(n));
      while (v == u) v = support::checked_u32(rng.below(n));
      const graph::IdAssignment after = before.with_swapped(u, v);
      const auto r_before = algo::largest_id_radii_on_cycle(before);
      const auto r_after = algo::largest_id_radii_on_cycle(after);
      std::uint64_t affected = 0, cost = 0, full = 0;
      for (std::size_t w = 0; w < n; ++w) {
        full += r_after[w];
        if (r_before[w] != r_after[w]) {
          ++affected;
          cost += r_after[w];
        }
      }
      // The changed vertices always re-examine their own neighbourhood.
      affected_stats.add(static_cast<double>(affected));
      cost_stats.add(static_cast<double>(cost));
      full_stats.add(static_cast<double>(full));
    }
    table.add_row({Table::cell(n), fmt_double(affected_stats.mean(), 1),
                   fmt_double(cost_stats.mean(), 1), fmt_double(full_stats.mean(), 1),
                   fmt_double(cost_stats.mean() / full_stats.mean(), 4)});
  }
  result.tables.emplace_back("single random identifier swap, largest-ID labels", table);
  result.notes.push_back(
      "The paper's first motivation: after a change at a random node, the expected "
      "re-labelling work tracks the average measure, not the worst case. Expected: the "
      "affected set and update cost grow polylogarithmically while full recomputation "
      "grows like n log n.");
  return result;
}

// ---------------------------------------------------------------- E8 ------

ExperimentResult experiment_parallel_makespan(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E8";
  result.title = "Application: parallel simulation throughput from early outputs";

  const std::size_t workers = 16;
  Table table({"n", "P", "sum r", "max r", "makespan (list sched)", "makespan (worst-case "
               "budget)", "speedup"});
  const std::size_t n_max = scale.at_least(16384, 1024);
  support::Xoshiro256 rng(77);
  for (std::size_t n = 1024; n <= n_max; n *= 4) {
    const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
    const auto radii = algo::largest_id_radii_on_cycle(ids);
    std::uint64_t sum = 0, max_r = 0;
    for (std::size_t r : radii) {
      sum += r;
      max_r = std::max<std::uint64_t>(max_r, r);
    }
    // Greedy list scheduling of per-node jobs costing r(v)+1 time units
    // (every node does at least one unit of work).
    std::priority_queue<std::uint64_t, std::vector<std::uint64_t>, std::greater<>> loads;
    for (std::size_t p = 0; p < workers; ++p) loads.push(0);
    for (std::size_t r : radii) {
      std::uint64_t load = loads.top();
      loads.pop();
      loads.push(load + r + 1);
    }
    std::uint64_t makespan = 0;
    while (!loads.empty()) {
      makespan = std::max(makespan, loads.top());
      loads.pop();
    }
    // Worst-case provisioning: every job is budgeted max r(v)+1.
    const std::uint64_t budget =
        ((n + workers - 1) / workers) * (max_r + 1);
    table.add_row({Table::cell(n), Table::cell(workers), Table::cell(sum),
                   Table::cell(max_r), Table::cell(makespan), Table::cell(budget),
                   fmt_double(static_cast<double>(budget) / static_cast<double>(makespan),
                              1)});
  }
  result.tables.emplace_back("per-node jobs of duration r(v)+1 on P workers", table);
  result.notes.push_back(
      "The paper's second motivation: a parallel machine simulating the distributed "
      "computation can reuse a worker as soon as a node outputs. Expected: list-scheduling "
      "makespan ~ sum r / P (driven by the average measure), worst-case provisioning ~ "
      "(n/P) * max r; the speedup column grows roughly like n / (P log n) ... max r/avg r.");
  return result;
}

// ---------------------------------------------------------------- E10 -----

ExperimentResult experiment_general_graphs(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E10";
  result.title = "Further work: largest-ID beyond the cycle";

  const std::size_t n = scale.at_least(1024, 64);
  support::Xoshiro256 rng(2718);
  Table table({"family", "n", "m", "avg r", "max r", "avg/log2 n"});
  const auto add = [&](const std::string& name, const graph::Graph& g) {
    const graph::IdAssignment ids = graph::IdAssignment::random(g.vertex_count(), rng);
    const Measurement m = run_assignment(g, ids, algo::make_largest_id_view());
    table.add_row({name, Table::cell(g.vertex_count()), Table::cell(g.edge_count()),
                   fmt_double(m.avg_radius), Table::cell(m.max_radius),
                   fmt_double(m.avg_radius /
                              std::log2(static_cast<double>(g.vertex_count())))});
  };
  // Every family the registry knows, not a hand-picked subset: new
  // generators join this table by registration alone.
  for (const std::string& name : graph::FamilyRegistry::global().names()) {
    const graph::FamilySpec spec{name, {}};
    // Dense families would dominate the run at full scale for no extra
    // insight; their diameter pins both measures already at small n.
    const std::size_t requested =
        name == "complete" || name == "star" ? std::min<std::size_t>(n, 256) : n;
    add(name, graph::FamilyRegistry::global().build(spec, requested, rng));
  }
  result.tables.emplace_back("random identifiers, one run per family", table);
  result.notes.push_back(
      "The paper only treats the cycle and asks about general graphs. Observed shape: "
      "low-diameter families (gnp, complete) pin both measures at the diameter; "
      "path/cycle keep the logarithmic average; trees and grids sit between.");
  return result;
}

// ---------------------------------------------------------------- E11 -----

ExperimentResult experiment_expected_complexity(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E11";
  result.title = "Further work: expected complexity over random permutations";

  Table table({"n", "E[avg] exact", "simulated mean", "sd", "E[avg]/ln n",
               "E[avg] universe-aware", "max (every perm)"});
  const std::size_t n_max = scale.at_least(1u << 14, 64);
  for (std::size_t n = 16; n <= n_max; n *= 4) {
    SweepOptions sweep_options;
    sweep_options.trials = std::max<std::size_t>(6, scale.at_least(30, 6));
    sweep_options.seed = 515;
    const auto sweep = run_random_sweep(
        {n}, [](std::size_t m) { return graph::make_cycle(m); },
        algo::make_largest_id_view(), sweep_options);
    const double exact = analysis::expected_largest_id_average(n);
    table.add_row({Table::cell(n), fmt_double(exact), fmt_double(sweep[0].avg_mean),
                   fmt_double(sweep[0].avg_sd),
                   fmt_double(exact / std::log(static_cast<double>(n))),
                   fmt_double(analysis::expected_universe_aware_average(n)),
                   Table::cell(analysis::deterministic_largest_id_max(n))});
  }
  result.tables.emplace_back("largest-ID on the cycle, uniform permutation", table);
  result.notes.push_back(
      "The paper's conclusion asks for the expectation over a uniformly random identifier "
      "permutation, for both measures. For this algorithm the classic measure is the same "
      "for every permutation (the leader always pays the closure radius), while the "
      "average measure has the exact closed form sum 1/(2d-1) ~ (ln n)/2: expected and "
      "worst-case averages differ only by a constant factor. Expected: `simulated mean` "
      "within a few sd of `E[avg] exact`, and the normalised column approaching 0.5.");
  return result;
}

// ---------------------------------------------------------------- E12 -----

ExperimentResult experiment_greedy_colouring(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E12";
  result.title = "Extension: greedy (Delta+1)-colouring - a second measure gap, on "
                 "every topology";

  const std::size_t n = scale.at_least(1024, 60);
  support::Xoshiro256 rng(606);
  Table table({"family", "n", "Delta+1", "colours used", "avg r (random ids)", "max r",
               "avg r (monotone ids)"});
  const auto add = [&](const std::string& name, const graph::Graph& g,
                       const graph::IdAssignment& monotone_ids) {
    const std::size_t count = g.vertex_count();
    const auto ids = graph::IdAssignment::random(count, rng);
    const local::RunResult random_run =
        local::run_views(g, ids, algo::make_greedy_colouring_view());
    AVGLOCAL_REQUIRE(algo::is_valid_colouring(
        g, random_run.outputs, static_cast<std::int64_t>(graph::max_degree(g)) + 1));
    std::int64_t colours_used = 0;
    for (const std::int64_t c : random_run.outputs) {
      colours_used = std::max(colours_used, c + 1);
    }
    const local::RunResult monotone_run =
        local::run_views(g, monotone_ids, algo::make_greedy_colouring_view());
    table.add_row({name, Table::cell(count),
                   Table::cell(graph::max_degree(g) + 1), Table::cell(colours_used),
                   fmt_double(random_run.average_radius()),
                   Table::cell(random_run.max_radius()),
                   fmt_double(monotone_run.average_radius())});
  };
  add("cycle", graph::make_cycle(n), graph::IdAssignment::identity(n));
  add("path", graph::make_path(n), graph::IdAssignment::identity(n));
  {
    const graph::Graph tree = graph::make_random_tree(n, rng);
    add("random tree", tree, graph::IdAssignment::identity(n));
  }
  {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    add("grid", graph::make_grid(side, side),
        graph::IdAssignment::identity(side * side));
  }
  result.tables.emplace_back(
      "greedy colouring by identifier order (vertex waits for higher-id neighbours)",
      table);
  result.notes.push_back(
      "Extends the paper's further-work question beyond largest-ID: greedy colouring's "
      "radius is the longest increasing identifier path, so monotone identifiers force a "
      "linear average on paths/cycles while random identifiers keep it logarithmic - the "
      "same exponential gap phenomenology on every long-geodesic topology, for a problem "
      "(colouring) where the paper's ring lower bound says the gap cannot appear in the "
      "worst case over permutations with respect to log* alone.");
  return result;
}

// ---------------------------------------------------------------- E13 -----

ExperimentResult experiment_topology_matrix(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E13";
  result.title = "Scenario matrix: node-averaged measures across every registered family";

  const std::size_t n = scale.at_least(512, 48);
  const std::size_t cap = std::max<std::size_t>(8, scale.at_least(48, 8));

  Table table({"family", "algorithm", "n", "trials", "converged", "avg_mean", "ci_hw",
               "p90", "node_mean_max"});
  // The cross-product the registries make reachable: every family against
  // every any-topology view algorithm, through one declarative spec per
  // cell. The adaptive schedule sizes the trial budget per cell - flat
  // radius profiles (complete, star) converge after min_trials, heavy
  // tails spend the cap.
  for (const std::string& family : graph::FamilyRegistry::global().names()) {
    for (const std::string algorithm : {"largest-id", "greedy"}) {
      ScenarioSpec spec;
      spec.family = {family, {}};
      spec.algorithm = algorithm;
      spec.ns = {family == "complete" || family == "star" ? std::min<std::size_t>(n, 128) : n};
      spec.seed = 909;
      spec.schedule.max_trials = cap;
      spec.schedule.min_trials = 8;
      spec.schedule.batch = 8;
      spec.schedule.target_half_width = 0.05;
      const ScenarioResult run = run_scenario(spec);
      const ScenarioPoint& sp = run.points.front();
      table.add_row({family, algorithm, Table::cell(sp.point.n), Table::cell(sp.point.trials),
                     sp.converged ? "yes" : "cap", fmt_double(sp.point.avg_mean),
                     fmt_double(sp.half_width),
                     Table::cell(sp.point.radius.quantiles.size() > 1
                                     ? sp.point.radius.quantiles[1]
                                     : 0),
                     fmt_double(sp.point.node_mean_max)});
    }
  }
  result.tables.emplace_back(
      "adaptive sweeps (target half-width 0.05) per (family, algorithm) scenario", table);
  result.notes.push_back(
      "One ScenarioSpec per cell drives the whole matrix - the topology landscape of "
      "arXiv:2202.04724 against the paper's average measure and the greedy-colouring "
      "extension. Expected shape: low-diameter families converge at min_trials with "
      "avg_mean pinned near the diameter; long-geodesic families (path, cycle, trees, "
      "grid) show the logarithmic averages and spend more of the trial budget.");
  return result;
}

// ---------------------------------------------------------------- E14 -----

ExperimentResult experiment_message_vs_view(const ExperimentScale& scale) {
  ExperimentResult result;
  result.id = "E14";
  result.title = "Message vs view engine: the same problems under both formulations";

  const std::size_t n = scale.at_least(256, 32);
  const std::size_t trials = std::max<std::size_t>(4, scale.at_least(24, 4));

  // One scenario per (problem, formulation) cell; resolve_scenario routes
  // each to its engine, and both engines fill the same accumulators, so
  // every column is directly comparable. The message rows measure output
  // *rounds*; the view rows measure ball radii - for largest-id under
  // flooding knowledge the cross-engine oracle tests pin them equal, for
  // the colourings the gap between the two formulations is the point of
  // the table.
  struct Cell {
    const char* algorithm;
    const char* family;
  };
  const Cell cells[] = {
      {"largest-id", "cycle"},  {"largest-id-msg", "cycle"}, {"cv3", "cycle"},
      {"cv3-msg", "cycle"},     {"local3", "cycle"},         {"greedy", "gnp"},
      {"greedy-msg", "gnp"},
  };

  Table table({"algorithm", "engine", "family", "n", "trials", "avg_mean", "edge_avg_mean",
               "p90", "max_worst"});
  for (const Cell& cell : cells) {
    ScenarioSpec spec;
    spec.family = {cell.family, {}};
    spec.algorithm = cell.algorithm;
    spec.ns = {n};
    spec.seed = 1414;
    spec.schedule.max_trials = trials;
    const ScenarioResult run = run_scenario(spec);
    const ScenarioPoint& sp = run.points.front();
    table.add_row({cell.algorithm, run.spec.engine, cell.family, Table::cell(sp.point.n),
                   Table::cell(sp.point.trials), fmt_double(sp.point.avg_mean),
                   fmt_double(sp.point.edge_avg_mean),
                   Table::cell(sp.point.radius.quantiles.size() > 1
                                   ? sp.point.radius.quantiles[1]
                                   : 0),
                   Table::cell(sp.point.max_worst)});
  }
  result.tables.emplace_back("fixed trial budget per (algorithm, engine) scenario", table);
  result.notes.push_back(
      "Both engines run the identical id permutations (trial streams derive from "
      "(seed, point, trial)), so rows differ only in the formulation. Expected shape: "
      "largest-id agrees across engines on the cycle; cv3-msg pays its fixed known-n "
      "schedule where the view formulation stops per vertex; edge averages "
      "(arXiv:2208.08213) sit between the node average and the worst case.");
  return result;
}

// --------------------------------------------------------------------------

std::vector<std::function<ExperimentResult(const ExperimentScale&)>> all_experiments() {
  return {
      experiment_recurrence_table, experiment_largest_id_gap, experiment_colouring_logstar,
      experiment_neighbourhood_chi, experiment_adversaries, experiment_exact_small_n,
      experiment_dynamic_update, experiment_parallel_makespan, experiment_general_graphs,
      experiment_expected_complexity, experiment_greedy_colouring, experiment_topology_matrix,
      experiment_message_vs_view,
  };
}

std::string render(const ExperimentResult& result) {
  std::ostringstream out;
  out << "# [" << result.id << "] " << result.title << "\n";
  for (const auto& [caption, table] : result.tables) {
    out << "\n## " << caption << "\n\n" << table.to_markdown();
  }
  for (const auto& note : result.notes) {
    out << "\nNote: " << note << "\n";
  }
  return out.str();
}

}  // namespace avglocal::core
