#include "core/batched_sweep.hpp"

#include <algorithm>

#include "core/sweep_driver.hpp"
#include "graph/ids.hpp"
#include "support/assert.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/stats.hpp"

namespace avglocal::core {

void PointAccumulator::append(PointAccumulator&& other) {
  AVGLOCAL_REQUIRE_MSG(other.point_index == point_index && other.n == n && other.edges == edges,
                       "shard partials describe different sweep points");
  AVGLOCAL_REQUIRE_MSG(other.trial_begin == trial_end(),
                       "shard trial ranges must be contiguous and in order");
  AVGLOCAL_REQUIRE(other.node_sum.size() == node_sum.size());
  trial_sum.insert(trial_sum.end(), other.trial_sum.begin(), other.trial_sum.end());
  trial_max.insert(trial_max.end(), other.trial_max.begin(), other.trial_max.end());
  histogram.merge(other.histogram);
  for (std::size_t v = 0; v < node_sum.size(); ++v) node_sum[v] += other.node_sum[v];
  trial_edge_sum.insert(trial_edge_sum.end(), other.trial_edge_sum.begin(),
                        other.trial_edge_sum.end());
  edge_histogram.merge(other.edge_histogram);
}

PointAccumulator make_point_accumulator(const graph::Graph& g, std::size_t point_index,
                                        std::size_t trial_begin, std::size_t trial_end) {
  AVGLOCAL_EXPECTS(trial_begin < trial_end);
  AVGLOCAL_EXPECTS(g.vertex_count() > 0);
  PointAccumulator acc;
  acc.point_index = point_index;
  acc.n = g.vertex_count();
  acc.edges = g.edge_count();
  acc.trial_begin = trial_begin;
  const std::size_t total = trial_end - trial_begin;
  acc.trial_sum.assign(total, 0);
  acc.trial_max.assign(total, 0);
  acc.node_sum.assign(acc.n, 0);
  acc.trial_edge_sum.assign(total, 0);
  return acc;
}

void fill_sweep_batch(std::vector<graph::IdAssignment>& batch, std::size_t n,
                      std::uint64_t point_seed, std::size_t global_begin, std::size_t count) {
  batch.clear();
  for (std::size_t i = 0; i < count; ++i) {
    support::Xoshiro256 rng(support::derive_seed(point_seed, global_begin + i));
    batch.push_back(graph::IdAssignment::random(n, rng));
  }
}

void accumulate_edge_partials(std::span<const std::pair<graph::Vertex, graph::Vertex>> edge_list,
                              std::span<const std::uint32_t> radius_matrix,
                              std::size_t batch_begin, std::size_t batch_size,
                              PointAccumulator& acc, std::vector<std::uint64_t>& edge_counts) {
  for (std::size_t i = 0; i < batch_size; ++i) {
    const std::uint32_t* row = radius_matrix.data() + i * acc.n;
    acc.trial_edge_sum[batch_begin + i] =
        for_each_edge_time(edge_list, row, [&edge_counts](std::size_t t) {
          if (t >= edge_counts.size()) edge_counts.resize(t + 1, 0);
          ++edge_counts[t];
        });
  }
}

void EdgeAccumScratch::bind(std::span<const std::pair<graph::Vertex, graph::Vertex>> edges) {
  if (edge_u.size() == edges.size()) return;
  edge_u.resize(edges.size());
  edge_v.resize(edges.size());
  times.resize(edges.size());
  for (std::size_t k = 0; k < edges.size(); ++k) {
    edge_u[k] = edges[k].first;
    edge_v[k] = edges[k].second;
  }
}

void accumulate_edge_partials(std::span<const std::pair<graph::Vertex, graph::Vertex>> edge_list,
                              std::span<const std::uint32_t> radius_matrix,
                              std::size_t batch_begin, std::size_t batch_size,
                              PointAccumulator& acc, std::vector<std::uint64_t>& edge_counts,
                              EdgeAccumScratch& scratch) {
  scratch.bind(edge_list);
  const std::size_t m = edge_list.size();
  for (std::size_t i = 0; i < batch_size; ++i) {
    const std::uint32_t* row = radius_matrix.data() + i * acc.n;
    // Same times, same canonical order, same integer sum as the
    // for_each_edge_time overload above - only computed eight edges per
    // vector instead of one pair-of-loads at a time.
    support::simd::edge_times_u32(scratch.times.data(), row, scratch.edge_u.data(),
                                  scratch.edge_v.data(), m);
    std::uint64_t sum = 0;
    for (std::size_t k = 0; k < m; ++k) {
      const std::size_t t = scratch.times[k];
      if (t >= edge_counts.size()) edge_counts.resize(t + 1, 0);
      ++edge_counts[t];
      sum += t;
    }
    acc.trial_edge_sum[batch_begin + i] = sum;
  }
}

PointAccumulator accumulate_point(const graph::Graph& g, std::size_t point_index,
                                  const local::ViewAlgorithmFactory& algorithm,
                                  const BatchedSweepOptions& options, std::size_t trial_begin,
                                  std::size_t trial_end, support::ThreadPool* pool) {
  // Thin shim over the engine-agnostic driver (core/sweep_driver.hpp); the
  // per-worker partial folding and edge accumulation that used to live
  // here are now ViewBackend::run_batch and SweepDriver::run_lane.
  const ViewBackend backend([&algorithm](std::size_t) { return algorithm; }, options.semantics);
  SweepDriver driver(backend, options, pool);
  SweepDriver::Point point = driver.prepare(g, point_index);
  return driver.run_trials(point, trial_begin, trial_end);
}

BatchedSweepPoint finalize_point(const PointAccumulator& acc, const BatchedSweepOptions& options) {
  AVGLOCAL_EXPECTS(acc.trial_begin == 0 && acc.trial_count() == options.trials);
  AVGLOCAL_EXPECTS(acc.n > 0 && acc.node_sum.size() == acc.n);

  BatchedSweepPoint point;
  point.n = acc.n;
  point.trials = options.trials;

  // Same accumulation order (global trial order) and the same divisions as
  // run_random_sweep, so these aggregates match it bit for bit.
  support::RunningStats avg_stats;
  support::RunningStats max_stats;
  for (std::size_t t = 0; t < acc.trial_count(); ++t) {
    avg_stats.add(static_cast<double>(acc.trial_sum[t]) / static_cast<double>(acc.n));
    max_stats.add(static_cast<double>(acc.trial_max[t]));
    point.max_worst = std::max(point.max_worst, static_cast<std::size_t>(acc.trial_max[t]));
  }
  point.avg_mean = avg_stats.mean();
  point.avg_sd = avg_stats.stddev();
  point.avg_worst = avg_stats.max();
  point.max_mean = max_stats.mean();

  point.radius = summarize_radius_histogram(acc.histogram, options.quantile_probs);

  point.edges = acc.edges;
  if (acc.edges > 0) {
    AVGLOCAL_EXPECTS(acc.trial_edge_sum.size() == acc.trial_count());
    support::RunningStats edge_stats;
    for (std::size_t t = 0; t < acc.trial_count(); ++t) {
      edge_stats.add(static_cast<double>(acc.trial_edge_sum[t]) /
                     static_cast<double>(acc.edges));
    }
    point.edge_avg_mean = edge_stats.mean();
    point.edge_avg_sd = edge_stats.stddev();
  }
  point.edge_time = summarize_radius_histogram(acc.edge_histogram, options.quantile_probs);

  const auto trials = static_cast<double>(options.trials);
  const auto [min_it, max_it] = std::minmax_element(acc.node_sum.begin(), acc.node_sum.end());
  point.node_mean_min = static_cast<double>(*min_it) / trials;
  point.node_mean_max = static_cast<double>(*max_it) / trials;
  if (options.node_profile) {
    point.node_mean.reserve(acc.n);
    for (std::uint64_t sum : acc.node_sum) {
      point.node_mean.push_back(static_cast<double>(sum) / trials);
    }
  }
  return point;
}

std::vector<BatchedSweepPoint> run_batched_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const AlgorithmProvider& algorithms,
                                                 const BatchedSweepOptions& options) {
  // One pool for the whole sweep, as in run_random_sweep - but without the
  // trial clamp: the batched engine parallelises over vertices, so every
  // worker stays busy regardless of the trial count.
  const ViewBackend backend(algorithms, options.semantics);
  const SweepPool pool(options);
  return SweepDriver(backend, options, pool.get()).run(ns, graphs);
}

std::vector<BatchedSweepPoint> run_batched_sweep(const std::vector<std::size_t>& ns,
                                                 const GraphFactory& graphs,
                                                 const local::ViewAlgorithmFactory& algorithm,
                                                 const BatchedSweepOptions& options) {
  return run_batched_sweep(
      ns, graphs, [&algorithm](std::size_t) { return algorithm; }, options);
}

}  // namespace avglocal::core
