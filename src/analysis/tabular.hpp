// Executable Lemma 2: minimal algorithms and the improvement transformation.
//
// Lemma 2 of the paper says: in a *minimal* 4-colouring algorithm, radiuses
// are smooth - between vertices x and y separated by k vertices, nobody
// needs more than max{r(x), r(y)} + k. The proof is constructive: from any
// algorithm A violating the bound, build a strictly better A' in which the
// vertices between x and y stop at the threshold tau = max{r(x), r(y)} + k
// and output by two local rules (avoid the colour of a neighbour that
// stopped strictly earlier; otherwise colour by the parity of the distance
// to the larger-identifier endpoint, palettes {0,1} / {2,3}).
//
// This module makes that proof executable:
//  * RingViewFunction - the "normal form" of a view algorithm on oriented
//    rings: a memoized function from view keys to decisions;
//  * find_smoothness_violation - locates (x, y, k, offenders) on an
//    instance;
//  * Lemma2Improved - the transformed algorithm A', runnable on instances,
//    whose validity and dominance tests verify the proof's claims.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "local/view_engine.hpp"

namespace avglocal::analysis {

/// A radius-r view of an oriented ring, flattened to 2r+1 identifiers:
/// [ccw_r, ..., ccw_1, own, cw_1, ..., cw_r]. The centre sits at index r.
using RingViewKey = std::vector<std::uint64_t>;

/// Extracts the radius-r view of vertex v from a cyclic arrangement
/// (requires 2r+1 <= ids.size()).
RingViewKey ring_view_key(const std::vector<std::uint64_t>& ids, std::size_t v, std::size_t r);

/// Outputs and stop radii of one run over a ring instance.
struct InstanceRun {
  std::vector<std::int64_t> outputs;
  std::vector<std::size_t> radii;
};

/// Memoized normal form of a deterministic view algorithm on oriented
/// rings: a pure function from RingViewKey to a decision (nullopt = grow).
/// Queries replay the prefix views to a fresh algorithm instance, so any
/// stateful ViewAlgorithm whose behaviour depends only on the view sequence
/// is supported.
class RingViewFunction {
 public:
  explicit RingViewFunction(local::ViewAlgorithmFactory factory);

  /// Decision of the algorithm on this view.
  std::optional<std::int64_t> decide(const RingViewKey& view) const;

  /// Stop radius and output of vertex v on the instance; radii are capped
  /// by closure (a view spanning the whole ring), past which the query
  /// throws std::runtime_error if the algorithm still grows.
  std::pair<std::int64_t, std::size_t> run_vertex(const std::vector<std::uint64_t>& ids,
                                                  std::size_t v) const;

  InstanceRun run_instance(const std::vector<std::uint64_t>& ids) const;

 private:
  local::ViewAlgorithmFactory factory_;
  mutable std::map<RingViewKey, std::optional<std::int64_t>> memo_;
};

/// A located violation of the Lemma 2 smoothness bound on an instance.
struct SmoothnessViolation {
  std::size_t x = 0;  ///< endpoint position with the larger identifier
  std::size_t y = 0;  ///< the other endpoint position
  std::size_t k = 0;  ///< number of interior vertices on the cw arc x -> y
  std::size_t tau = 0;
  std::vector<std::size_t> offenders;  ///< interior positions with r > tau
};

/// Scans all (x, y, k) on the instance for radius-smoothness violations of
/// A; returns the violation with the smallest tau, if any.
std::optional<SmoothnessViolation> find_smoothness_violation(
    const RingViewFunction& algorithm, const std::vector<std::uint64_t>& ids);

/// The transformed algorithm A' of Lemma 2's proof, built from A, the
/// instance that exhibits the violation, and the violation itself.
class Lemma2Improved {
 public:
  Lemma2Improved(const RingViewFunction& base, std::vector<std::uint64_t> instance,
                 SmoothnessViolation violation);

  /// Runs A' on an arbitrary instance (same semantics as RingViewFunction).
  InstanceRun run_instance(const std::vector<std::uint64_t>& ids) const;

  std::size_t tau() const noexcept { return violation_.tau; }

 private:
  std::optional<std::int64_t> decide(const RingViewKey& view) const;
  std::optional<std::int64_t> override_colour(const RingViewKey& view) const;

  const RingViewFunction* base_;
  std::vector<std::uint64_t> instance_;
  SmoothnessViolation violation_;
  /// The slice: identifiers from x's view start to y's view end, in cw
  /// order, plus the positions of x and y within it.
  std::vector<std::uint64_t> slice_;
  std::size_t x_in_slice_ = 0;
  std::size_t y_in_slice_ = 0;
};

}  // namespace avglocal::analysis
