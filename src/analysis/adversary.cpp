#include "analysis/adversary.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "graph/generators.hpp"
#include "support/assert.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace avglocal::analysis {

namespace {

/// Runs the algorithm on a cycle carrying `ids` and returns (radii, result
/// of max element).
local::RunResult run_on_cycle(const std::vector<std::uint64_t>& ids,
                              const local::ViewAlgorithmFactory& factory,
                              local::ViewSemantics semantics) {
  const graph::Graph cycle = graph::make_cycle(ids.size());
  local::ViewEngineOptions options;
  options.semantics = semantics;
  return local::run_views(cycle, graph::IdAssignment(ids), factory, options);
}

}  // namespace

graph::IdAssignment build_slice_adversary(std::size_t n,
                                          const local::ViewAlgorithmFactory& factory,
                                          const SliceAdversaryOptions& options) {
  AVGLOCAL_EXPECTS(n >= 4);
  AVGLOCAL_EXPECTS(options.probes >= 1);
  support::Xoshiro256 rng(options.seed);

  std::vector<std::uint64_t> pool(n);
  for (std::size_t i = 0; i < n; ++i) pool[i] = i + 1;
  support::shuffle(pool, rng);

  const std::size_t target_radius =
      options.slice_radius != 0
          ? options.slice_radius
          : static_cast<std::size_t>(support::ceil_log2(std::max<std::uint64_t>(n, 2)));

  std::vector<std::uint64_t> pi;
  pi.reserve(n);
  while (pool.size() > n / 2 && pool.size() >= 4 && pool.size() > 2 * target_radius + 1) {
    const std::size_t m = pool.size();
    // Probe a few arrangements of the remaining identifiers; keep the one
    // with the largest single-vertex radius (some vertex always reaches the
    // closure radius, so best_radius >= target_radius whenever the pool is
    // large enough).
    std::vector<std::uint64_t> best_arrangement;
    std::size_t best_radius = 0;
    std::size_t best_vertex = 0;
    for (std::size_t probe = 0; probe < options.probes; ++probe) {
      std::vector<std::uint64_t> arrangement = pool;
      support::shuffle(arrangement, rng);
      const local::RunResult run = run_on_cycle(arrangement, factory, options.semantics);
      const auto it = std::max_element(run.radii.begin(), run.radii.end());
      if (best_arrangement.empty() || *it > best_radius) {
        best_radius = *it;
        best_vertex = static_cast<std::size_t>(it - run.radii.begin());
        best_arrangement = std::move(arrangement);
      }
    }
    // Copy the ball slice of radius min(best_radius, r*) around the worst
    // vertex, in arc order. Truncating at r* keeps slices narrow, as in the
    // proof; the centre still pays at least the truncated radius under pi.
    const std::size_t planted = std::min(best_radius, target_radius);
    const std::size_t span = std::min(2 * planted + 1, m);
    std::vector<std::uint64_t> slice;
    slice.reserve(span);
    const std::size_t start = (best_vertex + m - planted) % m;
    for (std::size_t i = 0; i < span; ++i) slice.push_back(best_arrangement[(start + i) % m]);
    pi.insert(pi.end(), slice.begin(), slice.end());
    // Remove the slice identifiers from the pool.
    std::vector<std::uint64_t> rest;
    rest.reserve(m - span);
    for (std::uint64_t id : pool) {
      if (std::find(slice.begin(), slice.end(), id) == slice.end()) rest.push_back(id);
    }
    pool = std::move(rest);
    if (span >= m) break;
  }
  // Tail: arbitrary order.
  support::shuffle(pool, rng);
  pi.insert(pi.end(), pool.begin(), pool.end());
  AVGLOCAL_ASSERT(pi.size() == n);
  return graph::IdAssignment(std::move(pi));
}

graph::IdAssignment hill_climb_adversary(std::size_t n,
                                         const local::ViewAlgorithmFactory& factory,
                                         const HillClimbOptions& options) {
  AVGLOCAL_EXPECTS(n >= 3);
  support::Xoshiro256 rng(options.seed);
  std::vector<std::uint64_t> ids(n);
  for (std::size_t i = 0; i < n; ++i) ids[i] = i + 1;
  support::shuffle(ids, rng);

  const auto objective = [&](const std::vector<std::uint64_t>& candidate) {
    return run_on_cycle(candidate, factory, options.semantics).sum_radius();
  };
  std::uint64_t best = objective(ids);
  for (std::size_t iter = 0; iter < options.iterations; ++iter) {
    const auto i = static_cast<std::size_t>(rng.below(n));
    const auto j = static_cast<std::size_t>(rng.below(n));
    if (i == j) continue;
    std::swap(ids[i], ids[j]);
    const std::uint64_t value = objective(ids);
    if (value >= best) {
      best = value;
    } else {
      std::swap(ids[i], ids[j]);  // revert
    }
  }
  return graph::IdAssignment(std::move(ids));
}

}  // namespace avglocal::analysis
