// Expected complexity over uniformly random identifier permutations - the
// question raised in the paper's conclusion ("it would also be interesting
// to begin to study the expectancy of the running time ... where the
// permutation of the identifiers is taken uniformly at random, for both the
// classic and the new measure").
//
// For the straightforward largest-ID algorithm on the n-cycle:
//  * the classic measure is deterministic: the maximum-identifier vertex
//    always needs the closure radius ceil((n-1)/2), every other vertex needs
//    less, so max_v r(v) = ceil((n-1)/2) for every permutation;
//  * the average measure concentrates: E[r(v)] has the exact closed form
//      E[r(v)] = sum_{d=1}^{ceil((n-1)/2)} 1/(2d-1)  ~  (ln n)/2 + O(1),
//    since r(v) >= d iff v holds the maximum of its (2d-1)-window.
// The universe-aware refinement admits an exact hypergeometric formula,
// conditioning on the rank of the vertex's own identifier.
#pragma once

#include <cstddef>

namespace avglocal::analysis {

/// Exact E[r(v)] (= E[average radius], by symmetry) of the paper's
/// largest-ID algorithm on the n-cycle under a uniform permutation.
double expected_largest_id_average(std::size_t n);

/// Exact E[r(v)] of the universe-aware refinement (identifiers known to be
/// a permutation of {1..n}) under a uniform permutation.
double expected_universe_aware_average(std::size_t n);

/// The classic measure of the run, identical for every permutation:
/// ceil((n-1)/2).
std::size_t deterministic_largest_id_max(std::size_t n);

/// Brute-force E[average radius] by enumerating all (n-1)! cyclic
/// arrangements; n <= 10. Used to validate the closed forms exactly.
double brute_force_expected_average(std::size_t n, bool universe_aware);

}  // namespace avglocal::analysis
