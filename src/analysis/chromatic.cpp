#include "analysis/chromatic.hpp"

#include <algorithm>
#include <vector>

#include "support/assert.hpp"

namespace avglocal::analysis {

std::size_t greedy_chromatic_upper(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  std::vector<graph::Vertex> order(n);
  for (graph::Vertex v = 0; v < n; ++v) order[v] = v;
  std::sort(order.begin(), order.end(),
            [&g](graph::Vertex a, graph::Vertex b) { return g.degree(a) > g.degree(b); });
  std::vector<int> colour(n, -1);
  std::size_t used = 0;
  std::vector<bool> taken;
  for (graph::Vertex v : order) {
    taken.assign(used + 1, false);
    for (graph::Vertex u : g.neighbours(v)) {
      if (colour[u] >= 0 && static_cast<std::size_t>(colour[u]) <= used) {
        taken[static_cast<std::size_t>(colour[u])] = true;
      }
    }
    std::size_t c = 0;
    while (c < taken.size() && taken[c]) ++c;
    colour[v] = static_cast<int>(c);
    used = std::max(used, c + 1);
  }
  return used;
}

std::size_t greedy_clique_lower(const graph::Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n == 0) return 0;
  // Grow a clique greedily from the highest-degree vertex.
  graph::Vertex seed = 0;
  for (graph::Vertex v = 1; v < n; ++v) {
    if (g.degree(v) > g.degree(seed)) seed = v;
  }
  std::vector<graph::Vertex> clique{seed};
  std::vector<graph::Vertex> candidates(g.neighbours(seed).begin(), g.neighbours(seed).end());
  std::sort(candidates.begin(), candidates.end(),
            [&g](graph::Vertex a, graph::Vertex b) { return g.degree(a) > g.degree(b); });
  for (graph::Vertex v : candidates) {
    bool adjacent_to_all = true;
    for (graph::Vertex u : clique) {
      if (!g.has_edge(v, u)) {
        adjacent_to_all = false;
        break;
      }
    }
    if (adjacent_to_all) clique.push_back(v);
  }
  return clique.size();
}

namespace {

class DsaturSolver {
 public:
  DsaturSolver(const graph::Graph& g, std::size_t k, std::uint64_t budget)
      : g_(&g), k_(k), budget_(budget), colour_(g.vertex_count(), -1),
        saturation_(g.vertex_count()), counts_(g.vertex_count()),
        sat_degree_(g.vertex_count(), 0) {
    for (auto& s : saturation_) s.assign(k, false);
    for (auto& c : counts_) c.assign(k, 0);
  }

  std::optional<bool> solve() { return recurse(0); }

 private:
  /// nullopt = budget exhausted; otherwise k-colourability of the rest.
  std::optional<bool> recurse(std::size_t coloured) {
    if (coloured == g_->vertex_count()) return true;
    if (budget_ == 0) return std::nullopt;
    --budget_;

    // DSATUR with fail-fast: a vertex with all k colours saturated is a
    // dead end; a vertex with k-1 saturated is a forced move - both are
    // found during the same max-saturation scan (sat_degree_ is maintained
    // incrementally by assign/unassign).
    graph::Vertex pick = 0;
    int best_sat = -1;
    for (graph::Vertex v = 0; v < g_->vertex_count(); ++v) {
      if (colour_[v] >= 0) continue;
      const int sat = sat_degree_[v];
      if (sat >= static_cast<int>(k_)) return false;  // dead end: prune
      if (sat > best_sat ||
          (sat == best_sat && g_->degree(v) > g_->degree(pick))) {
        best_sat = sat;
        pick = v;
      }
    }

    // Symmetry breaking: allow at most one colour index beyond those used.
    const std::size_t max_colour = std::min(k_, used_ + 1);
    for (std::size_t c = 0; c < max_colour; ++c) {
      if (saturation_[pick][c]) continue;
      assign(pick, static_cast<int>(c));
      const std::size_t used_before = used_;
      used_ = std::max(used_, c + 1);
      const auto sub = recurse(coloured + 1);
      used_ = used_before;
      unassign(pick, static_cast<int>(c));
      if (!sub.has_value()) return std::nullopt;
      if (*sub) return true;
    }
    return false;
  }

  void assign(graph::Vertex v, int c) {
    colour_[v] = c;
    for (graph::Vertex u : g_->neighbours(v)) counts_push(u, c);
  }

  void unassign(graph::Vertex v, int c) {
    colour_[v] = -1;
    for (graph::Vertex u : g_->neighbours(v)) counts_pop(u, c);
  }

  void counts_push(graph::Vertex u, int c) {
    if (counts_[u][static_cast<std::size_t>(c)]++ == 0) {
      saturation_[u][static_cast<std::size_t>(c)] = true;
      ++sat_degree_[u];
    }
  }

  void counts_pop(graph::Vertex u, int c) {
    if (--counts_[u][static_cast<std::size_t>(c)] == 0) {
      saturation_[u][static_cast<std::size_t>(c)] = false;
      --sat_degree_[u];
    }
  }

  const graph::Graph* g_;
  std::size_t k_;
  std::uint64_t budget_;
  std::vector<int> colour_;
  std::vector<std::vector<bool>> saturation_;
  std::vector<std::vector<int>> counts_;
  std::vector<int> sat_degree_;
  std::size_t used_ = 0;
};

}  // namespace

std::optional<bool> k_colourable(const graph::Graph& g, std::size_t k,
                                 std::uint64_t node_budget) {
  AVGLOCAL_EXPECTS(k >= 1);
  if (g.vertex_count() == 0) return true;
  DsaturSolver solver(g, k, node_budget);
  return solver.solve();
}

std::optional<std::size_t> chromatic_number(const graph::Graph& g, std::uint64_t node_budget) {
  if (g.vertex_count() == 0) return 0;
  const std::size_t lower = std::max<std::size_t>(1, greedy_clique_lower(g));
  const std::size_t upper = greedy_chromatic_upper(g);
  for (std::size_t k = lower; k <= upper; ++k) {
    const auto feasible = k_colourable(g, k, node_budget);
    if (!feasible.has_value()) return std::nullopt;
    if (*feasible) return k;
  }
  return upper;
}

}  // namespace avglocal::analysis
