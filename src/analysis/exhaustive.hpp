// Exhaustive verification at small n: four independent ways to compute the
// worst-case radius sum must agree (recurrence DP, A000788 closed form,
// explicit extremal construction, and brute force over all permutations).
#pragma once

#include <cstdint>

#include "graph/ids.hpp"
#include "local/view_engine.hpp"

namespace avglocal::analysis {

struct ExhaustiveCycleResult {
  std::uint64_t max_sum = 0;
  std::vector<std::uint64_t> argmax_ids;  // ids[v] for the worst arrangement
  std::uint64_t permutations_checked = 0;
};

/// Brute force over every cyclic arrangement of {1..n} (identifier n pinned
/// at vertex 0 to quotient rotations) of the largest-ID radius sum.
/// Cost (n-1)! * O(n); intended for n <= 10.
ExhaustiveCycleResult exhaustive_worst_largest_id_cycle(std::size_t n);

/// Runs the actual view engine on every arrangement and counts vertices
/// whose engine radius differs from the information-theoretic minimum
/// min(dist to larger id, closure radius). Zero means the implementation is
/// pointwise minimal on every instance of size n. Intended for n <= 7.
std::uint64_t count_pointwise_minimality_violations(std::size_t n);

}  // namespace avglocal::analysis
