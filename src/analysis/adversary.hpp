// Adversarial identifier permutations.
//
// Theorem 1's proof builds a bad permutation by *slice concatenation*: find
// an instance where some vertex needs a large radius, copy the identifier
// slice of that vertex's ball to the front of the permutation, and repeat on
// the remaining identifiers until fewer than n/2 remain. Because the slice
// centre's view inside the copied arc is unchanged, its radius under the
// built permutation is at least as large as in the source instance; Lemma 3
// then lifts per-vertex cost to average cost.
//
// build_slice_adversary implements that construction generically against
// any view algorithm (the "vertex with a large radius" oracle is realised
// by probing random arrangements and picking the worst). The hill climber
// is an independent, gradient-free adversary used to cross-check.
#pragma once

#include <cstdint>

#include "graph/ids.hpp"
#include "local/view_engine.hpp"

namespace avglocal::analysis {

struct SliceAdversaryOptions {
  /// Random arrangements probed per iteration to find a high-radius vertex.
  std::size_t probes = 4;
  std::uint64_t seed = 1;
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;

  /// Radius of the copied ball slice, the r* of the proof (which uses
  /// (1/2) log*(n/2) for colouring). 0 = automatic: ceil(log2 n), matching
  /// the Theta(log n) average of the largest-ID problem. A vertex whose
  /// source radius reaches r* keeps radius >= r* under the built
  /// permutation, because its views below r* are copied verbatim.
  std::size_t slice_radius = 0;
};

/// Builds an n-vertex cycle permutation by Theorem-1 slice concatenation
/// against `factory`'s algorithm.
graph::IdAssignment build_slice_adversary(std::size_t n,
                                          const local::ViewAlgorithmFactory& factory,
                                          const SliceAdversaryOptions& options = {});

struct HillClimbOptions {
  std::size_t iterations = 2000;
  std::uint64_t seed = 1;
  local::ViewSemantics semantics = local::ViewSemantics::kInducedBall;
};

/// Random-swap hill climbing maximising the average radius of `factory`'s
/// algorithm on the n-cycle. Returns the best assignment found.
graph::IdAssignment hill_climb_adversary(std::size_t n,
                                         const local::ViewAlgorithmFactory& factory,
                                         const HillClimbOptions& options = {});

}  // namespace avglocal::analysis
