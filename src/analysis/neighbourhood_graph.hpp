// Linial's neighbourhood graphs B_t(n) for the directed ring.
//
// A t-round algorithm on the oriented ring is exactly a function from
// radius-t views to outputs. Vertices of B_t(n) are the possible views -
// (2t+1)-tuples of distinct identifiers from {1..n} - and two views are
// adjacent when they can occur at consecutive ring vertices (one is the
// clockwise shift of the other with a fresh identifier appended). A t-round
// algorithm properly c-colours every long ring iff c >= chi(B_t(n)); Linial
// proved chi(B_t(n)) = Omega(log^(2t) n), which yields the Omega(log* n)
// ring-colouring lower bound the paper's Theorem 1 builds on. Here we build
// B_t(n) explicitly and compute its chromatic number for small n, making
// the lower-bound machinery concrete and testable.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace avglocal::analysis {

/// Number of vertices of B_t(n): n * (n-1) * ... * (n-2t).
std::size_t neighbourhood_graph_size(std::size_t n, int t);

/// Builds B_t(n). Requires n >= 2t+2 (views of consecutive vertices must be
/// realisable) and refuses instances above `max_vertices` (default 200k)
/// with std::invalid_argument.
graph::Graph build_neighbourhood_graph(std::size_t n, int t, std::size_t max_vertices = 200'000);

}  // namespace avglocal::analysis
