// OEIS A000788: partial sums of binary digit counts.
//
//   A000788(n) = sum_{i=0..n} popcount(i)
//
// The paper identifies the worst-case radius-sum recurrence a(n) with this
// sequence (a(n) = A000788(n), verified in tests) and uses its classic
// Theta(n log n) growth: A000788(n) ~ (n log2 n) / 2.
#pragma once

#include <cstdint>

namespace avglocal::analysis {

/// Total number of set bits among 0, 1, ..., n-1, in O(log n) time.
std::uint64_t total_ones_below(std::uint64_t n);

/// A000788(n) = popcount sum over 0..n (inclusive).
std::uint64_t a000788(std::uint64_t n);

}  // namespace avglocal::analysis
