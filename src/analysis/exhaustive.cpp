#include "analysis/exhaustive.hpp"

#include <algorithm>
#include <numeric>

#include "algo/largest_id.hpp"
#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace avglocal::analysis {

namespace {

/// Radius sum of the straightforward algorithm for the arrangement `ids`
/// (ids[v] = identifier of cycle vertex v), allocation-free inner loop.
std::uint64_t radius_sum(const std::vector<std::uint64_t>& ids) {
  const std::size_t n = ids.size();
  const std::size_t cover = n / 2;  // ceil((n-1)/2)
  std::uint64_t sum = 0;
  for (std::size_t v = 0; v < n; ++v) {
    std::size_t r = cover;
    for (std::size_t d = 1; d < cover; ++d) {
      if (ids[(v + d) % n] > ids[v] || ids[(v + n - d) % n] > ids[v]) {
        r = d;
        break;
      }
    }
    sum += r;
  }
  return sum;
}

}  // namespace

ExhaustiveCycleResult exhaustive_worst_largest_id_cycle(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  AVGLOCAL_EXPECTS_MSG(n <= 11, "factorial brute force capped at n = 11");
  std::vector<std::uint64_t> ids(n);
  ids[0] = n;
  std::vector<std::uint64_t> rest(n - 1);
  std::iota(rest.begin(), rest.end(), std::uint64_t{1});

  ExhaustiveCycleResult result;
  do {
    std::copy(rest.begin(), rest.end(), ids.begin() + 1);
    const std::uint64_t sum = radius_sum(ids);
    ++result.permutations_checked;
    if (sum > result.max_sum) {
      result.max_sum = sum;
      result.argmax_ids = ids;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
  return result;
}

std::uint64_t count_pointwise_minimality_violations(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  AVGLOCAL_EXPECTS_MSG(n <= 8, "engine-backed brute force capped at n = 8");
  const graph::Graph cycle = graph::make_cycle(n);
  std::vector<std::uint64_t> ids(n);
  ids[0] = n;
  std::vector<std::uint64_t> rest(n - 1);
  std::iota(rest.begin(), rest.end(), std::uint64_t{1});

  std::uint64_t violations = 0;
  do {
    std::copy(rest.begin(), rest.end(), ids.begin() + 1);
    const graph::IdAssignment assignment{std::vector<std::uint64_t>(ids)};
    const local::RunResult run =
        local::run_views(cycle, assignment, algo::make_largest_id_view());
    const auto expected = algo::largest_id_radii_on_cycle(assignment);
    for (std::size_t v = 0; v < n; ++v) {
      if (run.radii[v] != expected[v]) ++violations;
    }
  } while (std::next_permutation(rest.begin(), rest.end()));
  return violations;
}

}  // namespace avglocal::analysis
