// The paper's Section 2 recurrence and its extremal constructions.
//
//   a(p) = max_{1 <= k <= ceil(p/2)} { k + a(k-1) + a(p-k) },  a(0)=0, a(1)=1
//
// a(p) is the worst case, over identifier arrangements, of the sum of
// radiuses of the straightforward largest-ID algorithm on a p-vertex
// segment whose two walls carry identifiers larger than everything inside.
// The paper notes a(n) is Theta(n log n) and points at OEIS A000788; our
// tests verify a(p) == A000788(p) exactly.
//
// On the n-cycle the worst-case radius sum is ceil((n-1)/2) + a(n-1): the
// maximum-identifier vertex pays the closure radius and the remaining n-1
// vertices form a segment walled by it on both sides.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.hpp"

namespace avglocal::analysis {

/// Dynamic program for a(p) with argmax bookkeeping. Construction is
/// O(max_p^2); queries are O(1).
class Recurrence {
 public:
  /// Tabulates a(0..max_p).
  explicit Recurrence(std::size_t max_p);

  std::size_t max_p() const noexcept { return a_.size() - 1; }

  /// a(p); p <= max_p.
  std::uint64_t a(std::size_t p) const;

  /// The smallest maximising split position k for p >= 2.
  std::size_t best_k(std::size_t p) const;

 private:
  std::vector<std::uint64_t> a_;
  std::vector<std::size_t> best_k_;
};

/// Worst-case arrangement of ranks {1..p} on a p-vertex segment (positions
/// 0..p-1, both walls larger than p): recursively places the segment
/// maximum at distance best_k from the nearer wall. The returned values are
/// ranks; any order-isomorphic identifier set behaves identically.
std::vector<std::uint64_t> worst_case_segment_ids(const Recurrence& rec, std::size_t p);

/// Worst-case identifier assignment on the n-cycle (identifiers {1..n}):
/// id n at vertex 0, and the worst-case segment on vertices 1..n-1.
graph::IdAssignment worst_case_cycle_ids(const Recurrence& rec, std::size_t n);

/// ceil((n-1)/2) + a(n-1): the predicted worst-case radius sum on the
/// n-cycle (validated by simulation and exhaustive search in tests).
std::uint64_t predicted_worst_cycle_sum(const Recurrence& rec, std::size_t n);

}  // namespace avglocal::analysis
