#include "analysis/recurrence.hpp"

#include <span>

#include "support/assert.hpp"

namespace avglocal::analysis {

Recurrence::Recurrence(std::size_t max_p) : a_(max_p + 1, 0), best_k_(max_p + 1, 0) {
  AVGLOCAL_EXPECTS(max_p >= 1);
  a_[1] = 1;
  best_k_[1] = 1;
  for (std::size_t p = 2; p <= max_p; ++p) {
    std::uint64_t best = 0;
    std::size_t arg = 1;
    const std::size_t half = (p + 1) / 2;
    for (std::size_t k = 1; k <= half; ++k) {
      const std::uint64_t value = k + a_[k - 1] + a_[p - k];
      if (value > best) {
        best = value;
        arg = k;
      }
    }
    a_[p] = best;
    best_k_[p] = arg;
  }
}

std::uint64_t Recurrence::a(std::size_t p) const {
  AVGLOCAL_EXPECTS(p < a_.size());
  return a_[p];
}

std::size_t Recurrence::best_k(std::size_t p) const {
  AVGLOCAL_EXPECTS(p >= 1 && p < best_k_.size());
  return best_k_[p];
}

namespace {

/// Fills positions [offset, offset+p) with ranks [lo_rank, lo_rank+p),
/// arranged worst-case for a segment walled by larger values on both sides.
void fill_segment(const Recurrence& rec, std::span<std::uint64_t> out, std::size_t offset,
                  std::size_t p, std::uint64_t lo_rank) {
  if (p == 0) return;
  if (p == 1) {
    out[offset] = lo_rank;
    return;
  }
  const std::size_t k = rec.best_k(p);
  // Segment maximum at position k-1 (distance k from the left wall).
  out[offset + k - 1] = lo_rank + p - 1;
  // Left part: k-1 vertices; right part: p-k vertices. Only relative order
  // matters, so hand each part a contiguous rank block below the maximum.
  fill_segment(rec, out, offset, k - 1, lo_rank + (p - k));
  fill_segment(rec, out, offset + k, p - k, lo_rank);
}

}  // namespace

std::vector<std::uint64_t> worst_case_segment_ids(const Recurrence& rec, std::size_t p) {
  AVGLOCAL_EXPECTS(p <= rec.max_p());
  std::vector<std::uint64_t> out(p, 0);
  fill_segment(rec, out, 0, p, 1);
  return out;
}

graph::IdAssignment worst_case_cycle_ids(const Recurrence& rec, std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  AVGLOCAL_EXPECTS(n - 1 <= rec.max_p());
  std::vector<std::uint64_t> ids(n, 0);
  ids[0] = n;
  std::span<std::uint64_t> span(ids);
  fill_segment(rec, span, 1, n - 1, 1);
  return graph::IdAssignment(std::move(ids));
}

std::uint64_t predicted_worst_cycle_sum(const Recurrence& rec, std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  AVGLOCAL_EXPECTS(n - 1 <= rec.max_p());
  return static_cast<std::uint64_t>(n / 2) + rec.a(n - 1);
}

}  // namespace avglocal::analysis
