#include "analysis/tabular.hpp"

#include <algorithm>
#include <stdexcept>

#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::analysis {

namespace {

/// A synthetic BallView plus the id storage its span points into (the
/// member order keeps the storage alive as long as the view; moving is
/// fine, the heap buffer stays put).
struct SynthView {
  std::vector<std::uint64_t> ids;
  local::BallView view;
};

/// Builds the open (non-covering) BallView matching a flat ring window.
/// Layout mirrors BallGrower on a cycle: root, then layers cw-first.
SynthView synth_open_view(const RingViewKey& window) {
  AVGLOCAL_EXPECTS(window.size() % 2 == 1);
  const std::size_t r = window.size() / 2;
  SynthView synth;
  local::BallView& view = synth.view;
  view.radius = static_cast<int>(r);
  view.covers_graph = false;
  const std::size_t size = window.size();
  synth.ids.resize(size);
  view.dist.resize(size);
  view.ports.assign_rows(size, 2);

  // local index: 0 = root; cw_i -> 2i-1; ccw_i -> 2i.
  const auto cw = [](std::size_t i) { return support::checked_u32(2 * i - 1); };
  const auto ccw = [](std::size_t i) { return support::checked_u32(2 * i); };
  synth.ids[0] = window[r];
  view.dist[0] = 0;
  for (std::size_t i = 1; i <= r; ++i) {
    synth.ids[cw(i)] = window[r + i];
    view.dist[cw(i)] = static_cast<int>(i);
    synth.ids[ccw(i)] = window[r - i];
    view.dist[ccw(i)] = static_cast<int>(i);
  }
  if (r >= 1) {
    view.ports[0][0] = cw(1);
    view.ports[0][1] = ccw(1);
    for (std::size_t i = 1; i <= r; ++i) {
      view.ports[cw(i)][1] = (i == 1) ? 0 : cw(i - 1);
      if (i < r) view.ports[cw(i)][0] = cw(i + 1);
      view.ports[ccw(i)][0] = (i == 1) ? 0 : ccw(i - 1);
      if (i < r) view.ports[ccw(i)][1] = ccw(i + 1);
    }
  }
  view.ids = synth.ids;
  return synth;
}

/// Builds the covering BallView of a whole ring, rooted at position v.
SynthView synth_closed_view(const std::vector<std::uint64_t>& ids, std::size_t v,
                            std::size_t radius) {
  const std::size_t n = ids.size();
  SynthView synth;
  local::BallView& view = synth.view;
  view.radius = static_cast<int>(radius);
  view.covers_graph = true;
  synth.ids.resize(n);
  view.dist.resize(n);
  view.ports.assign_rows(n, 2);
  // local i corresponds to ring position (v + i) mod n; port 0 = clockwise.
  for (std::size_t i = 0; i < n; ++i) {
    synth.ids[i] = ids[(v + i) % n];
    view.dist[i] = static_cast<int>(std::min(i, n - i));
    view.ports[i][0] = support::checked_u32((i + 1) % n);
    view.ports[i][1] = support::checked_u32((i + n - 1) % n);
  }
  view.ids = synth.ids;
  return synth;
}

/// Radius at which the induced ball of a cycle covers it: ceil((n-1)/2).
std::size_t closure_radius(std::size_t n) { return n / 2; }

}  // namespace

RingViewKey ring_view_key(const std::vector<std::uint64_t>& ids, std::size_t v, std::size_t r) {
  const std::size_t n = ids.size();
  AVGLOCAL_EXPECTS(2 * r + 1 <= n);
  RingViewKey key(2 * r + 1);
  for (std::size_t j = 0; j < key.size(); ++j) {
    key[j] = ids[(v + n + j - r) % n];
  }
  return key;
}

RingViewFunction::RingViewFunction(local::ViewAlgorithmFactory factory)
    : factory_(std::move(factory)) {}

std::optional<std::int64_t> RingViewFunction::decide(const RingViewKey& view) const {
  const auto it = memo_.find(view);
  if (it != memo_.end()) return it->second;
  // Replay the prefix views (centre slices) to a fresh instance.
  const std::size_t r = view.size() / 2;
  const auto algorithm = factory_();
  std::optional<std::int64_t> decision;
  for (std::size_t rho = 0; rho <= r; ++rho) {
    const RingViewKey sub(view.begin() + static_cast<std::ptrdiff_t>(r - rho),
                          view.begin() + static_cast<std::ptrdiff_t>(r + rho + 1));
    decision = algorithm->on_view(synth_open_view(sub).view);
    if (decision.has_value() && rho < r) {
      // The algorithm would have stopped on a strict prefix: the full view
      // is unreachable; record the prefix decision for consistency.
      break;
    }
  }
  memo_.emplace(view, decision);
  return decision;
}

std::pair<std::int64_t, std::size_t> RingViewFunction::run_vertex(
    const std::vector<std::uint64_t>& ids, std::size_t v) const {
  const std::size_t n = ids.size();
  const std::size_t cover = closure_radius(n);
  for (std::size_t rho = 0; rho < cover; ++rho) {
    if (const auto out = decide(ring_view_key(ids, v, rho))) return {*out, rho};
  }
  // Covering view: query the algorithm directly (fresh replay; cheap).
  const auto algorithm = factory_();
  for (std::size_t rho = 0; rho < cover; ++rho) {
    if (const auto out = algorithm->on_view(synth_open_view(ring_view_key(ids, v, rho)).view)) {
      return {*out, rho};
    }
  }
  if (const auto out = algorithm->on_view(synth_closed_view(ids, v, cover).view)) {
    return {*out, cover};
  }
  throw std::runtime_error("view algorithm did not stop on the covering view");
}

InstanceRun RingViewFunction::run_instance(const std::vector<std::uint64_t>& ids) const {
  InstanceRun run;
  run.outputs.resize(ids.size());
  run.radii.resize(ids.size());
  for (std::size_t v = 0; v < ids.size(); ++v) {
    const auto [out, radius] = run_vertex(ids, v);
    run.outputs[v] = out;
    run.radii[v] = radius;
  }
  return run;
}

std::optional<SmoothnessViolation> find_smoothness_violation(
    const RingViewFunction& algorithm, const std::vector<std::uint64_t>& ids) {
  const std::size_t n = ids.size();
  const InstanceRun run = algorithm.run_instance(ids);
  std::optional<SmoothnessViolation> best;
  for (std::size_t a = 0; a < n; ++a) {
    for (std::size_t k = 1; k + 2 <= n; ++k) {
      const std::size_t b = (a + k + 1) % n;
      const std::size_t tau = std::max(run.radii[a], run.radii[b]) + k;
      // The override views must be open, and the slice must fit the ring.
      if (2 * tau + 1 > n) continue;
      if (run.radii[a] + k + run.radii[b] + 2 > n) continue;
      std::vector<std::size_t> offenders;
      for (std::size_t j = 1; j <= k; ++j) {
        const std::size_t v = (a + j) % n;
        if (run.radii[v] > tau) offenders.push_back(v);
      }
      if (offenders.empty()) continue;
      if (!best || tau < best->tau) {
        SmoothnessViolation viol;
        const bool a_larger = ids[a] > ids[b];
        viol.x = a_larger ? a : b;
        viol.y = a_larger ? b : a;
        viol.k = k;
        viol.tau = tau;
        viol.offenders = std::move(offenders);
        best = std::move(viol);
      }
    }
  }
  return best;
}

Lemma2Improved::Lemma2Improved(const RingViewFunction& base, std::vector<std::uint64_t> instance,
                               SmoothnessViolation violation)
    : base_(&base), instance_(std::move(instance)), violation_(std::move(violation)) {
  const std::size_t n = instance_.size();
  // Recover the arc orientation: the interior runs clockwise from `a` to
  // `b`, where {a, b} = {x, y} and b = (a + k + 1) mod n.
  const std::size_t x = violation_.x;
  const std::size_t y = violation_.y;
  const std::size_t k = violation_.k;
  const std::size_t a = ((x + k + 1) % n == y) ? x : y;
  const std::size_t b = (a + k + 1) % n;
  AVGLOCAL_REQUIRE_MSG((a + k + 1) % n == b && (a == x || a == y),
                       "inconsistent violation descriptor");
  const auto [out_a, r_a] = base.run_vertex(instance_, a);
  const auto [out_b, r_b] = base.run_vertex(instance_, b);
  (void)out_a;
  (void)out_b;
  // Slice: from the start of a's view to the end of b's view, clockwise.
  const std::size_t start = (a + n - r_a) % n;
  const std::size_t length = r_a + 1 + k + 1 + r_b;
  AVGLOCAL_REQUIRE_MSG(length <= n, "slice wraps around the ring");
  slice_.resize(length);
  for (std::size_t j = 0; j < length; ++j) slice_[j] = instance_[(start + j) % n];
  const std::size_t a_in_slice = r_a;
  const std::size_t b_in_slice = r_a + k + 1;
  x_in_slice_ = (a == x) ? a_in_slice : b_in_slice;
  y_in_slice_ = (a == x) ? b_in_slice : a_in_slice;
}

std::optional<std::int64_t> Lemma2Improved::decide(const RingViewKey& view) const {
  const std::size_t rho = view.size() / 2;
  if (rho == violation_.tau) {
    if (const auto overridden = override_colour(view)) return overridden;
  }
  return base_->decide(view);
}

std::optional<std::int64_t> Lemma2Improved::override_colour(const RingViewKey& view) const {
  const std::size_t tau = violation_.tau;
  // Locate own identifier inside the slice.
  const std::uint64_t own = view[tau];
  const auto it = std::find(slice_.begin(), slice_.end(), own);
  if (it == slice_.end()) return std::nullopt;
  const std::size_t p = static_cast<std::size_t>(it - slice_.begin());
  // Interior of the arc only.
  const std::size_t lo = std::min(x_in_slice_, y_in_slice_);
  const std::size_t hi = std::max(x_in_slice_, y_in_slice_);
  if (p <= lo || p >= hi) return std::nullopt;
  // The whole slice must be visible at the expected alignment.
  for (std::size_t j = 0; j < slice_.size(); ++j) {
    const std::ptrdiff_t idx =
        static_cast<std::ptrdiff_t>(tau) + static_cast<std::ptrdiff_t>(j) -
        static_cast<std::ptrdiff_t>(p);
    if (idx < 0 || idx >= static_cast<std::ptrdiff_t>(view.size())) return std::nullopt;
    if (view[static_cast<std::size_t>(idx)] != slice_[j]) return std::nullopt;
  }

  // Rule evaluation: examine both direct neighbours (view indices tau -+ 1).
  const std::size_t d = (p > x_in_slice_) ? p - x_in_slice_ : x_in_slice_ - p;
  std::vector<std::int64_t> early_colours;
  bool has_running_neighbour = false;
  for (const std::size_t centre : {tau - 1, tau + 1}) {
    std::optional<std::int64_t> early;
    for (std::size_t r2 = 0; r2 < tau; ++r2) {
      const RingViewKey sub(view.begin() + static_cast<std::ptrdiff_t>(centre - r2),
                            view.begin() + static_cast<std::ptrdiff_t>(centre + r2 + 1));
      if (const auto out = base_->decide(sub)) {
        early = out;
        break;
      }
    }
    if (early.has_value()) {
      early_colours.push_back(*early);
    } else {
      has_running_neighbour = true;
    }
  }
  std::vector<std::int64_t> palette;
  if (has_running_neighbour) {
    palette = (d % 2 == 0) ? std::vector<std::int64_t>{0, 1} : std::vector<std::int64_t>{2, 3};
  } else {
    palette = {0, 1, 2, 3};
  }
  for (const std::int64_t c : palette) {
    if (std::find(early_colours.begin(), early_colours.end(), c) == early_colours.end()) {
      return c;
    }
  }
  AVGLOCAL_REQUIRE_MSG(false, "lemma 2 palette exhausted");
  return std::nullopt;  // unreachable
}

InstanceRun Lemma2Improved::run_instance(const std::vector<std::uint64_t>& ids) const {
  const std::size_t n = ids.size();
  const std::size_t cover = closure_radius(n);
  InstanceRun run;
  run.outputs.resize(n);
  run.radii.resize(n);
  for (std::size_t v = 0; v < n; ++v) {
    bool done = false;
    for (std::size_t rho = 0; rho < cover && !done; ++rho) {
      if (2 * rho + 1 > n) break;
      if (const auto out = decide(ring_view_key(ids, v, rho))) {
        run.outputs[v] = *out;
        run.radii[v] = rho;
        done = true;
      }
    }
    if (!done) {
      // Covering view: A' coincides with A there.
      const auto [out, radius] = base_->run_vertex(ids, v);
      run.outputs[v] = out;
      run.radii[v] = radius;
    }
  }
  return run;
}

}  // namespace avglocal::analysis
