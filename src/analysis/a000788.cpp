#include "analysis/a000788.hpp"

namespace avglocal::analysis {

std::uint64_t total_ones_below(std::uint64_t n) {
  // For bit position j, the pattern of that bit over 0..n-1 consists of
  // full periods of length 2^(j+1) (each contributing 2^j ones) plus a
  // partial period contributing max(0, rem - 2^j) ones.
  std::uint64_t total = 0;
  for (int j = 0; j < 64; ++j) {
    const std::uint64_t period = std::uint64_t{1} << (j + 1 < 64 ? j + 1 : 63);
    if (j + 1 >= 64) {
      // Bit 63: ones among [2^63, n).
      if (n > (std::uint64_t{1} << 63)) total += n - (std::uint64_t{1} << 63);
      break;
    }
    const std::uint64_t half = std::uint64_t{1} << j;
    const std::uint64_t full_periods = n / period;
    total += full_periods * half;
    const std::uint64_t rem = n % period;
    total += rem > half ? rem - half : 0;
    if (period > n) {
      // Higher bits can still contribute only if n exceeds them; once the
      // period exceeds n and the partial term is settled, higher j give 0.
      if (half >= n) break;
    }
  }
  return total;
}

std::uint64_t a000788(std::uint64_t n) { return total_ones_below(n + 1); }

}  // namespace avglocal::analysis
