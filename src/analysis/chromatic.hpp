// Chromatic number computation: greedy upper bound and exact DSATUR-style
// branch and bound with an explicit search budget.
//
// Used on Linial neighbourhood graphs: chi(B_t(n)) <= 3 decides whether t
// rounds suffice to 3-colour the ring with identifiers from {1..n}.
#pragma once

#include <cstdint>
#include <optional>

#include "graph/graph.hpp"

namespace avglocal::analysis {

/// Largest-first greedy colouring; returns the number of colours used
/// (an upper bound on chi).
std::size_t greedy_chromatic_upper(const graph::Graph& g);

/// A clique found greedily (lower bound on chi).
std::size_t greedy_clique_lower(const graph::Graph& g);

/// Exact k-colourability via DSATUR branch and bound. Returns nullopt when
/// the node budget is exhausted before a proof either way.
std::optional<bool> k_colourable(const graph::Graph& g, std::size_t k,
                                 std::uint64_t node_budget = 10'000'000);

/// Exact chromatic number: searches k upward from the clique lower bound.
/// Returns nullopt if any k-colourability test exhausts its budget.
std::optional<std::size_t> chromatic_number(const graph::Graph& g,
                                            std::uint64_t node_budget = 10'000'000);

}  // namespace avglocal::analysis
