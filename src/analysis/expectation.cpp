#include "analysis/expectation.hpp"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/assert.hpp"

namespace avglocal::analysis {

double expected_largest_id_average(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  const std::size_t cover = n / 2;  // ceil((n-1)/2)
  // r(v) >= d iff v holds the maximum of the 2d-1 identifiers in its
  // radius-(d-1) ball, which happens with probability 1/(2d-1).
  double expectation = 0.0;
  for (std::size_t d = 1; d <= cover; ++d) {
    expectation += 1.0 / static_cast<double>(2 * d - 1);
  }
  return expectation;
}

double expected_universe_aware_average(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  const std::size_t cover = n / 2;
  double total = 0.0;
  for (std::size_t x = 1; x <= n; ++x) {
    // The universe rule stops rank x at radius ceil((x-1)/2) regardless of
    // what it saw: beyond that, every completion contains a larger id.
    const std::size_t cap_x = std::min(cover, x / 2);  // x/2 == ceil((x-1)/2)
    double expectation = 0.0;
    double survive = 1.0;  // P(no larger identifier within distance d-1)
    for (std::size_t d = 1; d <= cap_x; ++d) {
      if (d >= 2) {
        // Extend the window by two cells (one per side); both must carry
        // identifiers below x. Hypergeometric product, exact.
        const std::size_t k = 2 * (d - 2);  // cells already conditioned on
        if (x - 1 < k + 2) {
          survive = 0.0;
        } else {
          survive *= static_cast<double>(x - 1 - k) / static_cast<double>(n - 1 - k);
          survive *=
              static_cast<double>(x - 2 - k) / static_cast<double>(n - 2 - k);
        }
      }
      expectation += survive;
    }
    total += expectation;
  }
  return total / static_cast<double>(n);
}

std::size_t deterministic_largest_id_max(std::size_t n) {
  AVGLOCAL_EXPECTS(n >= 3);
  return n / 2;
}

double brute_force_expected_average(std::size_t n, bool universe_aware) {
  AVGLOCAL_EXPECTS(n >= 3 && n <= 10);
  const std::size_t cover = n / 2;
  std::vector<std::uint64_t> ids(n);
  ids[0] = n;
  std::vector<std::uint64_t> rest(n - 1);
  std::iota(rest.begin(), rest.end(), std::uint64_t{1});

  double total = 0.0;
  std::uint64_t count = 0;
  do {
    std::copy(rest.begin(), rest.end(), ids.begin() + 1);
    std::uint64_t sum = 0;
    for (std::size_t v = 0; v < n; ++v) {
      std::size_t r = cover;
      for (std::size_t d = 1; d < cover; ++d) {
        if (ids[(v + d) % n] > ids[v] || ids[(v + n - d) % n] > ids[v]) {
          r = d;
          break;
        }
      }
      if (universe_aware) {
        // The open ball spans x vertices at radius ceil((x-1)/2).
        r = std::min(r, (static_cast<std::size_t>(ids[v]) - 1 + 1) / 2);
      }
      sum += r;
    }
    total += static_cast<double>(sum) / static_cast<double>(n);
    ++count;
  } while (std::next_permutation(rest.begin(), rest.end()));
  return total / static_cast<double>(count);
}

}  // namespace avglocal::analysis
