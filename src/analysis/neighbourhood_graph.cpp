#include "analysis/neighbourhood_graph.hpp"

#include <map>
#include <vector>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::analysis {

namespace {

/// Enumerates all injective tuples of length `len` over {1..n} in
/// lexicographic order, assigning dense indices.
void enumerate_tuples(std::size_t n, std::size_t len, std::vector<std::uint64_t>& current,
                      std::vector<bool>& used,
                      std::map<std::vector<std::uint64_t>, graph::Vertex>& index) {
  if (current.size() == len) {
    const auto id = support::checked_u32(index.size());
    index.emplace(current, id);
    return;
  }
  for (std::uint64_t v = 1; v <= n; ++v) {
    if (used[v]) continue;
    used[v] = true;
    current.push_back(v);
    enumerate_tuples(n, len, current, used, index);
    current.pop_back();
    used[v] = false;
  }
}

}  // namespace

std::size_t neighbourhood_graph_size(std::size_t n, int t) {
  AVGLOCAL_EXPECTS(t >= 0);
  const std::size_t len = 2 * static_cast<std::size_t>(t) + 1;
  AVGLOCAL_EXPECTS(n >= len);
  std::size_t count = 1;
  for (std::size_t i = 0; i < len; ++i) count *= (n - i);
  return count;
}

graph::Graph build_neighbourhood_graph(std::size_t n, int t, std::size_t max_vertices) {
  AVGLOCAL_EXPECTS(t >= 0);
  const std::size_t len = 2 * static_cast<std::size_t>(t) + 1;
  AVGLOCAL_EXPECTS_MSG(n >= len + 1, "need n >= 2t+2 for adjacent views to exist");
  const std::size_t size = neighbourhood_graph_size(n, t);
  AVGLOCAL_EXPECTS_MSG(size <= max_vertices, "neighbourhood graph too large");

  std::map<std::vector<std::uint64_t>, graph::Vertex> index;
  {
    std::vector<std::uint64_t> current;
    std::vector<bool> used(n + 1, false);
    enumerate_tuples(n, len, current, used, index);
  }
  AVGLOCAL_ASSERT(index.size() == size);

  graph::GraphBuilder builder(size);
  for (const auto& [tuple, u] : index) {
    // Successor views: drop tuple[0], append a fresh identifier d.
    std::vector<std::uint64_t> shifted(tuple.begin() + 1, tuple.end());
    shifted.push_back(0);
    for (std::uint64_t d = 1; d <= n; ++d) {
      bool clash = false;
      for (const std::uint64_t x : tuple) {
        if (x == d) {
          clash = true;
          break;
        }
      }
      if (clash) continue;
      shifted.back() = d;
      const graph::Vertex w = index.at(shifted);
      // For len >= 2 each unordered pair arises from exactly one shift
      // direction (a tuple cannot be a shift of its own shift - identifiers
      // would repeat), so adding is duplicate-free. For len == 1 both
      // directions enumerate the pair; deduplicate by order.
      if (len >= 2 || u < w) builder.add_edge(u, w);
    }
  }
  return builder.build();
}

}  // namespace avglocal::analysis
