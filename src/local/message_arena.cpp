#include "local/message_arena.hpp"

#include <algorithm>
#include <limits>

#include "support/assert.hpp"
#include "support/narrow.hpp"
#include "support/simd.hpp"

namespace avglocal::local {

void MessageArena::attach(std::size_t arc_count) {
  slots_.assign(arc_count, Slot{});
  present_.assign((arc_count + 63) / 64, 0);
  used_words_ = 0;
  messages_ = 0;
}

AVGLOCAL_HOT void MessageArena::begin_round() noexcept {
  std::fill(present_.begin(), present_.end(), 0);
  used_words_ = 0;
  messages_ = 0;
}

bool MessageArena::push(std::size_t arc, std::span<const std::uint64_t> words) {
  // Slot offsets and lengths are 32 bits; reject rather than truncate
  // (mirrors the 2^32-arc guard in GraphBuilder::build). The offset guard
  // bounds a whole round's payload arena at 2^32 words.
  AVGLOCAL_EXPECTS_MSG(words.size() <= std::numeric_limits<std::uint32_t>::max(),
                       "payload exceeds 2^32 words");
  const std::size_t needed = used_words_ + words.size();
  AVGLOCAL_EXPECTS_MSG(needed <= std::numeric_limits<std::uint32_t>::max(),
                       "round payload exceeds 2^32 words");
  const std::uint64_t bit = std::uint64_t{1} << (arc & 63);
  std::uint64_t& mask = present_[arc >> 6];
  if (mask & bit) return false;
  mask |= bit;
  if (needed > words_.size()) {
    // Geometric growth: reallocations stop once the busiest round has been
    // seen, which is what makes rounds allocation-free at steady state.
    words_.resize(std::max(needed, words_.size() * 2));
  }
  // Bulk word move (memcpy-class), not a per-word loop: payloads are raw
  // uint64 words with no construction semantics.
  support::simd::copy_words(words_.data() + used_words_, words.data(), words.size());
  slots_[arc] = Slot{support::checked_u32(used_words_), support::checked_u32(words.size())};
  used_words_ = needed;
  ++messages_;
  return true;
}

}  // namespace avglocal::local
