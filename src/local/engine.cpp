#include "local/engine.hpp"

#include <stdexcept>
#include <utility>
#include <vector>

#include "support/assert.hpp"

namespace avglocal::local {

class Engine {
 public:
  Engine(const graph::Graph& g, const graph::IdAssignment& ids, const AlgorithmFactory& factory,
         const EngineOptions& options)
      : g_(&g), options_(options) {
    AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
    const std::size_t n = g.vertex_count();
    contexts_.resize(n);
    algorithms_.reserve(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      contexts_[v].id_ = ids.id_of(v);
      if (options.knowledge == Knowledge::kKnowsN) contexts_[v].n_ = n;
      contexts_[v].outbox_.resize(g.degree(v));
      algorithms_.push_back(factory());
      AVGLOCAL_REQUIRE_MSG(algorithms_.back() != nullptr, "algorithm factory returned null");
    }
    // peer_port_[v][q]: the sender-side port p such that messages queued by
    // u = neighbour(v, q) on port p arrive at v on port q.
    peer_port_.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      peer_port_[v].resize(g.degree(v));
      for (std::size_t q = 0; q < g.degree(v); ++q) {
        const graph::Vertex u = g.neighbour(v, q);
        peer_port_[v][q] = g.port_to(u, v);
        AVGLOCAL_ASSERT(peer_port_[v][q] < g.degree(u));
      }
    }
  }

  RunResult run() {
    const std::size_t n = g_->vertex_count();
    std::size_t outputs_done = 0;
    RunResult result;

    // Round 0.
    for (graph::Vertex v = 0; v < n; ++v) {
      contexts_[v].round_ = 0;
      algorithms_[v]->on_start(contexts_[v]);
      if (contexts_[v].has_output()) ++outputs_done;
    }
    record_round(0, outputs_done);

    std::size_t round = 0;
    // in_flight[v] holds the outboxes captured at the end of the previous
    // round, so deliveries within a round are fully synchronous.
    std::vector<std::vector<std::optional<Payload>>> in_flight(n);
    while (outputs_done < n) {
      ++round;
      if (round > options_.max_rounds) {
        throw std::runtime_error("message engine: round cap exceeded");
      }
      for (graph::Vertex v = 0; v < n; ++v) {
        in_flight[v] = std::exchange(contexts_[v].outbox_,
                                     std::vector<std::optional<Payload>>(g_->degree(v)));
      }
      const std::size_t outputs_before = outputs_done;
      std::vector<Message> inbox;
      for (graph::Vertex v = 0; v < n; ++v) {
        inbox.clear();
        for (std::size_t q = 0; q < g_->degree(v); ++q) {
          const graph::Vertex u = g_->neighbour(v, q);
          auto& slot = in_flight[u][peer_port_[v][q]];
          if (slot.has_value()) {
            round_messages_ += 1;
            round_words_ += slot->size();
            inbox.push_back(Message{q, std::move(*slot)});
          }
        }
        contexts_[v].round_ = round;
        const bool had_output = contexts_[v].has_output();
        algorithms_[v]->on_round(contexts_[v], inbox);
        if (!had_output && contexts_[v].has_output()) ++outputs_done;
      }
      record_round(round, outputs_done - outputs_before);
    }

    result.outputs.resize(n);
    result.radii.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      result.outputs[v] = contexts_[v].output_value();
      result.radii[v] = contexts_[v].output_round();
    }
    result.rounds = round;
    result.messages = total_messages_;
    result.words = total_words_;
    return result;
  }

 private:
  void record_round(std::size_t round, std::size_t outputs_set) {
    total_messages_ += round_messages_;
    total_words_ += round_words_;
    if (options_.trace != nullptr) {
      options_.trace->record(RoundStats{round, round_messages_, round_words_, outputs_set});
    }
    round_messages_ = 0;
    round_words_ = 0;
  }

  const graph::Graph* g_;
  EngineOptions options_;
  std::vector<NodeContext> contexts_;
  std::vector<std::unique_ptr<Algorithm>> algorithms_;
  std::vector<std::vector<std::size_t>> peer_port_;
  std::uint64_t round_messages_ = 0;
  std::uint64_t round_words_ = 0;
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_words_ = 0;
};

RunResult run_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                       const AlgorithmFactory& factory, const EngineOptions& options) {
  Engine engine(g, ids, factory, options);
  return engine.run();
}

}  // namespace avglocal::local
