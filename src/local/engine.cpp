#include "local/engine.hpp"

#include <algorithm>
#include <stdexcept>
#include <utility>
#include <vector>

#include "local/message_arena.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::local {

// Flat-memory engine: the per-round in-flight state lives in two
// MessageArenas (one being written, one being delivered) indexed by the
// graph's CSR arc offsets, and every delivery resolves the sender-side slot
// through a precomputed O(1) mirror-arc table. All buffers - arenas, inbox,
// contexts - are allocated during construction/warm-up and reused, so the
// steady-state round loop performs no heap allocations.
//
// Everything the constructor builds is identifier-independent (topology
// tables, arenas, contexts up to the id field), so one engine serves a
// whole batch of id-assignments: bind() re-points the contexts at the next
// assignment, clears the arenas and resets (or, for algorithms that do not
// support reset(), reconstructs) the per-node instances.
class Engine {
 public:
  Engine(const graph::Graph& g, const AlgorithmFactory& factory, const EngineOptions& options)
      : g_(&g), factory_(factory), options_(options) {
    const std::size_t n = g.vertex_count();
    contexts_.resize(n);
    algorithms_.reserve(n);
    std::size_t max_degree = 0;
    for (graph::Vertex v = 0; v < n; ++v) {
      if (options.knowledge == Knowledge::kKnowsN) contexts_[v].n_ = n;
      contexts_[v].degree_ = g.degree(v);
      contexts_[v].outgoing_ = &outgoing_;
      contexts_[v].arc_base_ = g.arc_index(v, 0);
      max_degree = std::max(max_degree, g.degree(v));
      algorithms_.push_back(factory_());
      AVGLOCAL_REQUIRE_MSG(algorithms_.back() != nullptr, "algorithm factory returned null");
    }
    // mirror_arc_[arc(v, q)] = arc(u, mirror_port(v, q)): the receiver-side
    // arc of a send from v on port q, resolved once via the graph's O(1)
    // table. Sends push straight to this slot, so each round's delivery at
    // a vertex is a wide bitmask scan over its own contiguous arc window -
    // no indirection per arc on the read side. 32 bits per entry (the
    // builder rejects graphs over 2^32 arcs).
    mirror_arc_.resize(g.arc_count());
    for (graph::Vertex v = 0; v < n; ++v) {
      for (std::size_t q = 0; q < g.degree(v); ++q) {
        const graph::Vertex u = g.neighbour(v, q);
        mirror_arc_[g.arc_index(v, q)] =
            support::checked_u32(g.arc_index(u, g.mirror_port(v, q)));
      }
    }
    for (graph::Vertex v = 0; v < n; ++v) {
      contexts_[v].mirror_arcs_ = mirror_arc_.data() + contexts_[v].arc_base_;
    }
    arena_a_.attach(g.arc_count());
    arena_b_.attach(g.arc_count());
    outgoing_ = &arena_a_;
    delivering_ = &arena_b_;
    inbox_.resize(max_degree);
  }

  // Contexts hold a pointer to this object's outgoing_ member; copying or
  // moving would leave them sending through the original engine.
  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const graph::Graph& graph() const noexcept { return *g_; }

  /// Points the engine at the next assignment: fresh ids and node state,
  /// empty arenas, algorithms back in their initial state. Must be called
  /// before every run(), including the first.
  void bind(const graph::IdAssignment& ids) {
    AVGLOCAL_EXPECTS(ids.size() == g_->vertex_count());
    const std::size_t n = g_->vertex_count();
    for (graph::Vertex v = 0; v < n; ++v) {
      contexts_[v].id_ = ids.id_of(v);
      contexts_[v].round_ = 0;
      contexts_[v].output_.reset();
      contexts_[v].output_round_ = 0;
      if (!algorithms_[v]->reset()) {
        algorithms_[v] = factory_();
        AVGLOCAL_REQUIRE_MSG(algorithms_[v] != nullptr, "algorithm factory returned null");
      }
    }
    // A fresh run must deliver nothing in round 0 and start its sends in an
    // empty arena; begin_round keeps both arenas' capacity.
    arena_a_.begin_round();
    arena_b_.begin_round();
    outgoing_ = &arena_a_;
    delivering_ = &arena_b_;
    total_messages_ = 0;
    total_words_ = 0;
  }

  RunResult run() {
    const std::size_t n = g_->vertex_count();
    std::size_t outputs_done = 0;
    RunResult result;

    // Round 0: on_start sends land in *outgoing_.
    for (graph::Vertex v = 0; v < n; ++v) {
      contexts_[v].round_ = 0;
      algorithms_[v]->on_start(contexts_[v]);
      if (contexts_[v].has_output()) ++outputs_done;
    }
    record_round(0, outputs_done);

    std::size_t round = 0;
    while (outputs_done < n) {
      ++round;
      if (round > options_.max_rounds) {
        throw std::runtime_error("message engine: round cap exceeded");
      }
      // Flip the double buffer: last round's sends become this round's
      // deliveries, and the cleared arena collects this round's sends.
      std::swap(outgoing_, delivering_);
      outgoing_->begin_round();

      const std::size_t outputs_before = outputs_done;
      for (graph::Vertex v = 0; v < n; ++v) {
        const std::size_t degree = g_->degree(v);
        const std::size_t arc_base = contexts_[v].arc_base_;
        std::size_t count = 0;
        // Sends landed in the receiver's own arc window (see mirror_arc_),
        // so draining is one wide presence scan over [arc_base, arc_base +
        // degree): a bitmask word per 64 ports, count_trailing_zeros per
        // message - never a per-port test. Zero-copy delivery: the payload
        // span aliases the delivering arena, which no algorithm can write
        // this round (sends go to the other buffer), and the Message
        // contract bounds its lifetime to on_round.
        delivering_->for_each_present(arc_base, arc_base + degree, [&](std::size_t arc) {
          inbox_[count].from_port = arc - arc_base;
          inbox_[count].payload = delivering_->payload(arc);
          ++count;
        });
        contexts_[v].round_ = round;
        const bool had_output = contexts_[v].has_output();
        algorithms_[v]->on_round(contexts_[v], {inbox_.data(), count});
        if (!had_output && contexts_[v].has_output()) ++outputs_done;
      }
      record_round(round, outputs_done - outputs_before);
    }

    result.outputs.resize(n);
    result.radii.resize(n);
    for (graph::Vertex v = 0; v < n; ++v) {
      result.outputs[v] = contexts_[v].output_value();
      result.radii[v] = contexts_[v].output_round();
    }
    result.rounds = round;
    result.messages = total_messages_;
    result.words = total_words_;
    return result;
  }

 private:
  // Per-round message/word totals come straight from the delivering arena:
  // the mirror mapping is a bijection on arcs, so every pushed message is
  // delivered exactly once during the round. (Round 0 delivers nothing and
  // reads the freshly attached, empty arena.)
  void record_round(std::size_t round, std::size_t outputs_set) {
    const std::uint64_t messages = delivering_->message_count();
    const std::uint64_t words = delivering_->word_count();
    total_messages_ += messages;
    total_words_ += words;
    if (options_.trace != nullptr) {
      options_.trace->record(RoundStats{round, messages, words, outputs_set});
    }
  }

  const graph::Graph* g_;
  AlgorithmFactory factory_;
  EngineOptions options_;
  std::vector<NodeContext> contexts_;
  std::vector<std::unique_ptr<Algorithm>> algorithms_;
  std::vector<std::uint32_t> mirror_arc_;  // per arc: receiver-side slot of a send
  MessageArena arena_a_;
  MessageArena arena_b_;
  MessageArena* outgoing_ = nullptr;    // collects this round's sends
  MessageArena* delivering_ = nullptr;  // holds last round's sends
  std::vector<Message> inbox_;          // reused; first `count` entries live
  std::uint64_t total_messages_ = 0;
  std::uint64_t total_words_ = 0;
};

RunResult run_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                       const AlgorithmFactory& factory, const EngineOptions& options) {
  Engine engine(g, factory, options);
  engine.bind(ids);
  return engine.run();
}

MessageBatchRunner::MessageBatchRunner(const graph::Graph& g, AlgorithmFactory factory,
                                       const EngineOptions& options)
    : engine_(std::make_unique<Engine>(g, std::move(factory), options)) {}

MessageBatchRunner::~MessageBatchRunner() = default;
MessageBatchRunner::MessageBatchRunner(MessageBatchRunner&&) noexcept = default;
MessageBatchRunner& MessageBatchRunner::operator=(MessageBatchRunner&&) noexcept = default;

void MessageBatchRunner::run(std::span<const graph::IdAssignment> batch,
                             const MessageResultFn& sink) {
  const std::size_t n = engine_->graph().vertex_count();
  for (std::size_t trial = 0; trial < batch.size(); ++trial) {
    engine_->bind(batch[trial]);
    const RunResult run = engine_->run();
    for (graph::Vertex v = 0; v < n; ++v) {
      sink(trial, v, run.outputs[v], run.radii[v]);
    }
  }
}

void run_messages_batch(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                        const AlgorithmFactory& factory, const EngineOptions& options,
                        const MessageResultFn& sink) {
  if (batch.empty()) return;
  MessageBatchRunner runner(g, factory, options);
  runner.run(batch, sink);
}

}  // namespace avglocal::local
