// Round-by-round instrumentation of message-engine runs.
#pragma once

#include <cstdint>
#include <vector>

namespace avglocal::local {

/// Aggregate statistics of one synchronous round.
struct RoundStats {
  std::size_t round = 0;
  std::uint64_t messages = 0;
  std::uint64_t words = 0;
  /// Number of nodes that committed their output during this round.
  std::size_t outputs_set = 0;
};

/// Collects RoundStats for every executed round (round 0 = on_start).
/// record() is virtual so instrumentation (allocation probes, live dumps)
/// can observe the engine between rounds without buffering.
class Trace {
 public:
  virtual ~Trace() = default;

  virtual void record(const RoundStats& stats) { rounds_.push_back(stats); }

  const std::vector<RoundStats>& rounds() const noexcept { return rounds_; }

  void clear() noexcept { rounds_.clear(); }

 private:
  std::vector<RoundStats> rounds_;
};

}  // namespace avglocal::local
