// Ball views: what a vertex knows after looking radius r around itself.
//
// The paper's second formulation of the LOCAL model: "every node gathers all
// the information in a ball around itself and outputs a function of this
// ball". BallView is that ball, with identifiers, distances, degrees and the
// visible edges; BallGrower builds it incrementally, radius by radius.
//
// Two knowledge semantics are supported:
//  * kInducedBall (the paper's abstraction): at radius r a vertex sees all
//    vertices at distance <= r and *all* edges between seen vertices.
//  * kFloodingKnowledge (what r rounds of message flooding deliver): at
//    radius r an edge is visible iff one endpoint is at distance <= r-1;
//    edges between two frontier vertices are not yet known.
// They differ by at most one radius step and are cross-validated in tests.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <optional>
#include <span>
#include <string_view>
#include <vector>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "support/narrow.hpp"

namespace avglocal::local {

/// How much of the ball's edge set is visible at radius r (see file header).
enum class ViewSemantics {
  kInducedBall,
  kFloodingKnowledge,
};

/// Canonical names ("induced" / "flooding") shared by CLI flags, scenario
/// JSON and shard artefacts - one mapping so the layers can never disagree.
const char* to_string(ViewSemantics semantics) noexcept;

/// Reverse mapping; nullopt for unknown names (each caller owns its error
/// type: artefact parsers throw runtime_error, flag parsers invalid_argument).
std::optional<ViewSemantics> view_semantics_from_name(std::string_view name) noexcept;

/// Local index of a ball vertex; 0 is always the root.
using LocalVertex = std::uint32_t;

/// Sentinel for a port whose far end is not (yet) visible.
inline constexpr LocalVertex kUnknownTarget = std::numeric_limits<LocalVertex>::max();

/// Jagged port rows stored in one flat CSR buffer: row v holds one slot per
/// incident edge of the v-th ball vertex. Rows are appended in local-vertex
/// order; clear() keeps the underlying capacity, so a table reused across
/// balls stops allocating once it has seen the largest one.
class PortTable {
 public:
  /// Number of rows (== ball vertices added so far).
  std::size_t rows() const noexcept { return offsets_.size() - 1; }

  std::size_t row_size(std::size_t row) const noexcept {
    return offsets_[row + 1] - offsets_[row];
  }

  std::span<const LocalVertex> operator[](std::size_t row) const noexcept {
    return {targets_.data() + offsets_[row], targets_.data() + offsets_[row + 1]};
  }

  std::span<LocalVertex> operator[](std::size_t row) noexcept {
    return {targets_.data() + offsets_[row], targets_.data() + offsets_[row + 1]};
  }

  /// Appends a row of `degree` slots, all kUnknownTarget.
  void add_row(std::size_t degree) {
    targets_.resize(targets_.size() + degree, kUnknownTarget);
    offsets_.push_back(support::checked_u32(targets_.size()));
  }

  /// clear() + `count` rows of `degree` slots each.
  void assign_rows(std::size_t count, std::size_t degree) {
    clear();
    offsets_.reserve(count + 1);
    targets_.assign(count * degree, kUnknownTarget);
    for (std::size_t row = 1; row <= count; ++row) {
      offsets_.push_back(support::checked_u32(row * degree));
    }
  }

  /// Removes all rows; keeps capacity.
  void clear() noexcept {
    offsets_.resize(1);
    targets_.clear();
  }

 private:
  // 32-bit row offsets: a ball has at most 2m slots and build() caps arc
  // counts at 2^32, so the narrow width always fits. Half the offset
  // footprint of the old size_t rows - PortTable is the densest per-ball
  // structure the sweeps keep resident per worker lane.
  std::vector<graph::vid32> offsets_ = {0};  // size rows+1
  std::vector<LocalVertex> targets_;         // flat row storage
};

/// The knowledge of one vertex after exploring radius `radius`.
///
/// Vertices are indexed locally in BFS discovery order (root first, then by
/// non-decreasing distance; within a layer, port order). A vertex's `ports`
/// entry has one slot per incident edge (its true degree); each slot holds
/// the local index of the neighbour on that port, or kUnknownTarget when the
/// edge is not visible at this radius. Degrees are known for every seen
/// vertex (a vertex's degree is distance-0 information in the LOCAL model).
struct BallView {
  int radius = 0;

  /// ids[local] = identifier of the local-th ball vertex; ids[0] = root's.
  /// Non-owning: the engine that materialises the view owns the storage
  /// (the grower's id store, a batched sweep's per-assignment buffer, a
  /// synthetic view's backing array) and keeps it alive across the
  /// algorithm call. This is what lets the batched engine re-point one
  /// shared view at hundreds of assignment buffers without copying or
  /// swapping vectors.
  std::span<const std::uint64_t> ids;

  /// dist[local] = distance from the root.
  std::vector<int> dist;

  /// ports[local][p] = local index behind port p, or kUnknownTarget.
  PortTable ports;

  /// True when the view provably covers the whole graph: every seen vertex
  /// has all of its edges visible (so no vertex or edge can be missing).
  /// This is how the maximum-ID vertex of a cycle knows it may stop.
  bool covers_graph = false;

  std::size_t size() const noexcept { return ids.size(); }
  bool empty() const noexcept { return ids.empty(); }
  std::uint64_t root_id() const noexcept { return ids[0]; }
  std::size_t degree_of(LocalVertex v) const noexcept { return ports[v].size(); }

  /// True when some visible identifier is strictly greater than `x`.
  bool contains_id_greater_than(std::uint64_t x) const noexcept;

  /// Largest visible identifier.
  std::uint64_t max_id() const noexcept;
};

/// A ball view specialised to (a segment of) an oriented cycle, extracted
/// from a BallView whose underlying graph uses the make_cycle port
/// convention (port 0 = clockwise successor, port 1 = predecessor).
///
/// cw[k] is the identifier k+1 steps clockwise from the root, ccw[k] the
/// identifier k+1 steps counter-clockwise. When the ball closes (covers the
/// cycle), the walks are truncated so each vertex appears exactly once:
/// cw covers the whole remaining cycle and ccw is empty.
struct RingView {
  std::uint64_t own = 0;
  std::vector<std::uint64_t> cw;
  std::vector<std::uint64_t> ccw;
  bool closed = false;

  /// Number of distinct vertices visible (including the root).
  std::size_t seen_count() const noexcept { return 1 + cw.size() + ccw.size(); }
};

/// Extracts a RingView from a ball over a cycle-with-oriented-ports graph.
/// Returns nullopt if the root does not look like a ring vertex (degree 2
/// with the expected port structure).
std::optional<RingView> try_extract_ring_view(const BallView& view);

/// Incrementally grows the ball view of `root` one radius step at a time.
///
/// The grower needs O(ball) memory per instance plus a caller-provided
/// scratch array of size n that it borrows while alive; this keeps running
/// one grower per vertex over a large graph allocation-free.
class BallGrower {
 public:
  /// Scratch state shared by consecutive growers over the same graph.
  ///
  /// Epoch-stamped: local_of_[v] is meaningful only when stamp_[v] equals
  /// the current epoch, so retiring a whole ball is one counter bump
  /// instead of an O(ball) (originally O(n)) clear loop. Per-trial reset
  /// cost therefore tracks the ball actually grown, not the graph - the
  /// change that makes n=10^6 sweeps with small balls cheap.
  class Scratch {
   public:
    explicit Scratch(std::size_t n) : local_of_(n, 0), stamp_(n, 0) {}

   private:
    friend class BallGrower;

    /// Starts a fresh epoch, invalidating every entry in O(1). On the
    /// u32 wrap (once per 2^32 resets) the stamps are refilled so a
    /// stale stamp from 2^32 epochs ago cannot alias the new one.
    void bump() noexcept {
      if (++epoch_ == 0) {
        std::fill(stamp_.begin(), stamp_.end(), 0);
        epoch_ = 1;
      }
    }

    std::vector<LocalVertex> local_of_;  // valid iff stamp_[v] == epoch_
    std::vector<std::uint32_t> stamp_;
    std::uint32_t epoch_ = 0;  // first bump() makes it 1 > all stamps
  };

  /// Ball vertices in discovery order (local index -> global vertex).
  /// Everything about this order - and about dist, ports and coverage - is
  /// identifier-independent: the BFS follows port order and never consults
  /// an identifier. The batched view engine exploits this to share one
  /// grower's geometry across every identifier assignment of a batch.
  std::span<const graph::Vertex> global_vertices() const noexcept { return global_of_; }

  /// Points the view's identifier span at an external array (the batched
  /// engine binds a per-assignment buffer, gathered over global_vertices()
  /// in the same discovery order and as long as the current ball, around
  /// each algorithm call). The binding is transient: reset() and grow()
  /// re-point the span at the grower's own identifiers.
  void bind_ids(std::span<const std::uint64_t> ids) noexcept { view_.ids = ids; }

  /// Starts a radius-0 view rooted at `root`. `ids` must match `g`.
  /// The scratch must not be shared by two live growers.
  BallGrower(const graph::Graph& g, const graph::IdAssignment& ids, graph::Vertex root,
             ViewSemantics semantics, Scratch& scratch);

  BallGrower(const BallGrower&) = delete;
  BallGrower& operator=(const BallGrower&) = delete;

  /// Re-roots the grower at `root`, back at radius 0, reusing every buffer
  /// (view arrays, frontier, scratch). Running one grower over many roots
  /// through reset() is allocation-free once the buffers have grown to the
  /// largest ball seen - the hot path of sweep measurements.
  void reset(graph::Vertex root);

  const BallView& view() const noexcept { return view_; }

  /// Grows the ball by one radius step. No-op (except the radius counter)
  /// once the view covers the graph.
  void grow();

 private:
  void resolve_edge(graph::Vertex a, std::size_t port_a);
  LocalVertex add_vertex(graph::Vertex v, int dist);

  /// Local index of v in the current ball, or kUnknownTarget when v has
  /// not been added since the last reset (epoch check, no clears).
  LocalVertex local_at(graph::Vertex v) const noexcept {
    return scratch_->stamp_[v] == scratch_->epoch_ ? scratch_->local_of_[v]
                                                   : kUnknownTarget;
  }

  void set_local(graph::Vertex v, LocalVertex local) noexcept {
    scratch_->stamp_[v] = scratch_->epoch_;
    scratch_->local_of_[v] = local;
  }

  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  ViewSemantics semantics_;
  Scratch* scratch_;
  BallView view_;
  std::vector<std::uint64_t> ids_store_;      // backs view_.ids when not bound
  std::vector<graph::Vertex> global_of_;      // local -> global vertex
  std::vector<graph::Vertex> frontier_;       // vertices at distance == radius
  std::vector<graph::Vertex> next_frontier_;  // reused across grow() calls
  std::size_t unresolved_ports_ = 0;
};


}  // namespace avglocal::local
