#include "local/trace.hpp"

// Trace is header-only today; this TU anchors the library target.
