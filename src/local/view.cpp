#include "local/view.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace avglocal::local {

bool BallView::contains_id_greater_than(std::uint64_t x) const noexcept {
  return std::any_of(ids.begin(), ids.end(), [x](std::uint64_t id) { return id > x; });
}

std::uint64_t BallView::max_id() const noexcept {
  return *std::max_element(ids.begin(), ids.end());
}

std::optional<RingView> try_extract_ring_view(const BallView& view) {
  if (view.size() == 0 || view.degree_of(0) != 2) return std::nullopt;

  // Walks along one direction starting on `first_port` of the root, until an
  // unknown edge, a non-ring vertex, or wrap-around to the root.
  struct WalkResult {
    std::vector<std::uint64_t> ids;
    bool wrapped = false;
    bool malformed = false;
  };
  const auto walk = [&view](std::size_t first_port) {
    WalkResult out;
    LocalVertex prev = 0;
    LocalVertex cur = view.ports[0][first_port];
    while (cur != kUnknownTarget && cur != 0) {
      if (view.degree_of(cur) != 2) {
        out.malformed = true;
        return out;
      }
      out.ids.push_back(view.ids[cur]);
      const LocalVertex a = view.ports[cur][0];
      const LocalVertex b = view.ports[cur][1];
      LocalVertex next = kUnknownTarget;
      if (a == prev) {
        next = b;
      } else if (b == prev) {
        next = a;
      } else {
        // The edge back to prev is not resolved on cur's side; we cannot
        // safely pick a forward direction.
        return out;
      }
      prev = cur;
      cur = next;
    }
    out.wrapped = (cur == 0);
    return out;
  };

  RingView ring;
  ring.own = view.root_id();
  WalkResult cw = walk(0);
  if (cw.malformed) return std::nullopt;
  if (cw.wrapped) {
    // The ball covers the whole cycle: report everything on the clockwise
    // side so each vertex appears exactly once.
    ring.cw = std::move(cw.ids);
    ring.closed = true;
    return ring;
  }
  WalkResult ccw = walk(1);
  if (ccw.malformed) return std::nullopt;
  AVGLOCAL_ASSERT(!ccw.wrapped);  // would have wrapped clockwise first
  ring.cw = std::move(cw.ids);
  ring.ccw = std::move(ccw.ids);
  ring.closed = false;
  return ring;
}

BallGrower::BallGrower(const graph::Graph& g, const graph::IdAssignment& ids, graph::Vertex root,
                       ViewSemantics semantics, Scratch& scratch)
    : g_(&g), ids_(&ids), semantics_(semantics), scratch_(&scratch) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  AVGLOCAL_EXPECTS(root < g.vertex_count());
  AVGLOCAL_EXPECTS_MSG(scratch.local_of_.size() == g.vertex_count(),
                       "scratch sized for a different graph");
  add_vertex(root, 0);
  frontier_.push_back(root);
  view_.covers_graph = (unresolved_ports_ == 0);
}

BallGrower::~BallGrower() {
  for (graph::Vertex v : global_of_) scratch_->local_of_[v] = kUnknownTarget;
}

LocalVertex BallGrower::add_vertex(graph::Vertex v, int dist) {
  const auto local = static_cast<LocalVertex>(view_.ids.size());
  scratch_->local_of_[v] = local;
  global_of_.push_back(v);
  view_.ids.push_back(ids_->id_of(v));
  view_.dist.push_back(dist);
  view_.ports.emplace_back(g_->degree(v), kUnknownTarget);
  unresolved_ports_ += g_->degree(v);
  return local;
}

void BallGrower::resolve_edge(graph::Vertex a, graph::Vertex b) {
  const LocalVertex la = scratch_->local_of_[a];
  const LocalVertex lb = scratch_->local_of_[b];
  AVGLOCAL_ASSERT(la != kUnknownTarget && lb != kUnknownTarget);
  const std::size_t pa = g_->port_to(a, b);
  const std::size_t pb = g_->port_to(b, a);
  if (view_.ports[la][pa] == kUnknownTarget) {
    view_.ports[la][pa] = lb;
    --unresolved_ports_;
  }
  if (view_.ports[lb][pb] == kUnknownTarget) {
    view_.ports[lb][pb] = la;
    --unresolved_ports_;
  }
}

void BallGrower::grow() {
  ++view_.radius;
  if (view_.covers_graph) return;

  std::vector<graph::Vertex> next_frontier;
  if (semantics_ == ViewSemantics::kInducedBall) {
    // Add the next layer; an edge becomes visible as soon as both endpoints
    // are in the ball.
    for (graph::Vertex a : frontier_) {
      for (graph::Vertex b : g_->neighbours(a)) {
        if (scratch_->local_of_[b] == kUnknownTarget) {
          add_vertex(b, view_.radius);
          next_frontier.push_back(b);
          for (graph::Vertex c : g_->neighbours(b)) {
            if (scratch_->local_of_[c] != kUnknownTarget) resolve_edge(b, c);
          }
        }
      }
    }
  } else {
    // Flooding knowledge: growing to radius r+1 reveals the next vertex
    // layer plus every edge incident to the previous frontier (distance r),
    // i.e. edges with min endpoint distance <= r.
    for (graph::Vertex a : frontier_) {
      for (graph::Vertex b : g_->neighbours(a)) {
        if (scratch_->local_of_[b] == kUnknownTarget) {
          add_vertex(b, view_.radius);
          next_frontier.push_back(b);
        }
        resolve_edge(a, b);
      }
    }
  }
  frontier_ = std::move(next_frontier);
  view_.covers_graph = (unresolved_ports_ == 0);
}

}  // namespace avglocal::local
