#include "local/view.hpp"

#include <algorithm>

#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::local {

const char* to_string(ViewSemantics semantics) noexcept {
  return semantics == ViewSemantics::kInducedBall ? "induced" : "flooding";
}

std::optional<ViewSemantics> view_semantics_from_name(std::string_view name) noexcept {
  if (name == "induced") return ViewSemantics::kInducedBall;
  if (name == "flooding") return ViewSemantics::kFloodingKnowledge;
  return std::nullopt;
}

bool BallView::contains_id_greater_than(std::uint64_t x) const noexcept {
  return std::any_of(ids.begin(), ids.end(), [x](std::uint64_t id) { return id > x; });
}

std::uint64_t BallView::max_id() const noexcept {
  return *std::max_element(ids.begin(), ids.end());
}

std::optional<RingView> try_extract_ring_view(const BallView& view) {
  if (view.empty() || view.degree_of(0) != 2) return std::nullopt;

  // Walks along one direction starting on `first_port` of the root, until an
  // unknown edge, a non-ring vertex, or wrap-around to the root.
  struct WalkResult {
    std::vector<std::uint64_t> ids;
    bool wrapped = false;
    bool malformed = false;
  };
  const auto walk = [&view](std::size_t first_port) {
    WalkResult out;
    LocalVertex prev = 0;
    LocalVertex cur = view.ports[0][first_port];
    while (cur != kUnknownTarget && cur != 0) {
      if (view.degree_of(cur) != 2) {
        out.malformed = true;
        return out;
      }
      out.ids.push_back(view.ids[cur]);
      const LocalVertex a = view.ports[cur][0];
      const LocalVertex b = view.ports[cur][1];
      LocalVertex next = kUnknownTarget;
      if (a == prev) {
        next = b;
      } else if (b == prev) {
        next = a;
      } else {
        // The edge back to prev is not resolved on cur's side; we cannot
        // safely pick a forward direction.
        return out;
      }
      prev = cur;
      cur = next;
    }
    out.wrapped = (cur == 0);
    return out;
  };

  RingView ring;
  ring.own = view.root_id();
  WalkResult cw = walk(0);
  if (cw.malformed) return std::nullopt;
  if (cw.wrapped) {
    // The ball covers the whole cycle: report everything on the clockwise
    // side so each vertex appears exactly once.
    ring.cw = std::move(cw.ids);
    ring.closed = true;
    return ring;
  }
  WalkResult ccw = walk(1);
  if (ccw.malformed) return std::nullopt;
  AVGLOCAL_ASSERT(!ccw.wrapped);  // would have wrapped clockwise first
  ring.cw = std::move(cw.ids);
  ring.ccw = std::move(ccw.ids);
  ring.closed = false;
  return ring;
}

BallGrower::BallGrower(const graph::Graph& g, const graph::IdAssignment& ids, graph::Vertex root,
                       ViewSemantics semantics, Scratch& scratch)
    : g_(&g), ids_(&ids), semantics_(semantics), scratch_(&scratch) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  AVGLOCAL_EXPECTS(root < g.vertex_count());
  AVGLOCAL_EXPECTS_MSG(scratch.local_of_.size() == g.vertex_count(),
                       "scratch sized for a different graph");
  reset(root);
}

void BallGrower::reset(graph::Vertex root) {
  AVGLOCAL_EXPECTS(root < g_->vertex_count());
  scratch_->bump();  // retires the previous ball's membership in O(1)
  global_of_.clear();
  frontier_.clear();
  view_.radius = 0;
  ids_store_.clear();
  view_.ids = ids_store_;
  view_.dist.clear();
  view_.ports.clear();
  unresolved_ports_ = 0;
  add_vertex(root, 0);
  frontier_.push_back(root);
  view_.covers_graph = (unresolved_ports_ == 0);
}

LocalVertex BallGrower::add_vertex(graph::Vertex v, int dist) {
  const LocalVertex local = support::checked_u32(ids_store_.size());
  set_local(v, local);
  global_of_.push_back(v);
  ids_store_.push_back(ids_->id_of(v));
  view_.ids = ids_store_;  // the push may have re-seated the store
  view_.dist.push_back(dist);
  view_.ports.add_row(g_->degree(v));
  unresolved_ports_ += g_->degree(v);
  return local;
}

void BallGrower::resolve_edge(graph::Vertex a, std::size_t port_a) {
  const graph::Vertex b = g_->neighbour(a, port_a);
  const LocalVertex la = local_at(a);
  const LocalVertex lb = local_at(b);
  AVGLOCAL_ASSERT(la != kUnknownTarget && lb != kUnknownTarget);
  const std::size_t pb = g_->mirror_port(a, port_a);
  if (view_.ports[la][port_a] == kUnknownTarget) {
    view_.ports[la][port_a] = lb;
    --unresolved_ports_;
  }
  if (view_.ports[lb][pb] == kUnknownTarget) {
    view_.ports[lb][pb] = la;
    --unresolved_ports_;
  }
}

void BallGrower::grow() {
  view_.ids = ids_store_;  // drop any transient bind_ids binding
  ++view_.radius;
  if (view_.covers_graph) return;

  next_frontier_.clear();
  // Prefetch distance along the frontier. The frontier was discovered in
  // the previous grow(), so its CSR rows are cold; hinting a few vertices
  // ahead overlaps the row fetch with the current vertex's scan. Hints
  // only - the traversal order and results are unchanged.
  constexpr std::size_t kAhead = 8;
  if (semantics_ == ViewSemantics::kInducedBall) {
    // Add the next layer; an edge becomes visible as soon as both endpoints
    // are in the ball.
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      if (i + kAhead < frontier_.size()) g_->prefetch_offset(frontier_[i + kAhead]);
      if (i + kAhead / 2 < frontier_.size()) g_->prefetch_row(frontier_[i + kAhead / 2]);
      const graph::Vertex a = frontier_[i];
      for (graph::Vertex b : g_->neighbours(a)) {
        if (local_at(b) == kUnknownTarget) {
          add_vertex(b, view_.radius);
          next_frontier_.push_back(b);
          const auto nbrs = g_->neighbours(b);
          for (std::size_t pb = 0; pb < nbrs.size(); ++pb) {
            if (local_at(nbrs[pb]) != kUnknownTarget) resolve_edge(b, pb);
          }
        }
      }
    }
  } else {
    // Flooding knowledge: growing to radius r+1 reveals the next vertex
    // layer plus every edge incident to the previous frontier (distance r),
    // i.e. edges with min endpoint distance <= r.
    for (std::size_t i = 0; i < frontier_.size(); ++i) {
      if (i + kAhead < frontier_.size()) g_->prefetch_offset(frontier_[i + kAhead]);
      if (i + kAhead / 2 < frontier_.size()) g_->prefetch_row(frontier_[i + kAhead / 2]);
      const graph::Vertex a = frontier_[i];
      const auto nbrs = g_->neighbours(a);
      for (std::size_t pa = 0; pa < nbrs.size(); ++pa) {
        if (local_at(nbrs[pa]) == kUnknownTarget) {
          add_vertex(nbrs[pa], view_.radius);
          next_frontier_.push_back(nbrs[pa]);
        }
        resolve_edge(a, pa);
      }
    }
  }
  std::swap(frontier_, next_frontier_);
  view_.covers_graph = (unresolved_ports_ == 0);
}

}  // namespace avglocal::local
