// The ball/view engine: runs a view-driven algorithm to completion on every
// vertex and records the radius profile r(v).
//
// This engine is the measurement ground truth of the reproduction: r(v) is
// literally "the radius at which the algorithm chooses to output" from the
// paper. Vertices are processed independently (the model's nodes do not
// interact in this formulation; all interaction is captured by the view).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/metrics.hpp"
#include "local/view.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::local {

/// Per-vertex behaviour in the ball formulation of the LOCAL model.
///
/// The engine calls on_view with the vertex's view at radii 0, 1, 2, ...;
/// returning a value commits the output and stops the vertex; nullopt grows
/// the ball by one. Implementations may keep state across calls (one
/// instance serves one vertex).
class ViewAlgorithm {
 public:
  virtual ~ViewAlgorithm() = default;

  virtual std::optional<std::int64_t> on_view(const BallView& view) = 0;
};

/// Creates one ViewAlgorithm instance per vertex.
using ViewAlgorithmFactory = std::function<std::unique_ptr<ViewAlgorithm>()>;

struct ViewEngineOptions {
  ViewSemantics semantics = ViewSemantics::kInducedBall;

  /// Hard cap on the per-vertex radius; 0 means "number of vertices", which
  /// no terminating algorithm can exceed (the ball covers the graph well
  /// before). Exceeding the cap throws std::runtime_error.
  std::size_t max_radius = 0;

  /// Worker pool to sweep vertices in parallel (not owned; may be shared
  /// across calls). nullptr or a size-1 pool runs the serial path. Results
  /// are bit-identical regardless of pool size: vertices are independent and
  /// outputs are written to per-vertex slots. With a pool, the factory (and
  /// the algorithms it creates) are invoked from multiple threads at once,
  /// so both must be safe to call concurrently - factories capturing shared
  /// mutable state need the serial path or their own synchronisation.
  support::ThreadPool* pool = nullptr;
};

/// Runs the algorithm on every vertex of g and returns outputs and radii.
/// Serially, one BallGrower and its buffers are reused across all vertices
/// (allocation-free steady state); with options.pool, vertices are swept in
/// parallel with per-worker growers and scratch.
RunResult run_views(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ViewAlgorithmFactory& factory, const ViewEngineOptions& options = {});

/// Runs the algorithm on a single vertex; returns (output, radius).
std::pair<std::int64_t, std::size_t> run_view_on_vertex(const graph::Graph& g,
                                                        const graph::IdAssignment& ids,
                                                        graph::Vertex v,
                                                        const ViewAlgorithmFactory& factory,
                                                        const ViewEngineOptions& options = {});

}  // namespace avglocal::local
