// The ball/view engine: runs a view-driven algorithm to completion on every
// vertex and records the radius profile r(v).
//
// This engine is the measurement ground truth of the reproduction: r(v) is
// literally "the radius at which the algorithm chooses to output" from the
// paper. Vertices are processed independently (the model's nodes do not
// interact in this formulation; all interaction is captured by the view).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/metrics.hpp"
#include "local/view.hpp"
#include "support/thread_pool.hpp"

namespace avglocal::local {

/// Per-vertex behaviour in the ball formulation of the LOCAL model.
///
/// The engine calls on_view with the vertex's view at radii 0, 1, 2, ...;
/// returning a value commits the output and stops the vertex; nullopt grows
/// the ball by one. Implementations may keep state across calls (one
/// instance serves one vertex).
class ViewAlgorithm {
 public:
  virtual ~ViewAlgorithm() = default;

  virtual std::optional<std::int64_t> on_view(const BallView& view) = 0;

  /// Returns this instance to its initial state so it can serve a fresh
  /// vertex, as if newly constructed. Implementations supporting reuse
  /// return true; the default returns false and the engine constructs a new
  /// instance instead. The batched engine calls this once per
  /// (vertex, assignment), so supporting it removes one allocation per run.
  virtual bool reset() noexcept { return false; }

  /// Smallest radius at which this instance could possibly commit on a view
  /// that does not yet cover the graph. Both engines skip on_view below
  /// this bound while !covers_graph - a contract, not a heuristic: the
  /// implementation guarantees the skipped calls would have returned
  /// nullopt, so radii are unaffected and the engine saves one virtual call
  /// per vertex per skipped radius. The default (0) never skips. Examples:
  /// largest-id can never commit on a 1-vertex non-covering view (1), and
  /// schedule-driven algorithms wait for a fixed target radius.
  virtual std::size_t min_radius() const noexcept { return 0; }

  /// Declares that on_view reads only `radius`, `ids`, `size()` and
  /// `covers_graph` - never `dist`, `ports` or anything derived from them
  /// (degree_of, try_extract_ring_view, ...). The batched engine finishes
  /// thinned-out batches of such algorithms on a sequential fast path whose
  /// views carry exact identifiers, radius and coverage but empty
  /// dist/ports. Opt-in and a hard contract: an implementation that reads
  /// edge or distance data after returning true sees empty arrays. The
  /// default (false) always receives complete views.
  virtual bool ids_only_view() const noexcept { return false; }
};

/// Creates one ViewAlgorithm instance per vertex.
using ViewAlgorithmFactory = std::function<std::unique_ptr<ViewAlgorithm>()>;

/// In-flight trial count at which the batched engine's per-layer id gather
/// switches between its two regimes: at or above this many survivors it
/// reads one contiguous transpose row per ball vertex (SIMD row gather);
/// below it, each straggler streams its own assignment array in a fused
/// gather+evaluate pass. Exposed so tests can pin bit-identity across the
/// boundary (including exactly at it).
inline constexpr std::size_t kRowGatherMinActive = 64;

/// Wall-clock breakdown of one serial run_views_batched call, accumulated
/// when ViewEngineOptions::phase_stats points here. Identifies which phase
/// a throughput regression lives in (bench_regression records it in
/// BENCH_core.json).
struct BatchPhaseStats {
  double transpose_sec = 0;  ///< row-major transpose build
  double grow_sec = 0;       ///< shared BFS growth (incl. layer jumps)
  double gather_sec = 0;     ///< id gathers (row, straggler and sequential)
  double eval_sec = 0;       ///< algorithm on_view calls + result sink
};

struct ViewEngineOptions {
  ViewSemantics semantics = ViewSemantics::kInducedBall;

  /// Hard cap on the per-vertex radius; 0 means "number of vertices", which
  /// no terminating algorithm can exceed (the ball covers the graph well
  /// before). Exceeding the cap throws std::runtime_error.
  std::size_t max_radius = 0;

  /// Worker pool to sweep vertices in parallel (not owned; may be shared
  /// across calls). nullptr or a size-1 pool runs the serial path. Results
  /// are bit-identical regardless of pool size: vertices are independent and
  /// outputs are written to per-vertex slots. With a pool, the factory (and
  /// the algorithms it creates) are invoked from multiple threads at once,
  /// so both must be safe to call concurrently - factories capturing shared
  /// mutable state need the serial path or their own synchronisation.
  support::ThreadPool* pool = nullptr;

  /// min_radius layer-jump (batched lockstep mode): while every in-flight
  /// trial has radius < min_radius and the ball does not cover the graph,
  /// the per-layer evaluate pass is a guaranteed no-op (the min_radius
  /// contract), so the engine grows several BFS layers at once and gathers
  /// them in one fused pass. Outputs, radii and exception behaviour are
  /// bit-identical either way (the radius cap is still checked per layer);
  /// the toggle exists so tests and benches can pin that.
  bool layer_jump = true;

  /// When non-null, run_views_batched accumulates a wall-clock phase
  /// breakdown here. Serial path only: ignored when a multi-worker pool is
  /// set (workers would race on the accumulator).
  BatchPhaseStats* phase_stats = nullptr;
};

/// Runs the algorithm on every vertex of g and returns outputs and radii.
/// Serially, one BallGrower and its buffers are reused across all vertices
/// (allocation-free steady state); with options.pool, vertices are swept in
/// parallel with per-worker growers and scratch.
RunResult run_views(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ViewAlgorithmFactory& factory, const ViewEngineOptions& options = {});

/// Per-(vertex, assignment) result callback of run_views_batched. `worker`
/// identifies the executing pool worker (always 0 on the serial path),
/// stable across one call - usable to index per-worker accumulators.
/// Different workers invoke the sink concurrently (for different vertices);
/// any single worker invokes it serially.
using BatchedResultFn = std::function<void(std::size_t worker, std::size_t trial, graph::Vertex v,
                                           std::int64_t output, std::size_t radius)>;

/// Runs the algorithm on every vertex under every id-assignment of `batch`
/// in one pass, vertices as the outer loop: each vertex's ball geometry is
/// grown once and replayed per assignment (local::BallReplayer), so the
/// per-trial cost is an identifier gather plus the algorithm itself -
/// rather than a full BFS regrowth as in per-trial run_views calls. Every
/// assignment must match the graph. Results stream through `sink` instead of
/// materialising batch.size() RunResults; outputs and radii are
/// bit-identical to run_views on each assignment, for every pool size.
void run_views_batched(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                       const ViewAlgorithmFactory& factory, const ViewEngineOptions& options,
                       const BatchedResultFn& sink);

/// Runs the algorithm on a single vertex; returns (output, radius).
std::pair<std::int64_t, std::size_t> run_view_on_vertex(const graph::Graph& g,
                                                        const graph::IdAssignment& ids,
                                                        graph::Vertex v,
                                                        const ViewAlgorithmFactory& factory,
                                                        const ViewEngineOptions& options = {});

}  // namespace avglocal::local
