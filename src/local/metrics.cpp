#include "local/metrics.hpp"

#include <algorithm>

#include "support/assert.hpp"

namespace avglocal::local {

std::size_t RunResult::max_radius() const noexcept {
  std::size_t best = 0;
  for (std::size_t r : radii) best = std::max(best, r);
  return best;
}

std::uint64_t RunResult::sum_radius() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t r : radii) sum += r;
  return sum;
}

double RunResult::average_radius() const noexcept {
  if (radii.empty()) return 0.0;
  return static_cast<double>(sum_radius()) / static_cast<double>(radii.size());
}

RadiusHistogram::RadiusHistogram(std::vector<std::uint64_t> counts) : counts_(std::move(counts)) {
  while (!counts_.empty() && counts_.back() == 0) counts_.pop_back();
  for (std::uint64_t c : counts_) samples_ += c;
}

void RadiusHistogram::add(std::size_t radius, std::uint64_t count) {
  if (count == 0) return;
  if (radius >= counts_.size()) counts_.resize(radius + 1, 0);
  counts_[radius] += count;
  samples_ += count;
}

void RadiusHistogram::add_profile(const RadiusProfile& radii) {
  for (std::size_t r : radii) add(r);
}

void RadiusHistogram::merge(const RadiusHistogram& other) {
  if (other.counts_.size() > counts_.size()) counts_.resize(other.counts_.size(), 0);
  for (std::size_t r = 0; r < other.counts_.size(); ++r) counts_[r] += other.counts_[r];
  samples_ += other.samples_;
}

double RadiusHistogram::mean() const noexcept {
  if (samples_ == 0) return 0.0;
  std::uint64_t weighted = 0;
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    weighted += static_cast<std::uint64_t>(r) * counts_[r];
  }
  return static_cast<double>(weighted) / static_cast<double>(samples_);
}

std::size_t RadiusHistogram::max_radius() const noexcept {
  return counts_.empty() ? 0 : counts_.size() - 1;
}

std::size_t RadiusHistogram::quantile(double q) const {
  AVGLOCAL_EXPECTS(samples_ > 0);
  AVGLOCAL_EXPECTS(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(samples_);
  std::uint64_t cumulative = 0;
  for (std::size_t r = 0; r < counts_.size(); ++r) {
    cumulative += counts_[r];
    if (counts_[r] != 0 && static_cast<double>(cumulative) >= target) return r;
  }
  return max_radius();
}

}  // namespace avglocal::local
