#include "local/metrics.hpp"

#include <algorithm>

namespace avglocal::local {

std::size_t RunResult::max_radius() const noexcept {
  std::size_t best = 0;
  for (std::size_t r : radii) best = std::max(best, r);
  return best;
}

std::uint64_t RunResult::sum_radius() const noexcept {
  std::uint64_t sum = 0;
  for (std::size_t r : radii) sum += r;
  return sum;
}

double RunResult::average_radius() const noexcept {
  if (radii.empty()) return 0.0;
  return static_cast<double>(sum_radius()) / static_cast<double>(radii.size());
}

}  // namespace avglocal::local
