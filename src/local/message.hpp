// Message types for the synchronous message-passing engine.
//
// The LOCAL model places no bound on message size; payloads are sequences of
// 64-bit words (see wire.hpp for structured encoding helpers).
#pragma once

#include <cstdint>
#include <vector>

namespace avglocal::local {

/// Message payload: an arbitrary-length sequence of 64-bit words.
using Payload = std::vector<std::uint64_t>;

/// A message as seen by its receiver.
struct Message {
  /// The receiver's port on which the message arrived.
  std::size_t from_port = 0;
  Payload payload;
};

}  // namespace avglocal::local
