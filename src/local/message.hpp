// Message types for the synchronous message-passing engine.
//
// The LOCAL model places no bound on message size; payloads are sequences of
// 64-bit words (see wire.hpp for structured encoding helpers).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avglocal::local {

/// Message payload: an arbitrary-length sequence of 64-bit words.
using Payload = std::vector<std::uint64_t>;

/// A message as seen by its receiver. The payload is a zero-copy view into
/// the engine's delivery arena: valid for the duration of the on_round call
/// that received it, no longer. Algorithms that need a word sequence past
/// the round must copy it (e.g. Decoder::u64_vector).
struct Message {
  /// The receiver's port on which the message arrived.
  std::size_t from_port = 0;
  std::span<const std::uint64_t> payload;
};

}  // namespace avglocal::local
