// Structured encoding of message payloads.
//
// Algorithms exchange small records (colours, flags, identifier lists);
// Encoder/Decoder give them a typed, bounds-checked layer over the raw
// word-sequence Payload.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <vector>

#include "local/message.hpp"

namespace avglocal::local {

/// Appends typed values to a Payload.
class Encoder {
 public:
  Encoder& u64(std::uint64_t v) {
    words_.push_back(v);
    return *this;
  }

  Encoder& i64(std::int64_t v) { return u64(static_cast<std::uint64_t>(v)); }

  Encoder& flag(bool v) { return u64(v ? 1 : 0); }

  /// Length-prefixed vector of words.
  Encoder& u64_vector(std::span<const std::uint64_t> values) {
    u64(values.size());
    words_.insert(words_.end(), values.begin(), values.end());
    return *this;
  }

  Payload take() { return std::move(words_); }

 private:
  Payload words_;
};

/// Reads typed values back out of a Payload; throws std::out_of_range on
/// truncated input (a malformed message is an algorithm bug worth surfacing).
class Decoder {
 public:
  explicit Decoder(std::span<const std::uint64_t> words) : words_(words) {}

  std::uint64_t u64() {
    if (pos_ >= words_.size()) throw std::out_of_range("wire: truncated payload");
    return words_[pos_++];
  }

  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  bool flag() { return u64() != 0; }

  std::vector<std::uint64_t> u64_vector() {
    const std::uint64_t count = u64();
    if (count > words_.size() - pos_) throw std::out_of_range("wire: truncated vector");
    std::vector<std::uint64_t> out(words_.begin() + static_cast<std::ptrdiff_t>(pos_),
                                   words_.begin() + static_cast<std::ptrdiff_t>(pos_ + count));
    pos_ += count;
    return out;
  }

  bool done() const noexcept { return pos_ == words_.size(); }

 private:
  std::span<const std::uint64_t> words_;
  std::size_t pos_ = 0;
};

}  // namespace avglocal::local
