// Run results and the paper's two running-time measures.
//
// For a run of an algorithm on a graph with identifiers, r(v) is the radius
// (equivalently, the round) at which vertex v committed its output. The
// classic measure is max_v r(v); the paper's measure is avg_v r(v).
#pragma once

#include <cstdint>
#include <vector>

namespace avglocal::local {

/// Per-vertex radii r(v) of one run.
using RadiusProfile = std::vector<std::size_t>;

/// Outcome of one simulation run (either engine).
struct RunResult {
  /// outputs[v] = the value vertex v committed.
  std::vector<std::int64_t> outputs;

  /// radii[v] = r(v): ball radius (view engine) or round number (message
  /// engine) at which v output.
  RadiusProfile radii;

  /// Message engine only: total rounds executed until the last output.
  std::size_t rounds = 0;

  /// Message engine only: total messages and 64-bit words sent.
  std::uint64_t messages = 0;
  std::uint64_t words = 0;

  /// max_v r(v) - the classic worst-case measure of this run.
  std::size_t max_radius() const noexcept;

  /// sum_v r(v).
  std::uint64_t sum_radius() const noexcept;

  /// avg_v r(v) - the paper's measure of this run.
  double average_radius() const noexcept;
};

}  // namespace avglocal::local
