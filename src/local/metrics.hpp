// Run results and the paper's two running-time measures.
//
// For a run of an algorithm on a graph with identifiers, r(v) is the radius
// (equivalently, the round) at which vertex v committed its output. The
// classic measure is max_v r(v); the paper's measure is avg_v r(v).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avglocal::local {

/// Per-vertex radii r(v) of one run.
using RadiusProfile = std::vector<std::size_t>;

/// Outcome of one simulation run (either engine).
struct RunResult {
  /// outputs[v] = the value vertex v committed.
  std::vector<std::int64_t> outputs;

  /// radii[v] = r(v): ball radius (view engine) or round number (message
  /// engine) at which v output.
  RadiusProfile radii;

  /// Message engine only: total rounds executed until the last output.
  std::size_t rounds = 0;

  /// Message engine only: total messages and 64-bit words sent.
  std::uint64_t messages = 0;
  std::uint64_t words = 0;

  /// max_v r(v) - the classic worst-case measure of this run.
  std::size_t max_radius() const noexcept;

  /// sum_v r(v).
  std::uint64_t sum_radius() const noexcept;

  /// avg_v r(v) - the paper's measure of this run.
  double average_radius() const noexcept;
};

/// Exact radius distribution accumulator: counts()[r] = number of
/// (vertex, run) samples whose radius is r. All state is integer counts, so
/// merging partial histograms - across workers of a pooled sweep or shards
/// of a distributed one - is exact and order-independent: any merge order
/// reproduces the monolithic totals bit for bit. This carries the averaged
/// measures of arXiv:1704.05739 (node- and ID-averaged radius, percentile
/// profiles) through batched sweeps.
class RadiusHistogram {
 public:
  RadiusHistogram() = default;

  /// Wraps existing bin counts (e.g. parsed from a shard artefact).
  /// Trailing zero bins are trimmed so equality and merge results are
  /// representation-independent.
  explicit RadiusHistogram(std::vector<std::uint64_t> counts);

  /// Records `count` samples of the given radius.
  void add(std::size_t radius, std::uint64_t count = 1);

  /// Records every radius of a run's profile.
  void add_profile(const RadiusProfile& radii);

  /// Adds another histogram's counts into this one (exact).
  void merge(const RadiusHistogram& other);

  std::uint64_t samples() const noexcept { return samples_; }
  bool empty() const noexcept { return samples_ == 0; }

  /// Bin counts; the last bin (if any) is nonzero.
  std::span<const std::uint64_t> counts() const noexcept { return counts_; }

  /// Mean radius over all samples: the node- and ID-averaged complexity of
  /// the recorded runs. 0 when empty.
  double mean() const noexcept;

  /// Largest radius observed (0 when empty).
  std::size_t max_radius() const noexcept;

  /// Smallest radius whose cumulative count reaches q * samples(), q in
  /// [0, 1] (q = 0.5 is the median radius). Requires a non-empty histogram.
  std::size_t quantile(double q) const;

  friend bool operator==(const RadiusHistogram&, const RadiusHistogram&) = default;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t samples_ = 0;
};

}  // namespace avglocal::local
