// The synchronous message-passing engine: the paper's first formulation of
// the LOCAL model.
//
// Processors sit at the vertices of a network, have distinct identifiers and
// work in rounds: each round every processor sends messages to its direct
// neighbours, receives theirs, and computes. In the unknown-n variant a node
// may commit its output at any round yet continues to receive and relay. The
// engine therefore keeps stepping *all* nodes until every node has output.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/message.hpp"
#include "local/metrics.hpp"
#include "local/node_context.hpp"
#include "local/trace.hpp"

namespace avglocal::local {

/// Per-node behaviour in the message-passing formulation. One instance per
/// node; implementations hold the node's local state.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Round 0: no messages have been exchanged; the node knows only what the
  /// context exposes. Typically queues the first messages.
  virtual void on_start(NodeContext& ctx) = 0;

  /// Round k >= 1: inbox holds the messages queued by neighbours in round
  /// k-1, ordered by receiving port.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;

  /// Returns this instance to its initial state so it can serve a fresh
  /// run, as if newly constructed. Implementations supporting reuse return
  /// true; the default returns false and the engine constructs a new
  /// instance instead. run_messages_batch calls this once per (node,
  /// assignment), so supporting it removes n allocations per trial.
  virtual bool reset() noexcept { return false; }
};

/// Creates one Algorithm instance per node.
using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

/// Whether nodes are told the network size n (the classic LOCAL setting) or
/// not (the setting of this paper, following [KSV13]).
enum class Knowledge {
  kUnknownN,
  kKnowsN,
};

struct EngineOptions {
  Knowledge knowledge = Knowledge::kUnknownN;

  /// Guard against non-terminating algorithms; exceeding throws
  /// std::runtime_error.
  std::size_t max_rounds = 1u << 20;

  /// Optional per-round statistics sink (not owned).
  Trace* trace = nullptr;
};

/// Runs the algorithm on every node of g until all nodes have output.
/// RunResult.radii[v] is the round at which v output, which under full
/// information equals the radius of the ball v has seen.
RunResult run_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                       const AlgorithmFactory& factory, const EngineOptions& options = {});

/// Per-(trial, node) result callback of run_messages_batch; `radius` is the
/// round at which the node output. Invoked for every node of trial t before
/// any node of trial t+1, vertices in increasing order.
using MessageResultFn = std::function<void(std::size_t trial, graph::Vertex v,
                                           std::int64_t output, std::size_t radius)>;

class Engine;

/// A persistent handle on ONE arena-backed message engine bound to
/// (graph, factory, options): topology tables, message arenas, inbox and
/// contexts are built once at construction and rebound per assignment, and
/// algorithm instances whose reset() returns true are reused instead of
/// reconstructed. Unlike run_messages_batch, the engine survives across
/// run() calls, so callers that revisit a point - adaptive trial rounds,
/// per-worker trial ranges of a pooled sweep - pay the warm-up exactly
/// once. Results are bit-identical to a run_messages call per assignment
/// for every call pattern (a test pins this). Not thread-safe: one runner
/// per worker.
class MessageBatchRunner {
 public:
  MessageBatchRunner(const graph::Graph& g, AlgorithmFactory factory,
                     const EngineOptions& options = {});
  ~MessageBatchRunner();
  MessageBatchRunner(MessageBatchRunner&&) noexcept;
  MessageBatchRunner& operator=(MessageBatchRunner&&) noexcept;

  /// Runs every id-assignment of `batch` through the persistent engine;
  /// `trial` in the sink is the index within this batch. The steady-state
  /// round loop stays allocation-free, and with resettable algorithms the
  /// whole per-trial loop allocates nothing after warm-up.
  void run(std::span<const graph::IdAssignment> batch, const MessageResultFn& sink);

 private:
  std::unique_ptr<Engine> engine_;
};

/// One-shot convenience over MessageBatchRunner: builds the engine, runs
/// the batch, tears it down. Callers that run several batches of one point
/// (adaptive rounds, pooled trial ranges) should hold a MessageBatchRunner
/// instead.
void run_messages_batch(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                        const AlgorithmFactory& factory, const EngineOptions& options,
                        const MessageResultFn& sink);

}  // namespace avglocal::local
