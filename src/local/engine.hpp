// The synchronous message-passing engine: the paper's first formulation of
// the LOCAL model.
//
// Processors sit at the vertices of a network, have distinct identifiers and
// work in rounds: each round every processor sends messages to its direct
// neighbours, receives theirs, and computes. In the unknown-n variant a node
// may commit its output at any round yet continues to receive and relay. The
// engine therefore keeps stepping *all* nodes until every node has output.
#pragma once

#include <functional>
#include <memory>
#include <span>

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/message.hpp"
#include "local/metrics.hpp"
#include "local/node_context.hpp"
#include "local/trace.hpp"

namespace avglocal::local {

/// Per-node behaviour in the message-passing formulation. One instance per
/// node; implementations hold the node's local state.
class Algorithm {
 public:
  virtual ~Algorithm() = default;

  /// Round 0: no messages have been exchanged; the node knows only what the
  /// context exposes. Typically queues the first messages.
  virtual void on_start(NodeContext& ctx) = 0;

  /// Round k >= 1: inbox holds the messages queued by neighbours in round
  /// k-1, ordered by receiving port.
  virtual void on_round(NodeContext& ctx, std::span<const Message> inbox) = 0;

  /// Returns this instance to its initial state so it can serve a fresh
  /// run, as if newly constructed. Implementations supporting reuse return
  /// true; the default returns false and the engine constructs a new
  /// instance instead. run_messages_batch calls this once per (node,
  /// assignment), so supporting it removes n allocations per trial.
  virtual bool reset() noexcept { return false; }
};

/// Creates one Algorithm instance per node.
using AlgorithmFactory = std::function<std::unique_ptr<Algorithm>()>;

/// Whether nodes are told the network size n (the classic LOCAL setting) or
/// not (the setting of this paper, following [KSV13]).
enum class Knowledge {
  kUnknownN,
  kKnowsN,
};

struct EngineOptions {
  Knowledge knowledge = Knowledge::kUnknownN;

  /// Guard against non-terminating algorithms; exceeding throws
  /// std::runtime_error.
  std::size_t max_rounds = 1u << 20;

  /// Optional per-round statistics sink (not owned).
  Trace* trace = nullptr;
};

/// Runs the algorithm on every node of g until all nodes have output.
/// RunResult.radii[v] is the round at which v output, which under full
/// information equals the radius of the ball v has seen.
RunResult run_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                       const AlgorithmFactory& factory, const EngineOptions& options = {});

/// Per-(trial, node) result callback of run_messages_batch; `radius` is the
/// round at which the node output. Invoked for every node of trial t before
/// any node of trial t+1, vertices in increasing order.
using MessageResultFn = std::function<void(std::size_t trial, graph::Vertex v,
                                           std::int64_t output, std::size_t radius)>;

/// Runs the algorithm on every id-assignment of `batch` through ONE engine:
/// topology tables, message arenas, inbox and contexts are built once and
/// rebound per assignment, and algorithm instances whose reset() returns
/// true are reused instead of reconstructed. Results are bit-identical to a
/// run_messages call per assignment (a test pins this); the steady-state
/// round loop stays allocation-free, and with resettable algorithms the
/// whole per-trial loop allocates nothing after warm-up.
void run_messages_batch(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                        const AlgorithmFactory& factory, const EngineOptions& options,
                        const MessageResultFn& sink);

}  // namespace avglocal::local
