// Full-information adapter: runs a ViewAlgorithm through the message engine.
//
// This is the constructive proof (at code level) that the paper's two
// formulations of the LOCAL model agree: a gossip protocol floods identifier
// and adjacency facts, each node reconstructs its radius-k view after k
// rounds, and feeds it to the same ViewAlgorithm the ball engine runs.
// Radii and outputs then match run_views(..., kFloodingKnowledge) exactly.
//
// One known, harmless divergence: for a *frontier* vertex (distance exactly
// k), the adapter may know an incident edge without knowing which of the
// frontier vertex's ports carries it (that fact is still one hop away). Such
// edges are placed into free port slots; algorithms that only use frontier
// adjacency as a set - all algorithms in this library - are unaffected.
#pragma once

#include "graph/graph.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/metrics.hpp"
#include "local/view_engine.hpp"

namespace avglocal::local {

/// Wraps a view algorithm as a message algorithm: each node gossips
/// identifier/adjacency facts, reconstructs its radius-k view after k
/// rounds and feeds it to `factory`'s algorithm. This is the message
/// formulation of *any* view algorithm - run_message_sweep accepts it
/// directly, which is what lets the cross-engine oracle suite compare the
/// two engines on arbitrary topologies. Supports Algorithm::reset whenever
/// the inner view algorithm does.
AlgorithmFactory make_full_info_factory(ViewAlgorithmFactory factory);

/// Runs `factory`'s view algorithm on every vertex via message flooding.
/// The result's radii equal the rounds after which each node output.
RunResult run_views_by_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                                const ViewAlgorithmFactory& factory,
                                const EngineOptions& options = {});

}  // namespace avglocal::local
