#include "local/node_context.hpp"

#include <stdexcept>

#include "support/assert.hpp"

namespace avglocal::local {

void NodeContext::send(std::size_t port, std::span<const std::uint64_t> payload) {
  if (port >= degree_) throw std::invalid_argument("send: port out of range");
  AVGLOCAL_ASSERT(outgoing_ != nullptr && *outgoing_ != nullptr && mirror_arcs_ != nullptr);
  // Receiver-side slot: port q's payload lands at the mirror arc, so the
  // receiving node drains one contiguous arc window. The mirror mapping is
  // a bijection on arcs, so the one-message-per-port rule is unchanged.
  if (!(*outgoing_)->push(mirror_arcs_[port], payload)) {
    throw std::invalid_argument("send: one message per port per round");
  }
}

void NodeContext::broadcast(std::span<const std::uint64_t> payload) {
  for (std::size_t port = 0; port < degree_; ++port) send(port, payload);
}

void NodeContext::output(std::int64_t value) {
  if (output_.has_value()) throw std::logic_error("output: node already output");
  output_ = value;
  output_round_ = round_;
}

}  // namespace avglocal::local
