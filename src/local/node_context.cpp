#include "local/node_context.hpp"

#include <stdexcept>

namespace avglocal::local {

void NodeContext::send(std::size_t port, Payload payload) {
  if (port >= outbox_.size()) throw std::invalid_argument("send: port out of range");
  if (outbox_[port].has_value()) {
    throw std::invalid_argument("send: one message per port per round");
  }
  outbox_[port] = std::move(payload);
}

void NodeContext::broadcast(const Payload& payload) {
  for (std::size_t port = 0; port < outbox_.size(); ++port) send(port, payload);
}

void NodeContext::output(std::int64_t value) {
  if (output_.has_value()) throw std::logic_error("output: node already output");
  output_ = value;
  output_round_ = round_;
}

}  // namespace avglocal::local
