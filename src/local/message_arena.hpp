// Flat, reusable storage for one round of in-flight messages.
//
// The engine keeps two arenas and ping-pongs between them: algorithms write
// the round-k sends into one while the engine delivers the round-(k-1)
// sends from the other. A slot exists per directed arc of the graph (CSR
// arc index = Graph::arc_index(v, port)); presence is a bitmask, payload
// words live back-to-back in a single buffer. begin_round() resets cursors
// without releasing capacity, so after a warm-up phase in which the buffers
// grow to the round high-water mark, rounds perform zero heap allocations.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "support/annotations.hpp"
#include "support/simd.hpp"

namespace avglocal::local {

class MessageArena {
 public:
  /// Sizes the per-arc tables. Called once per run; clears everything.
  void attach(std::size_t arc_count);

  /// Forgets all messages; keeps capacity. O(arc_count / 64).
  void begin_round() noexcept;

  /// Stores a payload in `arc`'s slot; false if the slot is already taken
  /// this round (one message per port per round).
  bool push(std::size_t arc, std::span<const std::uint64_t> words);

  AVGLOCAL_HOT bool has(std::size_t arc) const noexcept {
    return (present_[arc >> 6] >> (arc & 63)) & 1u;
  }

  /// Payload stored in `arc`'s slot; valid only when has(arc), and only
  /// until the next begin_round/attach.
  AVGLOCAL_HOT std::span<const std::uint64_t> payload(std::size_t arc) const noexcept {
    const Slot& slot = slots_[arc];
    return {words_.data() + slot.offset, slot.length};
  }

  /// Invokes fn(arc) for every message-bearing arc in [arc_begin, arc_end),
  /// ascending. A wide scan over the presence bitmask - one load per 64
  /// arcs, one count_trailing_zeros per message - instead of a per-arc
  /// has() test; this is how the engine drains a vertex's contiguous
  /// receive window each round.
  template <typename Fn>
  AVGLOCAL_HOT void for_each_present(std::size_t arc_begin, std::size_t arc_end, Fn&& fn) const {
    support::simd::for_each_set_bit(present_.data(), arc_begin, arc_end, std::forward<Fn>(fn));
  }

  /// Messages pushed since begin_round.
  std::size_t message_count() const noexcept { return messages_; }

  /// Total payload words pushed since begin_round.
  std::size_t word_count() const noexcept { return used_words_; }

 private:
  // 8-byte slots (was 16 with a size_t offset): the slot table is touched
  // once per send and once per delivery, so at 2m slots per arena the
  // narrow offset halves the table's cache traffic. A round's payload
  // arena is capped at 2^32 words by push() - 32 GiB of payload per
  // round - mirroring the 2^32-arc cap of GraphBuilder::build.
  struct Slot {
    std::uint32_t offset = 0;
    std::uint32_t length = 0;
  };

  std::vector<std::uint64_t> words_;    // payload arena, first used_words_ live
  std::vector<Slot> slots_;             // per arc, valid where present
  std::vector<std::uint64_t> present_;  // bitmask, one bit per arc
  std::size_t used_words_ = 0;
  std::size_t messages_ = 0;
};

}  // namespace avglocal::local
