#include "local/view_engine.hpp"

#include <algorithm>
#include <chrono>
#include <memory>
#include <stdexcept>
#include <vector>

#include "support/aligned.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"
#include "support/simd.hpp"

namespace avglocal::local {

using support::checked_u32;

namespace {

/// Runs one vertex on an already reset grower.
std::pair<std::int64_t, std::size_t> run_one(const graph::Graph& g, BallGrower& grower,
                                             const ViewAlgorithmFactory& factory,
                                             const ViewEngineOptions& options) {
  const std::size_t cap = options.max_radius == 0 ? g.vertex_count() : options.max_radius;
  const auto algorithm = factory();
  AVGLOCAL_REQUIRE_MSG(algorithm != nullptr, "view algorithm factory returned null");
  const std::size_t min_radius = algorithm->min_radius();
  while (true) {
    const BallView& view = grower.view();
    if (static_cast<std::size_t>(view.radius) >= min_radius || view.covers_graph) {
      if (const auto output = algorithm->on_view(view)) {
        return {*output, static_cast<std::size_t>(view.radius)};
      }
    }
    if (static_cast<std::size_t>(view.radius) >= cap) {
      throw std::runtime_error("view engine: radius cap exceeded (non-terminating algorithm?)");
    }
    grower.grow();
  }
}

/// Sweeps [begin, end), reusing the grower across vertices.
void run_range(const graph::Graph& g, BallGrower& grower, const ViewAlgorithmFactory& factory,
               const ViewEngineOptions& options, graph::Vertex begin, graph::Vertex end,
               RunResult& result) {
  for (graph::Vertex v = begin; v < end; ++v) {
    grower.reset(v);
    const auto [output, radius] = run_one(g, grower, factory, options);
    result.outputs[v] = output;
    result.radii[v] = radius;
  }
}

/// Identifiers a trial can hold without leaving its slot record. Covers the
/// radius-0..3 balls of low-degree graphs - where the bulk of all
/// (vertex, trial) runs finish - so most trials never touch a second
/// allocation.
constexpr std::size_t kInlineIds = 8;

/// Everything one in-flight trial needs, in one record: the lockstep engine
/// touches per-trial state once per (vertex, trial, radius), so packing the
/// trial index, algorithm handle and id buffer together (instead of
/// spreading them over parallel arrays) is what bounds the cache lines per
/// touch - with hundreds of assignments in flight this loop is
/// memory-bound, not compute-bound. The trial's view identifiers (discovery
/// order) live in inline_ids until the ball outgrows it, then in spill;
/// `ids_for` hands out the right buffer and migrates at the boundary.
struct TrialSlot {
  std::uint32_t trial = 0;
  std::uint32_t min_radius = 0;  ///< cached ViewAlgorithm::min_radius()
  std::unique_ptr<ViewAlgorithm> algorithm;
  alignas(support::kCacheLine) std::array<std::uint64_t, kInlineIds> inline_ids;
  support::AlignedVector<std::uint64_t> spill;

  /// Storage holding `have` gathered identifiers, grown to hold `want`.
  std::uint64_t* ids_for(std::size_t have, std::size_t want) {
    if (want <= kInlineIds) return inline_ids.data();
    if (have <= kInlineIds) {
      spill.assign(inline_ids.begin(),
                   inline_ids.begin() + static_cast<std::ptrdiff_t>(have));
    }
    spill.resize(want);
    return spill.data();
  }
};

/// Per-worker state of the batched sweep: one grower whose geometry is
/// shared by every assignment of the batch, plus whatever the execution
/// mode needs - TrialSlots for the lockstep mode, a single hot id buffer
/// and algorithm for the sequential mode. All buffers keep their capacity
/// across vertices and chunks.
struct BatchedWorker {
  BallGrower::Scratch scratch;
  BallGrower grower;
  std::vector<TrialSlot> slots;        // lockstep: one per trial (slot k = trial k)
  std::vector<std::uint32_t> active;   // lockstep: slot indices in flight, ascending
  std::vector<std::uint64_t*> heads;   // lockstep: per-active id buffers during a gather
  std::vector<std::uint32_t> prefix;   // prefix[r] = |ball| at radius r (current vertex)
  std::size_t covers_radius = 0;       // first covering radius; SIZE_MAX until known
  support::AlignedVector<std::uint64_t> seq_ids;  // sequential: the live trial's identifiers
  BallView seq_view;                   // sequential: ids-only view handed to on_view
  std::unique_ptr<ViewAlgorithm> seq_algorithm;  // sequential: reused across runs

  BatchedWorker(const graph::Graph& g, const graph::IdAssignment& geometry_ids,
                ViewSemantics semantics, std::size_t trials)
      : scratch(g.vertex_count()), grower(g, geometry_ids, 0, semantics, scratch), slots(trials) {
    for (std::size_t t = 0; t < trials; ++t) slots[t].trial = checked_u32(t);
  }

  /// Re-roots the shared geometry and its per-radius bookkeeping.
  void reroot(graph::Vertex v) {
    grower.reset(v);
    prefix.clear();
    prefix.push_back(1);
    covers_radius = grower.view().covers_graph ? 0 : SIZE_MAX;
  }

  /// One geometry step, recording ball size per radius and the covering
  /// radius - what historical ids-only views are synthesized from.
  void grow_once() {
    grower.grow();
    prefix.push_back(checked_u32(grower.global_vertices().size()));
    if (covers_radius == SIZE_MAX && grower.view().covers_graph) {
      covers_radius = static_cast<std::size_t>(grower.view().radius);
    }
  }
};

/// Chained phase stopwatch: lap(&BatchPhaseStats::field) adds the time
/// since the previous lap to that field and restarts. A null stats pointer
/// turns every call into a no-op, keeping the hot loops branch-cheap when
/// nobody is measuring.
struct PhaseTimer {
  using Clock = std::chrono::steady_clock;
  BatchPhaseStats* stats;
  Clock::time_point mark;

  explicit PhaseTimer(BatchPhaseStats* s) : stats(s) {
    if (stats != nullptr) mark = Clock::now();
  }

  void lap(double BatchPhaseStats::* field) {
    if (stats == nullptr) return;
    const auto now = Clock::now();
    stats->*field += std::chrono::duration<double>(now - mark).count();
    mark = now;
  }
};

/// Sequential mode, for algorithms declaring ids_only_view(): one
/// (vertex, assignment) run at a time, start to finish. The ball geometry
/// is still grown once per vertex (lazily, to the deepest radius any
/// assignment needs) and later runs replay it through the recorded
/// per-radius ball sizes; but the live state - one id buffer, one
/// algorithm instance, one identifier stream - fits in a few cache lines
/// no matter how many assignments the batch holds. Views carry exact
/// identifiers, radius and coverage, and empty dist/ports (the contract).
void run_sequential_range(const graph::Graph& g, BatchedWorker& state,
                          std::span<const graph::IdAssignment> batch,
                          const ViewAlgorithmFactory& factory, const ViewEngineOptions& options,
                          std::size_t worker, graph::Vertex begin, graph::Vertex end,
                          const BatchedResultFn& sink) {
  const std::size_t cap = options.max_radius == 0 ? g.vertex_count() : options.max_radius;
  PhaseTimer timer(options.phase_stats);
  for (graph::Vertex v = begin; v < end; ++v) {
    state.reroot(v);
    for (std::size_t trial = 0; trial < batch.size(); ++trial) {
      if (state.seq_algorithm == nullptr || !state.seq_algorithm->reset()) {
        state.seq_algorithm = factory();
        AVGLOCAL_REQUIRE_MSG(state.seq_algorithm != nullptr,
                             "view algorithm factory returned null");
      }
      ViewAlgorithm& algorithm = *state.seq_algorithm;
      const std::size_t min_radius = algorithm.min_radius();
      const std::span<const std::uint64_t> sigma = batch[trial].ids();
      state.seq_ids.resize(1);
      state.seq_ids[0] = sigma[v];
      std::size_t filled = 1;
      std::size_t rho = 0;
      while (true) {
        const bool covers = rho >= state.covers_radius;
        if (rho >= min_radius || covers) {
          state.seq_view.radius = static_cast<int>(rho);
          state.seq_view.ids = {state.seq_ids.data(), filled};
          state.seq_view.covers_graph = covers;
          if (const auto output = algorithm.on_view(state.seq_view)) {
            sink(worker, trial, v, *output, rho);
            timer.lap(&BatchPhaseStats::eval_sec);
            break;
          }
        }
        if (rho >= cap) {
          throw std::runtime_error(
              "view engine: radius cap exceeded (non-terminating algorithm?)");
        }
        timer.lap(&BatchPhaseStats::eval_sec);
        ++rho;
        while (static_cast<std::size_t>(state.grower.view().radius) < rho) state.grow_once();
        timer.lap(&BatchPhaseStats::grow_sec);
        const std::size_t s_rho = state.prefix[rho];
        const std::span<const graph::Vertex> globals = state.grower.global_vertices();
        state.seq_ids.resize(s_rho);
        support::simd::gather_u64(state.seq_ids.data() + filled, sigma.data(),
                                  globals.data() + filled, s_rho - filled);
        filled = s_rho;
        timer.lap(&BatchPhaseStats::gather_sec);
      }
    }
  }
}

/// Lockstep mode, for algorithms that read full views (ports, dist): every
/// assignment of the batch advances in step over one shared ball. At equal
/// radius the geometry (distances, ports, coverage) is identical for every
/// assignment, so the grower's live view serves them all - only the
/// identifier span is re-pointed per trial around the algorithm call. Each
/// trial pays an id gather and its algorithm; the BFS runs once per vertex,
/// up to the deepest radius any trial of the batch needs.
///
/// `row_ids` is the row-major transpose of the batch (row_ids[v * row_stride
/// + t] = assignment t's identifier of vertex v; row_stride >= trials is
/// padded so every row starts on a cache line): gathering one ball vertex's
/// identifier for every active trial then reads one contiguous row instead
/// of touching `trials` separate arrays - with hundreds of assignments in
/// flight, that stream locality is what keeps the gather from going
/// memory-bound. The row gather and the straggler/sequential gathers run
/// through the SIMD kernels of support/simd.hpp (bit-identical to their
/// scalar references by construction).
void run_batched_range(const graph::Graph& g, BatchedWorker& state,
                       std::span<const graph::IdAssignment> batch,
                       std::span<const std::uint64_t> row_ids, std::size_t row_stride,
                       std::size_t trials, const ViewAlgorithmFactory& factory,
                       const ViewEngineOptions& options, std::size_t worker, graph::Vertex begin,
                       graph::Vertex end, const BatchedResultFn& sink) {
  const std::size_t cap = options.max_radius == 0 ? g.vertex_count() : options.max_radius;
  PhaseTimer timer(options.phase_stats);
  for (graph::Vertex v = begin; v < end; ++v) {
    state.reroot(v);
    const std::uint64_t* root_row = row_ids.data() + static_cast<std::size_t>(v) * row_stride;

    // Evaluates one slot at the current radius: point the shared view's
    // identifier span at the trial's buffer (two words; grow() re-points it
    // at the grower's own store) and ask the algorithm. Returns true when
    // the trial finished (the result goes straight to the sink).
    std::size_t radius = 0;
    std::size_t ball_end = 1;  // |ball| at the current radius
    const auto evaluate = [&](TrialSlot& slot, const std::uint64_t* ids) {
      if (radius < slot.min_radius && !state.grower.view().covers_graph) return false;
      state.grower.bind_ids({ids, ball_end});
      const auto output = slot.algorithm->on_view(state.grower.view());
      if (!output) return false;
      sink(worker, slot.trial, v, *output, radius);
      return true;
    };

    // Radius 0 fused with slot setup: every trial sees just its root
    // identifier - one pass over the slots, not two.
    state.active.clear();
    for (std::size_t k = 0; k < trials; ++k) {
      TrialSlot& slot = state.slots[k];
      slot.inline_ids[0] = root_row[slot.trial];
      if (slot.algorithm == nullptr || !slot.algorithm->reset()) {
        slot.algorithm = factory();
        AVGLOCAL_REQUIRE_MSG(slot.algorithm != nullptr, "view algorithm factory returned null");
        slot.min_radius = checked_u32(slot.algorithm->min_radius());
      }
      if (!evaluate(slot, slot.inline_ids.data())) {
        state.active.push_back(checked_u32(k));
      }
    }
    timer.lap(&BatchPhaseStats::eval_sec);

    while (!state.active.empty()) {
      // Layer-jump target: the smallest min_radius any surviving trial
      // declares. Below it (and before coverage) the per-layer evaluate
      // pass is a guaranteed no-op - see ViewEngineOptions::layer_jump -
      // so the engine may grow straight through those layers and gather
      // them in one fused pass below.
      std::size_t jump_target = 0;
      if (options.layer_jump) {
        jump_target = SIZE_MAX;
        for (const std::uint32_t k : state.active) {
          jump_target = std::min(jump_target, static_cast<std::size_t>(state.slots[k].min_radius));
        }
      }

      if (radius >= cap) {
        throw std::runtime_error("view engine: radius cap exceeded (non-terminating algorithm?)");
      }
      // One shared BFS step ...
      state.grow_once();
      ++radius;
      // ... plus, under the jump, every further layer the stepwise engine
      // would have grown without a single live evaluate. The cap is checked
      // per layer and the jump stops at the first covering radius, so
      // behaviour (including exceptions) matches the stepwise path exactly.
      while (radius < jump_target && state.covers_radius == SIZE_MAX) {
        if (radius >= cap) {
          throw std::runtime_error(
              "view engine: radius cap exceeded (non-terminating algorithm?)");
        }
        state.grow_once();
        ++radius;
      }
      timer.lap(&BatchPhaseStats::grow_sec);
      const std::span<const graph::Vertex> globals = state.grower.global_vertices();
      const std::size_t new_end = globals.size();

      // ... then, for every surviving trial, the new layer's identifiers
      // (the only per-trial view state) and the evaluation. Two regimes:
      // with many trials in flight, the gather reads one contiguous
      // transpose row per layer vertex (dense use of every cache line;
      // per-assignment arrays would be hundreds of concurrent streams) and
      // evaluation is a second pass. Once the field has thinned to
      // stragglers, gather and evaluation fuse into a single pass over each
      // survivor's own assignment array - for them the transpose rows would
      // cost a whole cache line per 8 bytes. Finished trials are compacted
      // out of the 4-byte index list in place; slots never move.
      std::size_t kept = 0;
      const std::size_t in_flight = state.active.size();
      if (in_flight >= kRowGatherMinActive) {
        state.heads.clear();
        for (const std::uint32_t k : state.active) {
          state.heads.push_back(state.slots[k].ids_for(ball_end, new_end));
        }
        support::simd::layer_gather(row_ids.data(), row_stride, globals.data() + ball_end,
                                    new_end - ball_end, state.active.data(), in_flight,
                                    state.heads.data(), ball_end);
        ball_end = new_end;
        timer.lap(&BatchPhaseStats::gather_sec);
        for (std::size_t j = 0; j < in_flight; ++j) {
          const std::uint32_t k = state.active[j];
          if (!evaluate(state.slots[k], state.heads[j])) state.active[kept++] = k;
        }
        timer.lap(&BatchPhaseStats::eval_sec);
      } else {
        const std::size_t prev_end = ball_end;
        ball_end = new_end;
        for (std::size_t j = 0; j < in_flight; ++j) {
          const std::uint32_t k = state.active[j];
          TrialSlot& slot = state.slots[k];
          const std::span<const std::uint64_t> sigma = batch[slot.trial].ids();
          std::uint64_t* ids = slot.ids_for(prev_end, new_end);
          support::simd::gather_u64(ids + prev_end, sigma.data(), globals.data() + prev_end,
                                    new_end - prev_end);
          timer.lap(&BatchPhaseStats::gather_sec);
          if (!evaluate(slot, ids)) state.active[kept++] = k;
          timer.lap(&BatchPhaseStats::eval_sec);
        }
      }
      state.active.resize(kept);
    }
  }
}

}  // namespace

void run_views_batched(const graph::Graph& g, std::span<const graph::IdAssignment> batch,
                       const ViewAlgorithmFactory& factory, const ViewEngineOptions& options,
                       const BatchedResultFn& sink) {
  AVGLOCAL_EXPECTS(!batch.empty());
  const std::size_t n = g.vertex_count();
  if (n == 0) return;
  for (const graph::IdAssignment& ids : batch) AVGLOCAL_EXPECTS(ids.size() == n);

  // The execution mode is probed once: a factory must produce algorithms of
  // uniform capabilities (in practice it constructs one type).
  const bool ids_only = [&] {
    const auto probe = factory();
    AVGLOCAL_REQUIRE_MSG(probe != nullptr, "view algorithm factory returned null");
    return probe->ids_only_view();
  }();

  // The workers' growers run with this placeholder array in place; geometry
  // never consults it, and the per-assignment arrays are bound around
  // algorithm calls only.
  const graph::IdAssignment geometry_ids = graph::IdAssignment::identity(n);

  // Row-major transpose of the batch for the lockstep gather, shared
  // read-only by all workers (see run_batched_range). Memory: 8 * n *
  // row_stride bytes - callers bound it by batching trials (e.g.
  // BatchedSweepOptions::batch_size). The stride is `trials` rounded up to
  // a full cache line of ids, so every row starts 64-byte aligned (the SIMD
  // kernels' invariant; pad columns are never read). Built in vertex tiles
  // through the SIMD transpose kernel so the strided side stays
  // cache-resident. The sequential mode streams the assignment arrays
  // directly and skips it.
  const std::size_t trials = batch.size();
  const std::size_t row_stride = (trials + 7) & ~std::size_t{7};
  support::AlignedVector<std::uint64_t> row_ids;
  if (!ids_only) {
    PhaseTimer timer(options.pool == nullptr || options.pool->size() == 1
                         ? options.phase_stats
                         : nullptr);
    row_ids.resize(n * row_stride);
    AVGLOCAL_ASSERT(support::is_aligned(row_ids.data()));
    std::vector<const std::uint64_t*> tile_srcs(trials);
    constexpr std::size_t kTransposeTile = 64;
    for (std::size_t v0 = 0; v0 < n; v0 += kTransposeTile) {
      const std::size_t v1 = std::min(n, v0 + kTransposeTile);
      for (std::size_t t = 0; t < trials; ++t) tile_srcs[t] = batch[t].ids().data() + v0;
      support::simd::transpose_to_rows(row_ids.data() + v0 * row_stride, row_stride,
                                       tile_srcs.data(), trials, v1 - v0);
    }
    timer.lap(&BatchPhaseStats::transpose_sec);
  }

  const auto run_range_mode = [&](BatchedWorker& state, const ViewEngineOptions& opts,
                                  std::size_t worker, graph::Vertex b, graph::Vertex e) {
    if (ids_only) {
      run_sequential_range(g, state, batch, factory, opts, worker, b, e, sink);
    } else {
      run_batched_range(g, state, batch, row_ids, row_stride, trials, factory, opts, worker, b, e,
                        sink);
    }
  };

  support::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() == 1 || n == 1) {
    BatchedWorker state(g, geometry_ids, options.semantics, trials);
    run_range_mode(state, options, 0, 0, checked_u32(n));
    return;
  }

  // Parallel sweep over vertices, exactly as in run_views; each worker keeps
  // its grower, id buffers and algorithm instances alive across its chunks.
  // The sink sees disjoint vertex sets per worker.
  std::vector<std::unique_ptr<BatchedWorker>> states(pool->size());
  // Chunks carry batch.size() runs per vertex, so smaller chunks than the
  // single-assignment sweep still amortise the scheduling cursor while
  // balancing the heavy tail.
  // phase_stats is a serial-path facility: workers would race on the
  // accumulator, so the parallel sweep runs with it cleared.
  ViewEngineOptions parallel_options = options;
  parallel_options.phase_stats = nullptr;
  const std::size_t grain = std::max<std::size_t>(4, n / (16 * pool->size()));
  pool->for_range(n, grain, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    auto& state = states[worker];
    if (!state) {
      state = std::make_unique<BatchedWorker>(g, geometry_ids, options.semantics, trials);
    }
    run_range_mode(*state, parallel_options, worker, checked_u32(begin), checked_u32(end));
  });
}

RunResult run_views(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ViewAlgorithmFactory& factory, const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  const std::size_t n = g.vertex_count();
  RunResult result;
  result.outputs.resize(n);
  result.radii.resize(n);
  if (n == 0) return result;

  support::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() == 1 || n == 1) {
    BallGrower::Scratch scratch(n);
    BallGrower grower(g, ids, 0, options.semantics, scratch);
    run_range(g, grower, factory, options, 0, checked_u32(n), result);
    return result;
  }

  // Parallel sweep: vertices are independent; each worker keeps one grower
  // plus scratch alive across all chunks it is handed. Outputs go to
  // per-vertex slots, so the result is identical for every pool size.
  struct WorkerState {
    BallGrower::Scratch scratch;
    BallGrower grower;
    WorkerState(const graph::Graph& g, const graph::IdAssignment& ids, ViewSemantics semantics)
        : scratch(g.vertex_count()), grower(g, ids, 0, semantics, scratch) {}
  };
  std::vector<std::unique_ptr<WorkerState>> states(pool->size());
  // Chunks big enough to amortise the scheduling cursor, small enough to
  // balance the heavy tail (ball sizes vary by orders of magnitude).
  const std::size_t grain = std::max<std::size_t>(16, n / (8 * pool->size()));
  pool->for_range(n, grain, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    auto& state = states[worker];
    if (!state) state = std::make_unique<WorkerState>(g, ids, options.semantics);
    run_range(g, state->grower, factory, options, checked_u32(begin), checked_u32(end), result);
  });
  return result;
}

std::pair<std::int64_t, std::size_t> run_view_on_vertex(const graph::Graph& g,
                                                        const graph::IdAssignment& ids,
                                                        graph::Vertex v,
                                                        const ViewAlgorithmFactory& factory,
                                                        const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  AVGLOCAL_EXPECTS(v < g.vertex_count());
  BallGrower::Scratch scratch(g.vertex_count());
  BallGrower grower(g, ids, v, options.semantics, scratch);
  return run_one(g, grower, factory, options);
}

}  // namespace avglocal::local
