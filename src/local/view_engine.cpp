#include "local/view_engine.hpp"

#include <stdexcept>

#include "support/assert.hpp"

namespace avglocal::local {

namespace {

std::pair<std::int64_t, std::size_t> run_one(const graph::Graph& g,
                                             const graph::IdAssignment& ids, graph::Vertex v,
                                             const ViewAlgorithmFactory& factory,
                                             const ViewEngineOptions& options,
                                             BallGrower::Scratch& scratch) {
  const std::size_t cap = options.max_radius == 0 ? g.vertex_count() : options.max_radius;
  const auto algorithm = factory();
  AVGLOCAL_REQUIRE_MSG(algorithm != nullptr, "view algorithm factory returned null");
  BallGrower grower(g, ids, v, options.semantics, scratch);
  while (true) {
    if (const auto output = algorithm->on_view(grower.view())) {
      return {*output, static_cast<std::size_t>(grower.view().radius)};
    }
    if (static_cast<std::size_t>(grower.view().radius) >= cap) {
      throw std::runtime_error("view engine: radius cap exceeded (non-terminating algorithm?)");
    }
    grower.grow();
  }
}

}  // namespace

RunResult run_views(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ViewAlgorithmFactory& factory, const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  RunResult result;
  result.outputs.resize(g.vertex_count());
  result.radii.resize(g.vertex_count());
  BallGrower::Scratch scratch(g.vertex_count());
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    const auto [output, radius] = run_one(g, ids, v, factory, options, scratch);
    result.outputs[v] = output;
    result.radii[v] = radius;
  }
  return result;
}

std::pair<std::int64_t, std::size_t> run_view_on_vertex(const graph::Graph& g,
                                                        const graph::IdAssignment& ids,
                                                        graph::Vertex v,
                                                        const ViewAlgorithmFactory& factory,
                                                        const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  AVGLOCAL_EXPECTS(v < g.vertex_count());
  BallGrower::Scratch scratch(g.vertex_count());
  return run_one(g, ids, v, factory, options, scratch);
}

}  // namespace avglocal::local
