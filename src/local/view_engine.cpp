#include "local/view_engine.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "support/assert.hpp"

namespace avglocal::local {

namespace {

/// Runs one vertex on an already reset grower.
std::pair<std::int64_t, std::size_t> run_one(const graph::Graph& g, BallGrower& grower,
                                             const ViewAlgorithmFactory& factory,
                                             const ViewEngineOptions& options) {
  const std::size_t cap = options.max_radius == 0 ? g.vertex_count() : options.max_radius;
  const auto algorithm = factory();
  AVGLOCAL_REQUIRE_MSG(algorithm != nullptr, "view algorithm factory returned null");
  while (true) {
    if (const auto output = algorithm->on_view(grower.view())) {
      return {*output, static_cast<std::size_t>(grower.view().radius)};
    }
    if (static_cast<std::size_t>(grower.view().radius) >= cap) {
      throw std::runtime_error("view engine: radius cap exceeded (non-terminating algorithm?)");
    }
    grower.grow();
  }
}

/// Sweeps [begin, end), reusing the grower across vertices.
void run_range(const graph::Graph& g, BallGrower& grower, const ViewAlgorithmFactory& factory,
               const ViewEngineOptions& options, graph::Vertex begin, graph::Vertex end,
               RunResult& result) {
  for (graph::Vertex v = begin; v < end; ++v) {
    grower.reset(v);
    const auto [output, radius] = run_one(g, grower, factory, options);
    result.outputs[v] = output;
    result.radii[v] = radius;
  }
}

}  // namespace

RunResult run_views(const graph::Graph& g, const graph::IdAssignment& ids,
                    const ViewAlgorithmFactory& factory, const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  const std::size_t n = g.vertex_count();
  RunResult result;
  result.outputs.resize(n);
  result.radii.resize(n);
  if (n == 0) return result;

  support::ThreadPool* pool = options.pool;
  if (pool == nullptr || pool->size() == 1 || n == 1) {
    BallGrower::Scratch scratch(n);
    BallGrower grower(g, ids, 0, options.semantics, scratch);
    run_range(g, grower, factory, options, 0, static_cast<graph::Vertex>(n), result);
    return result;
  }

  // Parallel sweep: vertices are independent; each worker keeps one grower
  // plus scratch alive across all chunks it is handed. Outputs go to
  // per-vertex slots, so the result is identical for every pool size.
  struct WorkerState {
    BallGrower::Scratch scratch;
    BallGrower grower;
    WorkerState(const graph::Graph& g, const graph::IdAssignment& ids, ViewSemantics semantics)
        : scratch(g.vertex_count()), grower(g, ids, 0, semantics, scratch) {}
  };
  std::vector<std::unique_ptr<WorkerState>> states(pool->size());
  // Chunks big enough to amortise the scheduling cursor, small enough to
  // balance the heavy tail (ball sizes vary by orders of magnitude).
  const std::size_t grain = std::max<std::size_t>(16, n / (8 * pool->size()));
  pool->for_range(n, grain, [&](std::size_t worker, std::size_t begin, std::size_t end) {
    auto& state = states[worker];
    if (!state) state = std::make_unique<WorkerState>(g, ids, options.semantics);
    run_range(g, state->grower, factory, options, static_cast<graph::Vertex>(begin),
              static_cast<graph::Vertex>(end), result);
  });
  return result;
}

std::pair<std::int64_t, std::size_t> run_view_on_vertex(const graph::Graph& g,
                                                        const graph::IdAssignment& ids,
                                                        graph::Vertex v,
                                                        const ViewAlgorithmFactory& factory,
                                                        const ViewEngineOptions& options) {
  AVGLOCAL_EXPECTS(ids.size() == g.vertex_count());
  AVGLOCAL_EXPECTS(v < g.vertex_count());
  BallGrower::Scratch scratch(g.vertex_count());
  BallGrower grower(g, ids, v, options.semantics, scratch);
  return run_one(g, grower, factory, options);
}

}  // namespace avglocal::local
