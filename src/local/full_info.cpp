#include "local/full_info.hpp"

#include <cstdint>
#include <map>
#include <queue>
#include <set>
#include <utility>
#include <vector>

#include "local/wire.hpp"
#include "support/assert.hpp"

namespace avglocal::local {

namespace {

// Gossiped facts. Existence: (id, degree). Adjacency: (id, port, neighbour).
constexpr std::uint64_t kExistenceTag = 0;
constexpr std::uint64_t kAdjacencyTag = 1;

struct KnownVertex {
  std::uint64_t degree = 0;
  // port -> neighbour id, from this vertex's own adjacency facts.
  std::map<std::uint64_t, std::uint64_t> port_facts;
  // Edges known only from the far side (set of neighbour ids).
  std::set<std::uint64_t> reverse_edges;

  std::size_t known_edge_count() const {
    std::size_t count = port_facts.size();
    for (std::uint64_t nbr : reverse_edges) {
      bool already = false;
      for (const auto& [port, target] : port_facts) {
        if (target == nbr) {
          already = true;
          break;
        }
      }
      if (!already) ++count;
    }
    return count;
  }
};

class FullInfoNode final : public Algorithm {
 public:
  explicit FullInfoNode(const ViewAlgorithmFactory& factory) : inner_(factory()) {
    AVGLOCAL_REQUIRE_MSG(inner_ != nullptr, "view algorithm factory returned null");
  }

  void on_start(NodeContext& ctx) override {
    auto& self = known_[ctx.id()];
    self.degree = ctx.degree();
    evaluate(ctx);
    Encoder e;
    e.u64(1);  // fact count
    e.u64(kExistenceTag).u64(ctx.id()).u64(ctx.degree());
    ctx.broadcast(e.take());
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    std::vector<Payload> fresh;
    for (const Message& msg : inbox) {
      Decoder d(msg.payload);
      const std::uint64_t facts = d.u64();
      for (std::uint64_t i = 0; i < facts; ++i) {
        const std::uint64_t tag = d.u64();
        if (tag == kExistenceTag) {
          const std::uint64_t id = d.u64();
          const std::uint64_t degree = d.u64();
          ingest_existence(id, degree, fresh);
          // Round 1 carries each neighbour's existence fact directly from
          // that neighbour: this is how the node learns its own port map.
          if (ctx.round() == 1) {
            ingest_adjacency(ctx.id(), msg.from_port, id, fresh);
          }
        } else {
          AVGLOCAL_REQUIRE_MSG(tag == kAdjacencyTag, "full-info: unknown fact tag");
          const std::uint64_t id = d.u64();
          const std::uint64_t port = d.u64();
          const std::uint64_t nbr = d.u64();
          ingest_adjacency(id, port, nbr, fresh);
        }
      }
    }
    evaluate(ctx);
    if (!fresh.empty()) {
      Encoder e;
      e.u64(fresh.size());
      Payload out = e.take();
      for (const Payload& fact : fresh) out.insert(out.end(), fact.begin(), fact.end());
      ctx.broadcast(out);
    } else {
      // Keep the gossip alive so late facts keep flowing: broadcast an empty
      // fact bundle. (The model allows messages every round; an optimisation
      // pass could suppress these, at the cost of delivery bookkeeping.)
      Encoder e;
      e.u64(0);
      ctx.broadcast(e.take());
    }
  }

 private:
  void ingest_existence(std::uint64_t id, std::uint64_t degree, std::vector<Payload>& fresh) {
    auto [it, inserted] = known_.try_emplace(id);
    if (it->second.degree == 0) it->second.degree = degree;
    if (inserted || !seen_existence_.contains(id)) {
      seen_existence_.insert(id);
      Encoder e;
      e.u64(kExistenceTag).u64(id).u64(degree);
      fresh.push_back(e.take());
    }
  }

  void ingest_adjacency(std::uint64_t id, std::uint64_t port, std::uint64_t nbr,
                        std::vector<Payload>& fresh) {
    if (seen_adjacency_.contains({id, port})) return;
    seen_adjacency_.insert({id, port});
    known_[id].port_facts.emplace(port, nbr);
    known_[nbr].reverse_edges.insert(id);
    Encoder e;
    e.u64(kAdjacencyTag).u64(id).u64(port).u64(nbr);
    fresh.push_back(e.take());
  }

  /// Rebuilds the radius-round() view from gossiped facts and feeds it to
  /// the inner view algorithm (if it has not output yet).
  void evaluate(NodeContext& ctx) {
    if (ctx.has_output()) return;
    const BallView view = reconstruct(ctx);
    if (const auto output = inner_->on_view(view)) ctx.output(*output);
  }

  BallView reconstruct(NodeContext& ctx) const {
    BallView view;
    view.radius = static_cast<int>(ctx.round());

    std::map<std::uint64_t, LocalVertex> local_of;
    std::vector<std::uint64_t> order;
    // BFS from the node's own id over known edges. Interior vertices always
    // have their full port map, so expansion follows exact port order.
    std::queue<std::uint64_t> queue;
    local_of[ctx.id()] = 0;
    order.push_back(ctx.id());
    view.dist.push_back(0);
    queue.push(ctx.id());
    while (!queue.empty()) {
      const std::uint64_t x = queue.front();
      queue.pop();
      const int dx = view.dist[local_of[x]];
      const auto it = known_.find(x);
      if (it == known_.end()) continue;
      for (const auto& [port, nbr] : it->second.port_facts) {
        if (!local_of.contains(nbr)) {
          local_of[nbr] = static_cast<LocalVertex>(order.size());
          order.push_back(nbr);
          view.dist.push_back(dx + 1);
          queue.push(nbr);
        }
      }
    }

    view.ids = order;
    bool all_edges_known = true;
    for (std::size_t local = 0; local < order.size(); ++local) {
      const std::uint64_t x = order[local];
      const KnownVertex& kv = known_.at(x);
      view.ports.add_row(kv.degree);
      // Exact placements from x's own facts.
      for (const auto& [port, nbr] : kv.port_facts) {
        const auto nit = local_of.find(nbr);
        if (nit != local_of.end()) view.ports[local][port] = nit->second;
      }
      // Reverse-known edges go into free slots (placement unknown; see
      // header comment).
      for (std::uint64_t nbr : kv.reverse_edges) {
        bool placed = false;
        for (const auto& [port, target] : kv.port_facts) {
          if (target == nbr) {
            placed = true;
            break;
          }
        }
        if (placed) continue;
        const auto nit = local_of.find(nbr);
        if (nit == local_of.end()) continue;
        for (auto& slot : view.ports[local]) {
          if (slot == kUnknownTarget) {
            slot = nit->second;
            break;
          }
        }
      }
      if (kv.known_edge_count() != kv.degree) all_edges_known = false;
    }
    view.covers_graph = all_edges_known;
    return view;
  }

  std::unique_ptr<ViewAlgorithm> inner_;
  std::map<std::uint64_t, KnownVertex> known_;
  std::set<std::uint64_t> seen_existence_;
  std::set<std::pair<std::uint64_t, std::uint64_t>> seen_adjacency_;
};

}  // namespace

RunResult run_views_by_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                                const ViewAlgorithmFactory& factory,
                                const EngineOptions& options) {
  return run_messages(
      g, ids, [&factory]() { return std::make_unique<FullInfoNode>(factory); }, options);
}

}  // namespace avglocal::local
