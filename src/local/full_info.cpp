#include "local/full_info.hpp"

#include <algorithm>
#include <cstdint>
#include <utility>
#include <vector>

#include "local/wire.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::local {

namespace {

// Gossiped facts. Existence: (id, degree). Adjacency: (id, port, neighbour).
constexpr std::uint64_t kExistenceTag = 0;
constexpr std::uint64_t kAdjacencyTag = 1;

/// Inserts `value` into a sorted vector if absent; returns true when
/// inserted. The flat-vector replacement for std::set::insert: fact sets
/// here are ball-sized, so one tail shift beats a node allocation per
/// insert, and ascending iteration order (which the reconstruction BFS
/// relies on) is preserved.
template <typename T>
bool sorted_insert(std::vector<T>& values, const T& value) {
  const auto it = std::lower_bound(values.begin(), values.end(), value);
  if (it != values.end() && *it == value) return false;
  values.insert(it, value);
  return true;
}

struct KnownVertex {
  std::uint64_t degree = 0;
  // (port, neighbour id) from this vertex's own adjacency facts, sorted by
  // port - the same ascending order the former std::map iterated in.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> port_facts;
  // Edges known only from the far side, sorted by neighbour id.
  std::vector<std::uint64_t> reverse_edges;

  std::size_t known_edge_count() const {
    std::size_t count = port_facts.size();
    for (std::uint64_t nbr : reverse_edges) {
      bool already = false;
      for (const auto& [port, target] : port_facts) {
        if (target == nbr) {
          already = true;
          break;
        }
      }
      if (!already) ++count;
    }
    return count;
  }
};

class FullInfoNode final : public Algorithm {
 public:
  explicit FullInfoNode(const ViewAlgorithmFactory& factory) : inner_(factory()) {
    AVGLOCAL_REQUIRE_MSG(inner_ != nullptr, "view algorithm factory returned null");
  }

  void on_start(NodeContext& ctx) override {
    KnownVertex& self = vertex_for(ctx.id());
    self.degree = ctx.degree();
    evaluate(ctx);
    Encoder e;
    e.u64(1);  // fact count
    e.u64(kExistenceTag).u64(ctx.id()).u64(ctx.degree());
    ctx.broadcast(e.take());
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    std::vector<Payload> fresh;
    for (const Message& msg : inbox) {
      Decoder d(msg.payload);
      const std::uint64_t facts = d.u64();
      for (std::uint64_t i = 0; i < facts; ++i) {
        const std::uint64_t tag = d.u64();
        if (tag == kExistenceTag) {
          const std::uint64_t id = d.u64();
          const std::uint64_t degree = d.u64();
          ingest_existence(id, degree, fresh);
          // Round 1 carries each neighbour's existence fact directly from
          // that neighbour: this is how the node learns its own port map.
          if (ctx.round() == 1) {
            ingest_adjacency(ctx.id(), msg.from_port, id, fresh);
          }
        } else {
          AVGLOCAL_REQUIRE_MSG(tag == kAdjacencyTag, "full-info: unknown fact tag");
          const std::uint64_t id = d.u64();
          const std::uint64_t port = d.u64();
          const std::uint64_t nbr = d.u64();
          ingest_adjacency(id, port, nbr, fresh);
        }
      }
    }
    evaluate(ctx);
    send_fresh(ctx, fresh);
  }

  bool reset() noexcept override {
    if (!inner_->reset()) return false;
    known_ids_.clear();
    known_.clear();
    seen_existence_.clear();
    seen_adjacency_.clear();
    order_.clear();
    local_ids_.clear();
    // view_'s arrays are rebuilt from scratch by reconstruct(); the spans
    // and flags it leaves behind are re-set before the next evaluate.
    return true;
  }

 private:
  void send_fresh(NodeContext& ctx, const std::vector<Payload>& fresh) {
    if (!fresh.empty()) {
      Encoder e;
      e.u64(fresh.size());
      Payload out = e.take();
      for (const Payload& fact : fresh) out.insert(out.end(), fact.begin(), fact.end());
      ctx.broadcast(out);
    } else {
      // Keep the gossip alive so late facts keep flowing: broadcast an empty
      // fact bundle. (The model allows messages every round; an optimisation
      // pass could suppress these, at the cost of delivery bookkeeping.)
      Encoder e;
      e.u64(0);
      ctx.broadcast(e.take());
    }
  }

  /// Finds or creates the record of identifier `id`. known_ids_ / known_
  /// form a sorted flat map (parallel arrays): lookups are binary searches,
  /// inserts shift a ball-sized tail of cheap vector headers.
  KnownVertex& vertex_for(std::uint64_t id) {
    const auto it = std::lower_bound(known_ids_.begin(), known_ids_.end(), id);
    const auto index = static_cast<std::size_t>(it - known_ids_.begin());
    if (it == known_ids_.end() || *it != id) {
      known_ids_.insert(it, id);
      known_.insert(known_.begin() + static_cast<std::ptrdiff_t>(index), KnownVertex{});
    }
    return known_[index];
  }

  const KnownVertex* find_vertex(std::uint64_t id) const {
    const auto it = std::lower_bound(known_ids_.begin(), known_ids_.end(), id);
    if (it == known_ids_.end() || *it != id) return nullptr;
    return &known_[static_cast<std::size_t>(it - known_ids_.begin())];
  }

  void ingest_existence(std::uint64_t id, std::uint64_t degree, std::vector<Payload>& fresh) {
    KnownVertex& kv = vertex_for(id);
    if (kv.degree == 0) kv.degree = degree;
    if (sorted_insert(seen_existence_, id)) {
      Encoder e;
      e.u64(kExistenceTag).u64(id).u64(degree);
      fresh.push_back(e.take());
    }
  }

  void ingest_adjacency(std::uint64_t id, std::uint64_t port, std::uint64_t nbr,
                        std::vector<Payload>& fresh) {
    if (!sorted_insert(seen_adjacency_, {id, port})) return;
    // vertex_for may reseat earlier references - finish with one record
    // before asking for the next.
    sorted_insert(vertex_for(id).port_facts, {port, nbr});
    sorted_insert(vertex_for(nbr).reverse_edges, id);
    Encoder e;
    e.u64(kAdjacencyTag).u64(id).u64(port).u64(nbr);
    fresh.push_back(e.take());
  }

  /// Rebuilds the radius-round() view from gossiped facts and feeds it to
  /// the inner view algorithm (if it has not output yet).
  void evaluate(NodeContext& ctx) {
    if (ctx.has_output()) return;
    reconstruct(ctx);
    if (const auto output = inner_->on_view(view_)) ctx.output(*output);
  }

  LocalVertex local_of(std::uint64_t id) const {
    const auto it =
        std::lower_bound(local_ids_.begin(), local_ids_.end(),
                         std::pair<std::uint64_t, LocalVertex>{id, 0},
                         [](const auto& a, const auto& b) { return a.first < b.first; });
    if (it == local_ids_.end() || it->first != id) return kUnknownTarget;
    return it->second;
  }

  /// Rebuilds view_ in place from the gossiped facts. Every buffer (BFS
  /// order - which doubles as the work queue and the ids backing - the
  /// sorted id -> local index, distances, ports) is a member reused across
  /// rounds, so steady-state reconstruction stops allocating once the ball
  /// reaches its high-water mark.
  void reconstruct(NodeContext& ctx) {
    view_.radius = static_cast<int>(ctx.round());
    order_.clear();
    local_ids_.clear();
    view_.dist.clear();
    view_.ports.clear();

    // BFS from the node's own id over known edges. Interior vertices always
    // have their full port map, so expansion follows exact port order.
    order_.push_back(ctx.id());
    local_ids_.push_back({ctx.id(), 0});
    view_.dist.push_back(0);
    for (std::size_t head = 0; head < order_.size(); ++head) {
      const std::uint64_t x = order_[head];
      const int dx = view_.dist[head];
      const KnownVertex* kv = find_vertex(x);
      if (kv == nullptr) continue;
      for (const auto& [port, nbr] : kv->port_facts) {
        if (local_of(nbr) == kUnknownTarget) {
          sorted_insert(local_ids_, {nbr, support::checked_u32(order_.size())});
          order_.push_back(nbr);
          view_.dist.push_back(dx + 1);
        }
      }
    }

    view_.ids = order_;
    bool all_edges_known = true;
    for (std::size_t local = 0; local < order_.size(); ++local) {
      const std::uint64_t x = order_[local];
      const KnownVertex* kv = find_vertex(x);
      AVGLOCAL_ASSERT(kv != nullptr);  // ingest_adjacency records both sides
      view_.ports.add_row(kv->degree);
      // Exact placements from x's own facts.
      for (const auto& [port, nbr] : kv->port_facts) {
        const LocalVertex target = local_of(nbr);
        if (target != kUnknownTarget) view_.ports[local][port] = target;
      }
      // Reverse-known edges go into free slots (placement unknown; see
      // header comment).
      for (std::uint64_t nbr : kv->reverse_edges) {
        bool placed = false;
        for (const auto& [port, target] : kv->port_facts) {
          if (target == nbr) {
            placed = true;
            break;
          }
        }
        if (placed) continue;
        const LocalVertex target = local_of(nbr);
        if (target == kUnknownTarget) continue;
        for (auto& slot : view_.ports[local]) {
          if (slot == kUnknownTarget) {
            slot = target;
            break;
          }
        }
      }
      if (kv->known_edge_count() != kv->degree) all_edges_known = false;
    }
    view_.covers_graph = all_edges_known;
  }

  std::unique_ptr<ViewAlgorithm> inner_;
  // Sorted flat map id -> KnownVertex, replacing the former std::map: the
  // cross-validation suites spend their wall time in this adapter, and
  // ball-sized sorted vectors beat node-based containers on every path.
  std::vector<std::uint64_t> known_ids_;
  std::vector<KnownVertex> known_;
  std::vector<std::uint64_t> seen_existence_;                            // sorted
  std::vector<std::pair<std::uint64_t, std::uint64_t>> seen_adjacency_;  // sorted
  // Reconstruction scratch, reused across rounds; view_.ids spans order_.
  BallView view_;
  std::vector<std::uint64_t> order_;
  std::vector<std::pair<std::uint64_t, LocalVertex>> local_ids_;  // sorted by id
};

}  // namespace

AlgorithmFactory make_full_info_factory(ViewAlgorithmFactory factory) {
  return [factory = std::move(factory)]() { return std::make_unique<FullInfoNode>(factory); };
}

RunResult run_views_by_messages(const graph::Graph& g, const graph::IdAssignment& ids,
                                const ViewAlgorithmFactory& factory,
                                const EngineOptions& options) {
  return run_messages(g, ids, make_full_info_factory(factory), options);
}

}  // namespace avglocal::local
