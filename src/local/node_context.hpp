// Per-node execution context handed to message-passing algorithms.
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "local/message.hpp"
#include "local/message_arena.hpp"

namespace avglocal::local {

class Engine;

/// What a node may see and do during a round. The context exposes exactly
/// the knowledge the LOCAL model grants: its own identifier, its degree,
/// the round number, and - only when the engine runs in knows-n mode - the
/// network size.
///
/// Sends are written straight into the engine's flat message arena (no
/// per-node outbox buffers): an algorithm that assembles its payloads in
/// reused storage sends without any heap allocation.
class NodeContext {
 public:
  /// This node's identifier.
  std::uint64_t id() const noexcept { return id_; }

  /// Number of ports (incident edges).
  std::size_t degree() const noexcept { return degree_; }

  /// Network size, engaged only in Knowledge::kKnowsN runs.
  std::optional<std::size_t> n() const noexcept { return n_; }

  /// Current round: 0 during on_start, k during the k-th on_round.
  std::size_t round() const noexcept { return round_; }

  /// Queues a message on `port` for delivery next round; the words are
  /// copied immediately, so the span may point at caller-owned scratch. At
  /// most one message per port per round; violations throw
  /// std::invalid_argument.
  void send(std::size_t port, std::span<const std::uint64_t> payload);

  /// Queues the same payload on every port.
  void broadcast(std::span<const std::uint64_t> payload);

  /// Commits this node's output at the current round. A node outputs exactly
  /// once; a second call throws std::logic_error. Per the unknown-n variant
  /// of the model, the node keeps receiving rounds (to relay messages) after
  /// outputting.
  void output(std::int64_t value);

  bool has_output() const noexcept { return output_.has_value(); }

  std::int64_t output_value() const { return output_.value(); }

  /// Round at which output() was called; only valid once has_output().
  std::size_t output_round() const { return output_round_; }

 private:
  friend class Engine;

  std::uint64_t id_ = 0;
  std::optional<std::size_t> n_;
  std::size_t round_ = 0;
  std::size_t degree_ = 0;
  /// Engine-owned view of "the arena collecting this round's sends"; the
  /// engine retargets the pointee when it flips its double buffer.
  MessageArena* const* outgoing_ = nullptr;
  std::size_t arc_base_ = 0;  ///< Graph::arc_index(v, 0) of this node.
  /// Engine-owned mirror-arc table at this node's arc base:
  /// mirror_arcs_[q] is the receiver-side arc of a send on port q. Sends
  /// push straight to the receiver's slot, so each round's delivery is a
  /// wide bitmask scan over the receiver's contiguous arc window.
  const std::uint32_t* mirror_arcs_ = nullptr;
  std::optional<std::int64_t> output_;
  std::size_t output_round_ = 0;
};

}  // namespace avglocal::local
