// Shared instrumentation workload for the zero-allocation gate: used by
// tests/test_engine_alloc.cpp and bench/bench_regression.cpp so both
// measure the exact same engine duty cycle. (Each binary still installs
// its own AVGLOCAL_DEFINE_ALLOC_HOOK; this header only defines the
// workload and the per-round sampler.)
#pragma once

#include <algorithm>
#include <array>
#include <cstdint>
#include <vector>

#include "local/engine.hpp"
#include "local/trace.hpp"
#include "support/alloc_hook.hpp"

namespace avglocal::local {

/// Broadcasts a fixed two-word payload from member storage every round and
/// outputs at `output_round`: every arc carries a message every round, and
/// the engine is the only possible allocator.
class FloodRelay final : public Algorithm {
 public:
  explicit FloodRelay(std::size_t output_round) : output_round_(output_round) {}

  void on_start(NodeContext& ctx) override {
    words_[0] = ctx.id();
    words_[1] = 0;
    ctx.broadcast(words_);
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    words_[1] = inbox.size();
    ctx.broadcast(words_);
    if (!ctx.has_output() && ctx.round() >= output_round_) {
      ctx.output(static_cast<std::int64_t>(ctx.id()));
    }
  }

  /// on_start rewrites all member state, so batch reuse is free.
  bool reset() noexcept override { return true; }

 private:
  std::size_t output_round_;
  std::array<std::uint64_t, 2> words_{};
};

/// Trace that snapshots the global allocation counters after every round.
class AllocSampler final : public Trace {
 public:
  explicit AllocSampler(std::size_t expected_rounds) { samples_.reserve(expected_rounds + 2); }

  void record(const RoundStats&) override { samples_.push_back(support::alloc_counts()); }

  const std::vector<support::AllocCounts>& samples() const noexcept { return samples_; }

  /// Worst per-round counter delta over rounds in [warmup, end).
  support::AllocCounts worst_after(std::size_t warmup) const {
    support::AllocCounts worst;
    for (std::size_t i = warmup; i + 1 < samples_.size(); ++i) {
      worst.allocations =
          std::max(worst.allocations, samples_[i + 1].allocations - samples_[i].allocations);
      worst.bytes = std::max(worst.bytes, samples_[i + 1].bytes - samples_[i].bytes);
    }
    return worst;
  }

 private:
  std::vector<support::AllocCounts> samples_;
};

}  // namespace avglocal::local
