#include "graph/ball.hpp"

#include <algorithm>
#include <queue>

#include "support/assert.hpp"

namespace avglocal::graph {

std::vector<int> bfs_distances(const Graph& g, Vertex root, int max_depth) {
  AVGLOCAL_EXPECTS(root < g.vertex_count());
  std::vector<int> dist(g.vertex_count(), kUnreachable);
  std::queue<Vertex> queue;
  dist[root] = 0;
  queue.push(root);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    if (max_depth >= 0 && dist[v] >= max_depth) continue;
    for (Vertex u : g.neighbours(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push(u);
      }
    }
  }
  return dist;
}

std::vector<Vertex> ball_vertices(const Graph& g, Vertex root, int radius) {
  AVGLOCAL_EXPECTS(root < g.vertex_count());
  AVGLOCAL_EXPECTS(radius >= 0);
  std::vector<int> dist(g.vertex_count(), kUnreachable);
  std::vector<Vertex> order;
  std::queue<Vertex> queue;
  dist[root] = 0;
  queue.push(root);
  order.push_back(root);
  while (!queue.empty()) {
    const Vertex v = queue.front();
    queue.pop();
    if (dist[v] >= radius) continue;
    for (Vertex u : g.neighbours(v)) {
      if (dist[u] == kUnreachable) {
        dist[u] = dist[v] + 1;
        queue.push(u);
        order.push_back(u);
      }
    }
  }
  return order;
}

int distance(const Graph& g, Vertex u, Vertex v) {
  AVGLOCAL_EXPECTS(u < g.vertex_count() && v < g.vertex_count());
  return bfs_distances(g, u)[v];
}

int eccentricity(const Graph& g, Vertex v) {
  const auto dist = bfs_distances(g, v);
  int ecc = 0;
  for (int d : dist) {
    if (d == kUnreachable) return kUnreachable;
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter(const Graph& g) {
  int diam = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    const int ecc = eccentricity(g, v);
    if (ecc == kUnreachable) return kUnreachable;
    diam = std::max(diam, ecc);
  }
  return diam;
}

}  // namespace avglocal::graph
