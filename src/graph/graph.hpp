// Immutable undirected graph in CSR (compressed sparse row) form, with
// per-vertex port numbering.
//
// The LOCAL model communicates over *ports*: a vertex of degree d has ports
// 0..d-1, one per incident edge, and algorithms address neighbours by port.
// Port order is the insertion order chosen by the GraphBuilder, which lets
// generators establish conventions (e.g. on a cycle, port 0 is the clockwise
// successor and port 1 the counter-clockwise predecessor).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avglocal::graph {

/// Dense vertex index in [0, n). This is the simulator's handle for a
/// vertex; it is *not* the identifier an algorithm sees (see IdAssignment).
using Vertex = std::uint32_t;

/// An immutable undirected graph. Construct through GraphBuilder.
class Graph {
 public:
  /// Number of vertices.
  std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }

  /// Number of undirected edges.
  std::size_t edge_count() const noexcept { return targets_.size() / 2; }

  /// Degree of vertex v.
  std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v in port order.
  std::span<const Vertex> neighbours(Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// The neighbour of v on the given port (0 <= port < degree(v)).
  Vertex neighbour(Vertex v, std::size_t port) const noexcept {
    return targets_[offsets_[v] + port];
  }

  /// True when u and v are adjacent. Linear in degree(u) - ad-hoc
  /// adjacency queries only. Hot paths that hold a (vertex, port) pair
  /// resolve the reverse direction through the precomputed mirror_port
  /// table instead; the old port_to linear-scan fallback is gone.
  bool has_edge(Vertex u, Vertex v) const noexcept {
    for (const Vertex w : neighbours(u)) {
      if (w == v) return true;
    }
    return false;
  }

  /// Number of directed arcs (2 * edge_count). Arc indices returned by
  /// arc_index enumerate [0, arc_count).
  std::size_t arc_count() const noexcept { return targets_.size(); }

  /// Flat CSR index of the arc leaving v on `port`: offsets[v] + port.
  /// Stable identifier for per-arc state (message slots, mirrors).
  std::size_t arc_index(Vertex v, std::size_t port) const noexcept {
    return offsets_[v] + port;
  }

  /// The port on the far endpoint that leads back along the same edge:
  /// with u = neighbour(v, port), neighbour(u, mirror_port(v, port)) == v.
  /// O(1); precomputed by GraphBuilder.
  std::size_t mirror_port(Vertex v, std::size_t port) const noexcept {
    return mirror_port_[offsets_[v] + port];
  }

 private:
  friend class GraphBuilder;
  Graph(std::vector<std::size_t> offsets, std::vector<Vertex> targets,
        std::vector<std::uint32_t> mirror_port)
      : offsets_(std::move(offsets)),
        targets_(std::move(targets)),
        mirror_port_(std::move(mirror_port)) {}

  std::vector<std::size_t> offsets_;        // size n+1
  std::vector<Vertex> targets_;             // size 2m, grouped by source vertex
  std::vector<std::uint32_t> mirror_port_;  // size 2m, mirror_port_[arc]
};

}  // namespace avglocal::graph
