// Immutable undirected graph in CSR (compressed sparse row) form, with
// per-vertex port numbering.
//
// The LOCAL model communicates over *ports*: a vertex of degree d has ports
// 0..d-1, one per incident edge, and algorithms address neighbours by port.
// Port order is the insertion order chosen by the GraphBuilder, which lets
// generators establish conventions (e.g. on a cycle, port 0 is the clockwise
// successor and port 1 the counter-clockwise predecessor).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

namespace avglocal::graph {

/// Dense vertex index in [0, n). This is the simulator's handle for a
/// vertex; it is *not* the identifier an algorithm sees (see IdAssignment).
using Vertex = std::uint32_t;

/// An immutable undirected graph. Construct through GraphBuilder.
class Graph {
 public:
  /// Number of vertices.
  std::size_t vertex_count() const noexcept { return offsets_.size() - 1; }

  /// Number of undirected edges.
  std::size_t edge_count() const noexcept { return targets_.size() / 2; }

  /// Degree of vertex v.
  std::size_t degree(Vertex v) const noexcept {
    return offsets_[v + 1] - offsets_[v];
  }

  /// Neighbours of v in port order.
  std::span<const Vertex> neighbours(Vertex v) const noexcept {
    return {targets_.data() + offsets_[v], targets_.data() + offsets_[v + 1]};
  }

  /// The neighbour of v on the given port (0 <= port < degree(v)).
  Vertex neighbour(Vertex v, std::size_t port) const noexcept {
    return targets_[offsets_[v] + port];
  }

  /// The port of v that leads to neighbour u; degree(v) if u is not adjacent.
  std::size_t port_to(Vertex v, Vertex u) const noexcept;

  /// True when u and v are adjacent.
  bool has_edge(Vertex u, Vertex v) const noexcept { return port_to(u, v) != degree(u); }

 private:
  friend class GraphBuilder;
  Graph(std::vector<std::size_t> offsets, std::vector<Vertex> targets)
      : offsets_(std::move(offsets)), targets_(std::move(targets)) {}

  std::vector<std::size_t> offsets_;  // size n+1
  std::vector<Vertex> targets_;       // size 2m, grouped by source vertex
};

}  // namespace avglocal::graph
