// Immutable undirected graph in CSR (compressed sparse row) form, with
// per-vertex port numbering.
//
// The LOCAL model communicates over *ports*: a vertex of degree d has ports
// 0..d-1, one per incident edge, and algorithms address neighbours by port.
// Port order is the insertion order chosen by the GraphBuilder, which lets
// generators establish conventions (e.g. on a cycle, port 0 is the clockwise
// successor and port 1 the counter-clockwise predecessor).
//
// Storage comes in two offset widths. The compact layout keeps the CSR row
// offsets in 32 bits (vid32) - together with the 32-bit targets and mirror
// ports this costs 8 bytes per directed arc plus 4 bytes per vertex, half
// the footprint of size_t offsets and the layout the million-node sweeps
// run on. Graphs whose arc count does not fit 32 bits fall back to 64-bit
// offsets transparently; every accessor branches on one well-predicted
// flag, and the two layouts are observationally identical (pinned by the
// index-width parity suite in tests/test_large_scale.cpp).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/annotations.hpp"

namespace avglocal::graph {

/// Dense vertex index in [0, n). This is the simulator's handle for a
/// vertex; it is *not* the identifier an algorithm sees (see IdAssignment).
using Vertex = std::uint32_t;

/// Narrow index type of the compact CSR layout: row offsets, mirror ports
/// and arc indices when the graph's arc count fits 32 bits.
using vid32 = std::uint32_t;

/// Wide fallback index type for graphs beyond 2^32 directed arcs.
using vid64 = std::uint64_t;

/// An immutable undirected graph. Construct through GraphBuilder.
class Graph {
 public:
  /// Number of vertices.
  std::size_t vertex_count() const noexcept { return n_; }

  /// Number of undirected edges.
  std::size_t edge_count() const noexcept { return targets_.size() / 2; }

  /// Degree of vertex v.
  std::size_t degree(Vertex v) const noexcept { return offset(v + 1) - offset(v); }

  /// Neighbours of v in port order.
  std::span<const Vertex> neighbours(Vertex v) const noexcept {
    return {targets_.data() + offset(v), targets_.data() + offset(v + 1)};
  }

  /// The neighbour of v on the given port (0 <= port < degree(v)).
  Vertex neighbour(Vertex v, std::size_t port) const noexcept {
    return targets_[offset(v) + port];
  }

  /// True when u and v are adjacent. Linear in degree(u) - ad-hoc
  /// adjacency queries only. Hot paths that hold a (vertex, port) pair
  /// resolve the reverse direction through the precomputed mirror_port
  /// table instead; the old port_to linear-scan fallback is gone.
  bool has_edge(Vertex u, Vertex v) const noexcept {
    for (const Vertex w : neighbours(u)) {
      if (w == v) return true;
    }
    return false;
  }

  /// Number of directed arcs (2 * edge_count). Arc indices returned by
  /// arc_index enumerate [0, arc_count).
  std::size_t arc_count() const noexcept { return targets_.size(); }

  /// Flat CSR index of the arc leaving v on `port`: offsets[v] + port.
  /// Stable identifier for per-arc state (message slots, mirrors).
  std::size_t arc_index(Vertex v, std::size_t port) const noexcept {
    return offset(v) + port;
  }

  /// The port on the far endpoint that leads back along the same edge:
  /// with u = neighbour(v, port), neighbour(u, mirror_port(v, port)) == v.
  /// O(1); precomputed by GraphBuilder.
  std::size_t mirror_port(Vertex v, std::size_t port) const noexcept {
    return mirror_port_[offset(v) + port];
  }

  /// True when row offsets are stored in 32 bits (the default whenever the
  /// arc count fits; see GraphBuilder::build's OffsetWidth parameter).
  bool compact_offsets() const noexcept { return offsets64_.empty(); }

  /// Resident bytes of the CSR tables (offsets + targets + mirrors). What
  /// the large_scale bench reports as bytes_per_arc = memory_bytes() / 2m.
  std::size_t memory_bytes() const noexcept {
    return offsets32_.size() * sizeof(vid32) + offsets64_.size() * sizeof(vid64) +
           targets_.size() * sizeof(Vertex) + mirror_port_.size() * sizeof(vid32);
  }

  /// Prefetch hint for v's row-offset entry. Semantics-free (a prefetch
  /// never changes a value); the ball-growth frontier loops issue this a
  /// few vertices ahead of the scan.
  void prefetch_offset(Vertex v) const noexcept {
    if (compact_offsets()) {
      AVGLOCAL_PREFETCH(offsets32_.data() + v);
    } else {
      AVGLOCAL_PREFETCH(offsets64_.data() + v);
    }
  }

  /// Prefetch hint for the start of v's CSR target row. Reads the (ideally
  /// already prefetched) offset entry, touches nothing else.
  void prefetch_row(Vertex v) const noexcept {
    AVGLOCAL_PREFETCH(targets_.data() + offset(v));
  }

 private:
  friend class GraphBuilder;
  Graph(std::size_t n, std::vector<vid32> offsets32, std::vector<vid64> offsets64,
        std::vector<Vertex> targets, std::vector<vid32> mirror_port)
      : n_(n),
        offsets32_(std::move(offsets32)),
        offsets64_(std::move(offsets64)),
        targets_(std::move(targets)),
        mirror_port_(std::move(mirror_port)) {}

  /// Row offset of v in the active width. One branch on a flag that is
  /// constant for the graph's lifetime - perfectly predicted in every loop.
  std::size_t offset(Vertex v) const noexcept {
    return compact_offsets() ? std::size_t{offsets32_[v]} : std::size_t{offsets64_[v]};
  }

  std::size_t n_ = 0;
  std::vector<vid32> offsets32_;        // size n+1 when compact, else empty
  std::vector<vid64> offsets64_;        // size n+1 when wide, else empty
  std::vector<Vertex> targets_;         // size 2m, grouped by source vertex
  std::vector<vid32> mirror_port_;      // size 2m, mirror_port_[arc]
};

}  // namespace avglocal::graph
