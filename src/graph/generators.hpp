// Graph family generators used by the experiments.
//
// All generators return simple connected graphs. Port conventions that
// algorithms rely on are documented per generator.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace avglocal::graph {

/// The n-cycle (n >= 3), the paper's main topology. Vertices are laid out
/// clockwise: i is adjacent to (i+1) mod n and (i-1+n) mod n.
///
/// Port convention (the "oriented ring" the Cole-Vishkin algorithm needs):
///   port 0 = clockwise successor  (i+1 mod n)
///   port 1 = counter-clockwise predecessor (i-1 mod n)
Graph make_cycle(std::size_t n);

/// The n-vertex path 0 - 1 - ... - n-1 (n >= 2).
/// Port convention: for interior vertices, port 0 = right neighbour (i+1),
/// port 1 = left neighbour (i-1); endpoints have the single port 0.
Graph make_path(std::size_t n);

/// The complete graph on n vertices (n >= 2).
Graph make_complete(std::size_t n);

/// The star with one centre (vertex 0) and n-1 leaves (n >= 2).
Graph make_star(std::size_t n);

/// The rows x cols grid (both >= 1, rows*cols >= 2), row-major vertex ids.
Graph make_grid(std::size_t rows, std::size_t cols);

/// The rows x cols torus (both >= 3): grid with wrap-around edges.
Graph make_torus(std::size_t rows, std::size_t cols);

/// Complete rooted k-ary tree with the given number of levels (>= 1);
/// level 1 is just the root. k >= 1.
Graph make_kary_tree(std::size_t k, std::size_t levels);

/// A uniformly random labelled tree on n vertices (n >= 1), via a random
/// Pruefer sequence.
Graph make_random_tree(std::size_t n, support::Xoshiro256& rng);

/// How make_gnp_connected samples the pair set.
///  * kDense:  one uniform01 draw per vertex pair - O(n^2) regardless of p,
///    the historical path every golden artefact was recorded on.
///  * kSparse: Batagelj-Brandes geometric skip sampling - one draw and one
///    log per *edge*, expected O(n + m) time and O(m) memory. Statistically
///    identical (every pair is independently present with probability p)
///    but a different draw order, so it is a distribution twin, not a
///    byte twin, of kDense.
///  * kAuto:   kSparse once n is large and p small enough that the pair
///    loop dominates (n >= 512 and p <= 1/8); kDense otherwise, so every
///    small-n golden keeps its exact bytes.
enum class GnpMethod { kAuto, kDense, kSparse };

/// Erdos-Renyi G(n, p) conditioned on connectivity: samples until the graph
/// is connected (throws std::runtime_error after max_attempts failures).
Graph make_gnp_connected(std::size_t n, double p, support::Xoshiro256& rng,
                         int max_attempts = 100, GnpMethod method = GnpMethod::kAuto);

/// Random d-regular graph via the configuration model with rejection of
/// self-loops/multi-edges and a connectivity check (throws after
/// max_attempts failures). Requires n*d even, d < n.
Graph make_random_regular(std::size_t n, std::size_t d, support::Xoshiro256& rng,
                          int max_attempts = 500);

}  // namespace avglocal::graph
