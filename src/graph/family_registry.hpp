// String-keyed registry of every graph family in generators.hpp.
//
// The registry is the declarative face of the generators: each family is
// named, documented, parameterised (numeric parameters with defaults, e.g.
// the gnp average degree or the random-regular degree), and exposes the
// sizes it can actually realise. Sweep layers ask for "about n vertices";
// the family answers with the nearest size it can build exactly (a torus
// needs a square, a regular graph needs n*d even), so downstream code that
// requires `vertex_count() == n` - run_batched_sweep, the shard planner -
// holds by construction for every family.
//
// Randomised families draw from the caller's RNG only; building the same
// (family, n, params) from an equally seeded stream is deterministic, which
// is what lets every shard of a sweep rebuild identical graphs.
#pragma once

#include <cstddef>
#include <functional>
#include <span>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "graph/graph.hpp"
#include "support/rng.hpp"

namespace avglocal::graph {

/// One declared numeric parameter of a family (e.g. "degree" = 3).
struct FamilyParam {
  std::string name;
  double default_value = 0.0;
  std::string description;
};

/// Parsed parameter overrides, by name. Unknown names are rejected when
/// resolved against a family's declaration.
using FamilyParamOverrides = std::vector<std::pair<std::string, double>>;

/// One registered graph family. `realised_size` and `build` receive the
/// resolved parameter values positionally, aligned with `params`.
struct GraphFamily {
  std::string name;
  std::string description;
  std::vector<FamilyParam> params;
  /// True when `build` consumes randomness (gnp, random trees, ...).
  bool randomised = false;
  /// Smallest size the family exists at (before snapping).
  std::size_t min_size = 2;
  /// Nearest realisable size >= max(n, min_size): the family guarantees
  /// build(realised_size(n), ...) has exactly that many vertices.
  std::function<std::size_t(std::size_t n, std::span<const double> params)> realised_size;
  std::function<Graph(std::size_t n, std::span<const double> params, support::Xoshiro256& rng)>
      build;
};

/// A parsed "family spec" string: a registry key plus optional overrides,
/// e.g. "torus", "gnp:avg-degree=6" or "random-regular:degree=4".
struct FamilySpec {
  std::string family;
  FamilyParamOverrides params;

  friend bool operator==(const FamilySpec&, const FamilySpec&) = default;
};

FamilySpec parse_family_spec(std::string_view text);

/// Renders a FamilySpec back to its canonical string form (params in the
/// family's declaration order once resolved; here, in the given order).
std::string family_spec_to_string(const FamilySpec& spec);

class FamilyRegistry {
 public:
  /// The process-wide registry holding every generator in generators.hpp.
  static const FamilyRegistry& global();

  const GraphFamily* find(std::string_view name) const noexcept;

  /// Like find, but throws std::invalid_argument naming the known families
  /// - callers get a usable error before any sweep work starts.
  const GraphFamily& at(std::string_view name) const;

  /// Registry keys in registration order (the order `list` prints).
  std::vector<std::string> names() const;

  /// Resolves overrides against the family's declared parameters: defaults
  /// filled in, unknown or duplicate names rejected with
  /// std::invalid_argument.
  static std::vector<double> resolve_params(const GraphFamily& family,
                                            const FamilyParamOverrides& overrides);

  /// The exact vertex count the family realises for a requested size.
  std::size_t realised_size(const FamilySpec& spec, std::size_t n) const;

  /// Builds the realised-size member of the family. The returned graph has
  /// exactly realised_size(spec, n) vertices.
  Graph build(const FamilySpec& spec, std::size_t n, support::Xoshiro256& rng) const;

  void register_family(GraphFamily family);

 private:
  std::vector<GraphFamily> families_;
};

}  // namespace avglocal::graph
