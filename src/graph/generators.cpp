#include "graph/generators.hpp"

#include <algorithm>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/properties.hpp"
#include "support/assert.hpp"

namespace avglocal::graph {

Graph make_cycle(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 3, "a cycle needs at least 3 vertices");
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    const auto succ = static_cast<Vertex>((i + 1) % n);
    const auto pred = static_cast<Vertex>((i + n - 1) % n);
    b.add_arc(i, succ);  // port 0: clockwise successor
    b.add_arc(i, pred);  // port 1: counter-clockwise predecessor
  }
  return b.build();
}

Graph make_path(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a path needs at least 2 vertices");
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    if (i + 1 < n) b.add_arc(i, i + 1);  // port 0: right
    if (i > 0) b.add_arc(i, i - 1);      // port 1 (or 0 for the left endpoint)
  }
  return b.build();
}

Graph make_complete(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a complete graph needs at least 2 vertices");
  GraphBuilder b(n);
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i != j) b.add_arc(i, j);
    }
  }
  return b.build();
}

Graph make_star(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a star needs at least 2 vertices");
  GraphBuilder b(n);
  for (Vertex leaf = 1; leaf < n; ++leaf) {
    b.add_arc(0, leaf);
    b.add_arc(leaf, 0);
  }
  return b.build();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  AVGLOCAL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  const auto index = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  GraphBuilder b(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(index(r, c), index(r, c + 1));
      if (r + 1 < rows) b.add_edge(index(r, c), index(r + 1, c));
    }
  }
  return b.build();
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  AVGLOCAL_EXPECTS_MSG(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
  const auto index = [cols](std::size_t r, std::size_t c) {
    return static_cast<Vertex>(r * cols + c);
  };
  GraphBuilder b(rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.add_edge(index(r, c), index(r, (c + 1) % cols));
      b.add_edge(index(r, c), index((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph make_kary_tree(std::size_t k, std::size_t levels) {
  AVGLOCAL_EXPECTS(k >= 1 && levels >= 1);
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    n += level_size;
    level_size *= k;
  }
  AVGLOCAL_EXPECTS_MSG(n >= 2, "tree with a single vertex is not a valid network");
  GraphBuilder b(n);
  // Children of vertex v are k*v+1 .. k*v+k (heap layout).
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t c = 1; c <= k; ++c) {
      const std::size_t child = k * static_cast<std::size_t>(v) + c;
      if (child < n) b.add_edge(v, static_cast<Vertex>(child));
    }
  }
  return b.build();
}

Graph make_random_tree(std::size_t n, support::Xoshiro256& rng) {
  AVGLOCAL_EXPECTS(n >= 2);
  GraphBuilder b(n);
  if (n == 2) {
    b.add_edge(0, 1);
    return b.build();
  }
  // Pruefer decoding: a uniformly random sequence of length n-2 over [0, n)
  // decodes to a uniformly random labelled tree.
  std::vector<std::size_t> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<std::size_t>(rng.below(n));
  std::vector<std::size_t> remaining_degree(n, 1);
  for (std::size_t x : pruefer) ++remaining_degree[x];
  // Min-heap of current leaves.
  std::vector<std::size_t> leaves;
  for (std::size_t v = 0; v < n; ++v) {
    if (remaining_degree[v] == 1) leaves.push_back(v);
  }
  std::make_heap(leaves.begin(), leaves.end(), std::greater<>());
  for (std::size_t x : pruefer) {
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
    const std::size_t leaf = leaves.back();
    leaves.pop_back();
    b.add_edge(static_cast<Vertex>(leaf), static_cast<Vertex>(x));
    if (--remaining_degree[x] == 1) {
      leaves.push_back(x);
      std::push_heap(leaves.begin(), leaves.end(), std::greater<>());
    }
  }
  std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
  const std::size_t a = leaves.back();
  leaves.pop_back();
  const std::size_t c = leaves.front();
  b.add_edge(static_cast<Vertex>(a), static_cast<Vertex>(c));
  return b.build();
}

Graph make_gnp_connected(std::size_t n, double p, support::Xoshiro256& rng, int max_attempts) {
  AVGLOCAL_EXPECTS(n >= 2);
  AVGLOCAL_EXPECTS(p > 0.0 && p <= 1.0);
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder b(n);
    for (Vertex i = 0; i < n; ++i) {
      for (Vertex j = i + 1; j < n; ++j) {
        if (rng.uniform01() < p) b.add_edge(i, j);
      }
    }
    Graph g = b.build();
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("make_gnp_connected: no connected sample within attempt budget");
}

Graph make_random_regular(std::size_t n, std::size_t d, support::Xoshiro256& rng,
                          int max_attempts) {
  AVGLOCAL_EXPECTS(d >= 1 && d < n);
  AVGLOCAL_EXPECTS_MSG((n * d) % 2 == 0, "n*d must be even for a d-regular graph");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: pair up d stubs per vertex uniformly at random.
    std::vector<Vertex> stubs;
    stubs.reserve(n * d);
    for (Vertex v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    support::shuffle(stubs, rng);
    bool simple = true;
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      Vertex u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
    if (!simple) continue;
    std::sort(edges.begin(), edges.end());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) continue;
    GraphBuilder b(n);
    for (const auto& [u, v] : edges) b.add_edge(u, v);
    Graph g = b.build();
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("make_random_regular: no simple connected sample within budget");
}

}  // namespace avglocal::graph
