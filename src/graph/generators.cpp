#include "graph/generators.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "graph/builder.hpp"
#include "graph/properties.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::graph {

using support::checked_u32;

Graph make_cycle(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 3, "a cycle needs at least 3 vertices");
  GraphBuilder b(n);
  b.reserve_arcs(2 * n);
  for (Vertex i = 0; i < n; ++i) {
    const Vertex succ = checked_u32((i + 1) % n);
    const Vertex pred = checked_u32((i + n - 1) % n);
    b.add_arc(i, succ);  // port 0: clockwise successor
    b.add_arc(i, pred);  // port 1: counter-clockwise predecessor
  }
  return b.build();
}

Graph make_path(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a path needs at least 2 vertices");
  GraphBuilder b(n);
  b.reserve_arcs(2 * (n - 1));
  for (Vertex i = 0; i < n; ++i) {
    if (i + 1 < n) b.add_arc(i, i + 1);  // port 0: right
    if (i > 0) b.add_arc(i, i - 1);      // port 1 (or 0 for the left endpoint)
  }
  return b.build();
}

Graph make_complete(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a complete graph needs at least 2 vertices");
  GraphBuilder b(n);
  b.reserve_arcs(n * (n - 1));
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = 0; j < n; ++j) {
      if (i != j) b.add_arc(i, j);
    }
  }
  return b.build();
}

Graph make_star(std::size_t n) {
  AVGLOCAL_EXPECTS_MSG(n >= 2, "a star needs at least 2 vertices");
  GraphBuilder b(n);
  b.reserve_arcs(2 * (n - 1));
  for (Vertex leaf = 1; leaf < n; ++leaf) {
    b.add_arc(0, leaf);
    b.add_arc(leaf, 0);
  }
  return b.build();
}

Graph make_grid(std::size_t rows, std::size_t cols) {
  AVGLOCAL_EXPECTS(rows >= 1 && cols >= 1 && rows * cols >= 2);
  const auto index = [cols](std::size_t r, std::size_t c) { return checked_u32(r * cols + c); };
  GraphBuilder b(rows * cols);
  b.reserve_arcs(2 * (rows * (cols - 1) + cols * (rows - 1)));
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      if (c + 1 < cols) b.add_edge(index(r, c), index(r, c + 1));
      if (r + 1 < rows) b.add_edge(index(r, c), index(r + 1, c));
    }
  }
  return b.build();
}

Graph make_torus(std::size_t rows, std::size_t cols) {
  AVGLOCAL_EXPECTS_MSG(rows >= 3 && cols >= 3, "torus needs both dimensions >= 3");
  const auto index = [cols](std::size_t r, std::size_t c) { return checked_u32(r * cols + c); };
  GraphBuilder b(rows * cols);
  b.reserve_arcs(4 * rows * cols);
  for (std::size_t r = 0; r < rows; ++r) {
    for (std::size_t c = 0; c < cols; ++c) {
      b.add_edge(index(r, c), index(r, (c + 1) % cols));
      b.add_edge(index(r, c), index((r + 1) % rows, c));
    }
  }
  return b.build();
}

Graph make_kary_tree(std::size_t k, std::size_t levels) {
  AVGLOCAL_EXPECTS(k >= 1 && levels >= 1);
  std::size_t n = 0;
  std::size_t level_size = 1;
  for (std::size_t l = 0; l < levels; ++l) {
    n += level_size;
    level_size *= k;
  }
  AVGLOCAL_EXPECTS_MSG(n >= 2, "tree with a single vertex is not a valid network");
  GraphBuilder b(n);
  b.reserve_arcs(2 * (n - 1));
  // Children of vertex v are k*v+1 .. k*v+k (heap layout).
  for (Vertex v = 0; v < n; ++v) {
    for (std::size_t c = 1; c <= k; ++c) {
      const std::size_t child = k * static_cast<std::size_t>(v) + c;
      if (child < n) b.add_edge(v, checked_u32(child));
    }
  }
  return b.build();
}

Graph make_random_tree(std::size_t n, support::Xoshiro256& rng) {
  AVGLOCAL_EXPECTS(n >= 2);
  GraphBuilder b(n);
  b.reserve_arcs(2 * (n - 1));
  if (n == 2) {
    b.add_edge(0, 1);
    return b.build();
  }
  // Pruefer decoding: a uniformly random sequence of length n-2 over [0, n)
  // decodes to a uniformly random labelled tree.
  std::vector<std::size_t> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<std::size_t>(rng.below(n));
  std::vector<std::size_t> remaining_degree(n, 1);
  for (std::size_t x : pruefer) ++remaining_degree[x];
  // Min-heap of current leaves.
  std::vector<std::size_t> leaves;
  for (std::size_t v = 0; v < n; ++v) {
    if (remaining_degree[v] == 1) leaves.push_back(v);
  }
  std::make_heap(leaves.begin(), leaves.end(), std::greater<>());
  for (std::size_t x : pruefer) {
    std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
    const std::size_t leaf = leaves.back();
    leaves.pop_back();
    b.add_edge(checked_u32(leaf), checked_u32(x));
    if (--remaining_degree[x] == 1) {
      leaves.push_back(x);
      std::push_heap(leaves.begin(), leaves.end(), std::greater<>());
    }
  }
  std::pop_heap(leaves.begin(), leaves.end(), std::greater<>());
  const std::size_t a = leaves.back();
  leaves.pop_back();
  const std::size_t c = leaves.front();
  b.add_edge(checked_u32(a), checked_u32(c));
  return b.build();
}

namespace {

// The historical G(n, p) sampler: one uniform01 draw per unordered pair, in
// lexicographic (i, j) order. Golden artefacts pin this draw order exactly.
void sample_gnp_dense(GraphBuilder& b, std::size_t n, double p, support::Xoshiro256& rng) {
  for (Vertex i = 0; i < n; ++i) {
    for (Vertex j = i + 1; j < n; ++j) {
      if (rng.uniform01() < p) b.add_edge(i, j);
    }
  }
}

// Batagelj-Brandes geometric skip sampling (Phys. Rev. E 71, 036113): walk
// the pairs {w, v}, w < v, in (v, w) order and jump directly to the next
// present pair with a geometric skip of parameter p - one uniform01 draw
// and one log per *edge*, expected O(n + m) instead of O(n^2). Each pair is
// still independently present with probability p, so the sample is
// distributed identically to the dense path; only the draw order (and hence
// any particular seeded sample) differs. Requires p < 1 (no skip
// distribution at p = 1; the caller routes that to the dense path).
void sample_gnp_sparse(GraphBuilder& b, std::size_t n, double p, support::Xoshiro256& rng) {
  const double log_q = std::log1p(-p);  // log(1 - p) < 0
  long long v = 1;
  long long w = -1;
  const auto nn = static_cast<long long>(n);
  while (v < nn) {
    const double r = rng.uniform01();  // in [0, 1), so 1 - r > 0
    const double skip = std::floor(std::log1p(-r) / log_q);
    // Tiny p makes huge skips; saturate so the += below cannot overflow
    // (the inner loop then walks v past n and terminates the sample).
    w += 1 + (skip >= 4.0e18 ? static_cast<long long>(4.0e18)
                             : static_cast<long long>(skip));
    while (w >= v && v < nn) {
      w -= v;
      ++v;
    }
    if (v < nn) b.add_edge(checked_u32(w), checked_u32(v));
  }
}

}  // namespace

Graph make_gnp_connected(std::size_t n, double p, support::Xoshiro256& rng, int max_attempts,
                         GnpMethod method) {
  AVGLOCAL_EXPECTS(n >= 2);
  AVGLOCAL_EXPECTS(p > 0.0 && p <= 1.0);
  // p = 1 is the complete graph and has no geometric skip distribution.
  const bool sparse = p < 1.0 && (method == GnpMethod::kSparse ||
                                  (method == GnpMethod::kAuto && n >= 512 && p <= 0.125));
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    GraphBuilder b(n);
    // Expected 2 * p * n(n-1)/2 arcs; the slack keeps one allocation typical
    // without promising exactness (m is random here).
    const double expected_arcs = p * static_cast<double>(n) * static_cast<double>(n - 1);
    b.reserve_arcs(static_cast<std::size_t>(expected_arcs * 1.1) + 64);
    if (sparse) {
      sample_gnp_sparse(b, n, p, rng);
    } else {
      sample_gnp_dense(b, n, p, rng);
    }
    Graph g = b.build();
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("make_gnp_connected: no connected sample within attempt budget");
}

Graph make_random_regular(std::size_t n, std::size_t d, support::Xoshiro256& rng,
                          int max_attempts) {
  AVGLOCAL_EXPECTS(d >= 1 && d < n);
  AVGLOCAL_EXPECTS_MSG((n * d) % 2 == 0, "n*d must be even for a d-regular graph");
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    // Configuration model: pair up d stubs per vertex uniformly at random.
    std::vector<Vertex> stubs;
    stubs.reserve(n * d);
    for (Vertex v = 0; v < n; ++v) {
      for (std::size_t i = 0; i < d; ++i) stubs.push_back(v);
    }
    support::shuffle(stubs, rng);
    bool simple = true;
    std::vector<std::pair<Vertex, Vertex>> edges;
    edges.reserve(stubs.size() / 2);
    for (std::size_t i = 0; i < stubs.size(); i += 2) {
      Vertex u = stubs[i], v = stubs[i + 1];
      if (u == v) {
        simple = false;
        break;
      }
      if (u > v) std::swap(u, v);
      edges.emplace_back(u, v);
    }
    if (!simple) continue;
    std::sort(edges.begin(), edges.end());
    if (std::adjacent_find(edges.begin(), edges.end()) != edges.end()) continue;
    GraphBuilder b(n);
    b.reserve_arcs(n * d);
    for (const auto& [u, v] : edges) b.add_edge(u, v);
    Graph g = b.build();
    if (is_connected(g)) return g;
  }
  throw std::runtime_error("make_random_regular: no simple connected sample within budget");
}

}  // namespace avglocal::graph
