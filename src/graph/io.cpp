#include "graph/io.hpp"

#include <istream>
#include <ostream>
#include <sstream>

#include "graph/builder.hpp"
#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::graph {

void write_edge_list(std::ostream& out, const Graph& g) {
  out << g.vertex_count() << ' ' << g.edge_count() << '\n';
  for (Vertex u = 0; u < g.vertex_count(); ++u) {
    for (Vertex v : g.neighbours(u)) {
      if (u < v) out << u << ' ' << v << '\n';
    }
  }
}

Graph read_edge_list(std::istream& in) {
  std::size_t n = 0, m = 0;
  if (!(in >> n >> m)) throw std::invalid_argument("edge list: missing header");
  GraphBuilder b(n);
  for (std::size_t i = 0; i < m; ++i) {
    std::size_t u = 0, v = 0;
    if (!(in >> u >> v)) throw std::invalid_argument("edge list: truncated edge section");
    if (u >= n || v >= n) throw std::invalid_argument("edge list: vertex out of range");
    b.add_edge(support::checked_u32(u), support::checked_u32(v));
  }
  return b.build();
}

std::string to_dot(const Graph& g, const IdAssignment* ids) {
  AVGLOCAL_EXPECTS(ids == nullptr || ids->size() == g.vertex_count());
  std::ostringstream out;
  out << "graph G {\n";
  if (ids != nullptr) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      out << "  " << v << " [label=\"" << ids->id_of(v) << "\"];\n";
    }
  }
  for (Vertex u = 0; u < g.vertex_count(); ++u) {
    for (Vertex v : g.neighbours(u)) {
      if (u < v) out << "  " << u << " -- " << v << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace avglocal::graph
