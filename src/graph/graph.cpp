#include "graph/graph.hpp"

namespace avglocal::graph {

std::size_t Graph::port_to(Vertex v, Vertex u) const noexcept {
  const auto nbrs = neighbours(v);
  for (std::size_t port = 0; port < nbrs.size(); ++port) {
    if (nbrs[port] == u) return port;
  }
  return nbrs.size();
}

}  // namespace avglocal::graph
