// Structural predicates and summaries over graphs.
#pragma once

#include <cstddef>

#include "graph/graph.hpp"

namespace avglocal::graph {

/// True when the graph is connected (single-vertex graphs are connected).
bool is_connected(const Graph& g);

/// True when the graph is a simple cycle (connected, all degrees 2, n >= 3).
bool is_cycle(const Graph& g);

/// True when the graph is a simple path (connected, two degree-1 endpoints,
/// all other degrees 2; a single edge counts).
bool is_path(const Graph& g);

/// True when the graph is acyclic and connected.
bool is_tree(const Graph& g);

std::size_t min_degree(const Graph& g);
std::size_t max_degree(const Graph& g);

}  // namespace avglocal::graph
