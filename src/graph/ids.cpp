#include "graph/ids.hpp"

#include <algorithm>
#include <numeric>

#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::graph {

namespace {

[[maybe_unused]] bool all_distinct(std::span<const std::uint64_t> ids) {
  std::vector<std::uint64_t> sorted(ids.begin(), ids.end());
  std::sort(sorted.begin(), sorted.end());
  return std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end();
}

}  // namespace

IdAssignment::IdAssignment(std::vector<std::uint64_t> ids)
    : ids_(ids.begin(), ids.end()) {
  AVGLOCAL_EXPECTS_MSG(!ids_.empty(), "empty id assignment");
  AVGLOCAL_EXPECTS_MSG(all_distinct(ids_), "identifiers must be pairwise distinct");
  AVGLOCAL_ASSERT(support::is_aligned(ids_.data()));
}

IdAssignment::IdAssignment(support::AlignedVector<std::uint64_t> ids, Trusted)
    : ids_(std::move(ids)) {
  AVGLOCAL_ASSERT(!ids_.empty());
  AVGLOCAL_ASSERT(all_distinct(ids_));
  AVGLOCAL_ASSERT(support::is_aligned(ids_.data()));
}

IdAssignment IdAssignment::identity(std::size_t n) {
  support::AlignedVector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::uint64_t{1});
  return IdAssignment(std::move(ids), Trusted{});
}

IdAssignment IdAssignment::reversed(std::size_t n) {
  support::AlignedVector<std::uint64_t> ids(n);
  for (std::size_t v = 0; v < n; ++v) ids[v] = n - v;
  return IdAssignment(std::move(ids), Trusted{});
}

IdAssignment IdAssignment::random(std::size_t n, support::Xoshiro256& rng) {
  // The sweep hot loop: fill {1..n} straight into the aligned storage and
  // shuffle in place - one allocation per trial (pinned by
  // test_engine_alloc), no std::vector round-trip.
  support::AlignedVector<std::uint64_t> ids(n);
  std::iota(ids.begin(), ids.end(), std::uint64_t{1});
  support::shuffle(std::span<std::uint64_t>(ids), rng);
  return IdAssignment(std::move(ids), Trusted{});
}

std::uint32_t IdAssignment::argmax() const noexcept {
  const auto it = std::max_element(ids_.begin(), ids_.end());
  return support::checked_u32(it - ids_.begin());
}

IdAssignment IdAssignment::with_swapped(std::uint32_t u, std::uint32_t v) const {
  AVGLOCAL_EXPECTS(u < ids_.size() && v < ids_.size());
  IdAssignment copy = *this;
  std::swap(copy.ids_[u], copy.ids_[v]);
  return copy;
}

}  // namespace avglocal::graph
