#include "graph/family_registry.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <stdexcept>

#include "graph/generators.hpp"
#include "support/assert.hpp"

namespace avglocal::graph {

namespace {

[[noreturn]] void spec_error(const std::string& what) { throw std::invalid_argument(what); }

/// Parameters that are semantically counts (tree arity, regular degree).
std::size_t as_count(double value, const char* what) {
  if (!(value >= 1.0) || value != std::floor(value) || value > 1e9) {
    spec_error(std::string(what) + " must be a positive integer, got " + std::to_string(value));
  }
  return static_cast<std::size_t>(value);
}

std::size_t square_side(std::size_t n, std::size_t min_side) {
  const auto side = static_cast<std::size_t>(
      std::llround(std::sqrt(static_cast<double>(std::max<std::size_t>(n, 1)))));
  return std::max(side, min_side);
}

/// Vertex count of the complete k-ary tree with the fewest levels holding
/// at least n vertices: 1 + k + k^2 + ... (k = 1 degenerates to a path).
std::size_t kary_size_at_least(std::size_t n, std::size_t k) {
  if (k == 1) return std::max<std::size_t>(n, 1);
  std::size_t size = 1;
  std::size_t level = 1;
  while (size < n) {
    level *= k;
    size += level;
  }
  return size;
}

std::size_t kary_levels_for(std::size_t size, std::size_t k) {
  std::size_t levels = 1;
  std::size_t total = 1;
  std::size_t level = 1;
  while (total < size) {
    level *= k;
    total += level;
    ++levels;
  }
  AVGLOCAL_REQUIRE_MSG(total == size, "size is not a complete k-ary tree size");
  return levels;
}

std::size_t regular_size_at_least(std::size_t n, std::size_t degree) {
  std::size_t size = std::max(n, degree + 1);
  if (size * degree % 2 != 0) ++size;  // configuration model needs n*d even
  return size;
}

FamilyRegistry build_global_registry() {
  FamilyRegistry registry;

  registry.register_family(
      {"cycle",
       "the n-cycle, the paper's main topology (oriented ring ports)",
       {},
       /*randomised=*/false,
       /*min_size=*/3,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 3); },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) {
         return make_cycle(n);
       }});

  registry.register_family(
      {"path",
       "the n-vertex path",
       {},
       /*randomised=*/false,
       /*min_size=*/2,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 2); },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) {
         return make_path(n);
       }});

  registry.register_family(
      {"complete",
       "the complete graph K_n",
       {},
       /*randomised=*/false,
       /*min_size=*/2,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 2); },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) {
         return make_complete(n);
       }});

  registry.register_family(
      {"star",
       "one centre with n-1 leaves",
       {},
       /*randomised=*/false,
       /*min_size=*/2,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 2); },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) { return make_star(n); }});

  registry.register_family(
      {"grid",
       "the side x side square grid nearest to n vertices",
       {},
       /*randomised=*/false,
       /*min_size=*/4,
       [](std::size_t n, std::span<const double>) {
         const std::size_t side = square_side(n, 2);
         return side * side;
       },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) {
         const std::size_t side = square_side(n, 2);
         AVGLOCAL_REQUIRE(side * side == n);
         return make_grid(side, side);
       }});

  registry.register_family(
      {"torus",
       "the side x side torus (wrap-around grid) nearest to n vertices",
       {},
       /*randomised=*/false,
       /*min_size=*/9,
       [](std::size_t n, std::span<const double>) {
         const std::size_t side = square_side(n, 3);
         return side * side;
       },
       [](std::size_t n, std::span<const double>, support::Xoshiro256&) {
         const std::size_t side = square_side(n, 3);
         AVGLOCAL_REQUIRE(side * side == n);
         return make_torus(side, side);
       }});

  registry.register_family(
      {"kary-tree",
       "the smallest complete k-ary tree with at least n vertices",
       {{"arity", 2.0, "branching factor k (>= 1; 1 degenerates to a path)"}},
       /*randomised=*/false,
       /*min_size=*/1,
       [](std::size_t n, std::span<const double> params) {
         return kary_size_at_least(std::max<std::size_t>(n, 1), as_count(params[0], "arity"));
       },
       [](std::size_t n, std::span<const double> params, support::Xoshiro256&) {
         const std::size_t k = as_count(params[0], "arity");
         if (k == 1) return make_kary_tree(1, n);
         return make_kary_tree(k, kary_levels_for(n, k));
       }});

  registry.register_family(
      {"random-tree",
       "a uniformly random labelled tree (random Pruefer sequence)",
       {},
       /*randomised=*/true,
       /*min_size=*/1,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 1); },
       [](std::size_t n, std::span<const double>, support::Xoshiro256& rng) {
         return make_random_tree(n, rng);
       }});

  registry.register_family(
      {"gnp",
       "Erdos-Renyi G(n, p) conditioned on connectivity",
       {{"avg-degree", 8.0, "expected degree; p = avg-degree / n, clamped to 1"}},
       /*randomised=*/true,
       /*min_size=*/2,
       [](std::size_t n, std::span<const double>) { return std::max<std::size_t>(n, 2); },
       [](std::size_t n, std::span<const double> params, support::Xoshiro256& rng) {
         const double avg_degree = params[0];
         if (!(avg_degree > 0.0)) spec_error("gnp avg-degree must be positive");
         const double p = std::min(1.0, avg_degree / static_cast<double>(n));
         return make_gnp_connected(n, p, rng);
       }});

  registry.register_family(
      {"random-regular",
       "a random d-regular graph (configuration model, connected)",
       {{"degree", 3.0, "vertex degree d (>= 2; n is bumped so n*d is even)"}},
       /*randomised=*/true,
       /*min_size=*/2,
       [](std::size_t n, std::span<const double> params) {
         return regular_size_at_least(n, as_count(params[0], "degree"));
       },
       [](std::size_t n, std::span<const double> params, support::Xoshiro256& rng) {
         return make_random_regular(n, as_count(params[0], "degree"), rng);
       }});

  return registry;
}

}  // namespace

FamilySpec parse_family_spec(std::string_view text) {
  FamilySpec spec;
  const auto colon = text.find(':');
  spec.family = std::string(text.substr(0, colon));
  if (spec.family.empty()) spec_error("empty graph family name");
  if (colon == std::string_view::npos) return spec;

  std::string_view rest = text.substr(colon + 1);
  while (!rest.empty()) {
    const auto comma = rest.find(',');
    const std::string_view item = rest.substr(0, comma);
    rest = comma == std::string_view::npos ? std::string_view{} : rest.substr(comma + 1);
    const auto equals = item.find('=');
    if (equals == std::string_view::npos || equals == 0) {
      spec_error("family parameter must be name=value, got '" + std::string(item) + "'");
    }
    const std::string name(item.substr(0, equals));
    const std::string value_text(item.substr(equals + 1));
    char* end = nullptr;
    const double value = std::strtod(value_text.c_str(), &end);
    if (value_text.empty() || end != value_text.c_str() + value_text.size()) {
      spec_error("family parameter '" + name + "' has non-numeric value '" + value_text + "'");
    }
    spec.params.emplace_back(name, value);
  }
  return spec;
}

std::string family_spec_to_string(const FamilySpec& spec) {
  std::string out = spec.family;
  for (std::size_t i = 0; i < spec.params.size(); ++i) {
    out += i == 0 ? ':' : ',';
    out += spec.params[i].first;
    out += '=';
    char buf[32];
    const auto [end, ec] = std::to_chars(buf, buf + sizeof buf, spec.params[i].second);
    out.append(buf, ec == std::errc{} ? end : buf);
  }
  return out;
}

const FamilyRegistry& FamilyRegistry::global() {
  static const FamilyRegistry registry = build_global_registry();
  return registry;
}

const GraphFamily* FamilyRegistry::find(std::string_view name) const noexcept {
  for (const GraphFamily& family : families_) {
    if (family.name == name) return &family;
  }
  return nullptr;
}

const GraphFamily& FamilyRegistry::at(std::string_view name) const {
  const GraphFamily* family = find(name);
  if (family == nullptr) {
    std::string known;
    for (const GraphFamily& f : families_) {
      if (!known.empty()) known += ' ';
      known += f.name;
    }
    spec_error("unknown graph family '" + std::string(name) + "' (known: " + known + ")");
  }
  return *family;
}

std::vector<std::string> FamilyRegistry::names() const {
  std::vector<std::string> out;
  out.reserve(families_.size());
  for (const GraphFamily& family : families_) out.push_back(family.name);
  return out;
}

std::vector<double> FamilyRegistry::resolve_params(const GraphFamily& family,
                                                   const FamilyParamOverrides& overrides) {
  std::vector<double> values;
  values.reserve(family.params.size());
  for (const FamilyParam& param : family.params) values.push_back(param.default_value);
  std::vector<bool> seen(family.params.size(), false);
  for (const auto& [name, value] : overrides) {
    std::size_t index = family.params.size();
    for (std::size_t i = 0; i < family.params.size(); ++i) {
      if (family.params[i].name == name) {
        index = i;
        break;
      }
    }
    if (index == family.params.size()) {
      std::string known;
      for (const FamilyParam& p : family.params) {
        if (!known.empty()) known += ' ';
        known += p.name;
      }
      spec_error("family '" + family.name + "' has no parameter '" + name + "'" +
                 (known.empty() ? " (it takes none)" : " (known: " + known + ")"));
    }
    if (seen[index]) spec_error("duplicate family parameter '" + name + "'");
    seen[index] = true;
    values[index] = value;
  }
  return values;
}

std::size_t FamilyRegistry::realised_size(const FamilySpec& spec, std::size_t n) const {
  const GraphFamily& family = at(spec.family);
  const std::vector<double> params = resolve_params(family, spec.params);
  return family.realised_size(std::max(n, family.min_size), params);
}

Graph FamilyRegistry::build(const FamilySpec& spec, std::size_t n,
                            support::Xoshiro256& rng) const {
  const GraphFamily& family = at(spec.family);
  const std::vector<double> params = resolve_params(family, spec.params);
  const std::size_t size = family.realised_size(std::max(n, family.min_size), params);
  Graph g = family.build(size, params, rng);
  AVGLOCAL_REQUIRE_MSG(g.vertex_count() == size, "family realised an unexpected size");
  return g;
}

void FamilyRegistry::register_family(GraphFamily family) {
  AVGLOCAL_REQUIRE_MSG(find(family.name) == nullptr, "duplicate graph family registration");
  families_.push_back(std::move(family));
}

}  // namespace avglocal::graph
