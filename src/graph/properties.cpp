#include "graph/properties.hpp"

#include <algorithm>

#include "graph/ball.hpp"

namespace avglocal::graph {

bool is_connected(const Graph& g) {
  if (g.vertex_count() == 0) return false;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d == kUnreachable; });
}

bool is_cycle(const Graph& g) {
  if (g.vertex_count() < 3) return false;
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (g.degree(v) != 2) return false;
  }
  return is_connected(g);
}

bool is_path(const Graph& g) {
  const std::size_t n = g.vertex_count();
  if (n < 2) return false;
  std::size_t endpoints = 0;
  for (Vertex v = 0; v < n; ++v) {
    if (g.degree(v) == 1) {
      ++endpoints;
    } else if (g.degree(v) != 2) {
      return false;
    }
  }
  return endpoints == 2 && is_connected(g);
}

bool is_tree(const Graph& g) {
  return g.vertex_count() >= 1 && g.edge_count() == g.vertex_count() - 1 && is_connected(g);
}

std::size_t min_degree(const Graph& g) {
  std::size_t best = g.vertex_count() == 0 ? 0 : g.degree(0);
  for (Vertex v = 1; v < g.vertex_count(); ++v) best = std::min(best, g.degree(v));
  return best;
}

std::size_t max_degree(const Graph& g) {
  std::size_t best = 0;
  for (Vertex v = 0; v < g.vertex_count(); ++v) best = std::max(best, g.degree(v));
  return best;
}

}  // namespace avglocal::graph
