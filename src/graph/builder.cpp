#include "graph/builder.hpp"

#include <cstdint>
#include <limits>
#include <utility>
#include <vector>

#include "support/assert.hpp"
#include "support/narrow.hpp"

namespace avglocal::graph {

using support::checked_u32;

GraphBuilder::GraphBuilder(std::size_t n) : degrees_(n, 0) {}

void GraphBuilder::add_arc(Vertex u, Vertex v) {
  AVGLOCAL_EXPECTS_MSG(u < degrees_.size() && v < degrees_.size(), "vertex out of range");
  AVGLOCAL_EXPECTS_MSG(u != v, "self-loops are not allowed");
  arcs_.push_back(ArcRec{u, v});
  ++degrees_[u];
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  add_arc(u, v);
  add_arc(v, u);
}

void GraphBuilder::reserve_arcs(std::size_t arcs) { arcs_.reserve(arcs); }

Graph GraphBuilder::build(OffsetWidth width) const {
  const std::size_t n = degrees_.size();
  const std::size_t arc_count = arcs_.size();

  // Per-arc state elsewhere (message slots, mirror tables, SIMD gather
  // indices) is 32-bit; graphs beyond 2^32 arcs would truncate it, so
  // reject them explicitly. This also makes every narrowing below safe.
  AVGLOCAL_EXPECTS_MSG(arc_count <= std::numeric_limits<std::uint32_t>::max(),
                       "graph exceeds 2^32 directed arcs");

  // CSR row offsets (working copy in 64 bits; narrowed at the end).
  std::vector<std::size_t> offsets(n + 1, 0);
  for (std::size_t v = 0; v < n; ++v) offsets[v + 1] = offsets[v] + degrees_[v];

  // One pass over the arcs in insertion order does three jobs at once:
  // a stable counting sort by source (per-source insertion order is the
  // port order, byte-identical to the old per-vertex adjacency lists),
  // the flat arc index of each arc, and a bucket of incoming arcs per
  // target for the mirror match below.
  std::vector<Vertex> targets(arc_count);
  std::vector<std::size_t> out_cursor(offsets.begin(), offsets.end() - 1);
  std::vector<std::size_t> in_off(n + 1, 0);
  for (const ArcRec& a : arcs_) ++in_off[a.to + 1];
  for (std::size_t v = 0; v < n; ++v) in_off[v + 1] += in_off[v];
  std::vector<Vertex> in_src(arc_count);
  std::vector<vid32> in_arc(arc_count);
  std::vector<std::size_t> in_cursor(in_off.begin(), in_off.end() - 1);
  for (const ArcRec& a : arcs_) {
    const std::size_t flat = out_cursor[a.from]++;
    targets[flat] = a.to;
    const std::size_t pos = in_cursor[a.to]++;
    in_src[pos] = a.from;
    in_arc[pos] = checked_u32(flat);
  }

  // Mirror ports via an epoch-stamped slot map: for each vertex x, stamp
  // its incoming arcs {y -> x} into per-endpoint slots (a second arc from
  // the same y is a duplicate edge), then resolve each outgoing arc
  // x -> w against the slot for w (a miss is an arc without its reverse).
  // Bumping the epoch replaces the O(n) slot clear per vertex; 64-bit
  // epochs cannot wrap. Validation and matching in one O(n + m) sweep -
  // this is what Graph::mirror_port's O(1) lookup is built from.
  std::vector<vid32> mirror(arc_count);
  std::vector<std::uint64_t> slot_epoch(n, 0);
  std::vector<vid32> slot_arc(n, 0);
  std::uint64_t epoch = 0;
  for (std::size_t x = 0; x < n; ++x) {
    ++epoch;
    for (std::size_t pos = in_off[x]; pos < in_off[x + 1]; ++pos) {
      const Vertex y = in_src[pos];
      AVGLOCAL_EXPECTS_MSG(slot_epoch[y] != epoch, "duplicate edge");
      slot_epoch[y] = epoch;
      slot_arc[y] = in_arc[pos];
    }
    for (std::size_t flat = offsets[x]; flat < offsets[x + 1]; ++flat) {
      const Vertex w = targets[flat];
      AVGLOCAL_EXPECTS_MSG(slot_epoch[w] == epoch, "arc without reverse arc");
      mirror[flat] = checked_u32(slot_arc[w] - offsets[w]);
    }
  }

#ifndef NDEBUG
  // The mirror invariant every consumer (message delivery, edge measures,
  // ball growth) now relies on without a port_to fallback: following an arc
  // and its mirror lands back on the origin, for every arc. O(2m) checks,
  // debug builds only.
  for (std::size_t u = 0; u < n; ++u) {
    for (std::size_t p = 0; p < degrees_[u]; ++p) {
      const Vertex v = targets[offsets[u] + p];
      const vid32 q = mirror[offsets[u] + p];
      AVGLOCAL_ASSERT(q < degrees_[v]);
      AVGLOCAL_ASSERT(targets[offsets[v] + q] == u);
      AVGLOCAL_ASSERT(mirror[offsets[v] + q] == p);
    }
  }
#endif

  // Materialise the offsets in the requested width. kAuto compacts
  // whenever the arc count fits 32 bits (always, given the guard above);
  // kWide keeps the 64-bit reference layout for parity testing.
  const bool compact =
      width == OffsetWidth::kWide
          ? false
          : (width == OffsetWidth::kCompact ||
             arc_count <= std::numeric_limits<vid32>::max());
  std::vector<vid32> offsets32;
  std::vector<vid64> offsets64;
  if (compact) {
    offsets32.reserve(n + 1);
    for (const std::size_t o : offsets) offsets32.push_back(checked_u32(o));
  } else {
    offsets64.assign(offsets.begin(), offsets.end());
  }
  return Graph(n, std::move(offsets32), std::move(offsets64), std::move(targets),
               std::move(mirror));
}

}  // namespace avglocal::graph
