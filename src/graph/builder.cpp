#include "graph/builder.hpp"

#include <algorithm>
#include <limits>
#include <tuple>
#include <utility>

#include "support/assert.hpp"

namespace avglocal::graph {

GraphBuilder::GraphBuilder(std::size_t n) : adjacency_(n) {}

void GraphBuilder::add_arc(Vertex u, Vertex v) {
  AVGLOCAL_EXPECTS_MSG(u < adjacency_.size() && v < adjacency_.size(), "vertex out of range");
  AVGLOCAL_EXPECTS_MSG(u != v, "self-loops are not allowed");
  adjacency_[u].push_back(v);
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  add_arc(u, v);
  add_arc(v, u);
}

Graph GraphBuilder::build() const {
  const std::size_t n = adjacency_.size();

  // Validate: no duplicate arcs, and the arc multiset is symmetric.
  std::vector<std::pair<Vertex, Vertex>> arcs;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : adjacency_[u]) arcs.emplace_back(u, v);
  }
  std::vector<std::pair<Vertex, Vertex>> sorted = arcs;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    AVGLOCAL_EXPECTS_MSG(sorted[i] != sorted[i - 1], "duplicate edge");
  }
  for (const auto& [u, v] : sorted) {
    const bool has_reverse =
        std::binary_search(sorted.begin(), sorted.end(), std::make_pair(v, u));
    AVGLOCAL_EXPECTS_MSG(has_reverse, "arc without reverse arc");
  }

  std::vector<std::size_t> offsets(n + 1, 0);
  for (Vertex u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + adjacency_[u].size();
  std::vector<Vertex> targets;
  targets.reserve(offsets[n]);
  for (Vertex u = 0; u < n; ++u) {
    targets.insert(targets.end(), adjacency_[u].begin(), adjacency_[u].end());
  }

  // Precompute mirror ports: sort arcs by undirected edge key so the two
  // arcs of every edge land adjacent, then point each at the other. Gives
  // Graph::mirror_port its O(1) lookup. Arc indices are stored in 32 bits;
  // graphs beyond 2^32 arcs would truncate, so reject them explicitly.
  AVGLOCAL_EXPECTS_MSG(offsets[n] <= std::numeric_limits<std::uint32_t>::max(),
                       "graph exceeds 2^32 directed arcs");
  struct Arc {
    Vertex lo, hi, from;
    std::uint32_t index;
  };
  std::vector<Arc> edge_sorted;
  edge_sorted.reserve(offsets[n]);
  for (Vertex u = 0; u < n; ++u) {
    for (std::size_t p = 0; p < adjacency_[u].size(); ++p) {
      const Vertex v = adjacency_[u][p];
      edge_sorted.push_back(Arc{std::min(u, v), std::max(u, v), u,
                                static_cast<std::uint32_t>(offsets[u] + p)});
    }
  }
  std::sort(edge_sorted.begin(), edge_sorted.end(), [](const Arc& a, const Arc& b) {
    return std::tie(a.lo, a.hi, a.from) < std::tie(b.lo, b.hi, b.from);
  });
  std::vector<std::uint32_t> mirror(offsets[n]);
  for (std::size_t i = 0; i + 1 < edge_sorted.size(); i += 2) {
    const Arc& a = edge_sorted[i];
    const Arc& b = edge_sorted[i + 1];
    AVGLOCAL_ASSERT(a.lo == b.lo && a.hi == b.hi && a.from != b.from);
    mirror[a.index] = static_cast<std::uint32_t>(b.index - offsets[b.from]);
    mirror[b.index] = static_cast<std::uint32_t>(a.index - offsets[a.from]);
  }
#ifndef NDEBUG
  // The mirror invariant every consumer (message delivery, edge measures,
  // ball growth) now relies on without a port_to fallback: following an arc
  // and its mirror lands back on the origin, for every arc. O(2m) checks,
  // debug builds only.
  for (Vertex u = 0; u < n; ++u) {
    for (std::size_t p = 0; p < adjacency_[u].size(); ++p) {
      const Vertex v = adjacency_[u][p];
      const std::uint32_t q = mirror[offsets[u] + p];
      AVGLOCAL_ASSERT(q < adjacency_[v].size());
      AVGLOCAL_ASSERT(adjacency_[v][q] == u);
      AVGLOCAL_ASSERT(mirror[offsets[v] + q] == static_cast<std::uint32_t>(p));
    }
  }
#endif
  return Graph(std::move(offsets), std::move(targets), std::move(mirror));
}

}  // namespace avglocal::graph
