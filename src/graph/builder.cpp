#include "graph/builder.hpp"

#include <algorithm>
#include <utility>

#include "support/assert.hpp"

namespace avglocal::graph {

GraphBuilder::GraphBuilder(std::size_t n) : adjacency_(n) {}

void GraphBuilder::add_arc(Vertex u, Vertex v) {
  AVGLOCAL_EXPECTS_MSG(u < adjacency_.size() && v < adjacency_.size(), "vertex out of range");
  AVGLOCAL_EXPECTS_MSG(u != v, "self-loops are not allowed");
  adjacency_[u].push_back(v);
}

void GraphBuilder::add_edge(Vertex u, Vertex v) {
  add_arc(u, v);
  add_arc(v, u);
}

Graph GraphBuilder::build() const {
  const std::size_t n = adjacency_.size();

  // Validate: no duplicate arcs, and the arc multiset is symmetric.
  std::vector<std::pair<Vertex, Vertex>> arcs;
  for (Vertex u = 0; u < n; ++u) {
    for (Vertex v : adjacency_[u]) arcs.emplace_back(u, v);
  }
  std::vector<std::pair<Vertex, Vertex>> sorted = arcs;
  std::sort(sorted.begin(), sorted.end());
  for (std::size_t i = 1; i < sorted.size(); ++i) {
    AVGLOCAL_EXPECTS_MSG(sorted[i] != sorted[i - 1], "duplicate edge");
  }
  for (const auto& [u, v] : sorted) {
    const bool has_reverse =
        std::binary_search(sorted.begin(), sorted.end(), std::make_pair(v, u));
    AVGLOCAL_EXPECTS_MSG(has_reverse, "arc without reverse arc");
  }

  std::vector<std::size_t> offsets(n + 1, 0);
  for (Vertex u = 0; u < n; ++u) offsets[u + 1] = offsets[u] + adjacency_[u].size();
  std::vector<Vertex> targets;
  targets.reserve(offsets[n]);
  for (Vertex u = 0; u < n; ++u) {
    targets.insert(targets.end(), adjacency_[u].begin(), adjacency_[u].end());
  }
  return Graph(std::move(offsets), std::move(targets));
}

}  // namespace avglocal::graph
