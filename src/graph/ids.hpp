// Identifier assignments: the mapping from simulator vertices to the
// distinct IDs that LOCAL algorithms actually see.
//
// The paper measures worst case over the *permutation of the identifiers*;
// by default IDs are a permutation of {1, ..., n}, but any set of distinct
// 64-bit values is supported.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "support/aligned.hpp"
#include "support/rng.hpp"

namespace avglocal::graph {

/// Immutable assignment of one distinct identifier per vertex.
class IdAssignment {
 public:
  /// Wraps an explicit id vector (ids[v] = identifier of vertex v).
  /// Throws if ids are not pairwise distinct or the vector is empty.
  explicit IdAssignment(std::vector<std::uint64_t> ids);

  /// Identity permutation: vertex v gets ID v+1.
  static IdAssignment identity(std::size_t n);

  /// Reversed permutation: vertex v gets ID n-v.
  static IdAssignment reversed(std::size_t n);

  /// Uniformly random permutation of {1..n}. Constructed through the
  /// trusted path: a Fisher-Yates shuffle of {1..n} is distinct by
  /// construction, so the O(n log n) sort-and-check of the public
  /// constructor is skipped (debug builds still assert distinctness).
  /// This is the sweep hot loop: one allocation (the id vector), no sort.
  static IdAssignment random(std::size_t n, support::Xoshiro256& rng);

  std::size_t size() const noexcept { return ids_.size(); }

  std::uint64_t id_of(std::uint32_t v) const noexcept { return ids_[v]; }

  std::span<const std::uint64_t> ids() const noexcept { return ids_; }

  /// Vertex holding the maximum identifier.
  std::uint32_t argmax() const noexcept;

  /// A copy with the identifiers of vertices u and v exchanged.
  IdAssignment with_swapped(std::uint32_t u, std::uint32_t v) const;

 private:
  /// Tag for constructors whose input is distinct by construction.
  struct Trusted {};

  /// Trusted path: skips the duplicate check in release builds (a debug
  /// assert keeps the contract honest). Used by identity/reversed/random,
  /// whose outputs are permutations by construction.
  IdAssignment(support::AlignedVector<std::uint64_t> ids, Trusted);

  /// Storage is 64-byte aligned: ids() is the source array of the batched
  /// engine's SIMD transpose/gather kernels (support/simd.hpp), which
  /// assume cache-line-aligned row bases.
  support::AlignedVector<std::uint64_t> ids_;
};

}  // namespace avglocal::graph
