// Graph serialization: edge-list text format and Graphviz DOT export.
#pragma once

#include <iosfwd>
#include <optional>
#include <string>

#include "graph/graph.hpp"
#include "graph/ids.hpp"

namespace avglocal::graph {

/// Writes "n m" on the first line, then one "u v" pair per edge.
void write_edge_list(std::ostream& out, const Graph& g);

/// Parses the format produced by write_edge_list. Throws std::invalid_argument
/// on malformed input.
Graph read_edge_list(std::istream& in);

/// Graphviz DOT of g; vertices are labelled with their identifiers when an
/// assignment is given, otherwise with their indices.
std::string to_dot(const Graph& g, const IdAssignment* ids = nullptr);

}  // namespace avglocal::graph
