// Mutable builder producing immutable Graphs with controlled port order.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace avglocal::graph {

/// Accumulates edges and produces a Graph. Port order of a vertex is the
/// order in which its incident arcs were added.
///
/// Two insertion styles:
///  * add_edge(u, v): appends v to u's ports and u to v's ports;
///  * add_arc(u, v):  appends v to u's ports only. Generators use arcs to
///    control port numbering precisely; build() verifies every arc has its
///    reverse, so the result is always a well-formed undirected graph.
///
/// The builder stores one flat arc record per add_arc (8 bytes) and build()
/// runs in O(n + m) time and O(m) auxiliary memory - counting sorts plus an
/// epoch-stamped mirror match, no comparison sort - so constructing the
/// n=10^6 instances is never the bottleneck of a sweep.
class GraphBuilder {
 public:
  /// Offset width of the built Graph. kAuto picks the compact 32-bit
  /// layout whenever the arc count fits (it always does today: build()
  /// rejects graphs beyond 2^32 directed arcs because per-arc state
  /// elsewhere is 32-bit). kWide forces the 64-bit layout - the parity
  /// suite and the bench bit-compare run every workload through both.
  enum class OffsetWidth { kAuto, kCompact, kWide };

  /// Creates a builder for a graph with n vertices (indices 0..n-1).
  explicit GraphBuilder(std::size_t n);

  /// Adds the undirected edge {u, v}. Throws on self-loops or
  /// out-of-range vertices; duplicate edges are rejected by build().
  void add_edge(Vertex u, Vertex v);

  /// Adds the arc u -> v (port on u only). The reverse arc must be added
  /// separately before build().
  void add_arc(Vertex u, Vertex v);

  /// Pre-sizes the arc store for `arcs` directed arcs (2m for a graph
  /// with m edges), so generators that know m allocate exactly once.
  void reserve_arcs(std::size_t arcs);

  std::size_t vertex_count() const noexcept { return degrees_.size(); }

  /// Directed arcs added so far (2 * edges when built via add_edge).
  std::size_t arc_count() const noexcept { return arcs_.size(); }

  /// Finalises the graph. Throws std::invalid_argument if the arc multiset
  /// is not symmetric or an edge appears more than once.
  Graph build(OffsetWidth width = OffsetWidth::kAuto) const;

 private:
  struct ArcRec {
    Vertex from, to;
  };
  std::vector<ArcRec> arcs_;   // insertion order; per-source order = port order
  std::vector<vid32> degrees_; // out-degree per vertex, one slot per vertex
};

}  // namespace avglocal::graph
