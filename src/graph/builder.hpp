// Mutable builder producing immutable Graphs with controlled port order.
#pragma once

#include <vector>

#include "graph/graph.hpp"

namespace avglocal::graph {

/// Accumulates edges and produces a Graph. Port order of a vertex is the
/// order in which its incident arcs were added.
///
/// Two insertion styles:
///  * add_edge(u, v): appends v to u's ports and u to v's ports;
///  * add_arc(u, v):  appends v to u's ports only. Generators use arcs to
///    control port numbering precisely; build() verifies every arc has its
///    reverse, so the result is always a well-formed undirected graph.
class GraphBuilder {
 public:
  /// Creates a builder for a graph with n vertices (indices 0..n-1).
  explicit GraphBuilder(std::size_t n);

  /// Adds the undirected edge {u, v}. Throws on self-loops, out-of-range
  /// vertices or duplicate edges.
  void add_edge(Vertex u, Vertex v);

  /// Adds the arc u -> v (port on u only). The reverse arc must be added
  /// separately before build().
  void add_arc(Vertex u, Vertex v);

  std::size_t vertex_count() const noexcept { return adjacency_.size(); }

  /// Finalises the graph. Throws std::invalid_argument if the arc multiset
  /// is not symmetric or an edge appears more than once.
  Graph build() const;

 private:
  std::vector<std::vector<Vertex>> adjacency_;
};

}  // namespace avglocal::graph
