// Breadth-first distances and balls: the geometric primitives behind the
// paper's "a node gathers all information in a ball around itself" view of
// the LOCAL model.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.hpp"

namespace avglocal::graph {

/// Distance sentinel for unreachable vertices.
inline constexpr int kUnreachable = -1;

/// BFS distances from root; entries are kUnreachable beyond max_depth
/// (max_depth < 0 means unbounded).
std::vector<int> bfs_distances(const Graph& g, Vertex root, int max_depth = -1);

/// Vertices at distance <= radius from root, in BFS order (non-decreasing
/// distance; within a layer, discovery order, which follows port order).
std::vector<Vertex> ball_vertices(const Graph& g, Vertex root, int radius);

/// Shortest-path distance between u and v (kUnreachable if disconnected).
int distance(const Graph& g, Vertex u, Vertex v);

/// Largest distance from v to any reachable vertex.
int eccentricity(const Graph& g, Vertex v);

/// Maximum eccentricity over all vertices; kUnreachable for a disconnected
/// graph. O(n * (n + m)), intended for analysis at moderate sizes.
int diameter(const Graph& g);

}  // namespace avglocal::graph
