// E7 + E8: the paper's two motivating applications (dynamic updates and
// parallel simulation), plus a timing of the update-cost computation.
#include <benchmark/benchmark.h>

#include "algo/largest_id.hpp"
#include "bench_common.hpp"
#include "graph/ids.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

void BM_UpdateCostEvaluation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Xoshiro256 rng(9);
  const auto before = graph::IdAssignment::random(n, rng);
  const auto after = before.with_swapped(0, static_cast<std::uint32_t>(n / 2));
  for (auto _ : state) {
    const auto r0 = algo::largest_id_radii_on_cycle(before);
    const auto r1 = algo::largest_id_radii_on_cycle(after);
    std::uint64_t cost = 0;
    for (std::size_t v = 0; v < n; ++v) {
      if (r0[v] != r1[v]) cost += r1[v];
    }
    benchmark::DoNotOptimize(cost);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_UpdateCostEvaluation)->RangeMultiplier(4)->Range(1 << 10, 1 << 16);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_dynamic_update,
                               avglocal::core::experiment_parallel_makespan});
}
