// E1 + E2: the recurrence table and the largest-ID measure gap, plus
// substrate timings of the view engine and the analytic radius formula.
#include <benchmark/benchmark.h>

#include "algo/largest_id.hpp"
#include "analysis/recurrence.hpp"
#include "bench_common.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

void BM_LargestIdViewEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    const auto run = local::run_views(g, ids, algo::make_largest_id_view());
    benchmark::DoNotOptimize(run.radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LargestIdViewEngine)->RangeMultiplier(4)->Range(256, 1 << 14);

void BM_AnalyticRadiusFormula(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Xoshiro256 rng(2);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algo::largest_id_radius_sum_on_cycle(ids));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_AnalyticRadiusFormula)->RangeMultiplier(4)->Range(1 << 10, 1 << 18);

void BM_RecurrenceDp(benchmark::State& state) {
  const auto p = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const analysis::Recurrence rec(p);
    benchmark::DoNotOptimize(rec.a(p));
  }
}
BENCHMARK(BM_RecurrenceDp)->RangeMultiplier(4)->Range(1 << 8, 1 << 13);

void BM_WorstCaseConstruction(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const analysis::Recurrence rec(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::worst_case_cycle_ids(rec, n).ids().data());
  }
}
BENCHMARK(BM_WorstCaseConstruction)->RangeMultiplier(4)->Range(1 << 8, 1 << 13);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_recurrence_table,
                               avglocal::core::experiment_largest_id_gap});
}
