// Shared entry-point helper for the bench binaries: print the experiment
// tables (the reproduction's "figures"), then run google-benchmark timings.
#pragma once

#include <benchmark/benchmark.h>

#include <functional>
#include <iostream>
#include <vector>

#include "core/experiments.hpp"

namespace avglocal::bench {

/// Renders the given experiments at full scale, then hands control to
/// google-benchmark. Returns the process exit code.
inline int run(int argc, char** argv,
               const std::vector<std::function<core::ExperimentResult(
                   const core::ExperimentScale&)>>& experiments) {
  const core::ExperimentScale scale;  // full scale
  for (const auto& experiment : experiments) {
    std::cout << core::render(experiment(scale)) << "\n";
  }
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

}  // namespace avglocal::bench
