// E9: substrate validation and throughput - the two engines and the
// full-information adapter agree; how fast is each formulation?
#include <benchmark/benchmark.h>

#include <iostream>

#include "algo/largest_id.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/full_info.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

namespace {

using namespace avglocal;

/// Prints the engine-agreement table (E9's correctness half).
void print_equivalence_table() {
  support::Table table({"n", "seed", "view==message radii", "view==adapter radii",
                        "outputs agree"});
  support::Xoshiro256 seed_rng(123);
  for (const std::size_t n : {6u, 9u, 13u, 17u, 24u}) {
    const std::uint64_t seed = seed_rng.next();
    support::Xoshiro256 rng(seed);
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);

    local::ViewEngineOptions flooding;
    flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
    const auto views = local::run_views(g, ids, algo::make_largest_id_view(), flooding);
    const auto native = local::run_messages(g, ids, algo::make_largest_id_messages());
    const auto adapter = local::run_views_by_messages(g, ids, algo::make_largest_id_view());

    bool radii_native = true, radii_adapter = true, outputs = true;
    for (std::size_t v = 0; v < n; ++v) {
      radii_native &= views.radii[v] == native.radii[v];
      radii_adapter &= views.radii[v] == adapter.radii[v];
      outputs &= views.outputs[v] == native.outputs[v] &&
                 views.outputs[v] == adapter.outputs[v];
    }
    table.add_row({support::Table::cell(n), support::Table::cell(seed % 1000),
                   radii_native ? "yes" : "NO", radii_adapter ? "yes" : "NO",
                   outputs ? "yes" : "NO"});
  }
  std::cout << "# [E9] Engine cross-validation\n\n" << table.to_markdown() << "\n";
}

void BM_ViewEngineInduced(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_views(g, ids, algo::make_largest_id_view()).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ViewEngineInduced)->RangeMultiplier(4)->Range(256, 1 << 14);

void BM_ViewEngineFlooding(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  local::ViewEngineOptions options;
  options.semantics = local::ViewSemantics::kFloodingKnowledge;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_views(g, ids, algo::make_largest_id_view(), options).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ViewEngineFlooding)->RangeMultiplier(4)->Range(256, 1 << 14);

void BM_MessageEngine(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_messages(g, ids, algo::make_largest_id_messages()).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_MessageEngine)->RangeMultiplier(4)->Range(64, 1 << 10);

void BM_FullInfoAdapter(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_views_by_messages(g, ids, algo::make_largest_id_view()).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_FullInfoAdapter)->RangeMultiplier(2)->Range(16, 128);

}  // namespace

int main(int argc, char** argv) {
  print_equivalence_table();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
