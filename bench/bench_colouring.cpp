// E3: 3-colouring at Theta(log* n) under both measures, plus timings of the
// colouring stack in both formulations.
#include <benchmark/benchmark.h>

#include "algo/cole_vishkin.hpp"
#include "algo/local_colouring.hpp"
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

void BM_ColeVishkinView(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(1);
  const auto ids = graph::IdAssignment::random(n, rng);
  for (auto _ : state) {
    const auto run = local::run_views(g, ids, algo::make_cole_vishkin_view(n));
    benchmark::DoNotOptimize(run.outputs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColeVishkinView)->RangeMultiplier(4)->Range(256, 1 << 16);

void BM_ColeVishkinMessages(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(2);
  const auto ids = graph::IdAssignment::random(n, rng);
  local::EngineOptions options;
  options.knowledge = local::Knowledge::kKnowsN;
  for (auto _ : state) {
    const auto run = local::run_messages(g, ids, algo::make_cole_vishkin_messages(), options);
    benchmark::DoNotOptimize(run.outputs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_ColeVishkinMessages)->RangeMultiplier(4)->Range(256, 1 << 13);

void BM_LocalColouringUnknownN(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = graph::make_cycle(n);
  support::Xoshiro256 rng(3);
  const auto ids = graph::IdAssignment::random(n, rng);
  local::EngineOptions options;
  options.max_rounds = 100'000;
  for (auto _ : state) {
    const auto run = local::run_messages(g, ids, algo::make_local_three_colouring(), options);
    benchmark::DoNotOptimize(run.outputs.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
}
BENCHMARK(BM_LocalColouringUnknownN)->RangeMultiplier(4)->Range(256, 1 << 12);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv, {avglocal::core::experiment_colouring_logstar});
}
