// E4 + E5: Linial neighbourhood-graph chromatic numbers and adversarial
// permutations, plus timings of the lower-bound machinery.
#include <benchmark/benchmark.h>

#include "algo/largest_id.hpp"
#include "analysis/adversary.hpp"
#include "analysis/chromatic.hpp"
#include "analysis/neighbourhood_graph.hpp"
#include "bench_common.hpp"

namespace {

using namespace avglocal;

void BM_BuildNeighbourhoodGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    const auto g = analysis::build_neighbourhood_graph(n, 1);
    benchmark::DoNotOptimize(g.edge_count());
  }
}
BENCHMARK(BM_BuildNeighbourhoodGraph)->DenseRange(5, 10, 1);

void BM_ChromaticNumberB1(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto g = analysis::build_neighbourhood_graph(n, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::chromatic_number(g, 50'000'000));
  }
}
BENCHMARK(BM_ChromaticNumberB1)->DenseRange(5, 8, 1);

void BM_SliceAdversary(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  analysis::SliceAdversaryOptions options;
  options.seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        analysis::build_slice_adversary(n, algo::make_largest_id_view(), options)
            .ids()
            .data());
  }
}
BENCHMARK(BM_SliceAdversary)->RangeMultiplier(2)->Range(64, 512);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_neighbourhood_chi,
                               avglocal::core::experiment_adversaries});
}
