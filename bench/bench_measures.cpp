// E6: exact small-n validation (exhaustive search, pointwise minimality,
// universe-aware ablation), plus timings of the exhaustive machinery.
#include <benchmark/benchmark.h>

#include "analysis/exhaustive.hpp"
#include "bench_common.hpp"

namespace {

using namespace avglocal;

void BM_ExhaustiveWorstCase(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::exhaustive_worst_largest_id_cycle(n).max_sum);
  }
}
BENCHMARK(BM_ExhaustiveWorstCase)->DenseRange(5, 9, 1);

void BM_MinimalityCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(analysis::count_pointwise_minimality_violations(n));
  }
}
BENCHMARK(BM_MinimalityCheck)->DenseRange(4, 6, 1);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_exact_small_n,
                               avglocal::core::experiment_expected_complexity});
}
