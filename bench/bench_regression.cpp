// Performance-regression gate for the simulation core. Plain binary (no
// google-benchmark dependency) so it builds and runs everywhere CI does.
//
// Measures, and writes to BENCH_core.json:
//  * view-sweep throughput (trials/sec) on the n=10'000 ring largest-id
//    sweep: the frozen pre-flat-memory serial path (replicated below),
//    today's serial path, and today's pooled path - plus the speedup
//    ratios future PRs must defend;
//  * message-engine throughput (rounds/sec) and per-round heap traffic
//    after warm-up, via the allocation-counting hook (expected: zero);
//  * message-sweep throughput on the batch path (one engine rebound per
//    assignment, vs a fresh engine per trial) with the same per-round
//    zero-allocation gate, plus run_message_sweep trials/sec on the
//    largest-id-msg scenario workload;
//  * parallel message sweeps through the SweepDriver (one engine per pool
//    worker lane over disjoint trial ranges) vs the serial path, with a
//    bit-identity check and a >= 1.5x speedup gate in full runs;
//  * the SIMD batch kernels against their scalar references
//    (lockstep_gather_speedup, gated >= 1.5 on vector hosts) and the
//    memcpy/bitmask-scan message arena against a frozen per-word replica
//    (message_arena_word_speedup, gated >= 1.2), bit-identity asserted on
//    every run;
//  * the min_radius layer-jump vs the stepwise batched engine on the
//    cole-vishkin schedule, with a bit-identity check;
//  * a per-phase breakdown of the serial batched sweep (transpose build,
//    BFS growth, id gather, algorithm eval) and a machine/ISA block so
//    future regressions are attributable.
//
// Usage: bench_regression [--smoke] [--out PATH] [--n N] [--trials T]
#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <numeric>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "algo/cole_vishkin.hpp"
#include "algo/largest_id.hpp"
#include "core/batched_sweep.hpp"
#include "core/message_sweep.hpp"
#include "core/remote_backend.hpp"
#include "core/result_cache.hpp"
#include "core/scenario.hpp"
#include "core/sweep_driver.hpp"
#include "graph/builder.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/flood_probe.hpp"
#include "local/view.hpp"
#include "local/view_engine.hpp"
#include "support/aligned.hpp"
#include "support/alloc_hook.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/simd.hpp"
#include "support/thread_pool.hpp"

AVGLOCAL_DEFINE_ALLOC_HOOK();

namespace {

using namespace avglocal;
using local::AllocSampler;
using local::FloodRelay;
using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point start) {
  return std::chrono::duration<double>(Clock::now() - start).count();
}

// ------------------------------------------------------------------------
// Frozen replica of the pre-flat-memory serial view sweep (the "legacy"
// baseline the >=3x acceptance ratio is measured against). Deliberately
// kept faithful to the old code's allocation behaviour: jagged
// vector<vector> port rows, O(degree) port_to scans on both edge
// endpoints, and fresh per-vertex view/frontier buffers. Do not modernise.
// ------------------------------------------------------------------------
namespace legacy {

/// The pre-flat-memory O(degree) reverse-port scan, kept here after the
/// library dropped Graph::port_to (mirror_port is precomputed everywhere):
/// the legacy baseline must keep its original cost profile.
std::size_t port_to(const graph::Graph& g, graph::Vertex v, graph::Vertex u) {
  const auto nbrs = g.neighbours(v);
  for (std::size_t port = 0; port < nbrs.size(); ++port) {
    if (nbrs[port] == u) return port;
  }
  return nbrs.size();
}

struct View {
  int radius = 0;
  std::vector<std::uint64_t> ids;
  std::vector<int> dist;
  std::vector<std::vector<local::LocalVertex>> ports;
  bool covers_graph = false;
};

class Grower {
 public:
  Grower(const graph::Graph& g, const graph::IdAssignment& ids, graph::Vertex root,
         std::vector<local::LocalVertex>& local_of)
      : g_(&g), ids_(&ids), local_of_(&local_of) {
    add_vertex(root, 0);
    frontier_.push_back(root);
    view_.covers_graph = (unresolved_ports_ == 0);
  }

  ~Grower() {
    for (graph::Vertex v : global_of_) (*local_of_)[v] = local::kUnknownTarget;
  }

  const View& view() const noexcept { return view_; }

  void grow() {
    ++view_.radius;
    if (view_.covers_graph) return;
    std::vector<graph::Vertex> next_frontier;
    for (graph::Vertex a : frontier_) {
      for (graph::Vertex b : g_->neighbours(a)) {
        if ((*local_of_)[b] == local::kUnknownTarget) {
          add_vertex(b, view_.radius);
          next_frontier.push_back(b);
          for (graph::Vertex c : g_->neighbours(b)) {
            if ((*local_of_)[c] != local::kUnknownTarget) resolve_edge(b, c);
          }
        }
      }
    }
    frontier_ = std::move(next_frontier);
    view_.covers_graph = (unresolved_ports_ == 0);
  }

 private:
  void add_vertex(graph::Vertex v, int dist) {
    (*local_of_)[v] = static_cast<local::LocalVertex>(view_.ids.size());
    global_of_.push_back(v);
    view_.ids.push_back(ids_->id_of(v));
    view_.dist.push_back(dist);
    view_.ports.emplace_back(g_->degree(v), local::kUnknownTarget);
    unresolved_ports_ += g_->degree(v);
  }

  void resolve_edge(graph::Vertex a, graph::Vertex b) {
    const local::LocalVertex la = (*local_of_)[a];
    const local::LocalVertex lb = (*local_of_)[b];
    const std::size_t pa = port_to(*g_, a, b);  // O(degree) scan, as before
    const std::size_t pb = port_to(*g_, b, a);
    if (view_.ports[la][pa] == local::kUnknownTarget) {
      view_.ports[la][pa] = lb;
      --unresolved_ports_;
    }
    if (view_.ports[lb][pb] == local::kUnknownTarget) {
      view_.ports[lb][pb] = la;
      --unresolved_ports_;
    }
  }

  const graph::Graph* g_;
  const graph::IdAssignment* ids_;
  std::vector<local::LocalVertex>* local_of_;
  View view_;
  std::vector<graph::Vertex> global_of_;
  std::vector<graph::Vertex> frontier_;
  std::size_t unresolved_ports_ = 0;
};

/// The old serial run_views, specialised to the largest-id stopping rule.
local::RunResult run_views_largest_id(const graph::Graph& g, const graph::IdAssignment& ids) {
  local::RunResult result;
  const std::size_t n = g.vertex_count();
  result.outputs.resize(n);
  result.radii.resize(n);
  std::vector<local::LocalVertex> local_of(n, local::kUnknownTarget);
  for (graph::Vertex v = 0; v < n; ++v) {
    Grower grower(g, ids, v, local_of);
    std::size_t scanned = 0;
    while (true) {
      const View& view = grower.view();
      std::int64_t output = -1;
      for (; scanned < view.ids.size(); ++scanned) {
        if (view.ids[scanned] > view.ids[0]) {
          output = algo::kNo;
          break;
        }
      }
      if (output < 0 && view.covers_graph) output = algo::kYes;
      if (output >= 0) {
        result.outputs[v] = output;
        result.radii[v] = static_cast<std::size_t>(view.radius);
        break;
      }
      grower.grow();
    }
  }
  return result;
}

}  // namespace legacy

// ------------------------------------------------------------------------
// View-sweep benchmark: trials/sec over random id permutations of the ring.
// ------------------------------------------------------------------------

struct SweepThroughput {
  double legacy_trials_per_sec = 0;
  double serial_trials_per_sec = 0;
  double pooled_trials_per_sec = 0;
  double batched_trials_per_sec = 0;
  std::size_t pool_workers = 1;
};

bool same_run(const local::RunResult& a, const local::RunResult& b) {
  return a.outputs == b.outputs && a.radii == b.radii;
}

SweepThroughput bench_view_sweep(std::size_t n, std::size_t trials, std::uint64_t seed) {
  const auto g = graph::make_cycle(n);
  const auto factory = algo::make_largest_id_view();
  SweepThroughput out;

  // Identifier permutations are generated up front so the timed regions
  // measure only the engine paths: shared setup cost inside the loops would
  // pull every ratio toward 1 and let regressions hide in the constant term.
  std::vector<graph::IdAssignment> assignments;
  assignments.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(seed, t));
    assignments.emplace_back(graph::IdAssignment::random(n, rng));
  }

  {
    const auto start = Clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const auto run = legacy::run_views_largest_id(g, assignments[t]);
      if (run.radii.empty()) std::abort();
    }
    out.legacy_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
  }
  {
    const auto start = Clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const auto run = local::run_views(g, assignments[t], factory);
      if (run.radii.empty()) std::abort();
    }
    out.serial_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
  }
  {
    support::ThreadPool pool;  // hardware concurrency
    out.pool_workers = pool.size();
    local::ViewEngineOptions options;
    options.pool = &pool;
    const auto start = Clock::now();
    for (std::size_t t = 0; t < trials; ++t) {
      const auto run = local::run_views(g, assignments[t], factory, options);
      if (run.radii.empty()) std::abort();
    }
    out.pooled_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
  }
  {
    // The batched engine over the same assignments, serial like the
    // per-trial baseline it is compared against: the speedup is pure
    // geometry-replay amortisation, not parallelism.
    local::ViewEngineOptions options;
    std::uint64_t radius_sum = 0;
    const auto start = Clock::now();
    local::run_views_batched(g, assignments, factory, options,
                             [&](std::size_t, std::size_t, graph::Vertex, std::int64_t,
                                 std::size_t radius) { radius_sum += radius; });
    out.batched_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
    if (radius_sum == 0) std::abort();
  }

  // All four paths must agree bit-for-bit - a perf gate that drifts from
  // the semantics would defend the wrong thing.
  {
    const auto& ids = assignments[0];
    const auto a = legacy::run_views_largest_id(g, ids);
    const auto b = local::run_views(g, ids, factory);
    support::ThreadPool pool;
    local::ViewEngineOptions options;
    options.pool = &pool;
    const auto c = local::run_views(g, ids, factory, options);
    local::RunResult d;
    d.outputs.resize(n);
    d.radii.resize(n);
    local::run_views_batched(g, std::span(&ids, 1), factory, local::ViewEngineOptions{},
                             [&](std::size_t, std::size_t, graph::Vertex v, std::int64_t output,
                                 std::size_t radius) {
                               d.outputs[v] = output;
                               d.radii[v] = radius;
                             });
    if (!same_run(a, b) || !same_run(b, c) || !same_run(b, d)) {
      std::cerr << "bench_regression: view paths disagree\n";
      std::exit(2);
    }
  }
  return out;
}

// ------------------------------------------------------------------------
// Scenario-layer dispatch overhead: the same sweep once through
// run_batched_sweep directly and once through the scenario registries
// (resolve + run_scenario). The registry is consulted per point, never per
// trial or per vertex, so the two must stay within noise of each other;
// full runs gate the overhead at 2% so the declarative layer can never
// silently tax the hot path.
// ------------------------------------------------------------------------

struct DispatchOverhead {
  double direct_trials_per_sec = 0;
  double scenario_trials_per_sec = 0;
  double overhead_pct = 0;
};

DispatchOverhead bench_scenario_dispatch(std::size_t n, std::size_t trials, std::uint64_t seed,
                                         std::size_t repetitions) {
  DispatchOverhead out;
  // Interleaved best-of-N: a 2% gate is far inside single-shot wall-clock
  // noise, so each leg keeps its fastest repetition, and alternating the
  // legs stops cache warm-up or a scheduler hiccup from biasing one side.
  for (std::size_t rep = 0; rep < repetitions; ++rep) {
    {
      const auto graphs = [](std::size_t m) { return graph::make_cycle(m); };
      core::BatchedSweepOptions options;
      options.trials = trials;
      options.seed = seed;
      options.threads = 1;
      const auto start = Clock::now();
      const auto points =
          core::run_batched_sweep({n}, graphs, algo::make_largest_id_view(), options);
      out.direct_trials_per_sec = std::max(out.direct_trials_per_sec,
                                           static_cast<double>(trials) / seconds_since(start));
      if (points.empty()) std::abort();
    }
    {
      core::ScenarioSpec spec;
      spec.family = {"cycle", {}};
      spec.algorithm = "largest-id";
      spec.ns = {n};
      spec.seed = seed;
      spec.schedule.max_trials = trials;
      core::ScenarioExecution execution;
      execution.threads = 1;
      const auto start = Clock::now();
      const auto result = core::run_scenario(spec, execution);
      out.scenario_trials_per_sec = std::max(out.scenario_trials_per_sec,
                                             static_cast<double>(trials) / seconds_since(start));
      if (result.points.empty()) std::abort();
    }
  }
  out.overhead_pct = (out.direct_trials_per_sec / out.scenario_trials_per_sec - 1.0) * 100.0;
  return out;
}

// ------------------------------------------------------------------------
// Message-engine benchmark: rounds/sec + per-round heap traffic.
// ------------------------------------------------------------------------

struct EngineThroughput {
  double rounds_per_sec = 0;
  double messages_per_sec = 0;
  std::uint64_t allocs_per_round_after_warmup = 0;
  std::uint64_t bytes_per_round_after_warmup = 0;
};

EngineThroughput bench_message_engine(std::size_t n, std::size_t rounds) {
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  const auto factory = [rounds] { return std::make_unique<FloodRelay>(rounds); };

  EngineThroughput out;
  {
    const auto start = Clock::now();
    const auto run = local::run_messages(g, ids, factory);
    const double secs = seconds_since(start);
    out.rounds_per_sec = static_cast<double>(run.rounds) / secs;
    out.messages_per_sec = static_cast<double>(run.messages) / secs;
  }
  {
    AllocSampler sampler(rounds);
    local::EngineOptions options;
    options.trace = &sampler;
    local::run_messages(g, ids, factory, options);
    // Rounds 0-2 may grow arena/inbox capacity; everything after must be
    // allocation-free.
    const auto worst = sampler.worst_after(3);
    out.allocs_per_round_after_warmup = worst.allocations;
    out.bytes_per_round_after_warmup = worst.bytes;
  }
  return out;
}

// ------------------------------------------------------------------------
// Message-sweep benchmark: the run_message_sweep path (one engine per
// point, rebound per assignment) vs a fresh engine per trial, plus the
// per-round allocation gate on the batch path.
// ------------------------------------------------------------------------

struct MessageSweepThroughput {
  double sweep_rounds_per_sec = 0;      ///< batch path (run_messages_batch)
  double per_trial_rounds_per_sec = 0;  ///< fresh engine per run_messages call
  double batch_reuse_speedup = 0;
  double sweep_trials_per_sec = 0;      ///< run_message_sweep, largest-id-msg
  std::uint64_t allocs_per_round_after_warmup = 0;
  std::uint64_t bytes_per_round_after_warmup = 0;
};

MessageSweepThroughput bench_message_sweep(std::size_t n, std::size_t rounds,
                                           std::size_t trials) {
  const auto g = graph::make_cycle(n);
  const auto factory = [rounds] { return std::make_unique<FloodRelay>(rounds); };

  std::vector<graph::IdAssignment> batch;
  batch.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(99, t));
    batch.emplace_back(graph::IdAssignment::random(n, rng));
  }

  MessageSweepThroughput out;
  {
    const auto start = Clock::now();
    std::uint64_t radius_sum = 0;
    local::run_messages_batch(g, batch, factory, {},
                              [&](std::size_t, graph::Vertex, std::int64_t,
                                  std::size_t radius) { radius_sum += radius; });
    out.sweep_rounds_per_sec =
        static_cast<double>(trials * rounds) / seconds_since(start);
    if (radius_sum == 0) std::abort();
  }
  {
    const auto start = Clock::now();
    for (const auto& ids : batch) {
      const auto run = local::run_messages(g, ids, factory);
      if (run.rounds != rounds) std::abort();
    }
    out.per_trial_rounds_per_sec =
        static_cast<double>(trials * rounds) / seconds_since(start);
  }
  out.batch_reuse_speedup = out.sweep_rounds_per_sec / out.per_trial_rounds_per_sec;
  {
    // The zero-allocation claim on the sweep path. Trial boundaries may
    // allocate (per-run result buffers, non-resettable algorithms); the
    // claim is about the round loop, so deltas are inspected within each
    // trial's sample group, past the global warm-up.
    AllocSampler sampler(trials * (rounds + 1));
    local::EngineOptions options;
    options.trace = &sampler;
    local::run_messages_batch(g, batch, factory, options,
                              [](std::size_t, graph::Vertex, std::int64_t, std::size_t) {});
    const auto& samples = sampler.samples();
    const std::size_t per_trial = rounds + 1;  // rounds 0..rounds
    for (std::size_t trial = 0; trial < trials; ++trial) {
      const std::size_t begin = trial * per_trial + (trial == 0 ? 3 : 1);
      const std::size_t end = (trial + 1) * per_trial;
      for (std::size_t i = begin; i + 1 < end && i + 1 < samples.size(); ++i) {
        out.allocs_per_round_after_warmup = std::max(
            out.allocs_per_round_after_warmup, samples[i + 1].allocations - samples[i].allocations);
        out.bytes_per_round_after_warmup =
            std::max(out.bytes_per_round_after_warmup, samples[i + 1].bytes - samples[i].bytes);
      }
    }
  }
  {
    // The full sweep stack on a real message workload: accumulators, edge
    // measures and histograms included. Token flooding moves O(n^2) words
    // per run, so this leg uses a smaller ring than the relay benches.
    const std::size_t sweep_n = std::min<std::size_t>(n, 512);
    core::BatchedSweepOptions options;
    options.trials = std::max<std::size_t>(2, trials / 2);
    options.seed = 7;
    // Pinned serial: this metric tracked the serial sweep stack before
    // run_message_sweep learned to pool, and keeping it single-threaded
    // preserves cross-run comparability; the parallel leg below measures
    // the pooled path explicitly.
    options.threads = 1;
    const auto start = Clock::now();
    const auto points = core::run_message_sweep(
        {sweep_n}, [](std::size_t m) { return graph::make_cycle(m); },
        [](std::size_t) { return algo::make_largest_id_messages(); },
        core::MessageEngineOptions{}, options);
    out.sweep_trials_per_sec =
        static_cast<double>(options.trials) / seconds_since(start);
    if (points.empty() || points[0].radius.samples == 0) std::abort();
  }
  return out;
}

// ------------------------------------------------------------------------
// Parallel message sweep: the SweepDriver splits a point's trial range into
// contiguous chunks, one arena-backed engine per pool worker lane, and
// appends the exact-integer partials in trial order. The pooled and serial
// accumulators must agree bit for bit (checked here and CI-pinned via cmp
// on CLI reports); the speedup is the feature's reason to exist.
// ------------------------------------------------------------------------

struct MessageParallelThroughput {
  double serial_trials_per_sec = 0;
  double pooled_trials_per_sec = 0;
  double parallel_speedup = 0;
  std::size_t pool_workers = 1;
};

MessageParallelThroughput bench_message_parallel(std::size_t n, std::size_t rounds) {
  const auto g = graph::make_cycle(n);
  const core::MessageBackend backend(
      [rounds](std::size_t) {
        return local::AlgorithmFactory([rounds] { return std::make_unique<FloodRelay>(rounds); });
      },
      core::MessageEngineOptions{});

  support::ThreadPool pool;  // hardware concurrency
  MessageParallelThroughput out;
  out.pool_workers = pool.size();

  // Enough trials to keep every lane busy, bounded so the full run stays
  // minutes-scale on very wide machines.
  const std::size_t trials =
      std::clamp<std::size_t>(4 * pool.size(), 8, 64);
  core::BatchedSweepOptions options;
  options.trials = trials;
  options.seed = 13;

  core::PointAccumulator serial_acc;
  core::PointAccumulator pooled_acc;
  {
    const core::SweepDriver driver(backend, options, nullptr);
    core::SweepDriver::Point point = driver.prepare(g, 0);
    const auto start = Clock::now();
    serial_acc = driver.run_trials(point, 0, trials);
    out.serial_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
  }
  {
    const core::SweepDriver driver(backend, options, &pool);
    core::SweepDriver::Point point = driver.prepare(g, 0);
    const auto start = Clock::now();
    pooled_acc = driver.run_trials(point, 0, trials);
    out.pooled_trials_per_sec = static_cast<double>(trials) / seconds_since(start);
  }
  if (!(serial_acc == pooled_acc)) {
    std::cerr << "bench_regression: pooled message sweep diverged from the serial path\n";
    std::exit(2);
  }
  out.parallel_speedup = out.pooled_trials_per_sec / out.serial_trials_per_sec;
  return out;
}

// ------------------------------------------------------------------------
// SIMD kernel microbenches: the dispatched kernels of support/simd.hpp
// against their always-compiled scalar references, on the exact shapes the
// batched view engine issues. Bit-identity is asserted on every run (the
// kernels move words verbatim; a vector path that drifted from scalar
// would corrupt every sweep). On hosts where active_isa() == "scalar" the
// two legs run the same code and the ratio sits at ~1; the >= 1.5 gate in
// main() therefore only applies on vector hosts.
// ------------------------------------------------------------------------

struct SimdKernelNumbers {
  double gather_vector_elems_per_sec = 0;
  double gather_scalar_elems_per_sec = 0;
  double lockstep_gather_speedup = 0;
};

SimdKernelNumbers bench_lockstep_gather(bool smoke) {
  // Transpose rows of a 256-trial batch with the active list a dense
  // prefix (the dominant regime: every trial in flight), gathered in the
  // two shapes the engine issues - the fused multi-layer jump (hundreds of
  // ball vertices in one call) and the steady two-vertices-per-layer ring
  // step.
  constexpr std::size_t kTrials = 256;
  constexpr std::size_t kStride = kTrials;  // multiple of 8, as the engine pads
  constexpr std::size_t kVertices = 1024;
  constexpr std::size_t kRows = 512;  // ball vertices gathered per rep
  const std::size_t reps = smoke ? 8 : 128;

  support::Xoshiro256 rng(21);
  support::AlignedVector<std::uint64_t> rows(kVertices * kStride);
  for (auto& w : rows) w = rng.next();
  std::vector<std::uint32_t> row_index(kVertices);
  std::iota(row_index.begin(), row_index.end(), 0u);
  support::shuffle(row_index, rng);  // BFS discovery order is not sorted
  row_index.resize(kRows);
  std::vector<std::uint32_t> cols(kTrials);
  std::iota(cols.begin(), cols.end(), 0u);

  std::vector<support::AlignedVector<std::uint64_t>> vec_bufs(kTrials), sca_bufs(kTrials);
  std::vector<std::uint64_t*> vec_heads(kTrials), sca_heads(kTrials);
  for (std::size_t j = 0; j < kTrials; ++j) {
    vec_bufs[j].assign(kRows, 0);
    sca_bufs[j].assign(kRows, 1);
    vec_heads[j] = vec_bufs[j].data();
    sca_heads[j] = sca_bufs[j].data();
  }

  const auto run_shapes = [&](std::uint64_t* const* heads, const auto& kernel) {
    // One fused jump-sized call, then the per-layer ring cadence over the
    // same rows: equal element counts through both call shapes.
    kernel(rows.data(), kStride, row_index.data(), kRows, cols.data(), kTrials, heads, 0);
    for (std::size_t i = 0; i + 2 <= kRows; i += 2) {
      kernel(rows.data(), kStride, row_index.data() + i, 2, cols.data(), kTrials, heads, i);
    }
  };
  const double elems_per_rep = 2.0 * static_cast<double>(kRows) * static_cast<double>(kTrials);

  SimdKernelNumbers out;
  {
    const auto start = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      run_shapes(vec_heads.data(),
                 [](auto&&... args) { support::simd::layer_gather(args...); });
    }
    out.gather_vector_elems_per_sec =
        static_cast<double>(reps) * elems_per_rep / seconds_since(start);
  }
  {
    const auto start = Clock::now();
    for (std::size_t rep = 0; rep < reps; ++rep) {
      run_shapes(sca_heads.data(),
                 [](auto&&... args) { support::simd::scalar::layer_gather(args...); });
    }
    out.gather_scalar_elems_per_sec =
        static_cast<double>(reps) * elems_per_rep / seconds_since(start);
  }
  for (std::size_t j = 0; j < kTrials; ++j) {
    if (std::memcmp(vec_bufs[j].data(), sca_bufs[j].data(),
                    kRows * sizeof(std::uint64_t)) != 0) {
      std::cerr << "bench_regression: SIMD layer gather diverged from scalar reference\n";
      std::exit(2);
    }
  }
  out.lockstep_gather_speedup =
      out.gather_vector_elems_per_sec / out.gather_scalar_elems_per_sec;
  return out;
}

// ------------------------------------------------------------------------
// Message-arena word paths: the library arena (memcpy push, ctz bitmask
// drain) against a frozen replica of the pre-SIMD code (per-word copy
// loops, per-arc presence tests). Deliberately kept faithful to the old
// cost profile - do not modernise.
// ------------------------------------------------------------------------

namespace scalar_arena {

struct Arena {
  struct Slot {
    std::size_t offset = 0;
    std::uint32_t length = 0;
  };
  std::vector<std::uint64_t> words_;
  std::vector<Slot> slots_;
  std::vector<std::uint64_t> present_;
  std::size_t used_words_ = 0;

  void attach(std::size_t arc_count) {
    slots_.assign(arc_count, Slot{});
    present_.assign((arc_count + 63) / 64, 0);
    used_words_ = 0;
  }
  void begin_round() {
    std::fill(present_.begin(), present_.end(), 0);
    used_words_ = 0;
  }
  bool push(std::size_t arc, std::span<const std::uint64_t> words) {
    const std::uint64_t bit = std::uint64_t{1} << (arc & 63);
    std::uint64_t& mask = present_[arc >> 6];
    if (mask & bit) return false;
    mask |= bit;
    const std::size_t needed = used_words_ + words.size();
    if (needed > words_.size()) words_.resize(std::max(needed, words_.size() * 2));
    for (std::size_t k = 0; k < words.size(); ++k) {  // per-word copy, as before
      words_[used_words_ + k] = words[k];
    }
    slots_[arc] = Slot{used_words_, static_cast<std::uint32_t>(words.size())};
    used_words_ = needed;
    return true;
  }
  bool has(std::size_t arc) const {
    return (present_[arc >> 6] >> (arc & 63)) & 1u;
  }
  std::span<const std::uint64_t> payload(std::size_t arc) const {
    const Slot& slot = slots_[arc];
    return {words_.data() + slot.offset, slot.length};
  }
};

}  // namespace scalar_arena

struct ArenaWordNumbers {
  double arena_rounds_per_sec = 0;
  double replica_rounds_per_sec = 0;
  double message_arena_word_speedup = 0;
};

ArenaWordNumbers bench_arena_words(bool smoke) {
  // A round at realistic shape: 2^15 arcs, ~1/16 of them carrying a
  // 16-word payload at random positions (random presence defeats the
  // branch predictor on the per-arc replica scan exactly as thinned-out
  // algorithm traffic does), pushed then drained with a checksum.
  constexpr std::size_t kArcs = std::size_t{1} << 15;
  constexpr std::size_t kPayloadWords = 16;
  const std::size_t rounds = smoke ? 40 : 600;

  support::Xoshiro256 rng(22);
  std::vector<std::size_t> send_arcs;
  for (std::size_t arc = 0; arc < kArcs; ++arc) {
    if (rng.below(16) == 0) send_arcs.push_back(arc);
  }
  std::vector<std::uint64_t> pool(kPayloadWords * 64);
  for (auto& w : pool) w = rng.next();
  const auto payload_of = [&](std::size_t arc) {
    return std::span<const std::uint64_t>(
        pool.data() + (arc % 64) * kPayloadWords, kPayloadWords);
  };

  ArenaWordNumbers out;
  std::uint64_t arena_checksum = 0;
  std::uint64_t replica_checksum = 0;
  {
    local::MessageArena arena;
    arena.attach(kArcs);
    const auto start = Clock::now();
    for (std::size_t round = 0; round < rounds; ++round) {
      arena.begin_round();
      for (const std::size_t arc : send_arcs) {
        if (!arena.push(arc, payload_of(arc))) std::abort();
      }
      arena.for_each_present(0, kArcs, [&](std::size_t arc) {
        for (const std::uint64_t w : arena.payload(arc)) arena_checksum += w;
      });
      arena_checksum += arena.message_count();
    }
    out.arena_rounds_per_sec = static_cast<double>(rounds) / seconds_since(start);
  }
  {
    scalar_arena::Arena arena;
    arena.attach(kArcs);
    std::size_t messages = 0;
    const auto start = Clock::now();
    for (std::size_t round = 0; round < rounds; ++round) {
      arena.begin_round();
      messages = 0;
      for (const std::size_t arc : send_arcs) {
        if (!arena.push(arc, payload_of(arc))) std::abort();
        ++messages;
      }
      for (std::size_t arc = 0; arc < kArcs; ++arc) {  // per-arc test, as before
        if (!arena.has(arc)) continue;
        for (const std::uint64_t w : arena.payload(arc)) replica_checksum += w;
      }
      replica_checksum += messages;
    }
    out.replica_rounds_per_sec = static_cast<double>(rounds) / seconds_since(start);
  }
  if (arena_checksum != replica_checksum) {
    std::cerr << "bench_regression: message arena word paths diverged from scalar replica\n";
    std::exit(2);
  }
  out.message_arena_word_speedup = out.arena_rounds_per_sec / out.replica_rounds_per_sec;
  return out;
}

// ------------------------------------------------------------------------
// min_radius layer-jump: the batched engine on the cole-vishkin schedule
// (every vertex waits for a fixed target radius) with the jump on vs off.
// Outputs and radii must agree bit for bit - the jump only skips evaluate
// passes the min_radius contract already guarantees are no-ops.
// ------------------------------------------------------------------------

struct LayerJumpNumbers {
  double jump_trials_per_sec = 0;
  double stepwise_trials_per_sec = 0;
  double layer_jump_speedup = 0;
};

LayerJumpNumbers bench_layer_jump(std::size_t n, std::size_t trials, std::uint64_t seed) {
  const auto g = graph::make_cycle(n);
  const auto factory = algo::make_cole_vishkin_view(n);

  std::vector<graph::IdAssignment> assignments;
  assignments.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(seed, t));
    assignments.emplace_back(graph::IdAssignment::random(n, rng));
  }

  std::vector<std::int64_t> jump_outputs(trials * n), step_outputs(trials * n);
  std::vector<std::uint32_t> jump_radii(trials * n), step_radii(trials * n);
  const auto run_leg = [&](bool jump, std::vector<std::int64_t>& outputs,
                           std::vector<std::uint32_t>& radii) {
    local::ViewEngineOptions options;
    options.layer_jump = jump;
    const auto start = Clock::now();
    local::run_views_batched(g, assignments, factory, options,
                             [&](std::size_t, std::size_t trial, graph::Vertex v,
                                 std::int64_t output, std::size_t radius) {
                               outputs[trial * n + v] = output;
                               radii[trial * n + v] = static_cast<std::uint32_t>(radius);
                             });
    return static_cast<double>(trials) / seconds_since(start);
  };

  LayerJumpNumbers out;
  out.jump_trials_per_sec = run_leg(true, jump_outputs, jump_radii);
  out.stepwise_trials_per_sec = run_leg(false, step_outputs, step_radii);
  if (jump_outputs != step_outputs || jump_radii != step_radii) {
    std::cerr << "bench_regression: layer-jump path diverged from the stepwise engine\n";
    std::exit(2);
  }
  out.layer_jump_speedup = out.jump_trials_per_sec / out.stepwise_trials_per_sec;
  return out;
}

// ------------------------------------------------------------------------
// Per-phase breakdown of the serial batched view sweep, so a future
// throughput regression names its phase instead of hiding in one number.
// cv3 rather than largest-id: largest-id declares ids_only_view() and
// streams assignments without a transpose, which would leave the transpose
// and lockstep-gather phases permanently at zero here.
// ------------------------------------------------------------------------

local::BatchPhaseStats bench_phase_breakdown(std::size_t n, std::size_t trials,
                                             std::uint64_t seed) {
  const auto g = graph::make_cycle(n);
  const auto factory = algo::make_cole_vishkin_view(n);
  std::vector<graph::IdAssignment> assignments;
  assignments.reserve(trials);
  for (std::size_t t = 0; t < trials; ++t) {
    support::Xoshiro256 rng(support::derive_seed(seed, t));
    assignments.emplace_back(graph::IdAssignment::random(n, rng));
  }
  local::BatchPhaseStats stats;
  local::ViewEngineOptions options;
  options.phase_stats = &stats;
  std::uint64_t radius_sum = 0;
  local::run_views_batched(g, assignments, factory, options,
                           [&](std::size_t, std::size_t, graph::Vertex, std::int64_t,
                               std::size_t radius) { radius_sum += radius; });
  if (radius_sum == 0) std::abort();
  return stats;
}

// ------------------------------------------------------------------------
// Million-node sweeps: the large_scale block. Everything the compact-CSR /
// epoch-stamp / memory-budget work is allowed to claim, measured at the
// n = 10^6 ring (scaled down in smoke runs, same code paths):
//  * bytes_per_arc of the compact vs the wide (64-bit-offset) CSR layout,
//    plus a shuffled traversal checksum bit-compared across the layouts;
//  * the budgeted sweep: compact CSR + layer jump under a declared
//    memory_budget_bytes, bit-compared against the 64-bit stepwise
//    reference (wide offsets, layer_jump off, unlimited batch) - the
//    every-run identity gate of the whole large-n stack - with the peak-RSS
//    delta of the budgeted leg asserted inside the budget;
//  * compact_csr_speedup: the dispatched u32 edge-times kernel (two 8-lane
//    gathers + max, the driver's per-edge hot path) against a frozen
//    per-edge 64-bit replica of the pre-compact code, bit-identity every
//    run, >= 1.2 gated on full runs on vector hosts;
//  * ring rounds/sec of the message engine at the same n.
// ------------------------------------------------------------------------

namespace wide_replica {

/// The pre-compact per-edge accumulation: 64-bit radius loads, one edge at
/// a time. Deliberately kept faithful to the old cost profile (8-byte
/// elements, no SoA, no vector lanes) - do not modernise.
void edge_times_u64(std::uint64_t* dst, const std::uint64_t* radii, const std::uint32_t* us,
                    const std::uint32_t* vs, std::size_t count) {
  for (std::size_t e = 0; e < count; ++e) {
    const std::uint64_t a = radii[us[e]];
    const std::uint64_t b = radii[vs[e]];
    dst[e] = a > b ? a : b;
  }
}

}  // namespace wide_replica

/// Resident-memory high-water mark (VmHWM) in bytes; 0 when unavailable.
std::size_t vm_hwm_bytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return static_cast<std::size_t>(std::strtoull(line.c_str() + 6, nullptr, 10)) * 1024;
    }
  }
  return 0;
}

/// Replays g's arcs in port order at the forced offset width (the same
/// rebuild the parity suite uses, so bench and tests compare identical
/// wide twins).
graph::Graph rebuild_with_width(const graph::Graph& g, graph::GraphBuilder::OffsetWidth width) {
  graph::GraphBuilder b(g.vertex_count());
  b.reserve_arcs(2 * g.edge_count());
  for (graph::Vertex u = 0; u < g.vertex_count(); ++u) {
    for (std::size_t p = 0; p < g.degree(u); ++p) b.add_arc(u, g.neighbour(u, p));
  }
  return b.build(width);
}

struct LargeScaleNumbers {
  std::size_t n = 0;
  std::size_t trials = 0;
  double bytes_per_arc_compact = 0;
  double bytes_per_arc_wide = 0;
  double budgeted_trials_per_sec = 0;       ///< compact + jump + budget
  double wide_stepwise_trials_per_sec = 0;  ///< the 64-bit reference leg
  std::size_t memory_budget_bytes = 0;
  std::size_t budget_peak_delta_bytes = 0;  ///< VmHWM delta of the budgeted leg
  double edge_times_u32_elems_per_sec = 0;
  double edge_times_u64_elems_per_sec = 0;
  double compact_csr_speedup = 0;
  double ring_rounds_per_sec = 0;
  std::size_t peak_rss_bytes = 0;
};

LargeScaleNumbers bench_large_scale(bool smoke) {
  LargeScaleNumbers out;
  out.n = smoke ? 65'536 : 1'000'000;
  out.trials = smoke ? 3 : 8;

  const auto compact = graph::make_cycle(out.n);
  const auto wide = rebuild_with_width(compact, graph::GraphBuilder::OffsetWidth::kWide);
  if (!compact.compact_offsets() || wide.compact_offsets()) std::abort();
  out.bytes_per_arc_compact =
      static_cast<double>(compact.memory_bytes()) / static_cast<double>(compact.arc_count());
  out.bytes_per_arc_wide =
      static_cast<double>(wide.memory_bytes()) / static_cast<double>(wide.arc_count());

  // Shuffled traversal checksum over both layouts: the accessor seam the
  // offset width hides behind, bit-compared on every run (smoke included).
  {
    std::vector<graph::Vertex> order(out.n);
    std::iota(order.begin(), order.end(), 0u);
    support::Xoshiro256 rng(31);
    support::shuffle(order, rng);
    const auto checksum = [&](const graph::Graph& g) {
      std::uint64_t sum = 0;
      for (std::size_t i = 0; i < order.size(); ++i) {
        if (i + 8 < order.size()) g.prefetch_offset(order[i + 8]);
        const graph::Vertex v = order[i];
        sum += g.degree(v) + g.mirror_port(v, 0);
        for (const graph::Vertex w : g.neighbours(v)) sum += w;
      }
      return sum;
    };
    if (checksum(compact) != checksum(wide)) {
      std::cerr << "bench_regression: compact CSR traversal diverged from the wide layout\n";
      std::exit(2);
    }
  }

  // The budgeted million-node sweep vs the 64-bit stepwise reference. The
  // budgeted leg runs first so its VmHWM delta is not masked by the
  // unlimited reference's (larger) footprint.
  {
    core::BatchedSweepOptions options;
    options.trials = out.trials;
    options.seed = 7;
    const core::AlgorithmProvider provider = [](std::size_t) {
      return algo::make_largest_id_view();
    };
    const core::ViewBackend fast(provider, options.semantics, /*layer_jump=*/true);
    const core::ViewBackend reference(provider, options.semantics, /*layer_jump=*/false);
    const core::SweepMemoryModel model = fast.memory_model(compact);
    // Declared budget: two resident trials per lane - the driver must batch.
    core::BatchedSweepOptions budgeted = options;
    budgeted.memory_budget_bytes = model.predicted_lane_bytes(2);
    out.memory_budget_bytes = budgeted.memory_budget_bytes;

    const std::size_t hwm_before = vm_hwm_bytes();
    core::PointAccumulator fast_acc;
    {
      const core::SweepDriver driver(fast, budgeted, nullptr);
      core::SweepDriver::Point point = driver.prepare(compact, 0);
      const auto start = Clock::now();
      fast_acc = driver.run_trials(point, 0, options.trials);
      out.budgeted_trials_per_sec =
          static_cast<double>(options.trials) / seconds_since(start);
    }
    out.budget_peak_delta_bytes = vm_hwm_bytes() - hwm_before;

    core::PointAccumulator reference_acc;
    {
      const core::SweepDriver driver(reference, options, nullptr);
      core::SweepDriver::Point point = driver.prepare(wide, 0);
      const auto start = Clock::now();
      reference_acc = driver.run_trials(point, 0, options.trials);
      out.wide_stepwise_trials_per_sec =
          static_cast<double>(options.trials) / seconds_since(start);
    }
    if (!(fast_acc == reference_acc)) {
      std::cerr << "bench_regression: budgeted compact sweep diverged from the 64-bit "
                   "stepwise reference\n";
      std::exit(2);
    }
  }

  // compact_csr_speedup: the per-edge hot path at million-edge scale. The
  // u32 SoA halves the bytes per element, which doubles the gather lanes
  // per vector - the compact layout's whole performance claim, measured
  // where the sweep actually spends it.
  {
    const std::size_t edges = out.n;
    const std::size_t reps = smoke ? 4 : 16;
    support::Xoshiro256 rng(9);
    support::AlignedVector<std::uint32_t> us(edges), vs(edges), radii32(out.n), t32(edges);
    std::vector<std::uint64_t> radii64(out.n), t64(edges);
    for (std::size_t v = 0; v < out.n; ++v) {
      radii32[v] = static_cast<std::uint32_t>(rng.below(64));
      radii64[v] = radii32[v];
    }
    for (std::size_t e = 0; e < edges; ++e) {
      us[e] = static_cast<std::uint32_t>(e);
      vs[e] = static_cast<std::uint32_t>((e + 1) % out.n);
    }
    const double elems = static_cast<double>(reps) * static_cast<double>(edges);
    {
      const auto start = Clock::now();
      for (std::size_t r = 0; r < reps; ++r) {
        support::simd::edge_times_u32(t32.data(), radii32.data(), us.data(), vs.data(), edges);
      }
      out.edge_times_u32_elems_per_sec = elems / seconds_since(start);
    }
    {
      const auto start = Clock::now();
      for (std::size_t r = 0; r < reps; ++r) {
        wide_replica::edge_times_u64(t64.data(), radii64.data(), us.data(), vs.data(), edges);
      }
      out.edge_times_u64_elems_per_sec = elems / seconds_since(start);
    }
    for (std::size_t e = 0; e < edges; ++e) {
      if (t64[e] != t32[e]) {
        std::cerr << "bench_regression: u32 edge times diverged from the 64-bit replica\n";
        std::exit(2);
      }
    }
    out.compact_csr_speedup =
        out.edge_times_u32_elems_per_sec / out.edge_times_u64_elems_per_sec;
  }

  // Message-engine rounds/sec at the same ring (ring_1m in full runs).
  {
    const std::size_t rounds = smoke ? 8 : 32;
    const auto ids = graph::IdAssignment::identity(out.n);
    const auto start = Clock::now();
    const auto run =
        local::run_messages(compact, ids, [rounds] { return std::make_unique<FloodRelay>(rounds); });
    out.ring_rounds_per_sec = static_cast<double>(run.rounds) / seconds_since(start);
  }

  out.peak_rss_bytes = vm_hwm_bytes();
  return out;
}

// ------------------------------------------------------------------------
// Sweep-as-a-service: the serve block. The daemon's performance claim is
// that a warm repeat costs a memo lookup, not a sweep, and that an
// extension costs only the missing trial range. Measured directly on
// core::ResultCache (the daemon minus the socket - the cache IS the serve
// hot path), with byte-identity against the monolithic run_scenario
// asserted on every leg, smoke included:
//  * cold_ms / warm_ms: first-request and repeat-request latency for the
//    same scenario; warm_over_cold_speedup gated >= 5 in full runs;
//  * extension_ms: a 2x-trials request over the cached partial - computes
//    only the tail, still bit-identical to a monolithic double-length run;
//  * warm_requests_per_sec: 4 concurrent clients hammering warm repeats,
//    the daemon's steady-state serving rate.
// ------------------------------------------------------------------------

struct ServeNumbers {
  std::size_t trials = 0;
  double cold_ms = 0;
  double warm_ms = 0;
  double extension_ms = 0;
  double warm_over_cold_speedup = 0;
  double warm_requests_per_sec = 0;
  std::size_t concurrent_clients = 4;
};

ServeNumbers bench_serve(bool smoke) {
  ServeNumbers out;
  out.trials = smoke ? 8 : 96;

  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.ns = smoke ? std::vector<std::size_t>{64, 128} : std::vector<std::size_t>{256, 512};
  spec.seed = 7;
  spec.schedule.max_trials = out.trials;

  const auto monolithic = [](const core::ScenarioSpec& s) {
    const core::ScenarioResult result = core::run_scenario(s);
    return core::sweep_report_json(result.spec, result.points);
  };
  const std::string reference = monolithic(spec);

  core::ResultCache cache;

  // Cold: the first request builds graphs, engines and runs every trial.
  {
    const auto start = Clock::now();
    const core::ResultCacheOutcome cold = cache.sweep(spec);
    out.cold_ms = seconds_since(start) * 1e3;
    if (cold.report != reference) {
      std::cerr << "bench_regression: cold serve report diverged from run_scenario\n";
      std::exit(2);
    }
  }

  // Warm: best-of-N repeats; every one must be a zero-trial memo hit.
  {
    const std::size_t reps = smoke ? 16 : 256;
    double best = 0;
    for (std::size_t rep = 0; rep < reps; ++rep) {
      const auto start = Clock::now();
      const core::ResultCacheOutcome warm = cache.sweep(spec);
      const double elapsed = seconds_since(start) * 1e3;
      if (rep == 0 || elapsed < best) best = elapsed;
      if (!warm.warm || warm.trials_computed != 0 || warm.report != reference) {
        std::cerr << "bench_regression: warm serve repeat was not a pure cache hit\n";
        std::exit(2);
      }
    }
    out.warm_ms = best;
  }
  out.warm_over_cold_speedup = out.warm_ms > 0 ? out.cold_ms / out.warm_ms : 0;

  // Extension: double the trials; only the tail may run, and the merged
  // report must match a monolithic double-length sweep bit for bit.
  {
    core::ScenarioSpec extended = spec;
    extended.schedule.max_trials = out.trials * 2;
    const std::string extended_reference = monolithic(extended);
    const auto start = Clock::now();
    const core::ResultCacheOutcome extension = cache.sweep(extended);
    out.extension_ms = seconds_since(start) * 1e3;
    if (extension.trials_computed != out.trials * spec.ns.size() ||
        extension.report != extended_reference) {
      std::cerr << "bench_regression: serve extension diverged from the monolithic sweep\n";
      std::exit(2);
    }
  }

  // Steady state: 4 concurrent clients issuing warm repeats, the mix a
  // long-lived daemon actually serves. Every reply is identity-checked.
  {
    const std::size_t per_client = smoke ? 32 : 512;
    std::vector<std::thread> clients;
    std::atomic<bool> diverged{false};
    const auto start = Clock::now();
    for (std::size_t c = 0; c < out.concurrent_clients; ++c) {
      clients.emplace_back([&] {
        for (std::size_t rep = 0; rep < per_client; ++rep) {
          const core::ResultCacheOutcome warm = cache.sweep(spec);
          if (warm.trials_computed != 0 || warm.report != reference) {
            diverged.store(true, std::memory_order_relaxed);
            return;
          }
        }
      });
    }
    for (std::thread& client : clients) client.join();
    const double elapsed = seconds_since(start);
    if (diverged.load(std::memory_order_relaxed)) {
      std::cerr << "bench_regression: concurrent warm serve replies diverged\n";
      std::exit(2);
    }
    out.warm_requests_per_sec =
        static_cast<double>(out.concurrent_clients * per_client) / elapsed;
  }

  return out;
}

// ------------------------------------------------------------------------
// The distributed fabric block. Measured over a real loopback TCP socket
// with in-process workers (the exact code path `fabric-worker` runs):
//  * dispatch_overhead_pct: one single-threaded worker through the full
//    protocol vs the serial monolithic sweep - what the hello/grant/
//    artefact round trips cost;
//  * units_per_sec: protocol throughput of the same one-worker run;
//  * fabric_speedup_3w: three single-threaded workers vs the serial
//    monolithic sweep, gated >= 1.8 in full runs on machines with at
//    least 4 cores (coordinator handlers + 3 workers need them).
// Byte-identity against the monolithic report is asserted on every leg,
// smoke included.
// ------------------------------------------------------------------------

struct FabricNumbers {
  std::size_t trials = 0;
  std::size_t units = 0;
  double monolithic_serial_sec = 0;
  double one_worker_sec = 0;
  double three_worker_sec = 0;
  double dispatch_overhead_pct = 0;
  double units_per_sec = 0;
  double fabric_speedup_3w = 0;
};

/// One fabric run with `workers` in-process single-threaded workers over
/// loopback TCP; returns wall seconds and identity-checks the report.
double bench_fabric_run(const core::ScenarioSpec& spec, std::size_t workers,
                        const std::string& reference, std::size_t* units_out) {
  core::FabricOptions options;
  options.endpoint = support::parse_endpoint("tcp:127.0.0.1:0");
  core::RemoteBackend backend(spec, options);
  backend.start();
  const support::Endpoint endpoint = backend.endpoint();

  const auto start = Clock::now();
  std::vector<std::thread> crew;
  for (std::size_t index = 0; index < workers; ++index) {
    crew.emplace_back([endpoint, index] {
      core::FabricWorkerOptions worker;
      worker.endpoint = endpoint;
      worker.name = "bench-w" + std::to_string(index);
      worker.threads = 1;
      core::run_fabric_worker(worker);
    });
  }
  const core::RemoteSweepOutcome outcome = backend.run();
  for (std::thread& member : crew) member.join();
  const double elapsed = seconds_since(start);

  if (!outcome.complete || outcome.report != reference) {
    std::cerr << "bench_regression: fabric report diverged from the monolithic sweep\n";
    std::exit(2);
  }
  if (units_out != nullptr) *units_out = backend.coordinator().work_units().size();
  return elapsed;
}

FabricNumbers bench_fabric(bool smoke) {
  FabricNumbers out;
  out.trials = smoke ? 8 : 240;

  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.ns = smoke ? std::vector<std::size_t>{64, 128} : std::vector<std::size_t>{2048, 4096};
  spec.seed = 17;
  spec.schedule.max_trials = out.trials;

  // The serial reference: one thread, the same workload, and the report
  // bytes every fabric leg must reproduce.
  std::string reference;
  {
    core::ScenarioExecution execution;
    execution.threads = 1;
    const auto start = Clock::now();
    const core::ScenarioResult result = core::run_scenario(spec, execution);
    out.monolithic_serial_sec = seconds_since(start);
    reference = core::sweep_report_json(result.spec, result.points);
  }

  out.one_worker_sec = bench_fabric_run(spec, 1, reference, &out.units);
  out.three_worker_sec = bench_fabric_run(spec, 3, reference, nullptr);

  out.dispatch_overhead_pct = out.monolithic_serial_sec > 0
      ? (out.one_worker_sec / out.monolithic_serial_sec - 1.0) * 100.0
      : 0;
  out.units_per_sec =
      out.one_worker_sec > 0 ? static_cast<double>(out.units) / out.one_worker_sec : 0;
  out.fabric_speedup_3w =
      out.three_worker_sec > 0 ? out.monolithic_serial_sec / out.three_worker_sec : 0;
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out_path = "BENCH_core.json";
  std::size_t n = 10'000;
  // Enough trials per point for the batched engine's regime: the shared
  // ball geometry is grown to the deepest radius any trial needs, and that
  // depth grows only logarithmically with the trial count, so batching
  // amortises better the more assignments ride one graph.
  std::size_t trials = 400;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else if (std::strcmp(argv[i], "--n") == 0 && i + 1 < argc) {
      n = std::strtoull(argv[++i], nullptr, 10);
    } else if (std::strcmp(argv[i], "--trials") == 0 && i + 1 < argc) {
      trials = std::strtoull(argv[++i], nullptr, 10);
    } else {
      std::cerr << "usage: bench_regression [--smoke] [--out PATH] [--n N] [--trials T]\n";
      return 1;
    }
  }
  if (smoke) {
    n = std::min<std::size_t>(n, 2'000);
    trials = std::min<std::size_t>(trials, 6);
  }
  const std::size_t engine_n = smoke ? 256 : 2'048;
  const std::size_t engine_rounds = smoke ? 64 : 256;

  const SweepThroughput sweep = bench_view_sweep(n, trials, /*seed=*/42);
  const DispatchOverhead dispatch =
      bench_scenario_dispatch(n, trials, /*seed=*/42, /*repetitions=*/smoke ? 1 : 3);
  const EngineThroughput engine = bench_message_engine(engine_n, engine_rounds);
  const MessageSweepThroughput message_sweep =
      bench_message_sweep(engine_n, engine_rounds, /*trials=*/smoke ? 4 : 16);
  // Parallel message sweeps on the n=10k ring (the view-sweep workload's
  // size) with a shorter relay: the gate is about scaling across lanes,
  // not per-round throughput.
  const MessageParallelThroughput message_parallel =
      bench_message_parallel(smoke ? engine_n : 10'000, /*rounds=*/smoke ? 16 : 64);
  const SimdKernelNumbers simd_kernels = bench_lockstep_gather(smoke);
  const ArenaWordNumbers arena_words = bench_arena_words(smoke);
  const LayerJumpNumbers layer_jump = bench_layer_jump(n, trials, /*seed=*/42);
  const local::BatchPhaseStats phases = bench_phase_breakdown(n, trials, /*seed=*/42);
  const LargeScaleNumbers large_scale = bench_large_scale(smoke);
  const ServeNumbers serve = bench_serve(smoke);
  const FabricNumbers fabric = bench_fabric(smoke);

  const double serial_ratio = sweep.serial_trials_per_sec / sweep.legacy_trials_per_sec;
  const double pooled_ratio = sweep.pooled_trials_per_sec / sweep.legacy_trials_per_sec;
  const double batched_ratio = sweep.batched_trials_per_sec / sweep.serial_trials_per_sec;

  support::JsonWriter json;
  json.begin_object();
  json.key("bench").value("core");
  json.key("mode").value(smoke ? "smoke" : "full");
  json.key("machine").begin_object();
  json.key("simd_isa").value(support::simd::active_isa());
  json.key("hardware_concurrency")
      .value(static_cast<std::uint64_t>(std::thread::hardware_concurrency()));
  json.end_object();
  json.key("view_sweep").begin_object();
  json.key("topology").value("ring");
  json.key("algorithm").value("largest_id");
  json.key("n").value(static_cast<std::uint64_t>(n));
  json.key("trials").value(static_cast<std::uint64_t>(trials));
  json.key("legacy_trials_per_sec").value(sweep.legacy_trials_per_sec);
  json.key("serial_trials_per_sec").value(sweep.serial_trials_per_sec);
  json.key("pooled_trials_per_sec").value(sweep.pooled_trials_per_sec);
  json.key("batched_trials_per_sec").value(sweep.batched_trials_per_sec);
  json.key("pool_workers").value(static_cast<std::uint64_t>(sweep.pool_workers));
  json.key("serial_speedup_vs_legacy").value(serial_ratio);
  json.key("pooled_speedup_vs_legacy").value(pooled_ratio);
  json.key("batched_sweep_speedup_vs_per_trial").value(batched_ratio);
  json.key("phase_breakdown").begin_object();
  json.key("algorithm").value("cole_vishkin");
  json.key("transpose_sec").value(phases.transpose_sec);
  json.key("grow_sec").value(phases.grow_sec);
  json.key("gather_sec").value(phases.gather_sec);
  json.key("eval_sec").value(phases.eval_sec);
  json.end_object();
  json.end_object();
  json.key("scenario_layer").begin_object();
  json.key("direct_trials_per_sec").value(dispatch.direct_trials_per_sec);
  json.key("scenario_trials_per_sec").value(dispatch.scenario_trials_per_sec);
  json.key("registry_dispatch_overhead_pct").value(dispatch.overhead_pct);
  json.end_object();
  json.key("message_engine").begin_object();
  json.key("topology").value("ring");
  json.key("n").value(static_cast<std::uint64_t>(engine_n));
  json.key("rounds").value(static_cast<std::uint64_t>(engine_rounds));
  json.key("rounds_per_sec").value(engine.rounds_per_sec);
  json.key("messages_per_sec").value(engine.messages_per_sec);
  json.key("allocs_per_round_after_warmup").value(engine.allocs_per_round_after_warmup);
  json.key("bytes_per_round_after_warmup").value(engine.bytes_per_round_after_warmup);
  json.end_object();
  json.key("message_sweep").begin_object();
  json.key("topology").value("ring");
  json.key("n").value(static_cast<std::uint64_t>(engine_n));
  json.key("rounds").value(static_cast<std::uint64_t>(engine_rounds));
  json.key("message_sweep_rounds_per_sec").value(message_sweep.sweep_rounds_per_sec);
  json.key("per_trial_rounds_per_sec").value(message_sweep.per_trial_rounds_per_sec);
  json.key("batch_reuse_speedup").value(message_sweep.batch_reuse_speedup);
  json.key("message_sweep_trials_per_sec").value(message_sweep.sweep_trials_per_sec);
  json.key("allocs_per_round_after_warmup").value(message_sweep.allocs_per_round_after_warmup);
  json.key("bytes_per_round_after_warmup").value(message_sweep.bytes_per_round_after_warmup);
  json.key("parallel_serial_trials_per_sec").value(message_parallel.serial_trials_per_sec);
  json.key("parallel_pooled_trials_per_sec").value(message_parallel.pooled_trials_per_sec);
  json.key("parallel_speedup").value(message_parallel.parallel_speedup);
  json.key("parallel_workers").value(static_cast<std::uint64_t>(message_parallel.pool_workers));
  json.end_object();
  json.key("simd_kernels").begin_object();
  json.key("gather_vector_elems_per_sec").value(simd_kernels.gather_vector_elems_per_sec);
  json.key("gather_scalar_elems_per_sec").value(simd_kernels.gather_scalar_elems_per_sec);
  json.key("lockstep_gather_speedup").value(simd_kernels.lockstep_gather_speedup);
  json.key("arena_rounds_per_sec").value(arena_words.arena_rounds_per_sec);
  json.key("arena_replica_rounds_per_sec").value(arena_words.replica_rounds_per_sec);
  json.key("message_arena_word_speedup").value(arena_words.message_arena_word_speedup);
  json.end_object();
  json.key("layer_jump").begin_object();
  json.key("algorithm").value("cole_vishkin");
  json.key("jump_trials_per_sec").value(layer_jump.jump_trials_per_sec);
  json.key("stepwise_trials_per_sec").value(layer_jump.stepwise_trials_per_sec);
  json.key("layer_jump_speedup").value(layer_jump.layer_jump_speedup);
  json.end_object();
  json.key("large_scale").begin_object();
  json.key("topology").value("ring");
  json.key("n").value(static_cast<std::uint64_t>(large_scale.n));
  json.key("trials").value(static_cast<std::uint64_t>(large_scale.trials));
  json.key("bytes_per_arc_compact").value(large_scale.bytes_per_arc_compact);
  json.key("bytes_per_arc_wide").value(large_scale.bytes_per_arc_wide);
  json.key("budgeted_trials_per_sec").value(large_scale.budgeted_trials_per_sec);
  json.key("wide_stepwise_trials_per_sec").value(large_scale.wide_stepwise_trials_per_sec);
  json.key("memory_budget_bytes")
      .value(static_cast<std::uint64_t>(large_scale.memory_budget_bytes));
  json.key("budget_peak_delta_bytes")
      .value(static_cast<std::uint64_t>(large_scale.budget_peak_delta_bytes));
  json.key("edge_times_u32_elems_per_sec").value(large_scale.edge_times_u32_elems_per_sec);
  json.key("edge_times_u64_elems_per_sec").value(large_scale.edge_times_u64_elems_per_sec);
  json.key("compact_csr_speedup").value(large_scale.compact_csr_speedup);
  json.key("ring_rounds_per_sec").value(large_scale.ring_rounds_per_sec);
  json.key("peak_rss_bytes").value(static_cast<std::uint64_t>(large_scale.peak_rss_bytes));
  json.end_object();
  json.key("serve").begin_object();
  json.key("topology").value("cycle");
  json.key("algorithm").value("largest-id");
  json.key("trials").value(static_cast<std::uint64_t>(serve.trials));
  json.key("cold_ms").value(serve.cold_ms);
  json.key("warm_ms").value(serve.warm_ms);
  json.key("extension_ms").value(serve.extension_ms);
  json.key("warm_over_cold_speedup").value(serve.warm_over_cold_speedup);
  json.key("concurrent_clients").value(static_cast<std::uint64_t>(serve.concurrent_clients));
  json.key("warm_requests_per_sec").value(serve.warm_requests_per_sec);
  json.end_object();
  json.key("fabric").begin_object();
  json.key("topology").value("cycle");
  json.key("algorithm").value("largest-id");
  json.key("trials").value(static_cast<std::uint64_t>(fabric.trials));
  json.key("units").value(static_cast<std::uint64_t>(fabric.units));
  json.key("monolithic_serial_sec").value(fabric.monolithic_serial_sec);
  json.key("one_worker_sec").value(fabric.one_worker_sec);
  json.key("three_worker_sec").value(fabric.three_worker_sec);
  json.key("dispatch_overhead_pct").value(fabric.dispatch_overhead_pct);
  json.key("units_per_sec").value(fabric.units_per_sec);
  json.key("fabric_speedup_3w").value(fabric.fabric_speedup_3w);
  json.end_object();
  json.end_object();

  std::ofstream file(out_path);
  file << json.str() << "\n";
  file.close();
  std::cout << json.str() << "\n";

  if (engine.allocs_per_round_after_warmup != 0) {
    std::cerr << "bench_regression: message engine allocated after warm-up\n";
    return 3;
  }
  if (message_sweep.allocs_per_round_after_warmup != 0) {
    std::cerr << "bench_regression: message sweep path allocated per round after warm-up\n";
    return 6;
  }
  // The sweep path's reason to exist: rebinding one engine must not be
  // materially slower than rebuilding it per trial. Construction is small
  // next to 256 rounds of work, so the true ratio sits near or above 1
  // (measured 0.99-1.17 on the n=2048 ring relay depending on machine
  // load); 0.8 catches a real regression without tripping on CI noise.
  if (!smoke && message_sweep.batch_reuse_speedup < 0.8) {
    std::cerr << "bench_regression: message sweep batch-reuse speedup "
              << message_sweep.batch_reuse_speedup << " < 0.8\n";
    return 7;
  }
  // Smoke runs are too short (and CI machines too noisy) to hard-gate a
  // ratio; the full run defends the batched engine's reason to exist.
  if (!smoke && batched_ratio < 1.5) {
    std::cerr << "bench_regression: batched sweep speedup " << batched_ratio << " < 1.5\n";
    return 4;
  }
  if (!smoke && dispatch.overhead_pct > 2.0) {
    std::cerr << "bench_regression: scenario-layer dispatch overhead " << dispatch.overhead_pct
              << "% > 2%\n";
    return 5;
  }
  // Parallel message sweeps must actually scale: with at least two lanes
  // the pooled path has to beat serial by 1.5x (near-linear is typical -
  // trials are independent and lanes share nothing but the graph). A
  // single-core machine cannot exhibit a speedup, so the gate needs >= 2
  // workers; the bit-identity check above ran regardless.
  if (!smoke && message_parallel.pool_workers >= 2 && message_parallel.parallel_speedup < 1.5) {
    std::cerr << "bench_regression: parallel message sweep speedup "
              << message_parallel.parallel_speedup << " < 1.5\n";
    return 8;
  }
  // The SIMD kernels' reason to exist. On scalar-only hosts (or forced-
  // scalar builds) both legs run the same code, so the gate needs a vector
  // ISA; the bit-identity checks above ran regardless.
  if (!smoke && std::string_view(support::simd::active_isa()) != "scalar" &&
      simd_kernels.lockstep_gather_speedup < 1.5) {
    std::cerr << "bench_regression: lockstep gather speedup "
              << simd_kernels.lockstep_gather_speedup << " < 1.5\n";
    return 9;
  }
  // The arena's word paths (memcpy + ctz scans) beat the per-word replica
  // on every ISA - this gate holds in forced-scalar builds too.
  if (!smoke && arena_words.message_arena_word_speedup < 1.2) {
    std::cerr << "bench_regression: message arena word speedup "
              << arena_words.message_arena_word_speedup << " < 1.2\n";
    return 10;
  }
  // The budgeted large-n sweep must stay inside its declared budget (every
  // run: the bit-identity checks inside bench_large_scale already ran too).
  // VmHWM can only grow, so a delta past the budget is a real overshoot.
  if (large_scale.peak_rss_bytes != 0 &&
      large_scale.budget_peak_delta_bytes > large_scale.memory_budget_bytes) {
    std::cerr << "bench_regression: budgeted large-n sweep peaked "
              << large_scale.budget_peak_delta_bytes << " bytes, budget was "
              << large_scale.memory_budget_bytes << "\n";
    return 11;
  }
  // The compact layout's performance claim: half the bytes per element,
  // twice the gather lanes. Scalar-only hosts run u32 vs u64 loops whose
  // ratio hovers at the bandwidth quotient (~1.2), too close to gate; on
  // vector hosts the 8-lane kernel clears 1.2 with real margin.
  if (!smoke && std::string_view(support::simd::active_isa()) != "scalar" &&
      large_scale.compact_csr_speedup < 1.2) {
    std::cerr << "bench_regression: compact CSR speedup " << large_scale.compact_csr_speedup
              << " < 1.2\n";
    return 12;
  }
  // The serve cache's reason to exist: a warm repeat is a memo lookup, a
  // cold run is a full sweep. The true ratio is orders of magnitude; 5x
  // catches a cache that silently recomputes without tripping on timer
  // granularity. The byte-identity checks inside bench_serve ran on every
  // leg regardless (smoke included).
  if (!smoke && serve.warm_over_cold_speedup < 5.0) {
    std::cerr << "bench_regression: warm-over-cold serve speedup " << serve.warm_over_cold_speedup
              << " < 5\n";
    return 13;
  }
  // The fabric's reason to exist: three workers pulling units over a real
  // socket must beat the serial monolithic sweep despite the protocol
  // round trips. Needs >= 4 cores (3 workers + coordinator handlers); the
  // byte-identity checks inside bench_fabric ran on every leg regardless
  // (smoke included).
  if (!smoke && std::thread::hardware_concurrency() >= 4 && fabric.fabric_speedup_3w < 1.8) {
    std::cerr << "bench_regression: three-worker fabric speedup " << fabric.fabric_speedup_3w
              << " < 1.8\n";
    return 14;
  }
  return 0;
}
