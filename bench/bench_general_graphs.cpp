// E10: the paper's "further work" - largest-ID beyond the cycle, plus
// engine timings across graph families.
#include <benchmark/benchmark.h>

#include "algo/largest_id.hpp"
#include <cmath>
#include "bench_common.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

template <typename MakeGraph>
void run_family(benchmark::State& state, MakeGraph make) {
  const auto n = static_cast<std::size_t>(state.range(0));
  support::Xoshiro256 rng(4);
  const graph::Graph g = make(n, rng);
  const auto ids = graph::IdAssignment::random(g.vertex_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_views(g, ids, algo::make_largest_id_view()).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.vertex_count()));
}

void BM_LargestIdOnPath(benchmark::State& state) {
  run_family(state, [](std::size_t n, support::Xoshiro256&) { return graph::make_path(n); });
}
BENCHMARK(BM_LargestIdOnPath)->RangeMultiplier(4)->Range(256, 1 << 12);

void BM_LargestIdOnTree(benchmark::State& state) {
  run_family(state,
             [](std::size_t n, support::Xoshiro256& rng) { return graph::make_random_tree(n, rng); });
}
BENCHMARK(BM_LargestIdOnTree)->RangeMultiplier(4)->Range(256, 1 << 12);

void BM_LargestIdOnTorus(benchmark::State& state) {
  run_family(state, [](std::size_t n, support::Xoshiro256&) {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return graph::make_torus(side, side);
  });
}
BENCHMARK(BM_LargestIdOnTorus)->RangeMultiplier(4)->Range(256, 1 << 12);

}  // namespace

int main(int argc, char** argv) {
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_general_graphs,
                               avglocal::core::experiment_greedy_colouring});
}
