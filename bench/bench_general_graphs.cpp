// E10/E13: the paper's "further work" - largest-ID beyond the cycle, plus
// engine timings across graph families.
//
// The timed families are not hand-picked: one benchmark is registered per
// entry of graph::FamilyRegistry, so a newly registered generator shows up
// in the timing table (and in the E10/E13 experiment tables) with no bench
// changes.
#include <benchmark/benchmark.h>

#include <string>

#include "algo/largest_id.hpp"
#include "bench_common.hpp"
#include "graph/family_registry.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

void run_family(benchmark::State& state, const std::string& family) {
  const auto requested = static_cast<std::size_t>(state.range(0));
  support::Xoshiro256 rng(4);
  const graph::Graph g =
      graph::FamilyRegistry::global().build({family, {}}, requested, rng);
  const auto ids = graph::IdAssignment::random(g.vertex_count(), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        local::run_views(g, ids, algo::make_largest_id_view()).radii.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(g.vertex_count()));
}

void register_family_benchmarks() {
  for (const std::string& family : graph::FamilyRegistry::global().names()) {
    // Dense families square their edge count in n; cap them so the sweep
    // stays about graph structure, not allocator throughput.
    const bool dense = family == "complete";
    benchmark::RegisterBenchmark(
        ("BM_LargestIdOn/" + family).c_str(),
        [family](benchmark::State& state) { run_family(state, family); })
        ->RangeMultiplier(4)
        ->Range(256, dense ? 1 << 10 : 1 << 12);
  }
}

}  // namespace

int main(int argc, char** argv) {
  register_family_benchmarks();
  return avglocal::bench::run(argc, argv,
                              {avglocal::core::experiment_general_graphs,
                               avglocal::core::experiment_greedy_colouring,
                               avglocal::core::experiment_topology_matrix});
}
