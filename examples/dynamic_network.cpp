// The paper's first motivating application: in a dynamic network, the
// average measure estimates the cost of updating labels after a change at a
// random node.
//
// A ring maintains largest-ID labels. One random identifier change arrives;
// only vertices whose radius-r(v) ball saw the change need to recompute.
//
//   $ ./dynamic_network [n] [changes] [seed]
#include <cstdlib>
#include <iostream>

#include "algo/largest_id.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "support/rng.hpp"
#include "support/stats.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace avglocal;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 1024;
  const std::size_t changes = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 50;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 11;

  support::Xoshiro256 rng(seed);
  graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
  auto radii = algo::largest_id_radii_on_cycle(ids);

  support::RunningStats affected_stats, cost_stats;
  std::uint64_t steady_state_cost = 0;
  for (const std::size_t r : radii) steady_state_cost += r;

  for (std::size_t c = 0; c < changes; ++c) {
    const auto u = static_cast<std::uint32_t>(rng.below(n));
    auto v = static_cast<std::uint32_t>(rng.below(n));
    while (v == u) v = static_cast<std::uint32_t>(rng.below(n));
    const graph::IdAssignment updated = ids.with_swapped(u, v);
    const auto new_radii = algo::largest_id_radii_on_cycle(updated);

    std::uint64_t affected = 0, cost = 0;
    for (std::size_t w = 0; w < n; ++w) {
      if (radii[w] != new_radii[w]) {
        ++affected;
        cost += new_radii[w];
      }
    }
    affected_stats.add(static_cast<double>(affected));
    cost_stats.add(static_cast<double>(cost));
    ids = updated;
    radii = new_radii;
  }

  std::cout << "dynamic ring, n = " << n << ", " << changes << " random identifier swaps\n\n";
  support::Table table({"quantity", "mean", "min", "max"});
  table.add_row({"affected vertices per change", support::Table::cell(affected_stats.mean(), 1),
                 support::Table::cell(affected_stats.min(), 0),
                 support::Table::cell(affected_stats.max(), 0)});
  table.add_row({"update cost (sum of new radii)", support::Table::cell(cost_stats.mean(), 1),
                 support::Table::cell(cost_stats.min(), 0),
                 support::Table::cell(cost_stats.max(), 0)});
  std::cout << table.to_text() << "\n";
  std::cout << "full recomputation would cost " << steady_state_cost
            << " (the radius sum, i.e. n * average measure = "
            << static_cast<double>(steady_state_cost) / static_cast<double>(n)
            << " per vertex)\n"
            << "incremental update costs "
            << 100.0 * cost_stats.mean() / static_cast<double>(steady_state_cost)
            << "% of that on average.\n";
  return 0;
}
