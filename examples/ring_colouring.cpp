// 3-colouring an oriented ring two ways: the classic Cole-Vishkin schedule
// (n known) and the locally-terminating freeze/repair protocol (n unknown).
//
//   $ ./ring_colouring [n] [seed]
#include <cstdlib>
#include <iostream>

#include "algo/cole_vishkin.hpp"
#include "algo/colour_reduction.hpp"
#include "algo/local_colouring.hpp"
#include "algo/validity.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace avglocal;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 48;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 3;

  const graph::Graph ring = graph::make_cycle(n);
  support::Xoshiro256 rng(seed);
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  std::cout << "oriented " << n << "-ring, log*2(n) = "
            << support::log_star(static_cast<double>(n)) << ", Cole-Vishkin schedule T(n) = "
            << algo::cv_schedule_rounds(n) << " rounds\n\n";

  // Known n: every vertex outputs at the same round T(n).
  const auto known = local::run_views(ring, ids, algo::make_cole_vishkin_view(n));
  std::cout << "known n   : valid=" << algo::is_valid_colouring(ring, known.outputs, 3)
            << " max r=" << known.max_radius() << " avg r=" << known.average_radius()
            << "\n";

  // Unknown n: vertices freeze, repair boundary conflicts, and eliminate
  // high colour classes - outputting at different rounds.
  local::EngineOptions options;
  options.max_rounds = 100'000;
  const auto unknown =
      local::run_messages(ring, ids, algo::make_local_three_colouring(), options);
  std::cout << "unknown n : valid=" << algo::is_valid_colouring(ring, unknown.outputs, 3)
            << " max round=" << unknown.max_radius()
            << " avg round=" << unknown.average_radius() << "\n\n";

  std::cout << "colours around the ring (known-n run):\n  ";
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 48); ++v) {
    std::cout << known.outputs[v];
  }
  std::cout << (n > 48 ? "...\n" : "\n");
  std::cout << "colours around the ring (unknown-n run):\n  ";
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 48); ++v) {
    std::cout << unknown.outputs[v];
  }
  std::cout << (n > 48 ? "...\n" : "\n");
  return 0;
}
