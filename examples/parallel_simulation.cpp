// The paper's second motivating application: a parallel machine simulating
// a distributed computation can reassign a worker as soon as a node
// outputs, so throughput follows the *average* measure, not the worst case.
//
// Jobs: one per ring vertex, costing r(v)+1 time units (the rounds until
// that vertex outputs). Compare list scheduling with worst-case budgeting.
//
//   $ ./parallel_simulation [n] [workers] [seed]
#include <cstdlib>
#include <iostream>
#include <queue>

#include "algo/largest_id.hpp"
#include "graph/ids.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace avglocal;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 4096;
  const std::size_t workers = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 16;
  const std::uint64_t seed = argc > 3 ? std::strtoull(argv[3], nullptr, 10) : 5;

  support::Xoshiro256 rng(seed);
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);
  const auto radii = algo::largest_id_radii_on_cycle(ids);

  std::uint64_t sum = 0, max_r = 0;
  for (const std::size_t r : radii) {
    sum += r;
    max_r = std::max<std::uint64_t>(max_r, r);
  }

  // List scheduling: each job goes to the least-loaded worker.
  std::priority_queue<std::uint64_t, std::vector<std::uint64_t>, std::greater<>> loads;
  for (std::size_t p = 0; p < workers; ++p) loads.push(0);
  for (const std::size_t r : radii) {
    const std::uint64_t load = loads.top();
    loads.pop();
    loads.push(load + r + 1);
  }
  std::uint64_t makespan = 0;
  while (!loads.empty()) {
    makespan = std::max(makespan, loads.top());
    loads.pop();
  }

  const std::uint64_t lower_bound =
      std::max<std::uint64_t>((sum + n + workers - 1) / workers, max_r + 1);
  const std::uint64_t worst_case_budget = ((n + workers - 1) / workers) * (max_r + 1);

  std::cout << "parallel simulation of largest-ID on the " << n << "-ring, " << workers
            << " workers\n\n";
  support::Table table({"schedule", "makespan", "vs lower bound"});
  table.add_row({"theoretical lower bound max(sum/P, max)",
                 support::Table::cell(lower_bound), "1.00"});
  table.add_row({"list scheduling by actual r(v)", support::Table::cell(makespan),
                 support::Table::cell(static_cast<double>(makespan) /
                                          static_cast<double>(lower_bound),
                                      2)});
  table.add_row({"worst-case budgeting (every job = max r)",
                 support::Table::cell(worst_case_budget),
                 support::Table::cell(static_cast<double>(worst_case_budget) /
                                          static_cast<double>(lower_bound),
                                      2)});
  std::cout << table.to_text() << "\n";
  std::cout << "early outputs buy a " << static_cast<double>(worst_case_budget) /
                                             static_cast<double>(makespan)
            << "x speedup over worst-case provisioning -\n"
            << "exactly the ratio max radius / average radius = "
            << static_cast<double>(max_r) / (static_cast<double>(sum) / static_cast<double>(n))
            << " predicted by the paper's measure.\n";
  return 0;
}
