// Leader election on a ring, through the message-passing engine, with a
// round-by-round trace - the paper's Section 2 scenario end to end.
//
//   $ ./leader_election [n] [seed]
#include <cstdlib>
#include <iostream>
#include <map>

#include "algo/largest_id.hpp"
#include "algo/validity.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "support/rng.hpp"
#include "support/table.hpp"

int main(int argc, char** argv) {
  using namespace avglocal;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 32;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 7;

  const graph::Graph ring = graph::make_cycle(n);
  support::Xoshiro256 rng(seed);
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  local::Trace trace;
  local::EngineOptions options;
  options.trace = &trace;
  const local::RunResult run =
      local::run_messages(ring, ids, algo::make_largest_id_messages(), options);

  std::cout << "leader election on the " << n << "-ring: "
            << (algo::is_valid_largest_id(ids, run.outputs) ? "correct" : "WRONG")
            << "; leader id " << n << " at vertex " << ids.argmax() << "\n"
            << "rounds " << run.rounds << ", messages " << run.messages << ", words "
            << run.words << "\n\n";

  support::Table per_round({"round", "messages", "words", "new outputs"});
  for (const auto& r : trace.rounds()) {
    per_round.add_row({support::Table::cell(r.round), support::Table::cell(r.messages),
                       support::Table::cell(r.words), support::Table::cell(r.outputs_set)});
  }
  std::cout << per_round.to_text() << "\n";

  // Radius histogram: most vertices stop very early - the heart of the
  // average-measure story.
  std::map<std::size_t, std::size_t> histogram;
  for (const std::size_t r : run.radii) ++histogram[r];
  support::Table hist({"radius", "vertices"});
  for (const auto& [radius, count] : histogram) {
    hist.add_row({support::Table::cell(radius), support::Table::cell(count)});
  }
  std::cout << "radius histogram:\n" << hist.to_text();
  std::cout << "\naverage radius " << run.average_radius() << " vs max "
            << run.max_radius() << "\n";
  return 0;
}
