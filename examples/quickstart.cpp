// Quickstart: measure a LOCAL algorithm under both running-time measures.
//
// Builds a 64-vertex ring with random identifiers, runs the paper's
// largest-ID algorithm through the ball engine, and prints the classic
// (max) and the paper's (average) measure side by side.
//
//   $ ./quickstart [n] [seed]
#include <cstdlib>
#include <iostream>

#include "algo/largest_id.hpp"
#include "core/measure.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

int main(int argc, char** argv) {
  using namespace avglocal;
  const std::size_t n = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 64;
  const std::uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 1;

  // 1. A network: the n-cycle, the paper's topology.
  const graph::Graph ring = graph::make_cycle(n);

  // 2. Identifiers: a random permutation of {1..n}.
  support::Xoshiro256 rng(seed);
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  // 3. Run the algorithm: every vertex grows its ball until it sees a larger
  //    identifier (output No) or the whole ring (output Yes).
  const local::RunResult run = local::run_views(ring, ids, algo::make_largest_id_view());

  // 4. Both measures of the run.
  const core::Measurement m = core::measure(run);
  std::cout << "largest-ID on the " << n << "-cycle (seed " << seed << ")\n"
            << "  leader vertex : " << ids.argmax() << " (id " << n << ")\n"
            << "  classic measure (max radius) : " << m.max_radius << "\n"
            << "  paper's measure (avg radius) : " << m.avg_radius << "\n"
            << "  gap max/avg                  : " << core::measure_gap(m) << "\n\n";

  std::cout << "per-vertex radii (vertex: id -> radius, output):\n";
  for (std::size_t v = 0; v < std::min<std::size_t>(n, 16); ++v) {
    std::cout << "  v" << v << ": id " << ids.id_of(static_cast<graph::Vertex>(v)) << " -> r "
              << run.radii[v] << ", " << (run.outputs[v] == algo::kYes ? "Yes" : "No")
              << "\n";
  }
  if (n > 16) std::cout << "  ... (" << n - 16 << " more)\n";
  return 0;
}
