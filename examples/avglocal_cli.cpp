// avglocal_cli: run any bundled LOCAL algorithm on any graph family from
// the command line and report both measures (optionally per-vertex CSV),
// or drive batched / sharded random sweeps.
//
// Single runs (the default subcommand):
//   avglocal_cli --algo largest-id --graph cycle --n 1024 --seed 7
//   avglocal_cli --algo cv3 --graph cycle --n 4096 --csv radii.csv
//   avglocal_cli --algo mis --graph cycle --n 256 --semantics flooding
//
// Batched sweeps (many id-assignments per graph in one pass):
//   avglocal_cli sweep --algo largest-id --graph cycle --ns 256,1024,4096
//                      --trials 200 --seed 42 --json sweep.json
//
// Sharded sweeps (run shard i of k anywhere, then merge the artefacts;
// the merge is bit-identical to the monolithic sweep):
//   avglocal_cli sweep --ns 1024,4096 --trials 1000 --shard 0/4 --out s0.json
//   ... shards 1/4, 2/4, 3/4 on other hosts ...
//   avglocal_cli merge --json sweep.json s0.json s1.json s2.json s3.json
//
// Algorithms: largest-id | largest-id-ua | cv3 | mis | local3 (message based)
// Graphs:     cycle | path | tree | grid | torus | gnp | complete
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "algo/cole_vishkin.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/mis_ring.hpp"
#include "algo/validity.hpp"
#include "core/batched_sweep.hpp"
#include "core/measure.hpp"
#include "core/runner.hpp"
#include "core/shard.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/csv.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

struct Options {
  std::string algo = "largest-id";
  std::string graph = "cycle";
  std::size_t n = 256;
  std::uint64_t seed = 1;
  std::string semantics = "induced";
  std::string csv_path;
};

void usage() {
  std::cout << "usage: avglocal_cli [--algo A] [--graph G] [--n N] [--seed S]\n"
               "                    [--semantics induced|flooding] [--csv FILE]\n"
               "       avglocal_cli sweep ...   (batched/sharded random sweeps; --help)\n"
               "       avglocal_cli merge ...   (recombine shard artefacts; --help)\n"
               "  algos : largest-id largest-id-ua cv3 mis local3\n"
               "  graphs: cycle path tree grid torus gnp complete\n";
}

std::optional<Options> parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") return std::nullopt;
    std::optional<std::string> value;
    if (arg == "--algo" && (value = next())) {
      options.algo = *value;
    } else if (arg == "--graph" && (value = next())) {
      options.graph = *value;
    } else if (arg == "--n" && (value = next())) {
      options.n = std::stoull(*value);
    } else if (arg == "--seed" && (value = next())) {
      options.seed = std::stoull(*value);
    } else if (arg == "--semantics" && (value = next())) {
      options.semantics = *value;
    } else if (arg == "--csv" && (value = next())) {
      options.csv_path = *value;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return options;
}

graph::Graph make_graph_named(const std::string& family, std::size_t n,
                              support::Xoshiro256& rng) {
  if (family == "cycle") return graph::make_cycle(n);
  if (family == "path") return graph::make_path(n);
  if (family == "tree") return graph::make_random_tree(n, rng);
  if (family == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return graph::make_grid(side, side);
  }
  if (family == "torus") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return graph::make_torus(side, side);
  }
  if (family == "gnp") {
    return graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  }
  if (family == "complete") return graph::make_complete(n);
  throw std::invalid_argument("unknown graph family: " + family);
}

graph::Graph make_graph(const Options& options, support::Xoshiro256& rng) {
  return make_graph_named(options.graph, options.n, rng);
}

// ------------------------------------------------------------------ sweep --

struct SweepCliOptions {
  std::string algo = "largest-id";
  std::string graph = "cycle";
  std::vector<std::size_t> ns = {256, 1024};
  std::size_t trials = 100;
  std::uint64_t seed = 42;
  std::string semantics = "induced";
  std::size_t threads = 0;
  std::size_t batch = 0;
  bool node_profile = false;
  std::optional<std::pair<std::size_t, std::size_t>> shard;  ///< (index, count)
  std::string out_path;   ///< shard artefact destination (sweep --shard)
  std::string json_path;  ///< full-report destination (sweep / merge)
};

std::vector<std::size_t> parse_size_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) values.push_back(std::stoull(item));
  if (values.empty()) throw std::invalid_argument("empty size list");
  return values;
}

void sweep_usage() {
  std::cout
      << "usage: avglocal_cli sweep [--algo A] [--graph G] [--ns N1,N2,...] [--trials T]\n"
         "                          [--seed S] [--semantics induced|flooding] [--threads W]\n"
         "                          [--batch B] [--node-profile] [--json FILE]\n"
         "                          [--shard I/K --out FILE]\n"
         "       avglocal_cli merge [--json FILE] SHARD.json...\n"
         "  algos : largest-id largest-id-ua cv3 mis   (view based)\n"
         "  graphs: cycle path tree grid torus gnp complete\n"
         "  --shard I/K runs trial range I of K and writes a mergeable artefact;\n"
         "  merge recombines artefacts bit-identically to the monolithic sweep.\n";
}

std::optional<SweepCliOptions> parse_sweep(int argc, char** argv, int first) {
  SweepCliOptions options;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--algo" && (value = next())) {
      options.algo = *value;
    } else if (arg == "--graph" && (value = next())) {
      options.graph = *value;
    } else if (arg == "--ns" && (value = next())) {
      options.ns = parse_size_list(*value);
    } else if (arg == "--trials" && (value = next())) {
      options.trials = std::stoull(*value);
    } else if (arg == "--seed" && (value = next())) {
      options.seed = std::stoull(*value);
    } else if (arg == "--semantics" && (value = next())) {
      options.semantics = *value;
    } else if (arg == "--threads" && (value = next())) {
      options.threads = std::stoull(*value);
    } else if (arg == "--batch" && (value = next())) {
      options.batch = std::stoull(*value);
    } else if (arg == "--node-profile") {
      options.node_profile = true;
    } else if (arg == "--shard" && (value = next())) {
      const auto slash = value->find('/');
      if (slash == std::string::npos) {
        std::cerr << "--shard expects I/K\n";
        return std::nullopt;
      }
      options.shard = {{std::stoull(value->substr(0, slash)),
                        std::stoull(value->substr(slash + 1))}};
    } else if (arg == "--out" && (value = next())) {
      options.out_path = *value;
    } else if (arg == "--json" && (value = next())) {
      options.json_path = *value;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return options;
}

/// Per-size algorithm provider: cv3 and mis parameterise their schedule on
/// n, so every sweep point gets its own factory.
core::AlgorithmProvider sweep_algorithms(const SweepCliOptions& options) {
  const std::string algo_name = options.algo;
  return [algo_name](std::size_t n) -> local::ViewAlgorithmFactory {
    if (algo_name == "largest-id") return algo::make_largest_id_view();
    if (algo_name == "largest-id-ua") return algo::make_largest_id_universe_aware_view();
    if (algo_name == "cv3") return algo::make_cole_vishkin_view(n);
    if (algo_name == "mis") return algo::make_mis_ring_view(n);
    throw std::invalid_argument("sweep supports view algorithms only, not: " + algo_name);
  };
}

core::BatchedSweepOptions sweep_options(const SweepCliOptions& options) {
  core::BatchedSweepOptions sweep;
  sweep.trials = options.trials;
  sweep.seed = options.seed;
  sweep.semantics = options.semantics == "flooding" ? local::ViewSemantics::kFloodingKnowledge
                                                    : local::ViewSemantics::kInducedBall;
  sweep.threads = options.threads;
  sweep.batch_size = options.batch;
  sweep.node_profile = options.node_profile;
  return sweep;
}

/// Graph factory shared by monolithic runs and every shard: randomised
/// families derive their stream from (seed, n) only, so all shards of a
/// plan build identical graphs.
core::GraphFactory sweep_graphs(const SweepCliOptions& options) {
  const std::string family = options.graph;
  const std::uint64_t seed = options.seed;
  return [family, seed](std::size_t n) {
    support::Xoshiro256 rng(support::derive_seed(seed ^ 0x67726170685fULL, n));
    return make_graph_named(family, n, rng);
  };
}

void print_points(const std::vector<core::BatchedSweepPoint>& points) {
  std::cout << "      n   trials   avg_mean     avg_sd   max_mean  max_worst   "
               "p50  p90  p99   node_mean_max\n";
  for (const auto& p : points) {
    std::printf("%7zu  %7zu  %9.4f  %9.4f  %9.2f  %9zu  %4zu %4zu %4zu   %13.4f\n", p.n,
                p.trials, p.avg_mean, p.avg_sd, p.max_mean, p.max_worst,
                p.radius.quantiles.size() > 0 ? p.radius.quantiles[0] : 0,
                p.radius.quantiles.size() > 1 ? p.radius.quantiles[1] : 0,
                p.radius.quantiles.size() > 2 ? p.radius.quantiles[2] : 0, p.node_mean_max);
  }
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  file << text << "\n";
  return true;
}

std::string points_to_json(const SweepCliOptions& options,
                           const std::vector<core::BatchedSweepPoint>& points) {
  support::JsonWriter json;
  json.begin_object();
  json.key("avglocal_sweep").value(std::uint64_t{1});
  json.key("algo").value(options.algo);
  json.key("graph").value(options.graph);
  json.key("seed").value(options.seed);
  json.key("trials").value(static_cast<std::uint64_t>(options.trials));
  json.key("semantics").value(options.semantics);
  json.key("points").begin_array();
  for (const auto& p : points) {
    json.begin_object();
    json.key("n").value(static_cast<std::uint64_t>(p.n));
    json.key("avg_mean").value(p.avg_mean);
    json.key("avg_sd").value(p.avg_sd);
    json.key("avg_worst").value(p.avg_worst);
    json.key("max_mean").value(p.max_mean);
    json.key("max_worst").value(static_cast<std::uint64_t>(p.max_worst));
    json.key("radius_mean").value(p.radius.mean);
    json.key("radius_max").value(static_cast<std::uint64_t>(p.radius.max));
    json.key("quantile_probs").begin_array();
    for (double q : p.radius.probs) json.value(q);
    json.end_array();
    json.key("quantiles").begin_array();
    for (std::size_t r : p.radius.quantiles) json.value(static_cast<std::uint64_t>(r));
    json.end_array();
    json.key("node_mean_min").value(p.node_mean_min);
    json.key("node_mean_max").value(p.node_mean_max);
    if (!p.node_mean.empty()) {
      json.key("node_mean").begin_array();
      for (double m : p.node_mean) json.value(m);
      json.end_array();
    }
    json.end_object();
  }
  json.end_array();
  json.end_object();
  return json.str();
}

int run_sweep_command_impl(int argc, char** argv) {
  const auto parsed = parse_sweep(argc, argv, 2);
  if (!parsed) {
    sweep_usage();
    return 2;
  }
  const SweepCliOptions& options = *parsed;
  const core::AlgorithmProvider algorithms = sweep_algorithms(options);
  algorithms(options.ns.front());  // reject unknown algorithms before any work
  const auto graphs = sweep_graphs(options);
  const core::BatchedSweepOptions sweep = sweep_options(options);

  if (options.shard) {
    const auto [index, count] = *options.shard;
    if (options.out_path.empty()) {
      std::cerr << "--shard needs --out FILE for the artefact\n";
      return 2;
    }
    const auto plan = core::plan_shards(options.ns.size(), options.trials, count);
    if (index >= plan.size()) {
      std::cerr << "shard " << index << " is empty: only " << plan.size()
                << " non-empty shards in this plan\n";
      return 2;
    }
    core::ShardDocument doc;
    doc.meta = core::SweepPlanMeta::from_options(options.ns, sweep);
    doc.meta.algorithm = options.algo;
    doc.meta.graph = options.graph;
    doc.shard = plan[index];
    doc.points = core::run_sweep_shard(options.ns, graphs, algorithms, sweep, doc.shard);
    if (!write_text_file(options.out_path, core::shard_to_json(doc))) return 1;
    std::cout << "shard " << index << "/" << count << " (trials [" << doc.shard.trial_begin
              << ", " << doc.shard.trial_end << ")) written to " << options.out_path << "\n";
    return 0;
  }

  const auto points = core::run_batched_sweep(options.ns, graphs, algorithms, sweep);
  print_points(points);
  if (!options.json_path.empty()) {
    if (!write_text_file(options.json_path, points_to_json(options, points))) return 1;
    std::cout << "sweep report written to " << options.json_path << "\n";
  }
  return 0;
}

int run_merge_command_impl(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> artefacts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      sweep_usage();
      return 2;
    }
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      sweep_usage();
      return 2;
    } else {
      artefacts.push_back(arg);
    }
  }
  if (artefacts.empty()) {
    std::cerr << "merge needs at least one shard artefact\n";
    sweep_usage();
    return 2;
  }

  std::vector<core::ShardDocument> docs;
  docs.reserve(artefacts.size());
  for (const std::string& path : artefacts) {
    std::ifstream file(path);
    if (!file) {
      std::cerr << "cannot read " << path << "\n";
      return 1;
    }
    std::stringstream buffer;
    buffer << file.rdbuf();
    docs.push_back(core::parse_shard_json(buffer.str()));
  }
  const core::SweepPlanMeta meta = docs.front().meta;
  const auto points = core::merge_shards(std::move(docs));
  std::cout << "merged " << artefacts.size() << " shard(s): " << meta.algorithm << " on "
            << meta.graph << ", seed " << meta.seed << ", " << meta.trials << " trials\n";
  print_points(points);
  if (!json_path.empty()) {
    SweepCliOptions report;
    report.seed = meta.seed;
    report.trials = meta.trials;
    report.semantics =
        meta.semantics == local::ViewSemantics::kFloodingKnowledge ? "flooding" : "induced";
    report.algo = meta.algorithm;
    report.graph = meta.graph;
    if (!write_text_file(json_path, points_to_json(report, points))) return 1;
    std::cout << "merged report written to " << json_path << "\n";
  }
  return 0;
}

/// Sweep plans assemble many moving parts (size lists, graph families,
/// shard artefacts), so configuration errors surface as exceptions from
/// deep inside the library; report them as errors, not aborts.
int run_guarded(int (*command)(int, char**), int argc, char** argv) {
  try {
    return command(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

int run_sweep_command(int argc, char** argv) {
  return run_guarded(run_sweep_command_impl, argc, argv);
}

int run_merge_command(int argc, char** argv) {
  return run_guarded(run_merge_command_impl, argc, argv);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) return run_sweep_command(argc, argv);
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) return run_merge_command(argc, argv);

  const auto parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const Options& options = *parsed;

  support::Xoshiro256 rng(options.seed);
  const graph::Graph g = make_graph(options, rng);
  const std::size_t n = g.vertex_count();
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  local::ViewEngineOptions view_options;
  view_options.semantics = options.semantics == "flooding"
                               ? local::ViewSemantics::kFloodingKnowledge
                               : local::ViewSemantics::kInducedBall;

  local::RunResult run;
  std::string validity = "n/a";
  if (options.algo == "largest-id") {
    run = local::run_views(g, ids, algo::make_largest_id_view(), view_options);
    validity = algo::is_valid_largest_id(ids, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "largest-id-ua") {
    run = local::run_views(g, ids, algo::make_largest_id_universe_aware_view(),
                           view_options);
    validity = algo::is_valid_largest_id(ids, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "cv3") {
    run = local::run_views(g, ids, algo::make_cole_vishkin_view(n), view_options);
    validity = algo::is_valid_colouring(g, run.outputs, 3) ? "valid" : "INVALID";
  } else if (options.algo == "mis") {
    run = local::run_views(g, ids, algo::make_mis_ring_view(n), view_options);
    validity = algo::is_maximal_independent_set(g, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "local3") {
    local::EngineOptions engine_options;
    engine_options.max_rounds = 1'000'000;
    run = local::run_messages(g, ids, algo::make_local_three_colouring(), engine_options);
    validity = algo::is_valid_colouring(g, run.outputs, 3) ? "valid" : "INVALID";
  } else {
    std::cerr << "unknown algorithm: " << options.algo << "\n";
    usage();
    return 2;
  }

  const core::Measurement m = core::measure(run);
  std::cout << options.algo << " on " << options.graph << " n=" << n
            << " seed=" << options.seed << " (" << options.semantics << ")\n"
            << "  outputs       : " << validity << "\n"
            << "  max radius    : " << m.max_radius << "\n"
            << "  avg radius    : " << m.avg_radius << "\n"
            << "  sum radius    : " << m.sum_radius << "\n"
            << "  gap max/avg   : " << core::measure_gap(m) << "\n";
  if (run.messages > 0) {
    std::cout << "  messages/words: " << run.messages << " / " << run.words << "\n";
  }

  if (!options.csv_path.empty()) {
    std::ofstream file(options.csv_path);
    if (!file) {
      std::cerr << "cannot open " << options.csv_path << "\n";
      return 1;
    }
    support::CsvWriter csv(file);
    csv.write_row({"vertex", "id", "radius", "output"});
    for (std::size_t v = 0; v < n; ++v) {
      csv.write_row({std::to_string(v),
                     std::to_string(ids.id_of(static_cast<graph::Vertex>(v))),
                     std::to_string(run.radii[v]), std::to_string(run.outputs[v])});
    }
    std::cout << "  per-vertex CSV written to " << options.csv_path << "\n";
  }
  return 0;
}
