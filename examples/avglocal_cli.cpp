// avglocal_cli: every bundled LOCAL algorithm on every graph family, by
// name, through the scenario registries - single runs, batched/adaptive
// sweeps, sharded sweeps across processes and a local multi-process driver.
//
// Discover the workload space:
//   avglocal_cli list
//
// Single runs (the default subcommand; message algorithms included):
//   avglocal_cli --algo largest-id --graph cycle --n 1024 --seed 7
//   avglocal_cli --algo greedy --graph random-regular:degree=4 --n 4096
//   avglocal_cli --algo local3 --graph cycle --n 256 --csv radii.csv
//
// Batched sweeps (many id-assignments per graph in one pass); --target-hw
// turns on the adaptive trial schedule, which grows the trial count in
// batches until the avg-mean confidence interval closes:
//   avglocal_cli sweep --algo largest-id --graph torus --ns 256,1024,4096
//                      --trials 200 --seed 42 --json sweep.json
//   avglocal_cli sweep --algo cv3 --graph cycle --ns 4096 --trials 5000
//                      --target-hw 0.05 --min-trials 32 --adaptive-batch 64
//   avglocal_cli sweep --algo largest-id-msg --graph cycle --ns 1024 --trials 100
//                      (message algorithms sweep too; the registry picks the engine,
//                       and --threads parallelises trial ranges across worker engines)
//
// Sharded sweeps (run shard i of k anywhere, then merge the artefacts;
// the merge is bit-identical to the monolithic sweep):
//   avglocal_cli sweep --ns 1024,4096 --trials 1000 --shard 0/4 --out s0.json
//   ... shards 1/4, 2/4, 3/4 on other hosts ...
//   avglocal_cli merge --json sweep.json s0.json s1.json s2.json s3.json
//
// Or let the driver schedule the shards as local subprocesses (failed
// shards are retried, artefacts merged bit-identically):
//   avglocal_cli drive --algo largest-id --graph gnp:avg-degree=6
//                      --ns 1024,4096 --trials 1000 --shards 4 --json sweep.json
//
// Or keep the engines resident: `serve` runs a daemon over a Unix-domain
// socket with a content-addressed result cache (repeat requests are free,
// trial extensions compute only the missing range), `request` is its
// client - the saved report is byte-identical to a one-shot sweep's:
//   avglocal_cli serve --socket /tmp/avglocal.sock --threads 4 &
//   avglocal_cli request --socket /tmp/avglocal.sock --algo largest-id
//                        --graph cycle --ns 1024 --trials 500 --json sweep.json
//   avglocal_cli request --socket /tmp/avglocal.sock --op shutdown
//
// Or stream the sweep across machines: `fabric-serve` is a coordinator
// that decomposes the sweep into (point, trial-range) work units pulled
// by `fabric-worker` processes over Unix-domain or TCP sockets, with
// work stealing and straggler re-dispatch - the merged report is
// byte-identical to the monolithic sweep's for any worker count:
//   avglocal_cli fabric-serve --listen tcp:0.0.0.0:7440 --algo largest-id
//                             --graph cycle --ns 1024 --trials 1000 --json sweep.json &
//   avglocal_cli fabric-worker --connect tcp:host:7440 --threads 4   (xN, any hosts)
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <fstream>
#include <iostream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "algo/registry.hpp"
#include "core/fabric.hpp"
#include "core/measure.hpp"
#include "core/remote_backend.hpp"
#include "core/runner.hpp"
#include "core/scenario.hpp"
#include "core/serve.hpp"
#include "core/shard.hpp"
#include "graph/family_registry.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/csv.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/rng.hpp"
#include "support/socket.hpp"

extern char** environ;

namespace {

using namespace avglocal;

// ------------------------------------------------------------- helpers ----

local::ViewSemantics parse_semantics(const std::string& name) {
  const auto semantics = local::view_semantics_from_name(name);
  if (!semantics) throw std::invalid_argument("unknown semantics '" + name + "' (induced|flooding)");
  return *semantics;
}

// Checked numeric flag parsing. Bare std::stoull would throw an uncaught
// exception on garbage and - worse - silently wrap "-1" to 2^64-1, so
// every numeric flag goes through these: strict syntax (digits only /
// full-string doubles), overflow rejected, and on failure the offending
// flag is named on stderr and the parser bails with the usage exit (2).

std::optional<std::uint64_t> parse_u64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  std::uint64_t value = 0;
  for (const char c : text) {
    if (c < '0' || c > '9') return std::nullopt;
    const std::uint64_t digit = static_cast<std::uint64_t>(c - '0');
    if (value > (UINT64_MAX - digit) / 10) return std::nullopt;
    value = value * 10 + digit;
  }
  return value;
}

std::optional<double> parse_f64(const std::string& text) {
  if (text.empty()) return std::nullopt;
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end != text.c_str() + text.size() || errno == ERANGE || !std::isfinite(value)) {
    return std::nullopt;
  }
  return value;
}

bool flag_error(const std::string& text, const char* flag) {
  std::cerr << "invalid value '" << text << "' for " << flag << "\n";
  return false;
}

bool u64_flag(const std::string& text, const char* flag, std::uint64_t& out) {
  const auto parsed = parse_u64(text);
  if (!parsed) return flag_error(text, flag);
  out = *parsed;
  return true;
}

bool size_flag(const std::string& text, const char* flag, std::size_t& out) {
  // size_t and uint64_t coincide on every platform this CLI targets.
  const auto parsed = parse_u64(text);
  if (!parsed) return flag_error(text, flag);
  out = static_cast<std::size_t>(*parsed);
  return true;
}

bool f64_flag(const std::string& text, const char* flag, double& out) {
  const auto parsed = parse_f64(text);
  if (!parsed) return flag_error(text, flag);
  out = *parsed;
  return true;
}

std::optional<std::vector<std::size_t>> parse_size_list(const std::string& text) {
  std::vector<std::size_t> values;
  std::stringstream stream(text);
  std::string item;
  while (std::getline(stream, item, ',')) {
    const auto parsed = parse_u64(item);
    if (!parsed) return std::nullopt;
    values.push_back(static_cast<std::size_t>(*parsed));
  }
  if (values.empty()) return std::nullopt;
  return values;
}

std::string join_sizes(const std::vector<std::size_t>& ns) {
  std::string out;
  for (std::size_t i = 0; i < ns.size(); ++i) {
    if (i > 0) out += ',';
    out += std::to_string(ns[i]);
  }
  return out;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream file(path);
  if (!file) {
    std::cerr << "cannot open " << path << "\n";
    return false;
  }
  file << text << "\n";
  return true;
}

std::string read_text_file(const std::string& path) {
  std::ifstream file(path);
  if (!file) throw std::runtime_error("cannot read " + path);
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

void print_points(const std::vector<core::ScenarioPoint>& points, bool adaptive) {
  std::cout << "      n   trials   avg_mean     avg_sd      ci_hw   max_mean  max_worst   "
               "p50  p90  p99   node_mean_max  edge_avg_mean\n";
  for (const auto& sp : points) {
    const auto& p = sp.point;
    std::printf("%7zu  %7zu  %9.4f  %9.4f  %9.4f  %9.2f  %9zu  %4zu %4zu %4zu   %13.4f  %13.4f\n",
                p.n, p.trials, p.avg_mean, p.avg_sd, sp.half_width, p.max_mean, p.max_worst,
                p.radius.quantiles.size() > 0 ? p.radius.quantiles[0] : 0,
                p.radius.quantiles.size() > 1 ? p.radius.quantiles[1] : 0,
                p.radius.quantiles.size() > 2 ? p.radius.quantiles[2] : 0, p.node_mean_max,
                p.edge_avg_mean);
  }
  if (adaptive) {
    for (const auto& sp : points) {
      std::cout << "  n=" << sp.point.n << ": "
                << (sp.converged ? "converged after " : "hit the trial cap at ")
                << sp.point.trials << " trials (half-width " << sp.half_width << ")\n";
    }
  }
}

// ---------------------------------------------------------------- list ----

int run_list_command() {
  const auto& families = graph::FamilyRegistry::global();
  std::cout << "graph families (--graph NAME or NAME:param=value,...):\n";
  for (const std::string& name : families.names()) {
    const graph::GraphFamily& family = families.at(name);
    std::printf("  %-16s %s%s\n", family.name.c_str(), family.randomised ? "[random] " : "",
                family.description.c_str());
    for (const auto& param : family.params) {
      std::printf("  %-16s   param %s=%g: %s\n", "", param.name.c_str(), param.default_value,
                  param.description.c_str());
    }
  }

  const auto& algorithms = algo::AlgorithmRegistry::global();
  std::cout << "\nview algorithms (--algo; single runs and sweeps):\n";
  for (const std::string& name : algorithms.names(algo::AlgorithmKind::kView)) {
    const algo::AlgorithmInfo& info = algorithms.at(name);
    const algo::ViewCapabilities caps = algo::AlgorithmRegistry::probe(info, 256);
    std::printf("  %-16s %s (%s; batched mode: %s%s)\n", info.name.c_str(),
                info.description.c_str(), info.constraint.c_str(),
                caps.ids_only_view ? "sequential/ids-only" : "lockstep",
                caps.min_radius > 0
                    ? (", skips radii < " + std::to_string(caps.min_radius) + " at n=256").c_str()
                    : "");
  }
  std::cout << "\nmessage algorithms (--algo; single runs and message-engine sweeps):\n";
  for (const std::string& name : algorithms.names(algo::AlgorithmKind::kMessage)) {
    const algo::AlgorithmInfo& info = algorithms.at(name);
    std::printf("  %-16s %s (%s)\n", info.name.c_str(), info.description.c_str(),
                info.constraint.c_str());
  }
  return 0;
}

// ----------------------------------------------------------------- run ----

struct RunOptions {
  std::string algo = "largest-id";
  std::string graph = "cycle";
  std::size_t n = 256;
  std::uint64_t seed = 1;
  std::string semantics = "induced";
  std::string csv_path;
};

void usage() {
  std::cout << "usage: avglocal_cli [--algo A] [--graph G] [--n N] [--seed S]\n"
               "                    [--semantics induced|flooding] [--csv FILE]\n"
               "       avglocal_cli list          (enumerate graph families and algorithms)\n"
               "       avglocal_cli sweep ...     (batched/adaptive/sharded sweeps; --help)\n"
               "       avglocal_cli merge ...     (recombine shard artefacts; --help)\n"
               "       avglocal_cli drive ...     (multi-process sharded sweep; --help)\n"
               "       avglocal_cli serve ...     (resident sweep daemon + result cache; --help)\n"
               "       avglocal_cli request ...   (client for a running daemon; --help)\n"
               "       avglocal_cli fabric-serve ...  (distributed sweep coordinator; --help)\n"
               "       avglocal_cli fabric-worker ... (worker for a coordinator; --help)\n"
               "  names resolve through the scenario registries; `list` prints them.\n";
}

std::optional<RunOptions> parse_run(int argc, char** argv) {
  RunOptions options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") return std::nullopt;
    std::optional<std::string> value;
    if (arg == "--algo" && (value = next())) {
      options.algo = *value;
    } else if (arg == "--graph" && (value = next())) {
      options.graph = *value;
    } else if (arg == "--n" && (value = next())) {
      if (!size_flag(*value, "--n", options.n)) return std::nullopt;
    } else if (arg == "--seed" && (value = next())) {
      if (!u64_flag(*value, "--seed", options.seed)) return std::nullopt;
    } else if (arg == "--semantics" && (value = next())) {
      options.semantics = *value;
    } else if (arg == "--csv" && (value = next())) {
      options.csv_path = *value;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return options;
}

int run_single_impl(const RunOptions& options) {
  const graph::FamilySpec family = graph::parse_family_spec(options.graph);
  const auto& families = graph::FamilyRegistry::global();
  const algo::AlgorithmInfo& info = algo::AlgorithmRegistry::global().at(options.algo);

  support::Xoshiro256 rng(options.seed);
  const graph::Graph g = families.build(family, options.n, rng);
  const std::size_t n = g.vertex_count();
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  local::RunResult run;
  if (info.kind == algo::AlgorithmKind::kView) {
    local::ViewEngineOptions view_options;
    view_options.semantics = parse_semantics(options.semantics);
    run = local::run_views(g, ids, info.view(n), view_options);
  } else {
    local::EngineOptions engine_options;
    engine_options.knowledge = info.knowledge;
    engine_options.max_rounds = 1'000'000;
    run = local::run_messages(g, ids, info.messages(n), engine_options);
  }
  const std::string validity =
      info.validate ? (info.validate(g, ids, run.outputs) ? "valid" : "INVALID") : "n/a";

  const core::Measurement m = core::measure(run);
  const core::EdgeMeasurement em = core::measure_edges(g, run.radii);
  std::cout << options.algo << " on " << options.graph << " n=" << n
            << " seed=" << options.seed << " (" << options.semantics << ")\n"
            << "  outputs       : " << validity << "\n"
            << "  max radius    : " << m.max_radius << "\n"
            << "  avg radius    : " << m.avg_radius << "\n"
            << "  sum radius    : " << m.sum_radius << "\n"
            << "  gap max/avg   : " << core::measure_gap(m) << "\n"
            << "  edge avg time : " << em.avg_time << " over " << em.edges << " edges\n";
  if (run.messages > 0) {
    std::cout << "  messages/words: " << run.messages << " / " << run.words << "\n";
  }

  if (!options.csv_path.empty()) {
    std::ofstream file(options.csv_path);
    if (!file) {
      std::cerr << "cannot open " << options.csv_path << "\n";
      return 1;
    }
    support::CsvWriter csv(file);
    csv.write_row({"vertex", "id", "radius", "output"});
    for (std::size_t v = 0; v < n; ++v) {
      csv.write_row({std::to_string(v),
                     std::to_string(ids.id_of(static_cast<graph::Vertex>(v))),
                     std::to_string(run.radii[v]), std::to_string(run.outputs[v])});
    }
    std::cout << "  per-vertex CSV written to " << options.csv_path << "\n";
  }
  return 0;
}

// ------------------------------------------------------- sweep / drive ----

struct SweepCliOptions {
  core::ScenarioSpec spec;
  std::size_t threads = 0;
  std::size_t batch = 0;
  std::optional<std::pair<std::size_t, std::size_t>> shard;  ///< (index, count)
  std::string out_path;   ///< shard artefact destination (sweep --shard)
  std::string json_path;  ///< full-report destination (sweep / merge / drive)

  // drive only
  std::size_t shards = 2;
  std::size_t jobs = 0;     ///< concurrent subprocesses; 0 = min(shards, cores)
  std::size_t retries = 2;  ///< re-runs of a failed shard before giving up
  bool keep_artefacts = false;
  std::string workdir;
};

void sweep_usage() {
  std::cout
      << "usage: avglocal_cli sweep [--algo A] [--graph G[:param=v,...]] [--ns N1,N2,...]\n"
         "                          [--trials T] [--seed S] [--semantics induced|flooding]\n"
         "                          [--threads W] [--batch B] [--node-profile] [--json FILE]\n"
         "                          [--target-hw H [--min-trials M] [--adaptive-batch B]\n"
         "                          [--z Z]] [--shard I/K --out FILE]\n"
         "       avglocal_cli merge [--json FILE] SHARD.json...\n"
         "       avglocal_cli drive ...sweep flags... --shards K [--jobs J] [--retries R]\n"
         "                          [--workdir DIR] [--keep-artefacts]\n"
         "  `list` enumerates the algorithm and graph-family names. View and message\n"
         "  algorithms both sweep; the registry picks the engine. --threads parallelises\n"
         "  both: view sweeps share vertices across workers, message sweeps run one\n"
         "  engine per worker over disjoint trial ranges - results are byte-identical\n"
         "  for every thread count (message sweeps ignore --semantics).\n"
         "  --trials is the trial count - or, with --target-hw, the adaptive cap: trials\n"
         "  grow in batches until the avg-mean confidence half-width closes below H.\n"
         "  --shard I/K runs trial range I of K and writes a mergeable artefact; merge\n"
         "  and drive recombine artefacts bit-identically to the monolithic sweep.\n";
}

std::optional<SweepCliOptions> parse_sweep(int argc, char** argv, int first, bool drive) {
  SweepCliOptions options;
  options.spec.schedule.max_trials = 100;
  for (int i = first; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") return std::nullopt;
    if (arg == "--algo" && (value = next())) {
      options.spec.algorithm = *value;
    } else if (arg == "--graph" && (value = next())) {
      options.spec.family = graph::parse_family_spec(*value);
    } else if (arg == "--ns" && (value = next())) {
      const auto sizes = parse_size_list(*value);
      if (!sizes) {
        flag_error(*value, "--ns");
        return std::nullopt;
      }
      options.spec.ns = *sizes;
    } else if (arg == "--trials" && (value = next())) {
      if (!size_flag(*value, "--trials", options.spec.schedule.max_trials)) return std::nullopt;
    } else if (arg == "--seed" && (value = next())) {
      if (!u64_flag(*value, "--seed", options.spec.seed)) return std::nullopt;
    } else if (arg == "--semantics" && (value = next())) {
      options.spec.semantics = parse_semantics(*value);
    } else if (arg == "--threads" && (value = next())) {
      if (!size_flag(*value, "--threads", options.threads)) return std::nullopt;
    } else if (arg == "--batch" && (value = next())) {
      if (!size_flag(*value, "--batch", options.batch)) return std::nullopt;
    } else if (arg == "--node-profile") {
      options.spec.node_profile = true;
    } else if (arg == "--target-hw" && (value = next())) {
      if (!f64_flag(*value, "--target-hw", options.spec.schedule.target_half_width)) {
        return std::nullopt;
      }
    } else if (arg == "--min-trials" && (value = next())) {
      if (!size_flag(*value, "--min-trials", options.spec.schedule.min_trials)) {
        return std::nullopt;
      }
    } else if (arg == "--adaptive-batch" && (value = next())) {
      if (!size_flag(*value, "--adaptive-batch", options.spec.schedule.batch)) {
        return std::nullopt;
      }
    } else if (arg == "--z" && (value = next())) {
      if (!f64_flag(*value, "--z", options.spec.schedule.z)) return std::nullopt;
    } else if (arg == "--json" && (value = next())) {
      options.json_path = *value;
    } else if (!drive && arg == "--shard" && (value = next())) {
      const auto slash = value->find('/');
      std::size_t index = 0;
      std::size_t count = 0;
      if (slash == std::string::npos || !parse_u64(value->substr(0, slash)) ||
          !parse_u64(value->substr(slash + 1))) {
        std::cerr << "invalid value '" << *value << "' for --shard (expects I/K)\n";
        return std::nullopt;
      }
      index = static_cast<std::size_t>(*parse_u64(value->substr(0, slash)));
      count = static_cast<std::size_t>(*parse_u64(value->substr(slash + 1)));
      options.shard = {{index, count}};
    } else if (!drive && arg == "--out" && (value = next())) {
      options.out_path = *value;
    } else if (drive && arg == "--shards" && (value = next())) {
      if (!size_flag(*value, "--shards", options.shards)) return std::nullopt;
    } else if (drive && arg == "--jobs" && (value = next())) {
      if (!size_flag(*value, "--jobs", options.jobs)) return std::nullopt;
    } else if (drive && arg == "--retries" && (value = next())) {
      if (!size_flag(*value, "--retries", options.retries)) return std::nullopt;
    } else if (drive && arg == "--workdir" && (value = next())) {
      options.workdir = *value;
    } else if (drive && arg == "--keep-artefacts") {
      options.keep_artefacts = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return options;
}

int run_sweep_command_impl(int argc, char** argv) {
  const auto parsed = parse_sweep(argc, argv, 2, /*drive=*/false);
  if (!parsed) {
    sweep_usage();
    return 2;
  }
  const SweepCliOptions& options = *parsed;
  // Validate the whole workload - family, parameters, algorithm, schedule -
  // before any sweep work starts or any artefact file is opened.
  const core::ResolvedScenario resolved = core::resolve_scenario(options.spec);

  if (options.shard) {
    const auto [index, count] = *options.shard;
    if (options.out_path.empty()) {
      std::cerr << "--shard needs --out FILE for the artefact\n";
      return 2;
    }
    if (resolved.spec.schedule.adaptive()) {
      std::cerr << "adaptive schedules cannot be sharded: the trial count is decided by the\n"
                << "monolithic driver; drop --target-hw or run `sweep`/`drive` without --shard\n";
      return 2;
    }
    core::BatchedSweepOptions sweep = resolved.sweep_options();
    sweep.threads = options.threads;
    sweep.batch_size = options.batch;
    const auto plan =
        core::plan_shards(resolved.spec.ns.size(), sweep.trials, count);
    if (index >= plan.size()) {
      std::cerr << "shard " << index << " is empty: only " << plan.size()
                << " non-empty shards in this plan\n";
      return 2;
    }
    // Test-only failure injection for the drive retry path (exercised by
    // tests/test_cli_process.cpp and harmless otherwise): with
    // AVGLOCAL_TEST_FAIL_MARKER set, the first run of each shard drops a
    // marker file and fails - by nonzero exit, or by SIGKILL with
    // AVGLOCAL_TEST_FAIL_MODE=kill; retries find the marker and proceed
    // normally. MODE=always fails every attempt (exhausts the retry
    // budget).
    if (const char* marker = std::getenv("AVGLOCAL_TEST_FAIL_MARKER")) {
      const std::string marker_path = std::string(marker) + ".shard" + std::to_string(index);
      const char* mode_env = std::getenv("AVGLOCAL_TEST_FAIL_MODE");
      const std::string mode = mode_env ? mode_env : "";
      bool fail = mode == "always";
      if (!fail) {
        struct stat info;
        if (::stat(marker_path.c_str(), &info) != 0) {
          std::ofstream(marker_path).put('x');
          fail = true;
        }
      }
      if (fail) {
        if (mode == "kill") ::kill(::getpid(), SIGKILL);
        std::cerr << "injected failure for shard " << index << "\n";
        return 33;
      }
    }
    core::ShardDocument doc;
    doc.meta = core::scenario_plan_meta(resolved);
    doc.shard = plan[index];
    doc.points = core::run_scenario_shard(resolved, sweep, doc.shard);
    if (!write_text_file(options.out_path, core::shard_to_json(doc))) return 1;
    std::cout << "shard " << index << "/" << count << " (trials [" << doc.shard.trial_begin
              << ", " << doc.shard.trial_end << ")) written to " << options.out_path << "\n";
    return 0;
  }

  core::ScenarioExecution execution;
  execution.threads = options.threads;
  execution.batch_size = options.batch;
  const core::ScenarioResult result = core::run_scenario(resolved.spec, execution);
  print_points(result.points, result.spec.schedule.adaptive());
  if (!options.json_path.empty()) {
    if (!write_text_file(options.json_path, core::sweep_report_json(result.spec, result.points))) {
      return 1;
    }
    std::cout << "sweep report written to " << options.json_path << "\n";
  }
  return 0;
}

// --------------------------------------------------------------- merge ----

/// Rebuilds the report spec from a shard artefact: the embedded scenario
/// block when present, else a best-effort spec from the plan header (for
/// artefacts produced below the scenario layer).
core::ScenarioSpec spec_from_meta(const core::SweepPlanMeta& meta) {
  if (!meta.scenario.empty()) {
    core::ScenarioSpec spec = core::scenario_from_json(meta.scenario);
    // Version-2 scenario blocks predate the engine field; the meta default
    // ("view" - v2 artefacts had no other engine) keeps the re-emitted
    // report's scenario block self-describing.
    if (spec.engine.empty()) spec.engine = meta.engine;
    return spec;
  }
  core::ScenarioSpec spec;
  spec.family = meta.graph.empty() ? graph::FamilySpec{"unknown", {}}
                                   : graph::parse_family_spec(meta.graph);
  spec.algorithm = meta.algorithm;
  spec.engine = meta.engine;
  spec.ns = meta.ns;
  spec.semantics = meta.semantics;
  spec.seed = meta.seed;
  spec.schedule.max_trials = meta.trials;
  spec.quantile_probs = meta.quantile_probs;
  spec.node_profile = meta.node_profile;
  return spec;
}

std::vector<core::ScenarioPoint> wrap_merged_points(const core::ScenarioSpec& spec,
                                                    std::vector<core::BatchedSweepPoint> merged) {
  std::vector<core::ScenarioPoint> points;
  points.reserve(merged.size());
  for (auto& p : merged) {
    core::ScenarioPoint sp;
    // The shared TrialSchedule::half_width keeps this reconstruction
    // bit-identical to the monolithic run's reported value.
    sp.half_width = spec.schedule.half_width(p.avg_sd, p.trials);
    sp.converged = true;  // sharded plans are fixed-trial by construction
    sp.point = std::move(p);
    points.push_back(std::move(sp));
  }
  return points;
}

int run_merge_command_impl(int argc, char** argv) {
  std::string json_path;
  std::vector<std::string> artefacts;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") {
      sweep_usage();
      return 2;
    }
    if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown argument: " << arg << "\n";
      sweep_usage();
      return 2;
    } else {
      artefacts.push_back(arg);
    }
  }
  if (artefacts.empty()) {
    std::cerr << "merge needs at least one shard artefact\n";
    sweep_usage();
    return 2;
  }

  std::vector<core::ShardDocument> docs;
  docs.reserve(artefacts.size());
  for (const std::string& path : artefacts) {
    docs.push_back(core::parse_shard_json(read_text_file(path)));
  }
  const core::SweepPlanMeta meta = docs.front().meta;
  const core::ScenarioSpec spec = spec_from_meta(meta);
  const auto points = wrap_merged_points(spec, core::merge_shards(std::move(docs)));
  std::cout << "merged " << artefacts.size() << " shard(s): " << meta.algorithm << " on "
            << meta.graph << ", seed " << meta.seed << ", " << meta.trials << " trials\n";
  print_points(points, /*adaptive=*/false);
  if (!json_path.empty()) {
    if (!write_text_file(json_path, core::sweep_report_json(spec, points))) return 1;
    std::cout << "merged report written to " << json_path << "\n";
  }
  return 0;
}

// --------------------------------------------------------------- drive ----

std::string self_executable(const char* argv0) {
  char buf[4096];
  const ssize_t len = ::readlink("/proc/self/exe", buf, sizeof buf - 1);
  if (len > 0) {
    buf[len] = '\0';
    return std::string(buf);
  }
  return std::string(argv0);
}

pid_t spawn_process(const std::string& exe, const std::vector<std::string>& args) {
  std::vector<char*> argv;
  argv.reserve(args.size() + 1);
  for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
  argv.push_back(nullptr);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::execve(exe.c_str(), argv.data(), environ);
    std::perror("execve");
    std::_Exit(127);
  }
  return pid;
}

int run_drive_command_impl(int argc, char** argv) {
  const auto parsed = parse_sweep(argc, argv, 2, /*drive=*/true);
  if (!parsed) {
    sweep_usage();
    return 2;
  }
  const SweepCliOptions& options = *parsed;
  const core::ResolvedScenario resolved = core::resolve_scenario(options.spec);
  if (resolved.spec.schedule.adaptive()) {
    std::cerr << "drive runs fixed plans; drop --target-hw (adaptive sweeps are monolithic)\n";
    return 2;
  }
  if (options.shards < 1) {
    std::cerr << "--shards must be at least 1\n";
    return 2;
  }

  const std::size_t trials = resolved.spec.schedule.max_trials;
  const auto plan = core::plan_shards(resolved.spec.ns.size(), trials, options.shards);

  const std::size_t cores = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  const std::size_t jobs =
      std::max<std::size_t>(1, std::min(options.jobs == 0 ? cores : options.jobs, plan.size()));
  // Subprocesses share the machine: split the cores across concurrent jobs
  // unless the user pinned a per-shard thread count explicitly.
  const std::size_t child_threads =
      options.threads != 0 ? options.threads : std::max<std::size_t>(1, cores / jobs);

  bool created_workdir = false;
  std::string workdir = options.workdir;
  if (workdir.empty()) {
    std::string tmpl = "avglocal-drive-XXXXXX";
    if (::mkdtemp(tmpl.data()) == nullptr) {
      std::cerr << "cannot create work directory: " << std::strerror(errno) << "\n";
      return 1;
    }
    workdir = tmpl;
    created_workdir = true;
  } else if (::mkdir(workdir.c_str(), 0777) != 0 && errno != EEXIST) {
    std::cerr << "cannot create work directory " << workdir << ": " << std::strerror(errno)
              << "\n";
    return 1;
  }

  const std::string exe = self_executable(argv[0]);
  struct ShardJob {
    std::size_t index = 0;
    std::string artefact;
    std::size_t attempts = 0;
  };
  std::vector<ShardJob> shard_jobs(plan.size());
  std::deque<std::size_t> pending;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    shard_jobs[i].index = i;
    shard_jobs[i].artefact = workdir + "/shard-" + std::to_string(i) + ".json";
    pending.push_back(i);
  }

  const auto shard_args = [&](const ShardJob& job) {
    std::vector<std::string> args = {
        exe,
        "sweep",
        "--algo",
        resolved.spec.algorithm,
        "--graph",
        graph::family_spec_to_string(resolved.spec.family),
        "--ns",
        join_sizes(resolved.spec.ns),
        "--trials",
        std::to_string(trials),
        "--seed",
        std::to_string(resolved.spec.seed),
        "--semantics",
        local::to_string(resolved.spec.semantics),
        "--threads",
        std::to_string(child_threads),
        "--shard",
        std::to_string(job.index) + "/" + std::to_string(options.shards),
        "--out",
        job.artefact,
    };
    if (resolved.spec.node_profile) args.push_back("--node-profile");
    if (options.batch != 0) {
      args.push_back("--batch");
      args.push_back(std::to_string(options.batch));
    }
    return args;
  };

  std::map<pid_t, std::size_t> running;
  bool failed = false;
  while ((!pending.empty() || !running.empty()) && !failed) {
    while (!pending.empty() && running.size() < jobs) {
      const std::size_t index = pending.front();
      pending.pop_front();
      ShardJob& job = shard_jobs[index];
      ++job.attempts;
      const pid_t pid = spawn_process(exe, shard_args(job));
      if (pid < 0) {
        // A failed fork consumes an attempt exactly like a shard that
        // died after launching: the usual cause (transient resource
        // exhaustion) deserves the same retry budget, and exhausting it
        // fails the drive cleanly instead of aborting on the first EAGAIN.
        if (job.attempts <= options.retries) {
          std::cerr << "cannot fork shard " << index << " (attempt " << job.attempts
                    << "): " << std::strerror(errno) << "; retrying\n";
          pending.push_back(index);
          const timespec backoff{0, 50'000'000};  // let the pressure pass
          ::nanosleep(&backoff, nullptr);
        } else {
          std::cerr << "cannot fork shard " << index << " after " << job.attempts
                    << " attempts: " << std::strerror(errno) << "; giving up\n";
          failed = true;
        }
        break;
      }
      running.emplace(pid, index);
    }
    if (failed) break;
    if (running.empty()) {
      if (pending.empty()) break;
      continue;  // every fork failed this round; the backoff ran, relaunch
    }

    // Reap exactly one of OUR shards. waitpid(-1) would also collect
    // children the caller of this code happens to own (and, embedded in a
    // larger process, steal their exit statuses), so poll the tracked
    // pids with WNOHANG instead, napping between rounds. EINTR is a
    // retry, never a failure.
    pid_t pid = -1;
    int status = -1;
    while (pid < 0) {
      for (const auto& [candidate, candidate_index] : running) {
        int candidate_status = 0;
        const pid_t got = ::waitpid(candidate, &candidate_status, WNOHANG);
        if (got == candidate) {
          pid = candidate;
          status = candidate_status;
          break;
        }
        if (got < 0 && errno != EINTR) {
          // ECHILD (or anything unexpected) for a pid we believe we own:
          // someone else reaped it, so its artefact status is unknown -
          // feed it to the retry path as a failure (status stays -1,
          // which WIFEXITED rejects).
          std::cerr << "waitpid(" << candidate << ") failed: " << std::strerror(errno) << "\n";
          pid = candidate;
          break;
        }
        // got == 0: still running; got < 0 && EINTR: re-poll next round.
      }
      if (pid < 0) {
        const timespec nap{0, 20'000'000};  // 20ms between polling rounds
        ::nanosleep(&nap, nullptr);
      }
    }
    const auto it = running.find(pid);
    if (it == running.end()) continue;
    const std::size_t index = it->second;
    running.erase(it);
    const bool ok = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (ok) {
      std::cout << "shard " << index << "/" << options.shards << " done ("
                << shard_jobs[index].attempts << " attempt"
                << (shard_jobs[index].attempts == 1 ? "" : "s") << ")\n";
      continue;
    }
    if (shard_jobs[index].attempts <= options.retries) {
      std::cerr << "shard " << index << " failed (attempt " << shard_jobs[index].attempts
                << "); retrying\n";
      pending.push_back(index);
    } else {
      std::cerr << "shard " << index << " failed after " << shard_jobs[index].attempts
                << " attempts; giving up\n";
      failed = true;
    }
  }
  // Drain any children still running after a failure so nothing is left
  // writing into the work directory. Still pid-targeted, still EINTR-safe.
  for (const auto& [pid, index] : running) {
    int status = 0;
    while (::waitpid(pid, &status, 0) < 0 && errno == EINTR) {
    }
  }
  if (failed) {
    // Keep whatever the shards produced for post-mortem, but say where -
    // a silently accumulating mkdtemp directory per failed run would be
    // worse than the disk it costs.
    std::cerr << "partial shard artefacts left in " << workdir << " for inspection\n";
    return 1;
  }

  std::vector<core::ShardDocument> docs;
  docs.reserve(shard_jobs.size());
  for (const ShardJob& job : shard_jobs) {
    docs.push_back(core::parse_shard_json(read_text_file(job.artefact)));
  }
  const auto points = wrap_merged_points(resolved.spec, core::merge_shards(std::move(docs)));
  std::cout << "drive merged " << shard_jobs.size() << " shard(s): " << resolved.spec.algorithm
            << " on " << graph::family_spec_to_string(resolved.spec.family) << ", seed "
            << resolved.spec.seed << ", " << trials << " trials\n";
  print_points(points, /*adaptive=*/false);

  int exit_code = 0;
  if (!options.json_path.empty()) {
    if (!write_text_file(options.json_path, core::sweep_report_json(resolved.spec, points))) {
      exit_code = 1;
    } else {
      std::cout << "sweep report written to " << options.json_path << "\n";
    }
  }
  if (!options.keep_artefacts) {
    for (const ShardJob& job : shard_jobs) ::unlink(job.artefact.c_str());
    if (created_workdir) ::rmdir(workdir.c_str());
  } else {
    std::cout << "shard artefacts kept in " << workdir << "\n";
  }
  return exit_code;
}

// ------------------------------------------------------- serve / request ----

void serve_usage() {
  std::cout
      << "usage: avglocal_cli serve --socket PATH [--threads W] [--batch B]\n"
         "                          [--max-clients C]\n"
         "       avglocal_cli request --socket PATH [--op sweep|ping|stats|shutdown]\n"
         "                            [--connect-timeout-ms MS] ...sweep flags... [--json FILE]\n"
         "  serve keeps sweep engines resident behind a Unix-domain socket with a\n"
         "  content-addressed result cache: a repeated request is served from cache\n"
         "  with zero recomputation, a request for more trials of a cached workload\n"
         "  computes only the missing trial range, and every report is byte-identical\n"
         "  to a one-shot `sweep --json` run. Fixed trial schedules only (--target-hw\n"
         "  requests are rejected). SIGTERM/SIGINT shut the daemon down cleanly.\n"
         "  request sends one op and prints the response; for sweeps, --json FILE\n"
         "  saves the returned report (cmp-identical to the monolithic file).\n";
}

/// The daemon under the signal handler's hand. request_stop() is the only
/// call the handler makes - an atomic store plus shutdown(2), both
/// async-signal-safe. g_fabric is the fabric-serve coordinator's same
/// seam; at most one of the two is non-null in any given process.
core::Server* g_server = nullptr;
core::RemoteBackend* g_fabric = nullptr;

extern "C" void handle_stop_signal(int) {
  if (g_server != nullptr) g_server->request_stop();
  if (g_fabric != nullptr) g_fabric->request_stop();
}

/// No SA_RESTART: the blocked accept() must return (EINTR) so the accept
/// loop observes the stop flag the handler just set.
void install_stop_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGTERM, &action, nullptr);
  ::sigaction(SIGINT, &action, nullptr);
}

int run_serve_command_impl(int argc, char** argv) {
  core::ServeOptions options;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") {
      serve_usage();
      return 2;
    }
    if (arg == "--socket" && (value = next())) {
      options.socket_path = *value;
    } else if (arg == "--threads" && (value = next())) {
      if (!size_flag(*value, "--threads", options.threads)) return 2;
    } else if (arg == "--batch" && (value = next())) {
      if (!size_flag(*value, "--batch", options.batch_size)) return 2;
    } else if (arg == "--max-clients" && (value = next())) {
      if (!size_flag(*value, "--max-clients", options.max_clients)) return 2;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      serve_usage();
      return 2;
    }
  }
  if (options.socket_path.empty()) {
    std::cerr << "serve needs --socket PATH\n";
    serve_usage();
    return 2;
  }
  if (options.max_clients < 1) {
    std::cerr << "--max-clients must be at least 1\n";
    return 2;
  }

  core::Server server(options);
  server.start();
  g_server = &server;
  install_stop_handlers();

  std::cout << "serving on " << options.socket_path << "\n" << std::flush;
  server.run();
  g_server = nullptr;
  const core::ResultCacheStats stats = server.cache().stats();
  std::cout << "server stopped: " << stats.requests << " request(s), " << stats.full_hits
            << " full hit(s), " << stats.extensions << " extension(s), "
            << stats.trials_computed << " trial(s) computed\n";
  return 0;
}

// -------------------------------------------------------------- fabric ----

void fabric_usage() {
  std::cout
      << "usage: avglocal_cli fabric-serve --listen ENDPOINT ...sweep flags...\n"
         "                                 [--unit-trials U] [--straggler-ms MS]\n"
         "                                 [--max-workers W] [--json FILE]\n"
         "                                 [--endpoint-file FILE]\n"
         "       avglocal_cli fabric-worker --connect ENDPOINT [--threads W] [--batch B]\n"
         "                                  [--name NAME] [--connect-timeout-ms MS]\n"
         "  ENDPOINT is unix:PATH (or a bare path) or tcp:HOST:PORT (or HOST:PORT);\n"
         "  tcp port 0 binds an ephemeral port, reported on stdout and via\n"
         "  --endpoint-file. The coordinator decomposes the sweep into (point,\n"
         "  trial-range) units of --unit-trials trials (0 = trials/8) that idle\n"
         "  workers pull; a unit unfinished --straggler-ms after its grant is\n"
         "  re-dispatched, first result per unit wins, duplicates are discarded.\n"
         "  The merged report is byte-identical to `sweep --json` for any worker\n"
         "  count, steal order or mid-run worker death. Fixed schedules only.\n"
         "  SIGTERM/SIGINT drain the fabric: workers exit cleanly, the\n"
         "  coordinator reports `stopped before completion` and exits 1.\n";
}

int run_fabric_serve_command_impl(int argc, char** argv) {
  core::ScenarioSpec spec;
  spec.schedule.max_trials = 100;
  core::FabricOptions fabric;
  std::string listen;
  std::string json_path;
  std::string endpoint_file;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") {
      fabric_usage();
      return 2;
    }
    if (arg == "--listen" && (value = next())) {
      listen = *value;
    } else if (arg == "--unit-trials" && (value = next())) {
      if (!size_flag(*value, "--unit-trials", fabric.unit_trials)) return 2;
    } else if (arg == "--straggler-ms" && (value = next())) {
      if (!u64_flag(*value, "--straggler-ms", fabric.straggler_ms)) return 2;
    } else if (arg == "--max-workers" && (value = next())) {
      if (!size_flag(*value, "--max-workers", fabric.max_workers)) return 2;
    } else if (arg == "--json" && (value = next())) {
      json_path = *value;
    } else if (arg == "--endpoint-file" && (value = next())) {
      endpoint_file = *value;
    } else if (arg == "--algo" && (value = next())) {
      spec.algorithm = *value;
    } else if (arg == "--graph" && (value = next())) {
      spec.family = graph::parse_family_spec(*value);
    } else if (arg == "--ns" && (value = next())) {
      const auto sizes = parse_size_list(*value);
      if (!sizes) {
        flag_error(*value, "--ns");
        return 2;
      }
      spec.ns = *sizes;
    } else if (arg == "--trials" && (value = next())) {
      if (!size_flag(*value, "--trials", spec.schedule.max_trials)) return 2;
    } else if (arg == "--seed" && (value = next())) {
      if (!u64_flag(*value, "--seed", spec.seed)) return 2;
    } else if (arg == "--semantics" && (value = next())) {
      spec.semantics = parse_semantics(*value);
    } else if (arg == "--node-profile") {
      spec.node_profile = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      fabric_usage();
      return 2;
    }
  }
  if (listen.empty()) {
    std::cerr << "fabric-serve needs --listen ENDPOINT\n";
    fabric_usage();
    return 2;
  }
  if (fabric.max_workers < 1) {
    std::cerr << "--max-workers must be at least 1\n";
    return 2;
  }
  fabric.endpoint = support::parse_endpoint(listen);

  core::RemoteBackend backend(spec, fabric);
  backend.start();
  g_fabric = &backend;
  install_stop_handlers();

  // The resolved endpoint (TCP port 0 becomes the real port) goes to
  // stdout and, for launcher scripts, to --endpoint-file.
  const std::string endpoint = backend.endpoint().to_string();
  if (!endpoint_file.empty() && !write_text_file(endpoint_file, endpoint)) return 1;
  std::cout << "fabric serving on " << endpoint << "\n" << std::flush;

  const core::RemoteSweepOutcome outcome = backend.run();
  g_fabric = nullptr;
  std::cout << "fabric: " << outcome.stats.workers_seen << " worker(s), "
            << outcome.stats.units_granted << " grant(s), " << outcome.stats.redispatches
            << " re-dispatch(es), " << outcome.stats.duplicates_discarded
            << " duplicate(s) discarded\n";
  if (!outcome.complete) {
    std::cerr << "fabric stopped before completion\n";
    return 1;
  }
  print_points(outcome.result.points, /*adaptive=*/false);
  if (!json_path.empty()) {
    // write_text_file appends the same trailing newline the sweep path
    // does, so the saved file is cmp-identical to `sweep --json`'s.
    if (!write_text_file(json_path, outcome.report)) return 1;
    std::cout << "sweep report written to " << json_path << "\n";
  }
  return 0;
}

int run_fabric_worker_command_impl(int argc, char** argv) {
  core::FabricWorkerOptions options;
  std::string connect;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") {
      fabric_usage();
      return 2;
    }
    if (arg == "--connect" && (value = next())) {
      connect = *value;
    } else if (arg == "--threads" && (value = next())) {
      if (!size_flag(*value, "--threads", options.threads)) return 2;
    } else if (arg == "--batch" && (value = next())) {
      if (!size_flag(*value, "--batch", options.batch)) return 2;
    } else if (arg == "--name" && (value = next())) {
      options.name = *value;
    } else if (arg == "--connect-timeout-ms" && (value = next())) {
      std::uint64_t ms = 0;
      if (!u64_flag(*value, "--connect-timeout-ms", ms)) return 2;
      options.connect_timeout_ms = static_cast<long>(ms);
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      fabric_usage();
      return 2;
    }
  }
  if (connect.empty()) {
    std::cerr << "fabric-worker needs --connect ENDPOINT\n";
    fabric_usage();
    return 2;
  }
  options.endpoint = support::parse_endpoint(connect);

  // Test-only failure injection for the straggler re-dispatch path (the
  // fabric twin of the sweep --shard hooks, exercised by
  // tests/test_cli_process.cpp): with AVGLOCAL_TEST_FAIL_MARKER set, this
  // worker's first granted unit drops a marker file and dies mid-unit -
  // after the grant, before any artefact - which is exactly the straggler
  // the coordinator must re-dispatch. MODE=kill dies by SIGKILL, anything
  // else by exit 33; MODE=always dies on every grant (the worker is then
  // useless and the others must carry the sweep).
  if (const char* marker = std::getenv("AVGLOCAL_TEST_FAIL_MARKER")) {
    const std::string marker_path = std::string(marker) + ".worker-" + options.name;
    const char* mode_env = std::getenv("AVGLOCAL_TEST_FAIL_MODE");
    const std::string mode = mode_env ? mode_env : "";
    options.on_grant = [marker_path, mode](const core::WorkUnit&) {
      bool fail = mode == "always";
      if (!fail) {
        struct stat info;
        if (::stat(marker_path.c_str(), &info) != 0) {
          std::ofstream(marker_path).put('x');
          fail = true;
        }
      }
      if (!fail) return;
      if (mode == "kill") ::kill(::getpid(), SIGKILL);
      std::_Exit(33);
    };
  }

  const core::FabricWorkerOutcome outcome = core::run_fabric_worker(options);
  std::cout << "worker " << options.name << ": " << outcome.units << " unit(s), "
            << outcome.trials << " trial(s)"
            << (outcome.drained ? " (drained by coordinator)" : "") << "\n";
  return 0;
}

int run_request_command_impl(int argc, char** argv) {
  std::string socket_path;
  std::string op = "sweep";
  std::string json_path;
  std::uint64_t connect_timeout_ms = 5000;
  core::ScenarioSpec spec;
  spec.schedule.max_trials = 100;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    std::optional<std::string> value;
    if (arg == "--help" || arg == "-h") {
      serve_usage();
      return 2;
    }
    if (arg == "--socket" && (value = next())) {
      socket_path = *value;
    } else if (arg == "--connect-timeout-ms" && (value = next())) {
      if (!u64_flag(*value, "--connect-timeout-ms", connect_timeout_ms)) return 2;
    } else if (arg == "--op" && (value = next())) {
      op = *value;
    } else if (arg == "--json" && (value = next())) {
      json_path = *value;
    } else if (arg == "--algo" && (value = next())) {
      spec.algorithm = *value;
    } else if (arg == "--graph" && (value = next())) {
      spec.family = graph::parse_family_spec(*value);
    } else if (arg == "--ns" && (value = next())) {
      const auto sizes = parse_size_list(*value);
      if (!sizes) {
        flag_error(*value, "--ns");
        return 2;
      }
      spec.ns = *sizes;
    } else if (arg == "--trials" && (value = next())) {
      if (!size_flag(*value, "--trials", spec.schedule.max_trials)) return 2;
    } else if (arg == "--seed" && (value = next())) {
      if (!u64_flag(*value, "--seed", spec.seed)) return 2;
    } else if (arg == "--semantics" && (value = next())) {
      spec.semantics = parse_semantics(*value);
    } else if (arg == "--node-profile") {
      spec.node_profile = true;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      serve_usage();
      return 2;
    }
  }
  if (socket_path.empty()) {
    std::cerr << "request needs --socket PATH\n";
    serve_usage();
    return 2;
  }
  if (op != "sweep" && op != "ping" && op != "stats" && op != "shutdown") {
    std::cerr << "unknown op '" << op << "' (sweep|ping|stats|shutdown)\n";
    return 2;
  }

  support::JsonWriter json;
  json.begin_object();
  json.key("op").value(op);
  if (op == "sweep") {
    json.key("scenario");
    core::write_scenario_json(json, spec);
  }
  json.end_object();

  // A request that raced its daemon's startup used to need a caller-side
  // poll loop; connect_with_retry rides out the ENOENT / ECONNREFUSED
  // window with bounded backoff instead, and throws (-> exit 1) only once
  // --connect-timeout-ms has elapsed with nothing listening.
  support::UnixStream stream = support::Stream::connect_with_retry(
      support::parse_endpoint(socket_path), static_cast<long>(connect_timeout_ms));
  if (!stream.write_line(json.str())) {
    std::cerr << "cannot send request to " << socket_path << "\n";
    return 1;
  }
  std::string line;
  if (!stream.read_line(line)) {
    std::cerr << "daemon closed the connection without a response\n";
    return 1;
  }
  const support::JsonValue response = support::parse_json(line);
  if (!response.at("ok").as_bool()) {
    std::cerr << "error: " << response.at("error").as_string() << "\n";
    return 1;
  }
  if (op != "sweep") {
    std::cout << line << "\n";
    return 0;
  }
  const std::string& report = response.at("report").as_string();
  std::cout << "key " << response.at("key").as_string() << " "
            << (response.at("warm").as_bool() ? "warm (served from cache)" : "computed") << ", "
            << response.at("trials_computed").as_u64() << " trial(s) computed\n";
  if (!json_path.empty()) {
    // write_text_file appends the same trailing newline the sweep path
    // does, so the saved file is cmp-identical to `sweep --json`'s.
    if (!write_text_file(json_path, report)) return 1;
    std::cout << "sweep report written to " << json_path << "\n";
  } else {
    std::cout << report << "\n";
  }
  return 0;
}

// ---------------------------------------------------------------- main ----

/// Sweep plans assemble many moving parts (size lists, graph families,
/// shard artefacts), so configuration errors surface as exceptions from
/// deep inside the library; report them as errors, not aborts.
int run_guarded(int (*command)(int, char**), int argc, char** argv) {
  try {
    return command(argc, argv);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

int run_single_guarded(int argc, char** argv) {
  const auto parsed = parse_run(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  try {
    return run_single_impl(*parsed);
  } catch (const std::exception& error) {
    std::cerr << "error: " << error.what() << "\n";
    return 1;
  }
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "list") == 0) return run_list_command();
  if (argc > 1 && std::strcmp(argv[1], "sweep") == 0) {
    return run_guarded(run_sweep_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "merge") == 0) {
    return run_guarded(run_merge_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "drive") == 0) {
    return run_guarded(run_drive_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "serve") == 0) {
    return run_guarded(run_serve_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "request") == 0) {
    return run_guarded(run_request_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "fabric-serve") == 0) {
    return run_guarded(run_fabric_serve_command_impl, argc, argv);
  }
  if (argc > 1 && std::strcmp(argv[1], "fabric-worker") == 0) {
    return run_guarded(run_fabric_worker_command_impl, argc, argv);
  }
  return run_single_guarded(argc, argv);
}
