// avglocal_cli: run any bundled LOCAL algorithm on any graph family from
// the command line and report both measures (optionally per-vertex CSV).
//
//   avglocal_cli --algo largest-id --graph cycle --n 1024 --seed 7
//   avglocal_cli --algo cv3 --graph cycle --n 4096 --csv radii.csv
//   avglocal_cli --algo local3 --graph cycle --n 512
//   avglocal_cli --algo mis --graph cycle --n 256 --semantics flooding
//
// Algorithms: largest-id | largest-id-ua | cv3 | mis | local3 (message based)
// Graphs:     cycle | path | tree | grid | torus | gnp | complete
#include <cmath>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "algo/cole_vishkin.hpp"
#include "algo/largest_id.hpp"
#include "algo/local_colouring.hpp"
#include "algo/mis_ring.hpp"
#include "algo/validity.hpp"
#include "core/measure.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/csv.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

struct Options {
  std::string algo = "largest-id";
  std::string graph = "cycle";
  std::size_t n = 256;
  std::uint64_t seed = 1;
  std::string semantics = "induced";
  std::string csv_path;
};

void usage() {
  std::cout << "usage: avglocal_cli [--algo A] [--graph G] [--n N] [--seed S]\n"
               "                    [--semantics induced|flooding] [--csv FILE]\n"
               "  algos : largest-id largest-id-ua cv3 mis local3\n"
               "  graphs: cycle path tree grid torus gnp complete\n";
}

std::optional<Options> parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::optional<std::string> {
      if (i + 1 >= argc) return std::nullopt;
      return std::string(argv[++i]);
    };
    if (arg == "--help" || arg == "-h") return std::nullopt;
    std::optional<std::string> value;
    if (arg == "--algo" && (value = next())) {
      options.algo = *value;
    } else if (arg == "--graph" && (value = next())) {
      options.graph = *value;
    } else if (arg == "--n" && (value = next())) {
      options.n = std::stoull(*value);
    } else if (arg == "--seed" && (value = next())) {
      options.seed = std::stoull(*value);
    } else if (arg == "--semantics" && (value = next())) {
      options.semantics = *value;
    } else if (arg == "--csv" && (value = next())) {
      options.csv_path = *value;
    } else {
      std::cerr << "unknown or incomplete argument: " << arg << "\n";
      return std::nullopt;
    }
  }
  return options;
}

graph::Graph make_graph(const Options& options, support::Xoshiro256& rng) {
  const std::size_t n = options.n;
  if (options.graph == "cycle") return graph::make_cycle(n);
  if (options.graph == "path") return graph::make_path(n);
  if (options.graph == "tree") return graph::make_random_tree(n, rng);
  if (options.graph == "grid") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return graph::make_grid(side, side);
  }
  if (options.graph == "torus") {
    const auto side = static_cast<std::size_t>(std::sqrt(static_cast<double>(n)));
    return graph::make_torus(side, side);
  }
  if (options.graph == "gnp") {
    return graph::make_gnp_connected(n, 8.0 / static_cast<double>(n), rng);
  }
  if (options.graph == "complete") return graph::make_complete(n);
  throw std::invalid_argument("unknown graph family: " + options.graph);
}

}  // namespace

int main(int argc, char** argv) {
  const auto parsed = parse(argc, argv);
  if (!parsed) {
    usage();
    return 2;
  }
  const Options& options = *parsed;

  support::Xoshiro256 rng(options.seed);
  const graph::Graph g = make_graph(options, rng);
  const std::size_t n = g.vertex_count();
  const graph::IdAssignment ids = graph::IdAssignment::random(n, rng);

  local::ViewEngineOptions view_options;
  view_options.semantics = options.semantics == "flooding"
                               ? local::ViewSemantics::kFloodingKnowledge
                               : local::ViewSemantics::kInducedBall;

  local::RunResult run;
  std::string validity = "n/a";
  if (options.algo == "largest-id") {
    run = local::run_views(g, ids, algo::make_largest_id_view(), view_options);
    validity = algo::is_valid_largest_id(ids, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "largest-id-ua") {
    run = local::run_views(g, ids, algo::make_largest_id_universe_aware_view(),
                           view_options);
    validity = algo::is_valid_largest_id(ids, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "cv3") {
    run = local::run_views(g, ids, algo::make_cole_vishkin_view(n), view_options);
    validity = algo::is_valid_colouring(g, run.outputs, 3) ? "valid" : "INVALID";
  } else if (options.algo == "mis") {
    run = local::run_views(g, ids, algo::make_mis_ring_view(n), view_options);
    validity = algo::is_maximal_independent_set(g, run.outputs) ? "valid" : "INVALID";
  } else if (options.algo == "local3") {
    local::EngineOptions engine_options;
    engine_options.max_rounds = 1'000'000;
    run = local::run_messages(g, ids, algo::make_local_three_colouring(), engine_options);
    validity = algo::is_valid_colouring(g, run.outputs, 3) ? "valid" : "INVALID";
  } else {
    std::cerr << "unknown algorithm: " << options.algo << "\n";
    usage();
    return 2;
  }

  const core::Measurement m = core::measure(run);
  std::cout << options.algo << " on " << options.graph << " n=" << n
            << " seed=" << options.seed << " (" << options.semantics << ")\n"
            << "  outputs       : " << validity << "\n"
            << "  max radius    : " << m.max_radius << "\n"
            << "  avg radius    : " << m.avg_radius << "\n"
            << "  sum radius    : " << m.sum_radius << "\n"
            << "  gap max/avg   : " << core::measure_gap(m) << "\n";
  if (run.messages > 0) {
    std::cout << "  messages/words: " << run.messages << " / " << run.words << "\n";
  }

  if (!options.csv_path.empty()) {
    std::ofstream file(options.csv_path);
    if (!file) {
      std::cerr << "cannot open " << options.csv_path << "\n";
      return 1;
    }
    support::CsvWriter csv(file);
    csv.write_row({"vertex", "id", "radius", "output"});
    for (std::size_t v = 0; v < n; ++v) {
      csv.write_row({std::to_string(v),
                     std::to_string(ids.id_of(static_cast<graph::Vertex>(v))),
                     std::to_string(run.radii[v]), std::to_string(run.outputs[v])});
    }
    std::cout << "  per-vertex CSV written to " << options.csv_path << "\n";
  }
  return 0;
}
