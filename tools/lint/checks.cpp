#include "checks.hpp"

#include <algorithm>
#include <array>
#include <cstddef>
#include <string_view>
#include <unordered_set>

namespace avglocal::lint {
namespace {

bool path_contains(const std::string& path, std::string_view needle) {
  return path.find(needle) != std::string::npos;
}

bool is_float_literal(const std::string& text) {
  const bool hex = text.size() > 1 && text[0] == '0' && (text[1] == 'x' || text[1] == 'X');
  if (hex) return text.find('p') != std::string::npos || text.find('P') != std::string::npos;
  if (text.find('.') != std::string::npos) return true;
  return text.find('e') != std::string::npos || text.find('E') != std::string::npos;
}

// ------------------------------------------------------------------------
// Function structure recovery.
//
// The float-accumulation and hot-path-alloc checks need to know which
// tokens live inside which function body. A brace-matching pass classifies
// each `{`: a brace preceded (modulo trailing qualifiers and a trailing
// return type) by a balanced `(...)` parameter list is a function body; the
// identifier before the `(` is the function's name, and the tokens between
// the previous statement boundary and the `(` are its declaration head,
// where an AVGLOCAL_HOT annotation would sit. Lambdas are bodies too (name
// "<lambda>"); a lambda inside a hot function inherits hotness, so hiding
// an allocation in a nested lambda still fires.
// ------------------------------------------------------------------------

struct FunctionSpan {
  std::string name;        ///< unqualified name, or "<lambda>"
  bool hot = false;        ///< declaration head contains AVGLOCAL_HOT
  std::size_t body_begin;  ///< token index of `{`
  std::size_t body_end;    ///< token index one past the matching `}`
};

bool is_punct(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kPunct && t.text == text;
}

bool is_ident(const Token& t, std::string_view text) {
  return t.kind == TokenKind::kIdentifier && t.text == text;
}

const std::unordered_set<std::string> kControlKeywords = {
    "if", "for", "while", "switch", "catch", "return", "sizeof", "alignof", "decltype",
};

std::vector<FunctionSpan> index_functions(const std::vector<Token>& toks) {
  std::vector<FunctionSpan> spans;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!is_punct(toks[i], "{")) continue;

    // Walk back over tokens that may legally sit between the parameter
    // list and the body: cv/ref qualifiers, noexcept(...), a trailing
    // return type, and constructor init lists. Bounded window so a
    // pathological file cannot go quadratic.
    std::size_t k = i;
    std::size_t paren = 0;
    bool found_params = false;
    std::size_t lparen = 0;
    for (std::size_t steps = 0; k > 0 && steps < 256; ++steps) {
      --k;
      const Token& t = toks[k];
      if (is_punct(t, ")")) {
        ++paren;
      } else if (is_punct(t, "(")) {
        if (paren == 0) break;  // unbalanced: inside an initializer
        --paren;
        if (paren == 0) {
          found_params = true;
          lparen = k;
          break;
        }
      } else if (paren == 0) {
        // Between `)` and `{` only qualifier-ish tokens may appear:
        // identifiers cover cv/ref/noexcept qualifiers, trailing return
        // types and ctor init-list member names; the punctuator list
        // covers "->", "::", template angles and init-list braces.
        const bool ok = t.kind == TokenKind::kIdentifier
                            ? true
                            : (is_punct(t, ">") || is_punct(t, "<") || is_punct(t, "-") ||
                               is_punct(t, ":") || is_punct(t, ",") || is_punct(t, "::") ||
                               is_punct(t, "&") || is_punct(t, "*") || is_punct(t, "[") ||
                               is_punct(t, "]") || is_punct(t, "{") || is_punct(t, "}"));
        if (is_punct(t, ";")) break;  // statement boundary: not a function body
        if (!ok) break;
        if (is_punct(t, "{") || is_punct(t, "}")) break;  // block boundary
      }
    }
    if (!found_params || lparen == 0) continue;

    // The token before `(`: control keyword -> not a function; `]` ->
    // lambda; identifier (or operator symbol) -> function name.
    const Token& before = toks[lparen - 1];
    std::string name;
    std::size_t head_end = lparen;  // one past the last declaration token
    if (before.kind == TokenKind::kIdentifier) {
      if (kControlKeywords.count(before.text) != 0) continue;
      name = before.text;
    } else if (is_punct(before, "]")) {
      name = "<lambda>";
    } else if (before.kind == TokenKind::kPunct && lparen >= 2 &&
               is_ident(toks[lparen - 2], "operator")) {
      name = "operator" + before.text;
    } else {
      continue;
    }

    // Declaration head: back from the name to the previous statement or
    // block boundary; AVGLOCAL_HOT must appear there to mark the function
    // hot. Lambdas have no head of their own.
    bool hot = false;
    if (name != "<lambda>") {
      std::size_t h = head_end;
      for (std::size_t steps = 0; h > 0 && steps < 64; ++steps) {
        --h;
        const Token& t = toks[h];
        if (is_punct(t, ";") || is_punct(t, "}") || is_punct(t, "{")) break;
        if (is_ident(t, "AVGLOCAL_HOT")) {
          hot = true;
          break;
        }
      }
    }

    // Find the matching `}` of the body.
    std::size_t depth = 0;
    std::size_t end = i;
    for (; end < toks.size(); ++end) {
      if (is_punct(toks[end], "{")) ++depth;
      if (is_punct(toks[end], "}")) {
        --depth;
        if (depth == 0) {
          ++end;
          break;
        }
      }
    }
    spans.push_back({std::move(name), hot, i, end});
  }
  return spans;
}

/// True when token index `i` lies inside any span satisfying `pred`.
template <typename Pred>
bool inside_any(const std::vector<FunctionSpan>& spans, std::size_t i, Pred&& pred) {
  for (const FunctionSpan& s : spans) {
    if (i > s.body_begin && i + 1 < s.body_end && pred(s)) return true;
  }
  return false;
}

/// A lambda span is hot when some enclosing named span is hot.
bool in_hot_context(const std::vector<FunctionSpan>& spans, std::size_t i) {
  return inside_any(spans, i, [](const FunctionSpan& s) { return s.hot; });
}

bool in_merge_context(const std::vector<FunctionSpan>& spans, std::size_t i) {
  return inside_any(spans, i,
                    [](const FunctionSpan& s) { return s.name == "merge" || s.name == "append"; });
}

/// Merge-like spans for the arrival-order check: wider than
/// in_merge_context's exact names, because the fabric grew merge_*,
/// *_append and accumulate_* helpers that combine partials under other
/// names - any function that merges is in scope.
bool in_merge_like_context(const std::vector<FunctionSpan>& spans, std::size_t i) {
  return inside_any(spans, i, [](const FunctionSpan& s) {
    return s.name.find("merge") != std::string::npos ||
           s.name.find("append") != std::string::npos ||
           s.name.find("accumulate") != std::string::npos;
  });
}

// ------------------------------------------------------------------------
// Reporter plumbing.
// ------------------------------------------------------------------------

class Reporter {
 public:
  Reporter(const SourceFile& file, std::string check, std::vector<Diagnostic>& out)
      : file_(file), check_(std::move(check)), out_(out) {}

  void report(const Token& at, std::string message) {
    if (file_.allowed(check_, at.line)) return;
    out_.push_back({file_.path, at.line, at.col, check_, std::move(message)});
  }

 private:
  const SourceFile& file_;
  std::string check_;
  std::vector<Diagnostic>& out_;
};

// ------------------------------------------------------------------------
// Check 1: raw-entropy.
// ------------------------------------------------------------------------

void check_raw_entropy(const SourceFile& file, const std::vector<FunctionSpan>&,
                       std::vector<Diagnostic>& out) {
  // support/rng.* is the one sanctioned home for randomness plumbing.
  if (path_contains(file.path, "support/rng.")) return;
  Reporter r(file, "raw-entropy", out);

  // POSIX random() is deliberately absent: the project's own deterministic
  // factories are named `random(...)` (IdAssignment::random and friends),
  // and the libc function's entropy twin is already covered by rand/srand.
  static const std::unordered_set<std::string> kEntropyCalls = {
      "rand", "srand", "time", "clock", "getpid", "gettimeofday", "timespec_get",
  };
  // Wall clocks are entropy when they feed values; the monotonic
  // steady_clock stays legal for phase timing (it never enters artefacts).
  static const std::unordered_set<std::string> kEntropyTypes = {
      "random_device", "system_clock", "high_resolution_clock",
  };

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (kEntropyTypes.count(t.text) != 0) {
      r.report(t, "'" + t.text + "' is a raw entropy source; derive every random quantity from " +
                      "a named seed via support/rng.* instead");
      continue;
    }
    if (kEntropyCalls.count(t.text) != 0 && i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      // Member accesses (obj.random(...)) still count: naming a function
      // after an entropy source on a determinism-contract codebase is
      // asking for trouble; suppress explicitly if truly benign.
      r.report(t, "call to '" + t.text + "()' injects wall-clock/process entropy; " +
                      "deterministic streams must come from support/rng.*");
      continue;
    }
    // Seeding from object addresses: reinterpret_cast<uintptr_t>(&x).
    if (t.text == "reinterpret_cast" && i + 2 < toks.size() && is_punct(toks[i + 1], "<")) {
      for (std::size_t k = i + 2; k < std::min(toks.size(), i + 8); ++k) {
        if (is_punct(toks[k], ">")) break;
        if (toks[k].kind == TokenKind::kIdentifier &&
            (toks[k].text == "uintptr_t" || toks[k].text == "intptr_t")) {
          r.report(t, "reinterpret_cast of a pointer to an integer: addresses are ASLR entropy "
                      "and must never feed seeds or result values");
          break;
        }
      }
    }
  }
}

// ------------------------------------------------------------------------
// Check 2: unordered-iteration.
// ------------------------------------------------------------------------

void check_unordered_iteration(const SourceFile& file, const std::vector<FunctionSpan>&,
                               std::vector<Diagnostic>& out) {
  Reporter r(file, "unordered-iteration", out);
  const auto& toks = file.tokens;

  static const std::unordered_set<std::string> kUnorderedTypes = {
      "unordered_map", "unordered_set", "unordered_multimap", "unordered_multiset",
  };

  // Pass 1: names declared with an unordered type anywhere in the file
  // (locals, members, parameters - scoping finer than that buys nothing
  // for a ban).
  std::unordered_set<std::string> unordered_vars;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || kUnorderedTypes.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t k = i + 1;
    if (k < toks.size() && is_punct(toks[k], "<")) {
      std::size_t depth = 0;
      for (; k < toks.size(); ++k) {
        if (is_punct(toks[k], "<")) ++depth;
        if (is_punct(toks[k], ">")) {
          if (--depth == 0) {
            ++k;
            break;
          }
        }
      }
    }
    while (k < toks.size() && (is_punct(toks[k], "&") || is_punct(toks[k], "*") ||
                               is_ident(toks[k], "const"))) {
      ++k;
    }
    if (k < toks.size() && toks[k].kind == TokenKind::kIdentifier &&
        kControlKeywords.count(toks[k].text) == 0) {
      unordered_vars.insert(toks[k].text);
    }
  }

  const auto mentions_unordered = [&](std::size_t begin, std::size_t end) {
    for (std::size_t k = begin; k < end; ++k) {
      if (toks[k].kind != TokenKind::kIdentifier) continue;
      if (kUnorderedTypes.count(toks[k].text) != 0) return true;
      if (unordered_vars.count(toks[k].text) != 0) return true;
    }
    return false;
  };

  // Pass 2a: range-for over an unordered container.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "for") || !is_punct(toks[i + 1], "(")) continue;
    std::size_t depth = 0;
    std::size_t colon = 0;
    std::size_t close = 0;
    for (std::size_t k = i + 1; k < toks.size(); ++k) {
      if (is_punct(toks[k], "(")) ++depth;
      if (is_punct(toks[k], ")")) {
        if (--depth == 0) {
          close = k;
          break;
        }
      }
      if (depth == 1 && is_punct(toks[k], ":") && colon == 0) colon = k;
    }
    if (colon == 0 || close == 0) continue;
    if (mentions_unordered(colon + 1, close)) {
      r.report(toks[i], "range-for over an unordered container: iteration order is "
                        "implementation-defined and leaks into anything accumulated here; use a "
                        "sorted/indexed container on result paths");
    }
  }

  // Pass 2b: explicit iterator walks - name.begin() / cbegin / rbegin.
  // "->" lexes as two tokens ('-' '>'), so the member name sits one
  // further along on pointer access.
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier || unordered_vars.count(toks[i].text) == 0) {
      continue;
    }
    std::size_t member = 0;
    if (is_punct(toks[i + 1], ".")) {
      member = i + 2;
    } else if (i + 3 < toks.size() && is_punct(toks[i + 1], "-") && is_punct(toks[i + 2], ">")) {
      member = i + 3;
    } else {
      continue;
    }
    const std::string& m = toks[member].text;
    if (m == "begin" || m == "cbegin" || m == "rbegin" || m == "crbegin") {
      r.report(toks[i], "iterator over unordered container '" + toks[i].text +
                            "': traversal order is nondeterministic");
    }
  }
}

// ------------------------------------------------------------------------
// Check 3: float-accumulation (merge/append bodies in src/core + src/local
// must stay exact integers).
// ------------------------------------------------------------------------

void check_float_accumulation(const SourceFile& file, const std::vector<FunctionSpan>& spans,
                              std::vector<Diagnostic>& out) {
  if (!path_contains(file.path, "core/") && !path_contains(file.path, "local/")) return;
  Reporter r(file, "float-accumulation", out);
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!in_merge_context(spans, i)) continue;
    const Token& t = toks[i];
    if (t.kind == TokenKind::kIdentifier && (t.text == "double" || t.text == "float")) {
      r.report(t, "floating point inside a merge/append path: accumulator merges must stay "
                  "exact integers so shard/worker partials combine bit-identically; convert to "
                  "double only at finalize time");
    } else if (t.kind == TokenKind::kNumber && is_float_literal(t.text)) {
      r.report(t, "floating literal '" + t.text + "' inside a merge/append path: accumulator "
                                                  "merges must stay exact integers");
    }
  }
}

// ------------------------------------------------------------------------
// Check 4: hot-path-alloc (AVGLOCAL_HOT bodies must not allocate).
// ------------------------------------------------------------------------

void check_hot_path_alloc(const SourceFile& file, const std::vector<FunctionSpan>& spans,
                          std::vector<Diagnostic>& out) {
  Reporter r(file, "hot-path-alloc", out);
  const auto& toks = file.tokens;

  static const std::unordered_set<std::string> kAllocCalls = {
      "push_back", "emplace_back", "emplace", "insert",      "resize",
      "reserve",   "make_unique",  "make_shared", "to_string",
  };

  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (!in_hot_context(spans, i)) continue;
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "new" || t.text == "delete") {
      r.report(t, "'" + t.text + "' inside an AVGLOCAL_HOT function: hot paths must run "
                                 "allocation-free after warm-up (the runtime alloc_hook gates "
                                 "enforce the same contract dynamically)");
      continue;
    }
    if (kAllocCalls.count(t.text) != 0 && i + 1 < toks.size() && is_punct(toks[i + 1], "(")) {
      r.report(t, "'" + t.text + "()' can allocate inside an AVGLOCAL_HOT function; size "
                                 "buffers during attach/warm-up instead");
      continue;
    }
    if (t.text == "function" && i >= 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2], "std")) {
      r.report(t, "std::function inside an AVGLOCAL_HOT function can heap-allocate its "
                  "callable; take a template parameter or function_ref-style view instead");
    }
  }
}

// ------------------------------------------------------------------------
// Check 5: thread-id-dependence.
// ------------------------------------------------------------------------

void check_thread_id(const SourceFile& file, const std::vector<FunctionSpan>&,
                     std::vector<Diagnostic>& out) {
  Reporter r(file, "thread-id-dependence", out);
  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    const Token& t = toks[i];
    if (t.kind != TokenKind::kIdentifier) continue;
    if (t.text == "pthread_self") {
      r.report(t, "pthread_self(): worker identity must never influence results; address "
                  "workers by their stable pool index");
      continue;
    }
    if (t.text == "get_id") {
      r.report(t, "thread get_id(): runtime thread identity is schedule-dependent; use the "
                  "worker index the pool hands to every RangeFn");
      continue;
    }
    if (t.text == "id" && i >= 2 && is_punct(toks[i - 1], "::") &&
        is_ident(toks[i - 2], "thread")) {
      r.report(toks[i - 2], "std::thread::id in program logic: thread identity is "
                            "schedule-dependent and must never feed values or ordering");
    }
  }
}

// ------------------------------------------------------------------------
// Check 6: narrowing-index.
// ------------------------------------------------------------------------

void check_narrowing_index(const SourceFile& file, const std::vector<FunctionSpan>&,
                           std::vector<Diagnostic>& out) {
  // support/narrow.* is the one sanctioned home of the raw cast.
  if (path_contains(file.path, "support/narrow.")) return;
  Reporter r(file, "narrowing-index", out);

  // The 32-bit index types of the compact-CSR layout. "uint32_t" also
  // matches the std::-qualified spelling (qualifiers lex as separate
  // tokens).
  static const std::unordered_set<std::string> kIndexTypes = {
      "Vertex", "LocalVertex", "vid32", "uint32_t",
  };

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
    if (!is_ident(toks[i], "static_cast") || !is_punct(toks[i + 1], "<")) continue;
    // Index types are simple (possibly namespace-qualified) names, so a
    // bounded scan to the closing '>' sees the whole target type.
    for (std::size_t k = i + 2; k < std::min(toks.size(), i + 8); ++k) {
      if (is_punct(toks[k], ">")) break;
      if (toks[k].kind == TokenKind::kIdentifier && kIndexTypes.count(toks[k].text) != 0) {
        r.report(toks[i], "raw static_cast to 32-bit index type '" + toks[k].text +
                              "': narrow through support::checked_u32 / checked_narrow "
                              "(support/narrow.hpp) so a silent truncation cannot ship");
        break;
      }
    }
  }
}

// ------------------------------------------------------------------------
// Check 7: arrival-order-dependence (merge/append/accumulate bodies under
// src/core must never consult connection/arrival identity).
// ------------------------------------------------------------------------

void check_arrival_order(const SourceFile& file, const std::vector<FunctionSpan>& spans,
                         std::vector<Diagnostic>& out) {
  if (!path_contains(file.path, "core/")) return;
  Reporter r(file, "arrival-order-dependence", out);

  // Names that identify WHO delivered a partial or WHEN it arrived. The
  // fabric's determinism rule is that merges index by unit/shard id only:
  // branching a merge on any of these makes the output depend on worker
  // count, socket accept order or straggler timing.
  static const std::unordered_set<std::string> kArrivalIdentity = {
      "client_id",     "client_index", "client_slot",  "connection_id", "connection_index",
      "session_id",    "session_index", "accept_index", "accept_order", "worker_id",
  };

  const auto& toks = file.tokens;
  for (std::size_t i = 0; i < toks.size(); ++i) {
    if (toks[i].kind != TokenKind::kIdentifier) continue;
    const std::string& text = toks[i].text;
    const bool arrivalish = kArrivalIdentity.count(text) != 0 ||
                            text.find("slot") != std::string::npos ||
                            text.find("arrival") != std::string::npos;
    if (!arrivalish) continue;
    if (!in_merge_like_context(spans, i)) continue;
    r.report(toks[i],
             "'" + text + "' inside a merge/append/accumulate path under core/: "
             "connection/arrival identity is schedule-dependent, so merges must index "
             "accepted partials by unit/shard id only - never by which connection "
             "delivered them or when");
  }
}

}  // namespace

const std::vector<CheckInfo>& all_checks() {
  static const std::vector<CheckInfo> kChecks = {
      {"raw-entropy",
       "entropy sources (random_device, rand, time, wall clocks, address casts) outside "
       "support/rng.*"},
      {"unordered-iteration",
       "iteration over std::unordered_{map,set}: ordering leaks into accumulated results"},
      {"float-accumulation",
       "float/double inside merge/append bodies in src/core + src/local (exact-integer "
       "contract)"},
      {"hot-path-alloc",
       "allocation-capable calls inside AVGLOCAL_HOT functions (static alloc_hook complement)"},
      {"thread-id-dependence",
       "std::thread::id / get_id / pthread_self: worker identity must never feed values"},
      {"narrowing-index",
       "raw static_cast to a 32-bit vertex/arc index type outside support/narrow.* "
       "(use checked_u32 / checked_narrow)"},
      {"arrival-order-dependence",
       "connection/arrival identity (client/session/slot/arrival names) inside "
       "merge/append/accumulate bodies under src/core (merges index by unit id only)"},
  };
  return kChecks;
}

bool is_check_name(const std::string& name) {
  const auto& checks = all_checks();
  return std::any_of(checks.begin(), checks.end(),
                     [&](const CheckInfo& c) { return c.name == name; });
}

std::vector<Diagnostic> run_checks(const SourceFile& file, const std::set<std::string>& enabled) {
  const std::vector<FunctionSpan> spans = index_functions(file.tokens);
  const auto on = [&](const char* name) {
    return enabled.empty() || enabled.count(name) != 0;
  };

  std::vector<Diagnostic> out;
  if (on("raw-entropy")) check_raw_entropy(file, spans, out);
  if (on("unordered-iteration")) check_unordered_iteration(file, spans, out);
  if (on("float-accumulation")) check_float_accumulation(file, spans, out);
  if (on("hot-path-alloc")) check_hot_path_alloc(file, spans, out);
  if (on("thread-id-dependence")) check_thread_id(file, spans, out);
  if (on("narrowing-index")) check_narrowing_index(file, spans, out);
  if (on("arrival-order-dependence")) check_arrival_order(file, spans, out);

  std::sort(out.begin(), out.end(), [](const Diagnostic& a, const Diagnostic& b) {
    if (a.line != b.line) return a.line < b.line;
    if (a.col != b.col) return a.col < b.col;
    return a.check < b.check;
  });
  return out;
}

std::string format(const Diagnostic& d) {
  return d.path + ":" + std::to_string(d.line) + ":" + std::to_string(d.col) + ": warning: " +
         d.message + " [" + d.check + "]";
}

}  // namespace avglocal::lint
