#include "lexer.hpp"

#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace avglocal::lint {
namespace {

bool ident_start(char c) { return std::isalpha(static_cast<unsigned char>(c)) || c == '_'; }
bool ident_char(char c) { return std::isalnum(static_cast<unsigned char>(c)) || c == '_'; }

/// Multi-character punctuators the checks care to see whole. Everything
/// else falls back to a single-character token; the checks only ever match
/// "::", so the table stays deliberately short.
bool is_double_colon(std::string_view text, std::size_t i) {
  return text[i] == ':' && i + 1 < text.size() && text[i + 1] == ':';
}

/// Parses `// avglocal-lint: allow(name, name2)` (or the block-comment
/// form) out of a comment body; returns the allowed names, empty when the
/// comment is not an allow-directive.
std::vector<std::string> parse_allow(std::string_view comment) {
  std::vector<std::string> names;
  const std::string_view tag = "avglocal-lint:";
  const std::size_t at = comment.find(tag);
  if (at == std::string_view::npos) return names;
  std::size_t i = comment.find("allow(", at + tag.size());
  if (i == std::string_view::npos) return names;
  i += 6;
  const std::size_t end = comment.find(')', i);
  if (end == std::string_view::npos) return names;
  std::string current;
  for (std::size_t k = i; k < end; ++k) {
    const char c = comment[k];
    if (c == ',' ) {
      if (!current.empty()) names.push_back(current);
      current.clear();
    } else if (!std::isspace(static_cast<unsigned char>(c))) {
      current.push_back(c);
    }
  }
  if (!current.empty()) names.push_back(current);
  return names;
}

}  // namespace

bool SourceFile::allowed(const std::string& check, std::size_t line) const {
  for (const std::size_t l : {line, line == 0 ? line : line - 1}) {
    const auto it = allows.find(l);
    if (it == allows.end()) continue;
    if (it->second.count(check) != 0 || it->second.count("*") != 0) return true;
  }
  return false;
}

SourceFile lex(std::string path, std::string_view text) {
  SourceFile out;
  out.path = std::move(path);

  std::size_t line = 1;
  std::size_t col = 1;
  std::size_t i = 0;
  const std::size_t n = text.size();

  const auto advance = [&](std::size_t count) {
    for (std::size_t k = 0; k < count && i < n; ++k, ++i) {
      if (text[i] == '\n') {
        ++line;
        col = 1;
      } else {
        ++col;
      }
    }
  };

  const auto record_allow = [&](std::string_view comment, std::size_t comment_line) {
    for (std::string& name : parse_allow(comment)) {
      out.allows[comment_line].insert(std::move(name));
    }
  };

  while (i < n) {
    const char c = text[i];

    // Preprocessor directive: skip the whole logical line (with `\`
    // continuations). Only fires at the start of a line so `a # b` inside
    // an expression cannot eat code (no such operator exists anyway).
    if (c == '#' && col == 1) {
      while (i < n) {
        if (text[i] == '\\' && i + 1 < n && text[i + 1] == '\n') {
          advance(2);
          continue;
        }
        if (text[i] == '\n') {
          advance(1);
          break;
        }
        advance(1);
      }
      continue;
    }

    // Line comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      const std::size_t start = i;
      const std::size_t comment_line = line;
      while (i < n && text[i] != '\n') advance(1);
      record_allow(text.substr(start, i - start), comment_line);
      continue;
    }

    // Block comment.
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      const std::size_t start = i;
      const std::size_t comment_line = line;
      advance(2);
      while (i < n && !(text[i] == '*' && i + 1 < n && text[i + 1] == '/')) advance(1);
      advance(2);
      record_allow(text.substr(start, i - start), comment_line);
      continue;
    }

    // Raw string literal: R"delim( ... )delim".
    if (c == 'R' && i + 1 < n && text[i + 1] == '"' &&
        (i == 0 || !ident_char(text[i - 1]))) {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      std::size_t d = i + 2;
      std::string delim;
      while (d < n && text[d] != '(' && delim.size() < 16) delim.push_back(text[d++]);
      const std::string closer = ")" + delim + "\"";
      const std::size_t close = text.find(closer, d);
      const std::size_t end = close == std::string_view::npos ? n : close + closer.size();
      out.tokens.push_back({TokenKind::kString, "<raw-string>", tok_line, tok_col});
      advance(end - i);
      continue;
    }

    // String / char literal.
    if (c == '"' || c == '\'') {
      const char quote = c;
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      advance(1);
      while (i < n && text[i] != quote) {
        if (text[i] == '\\' && i + 1 < n) {
          advance(2);
        } else if (text[i] == '\n') {
          break;  // unterminated literal: stop at the line end
        } else {
          advance(1);
        }
      }
      if (i < n && text[i] == quote) advance(1);
      out.tokens.push_back({TokenKind::kString, "<literal>", tok_line, tok_col});
      continue;
    }

    // Identifier / keyword.
    if (ident_start(c)) {
      const std::size_t start = i;
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      while (i < n && ident_char(text[i])) advance(1);
      out.tokens.push_back(
          {TokenKind::kIdentifier, std::string(text.substr(start, i - start)), tok_line, tok_col});
      continue;
    }

    // Number: integers, floats (1.5, 1e9, 0x1fp3), with digit separators.
    // A leading '.' followed by a digit is a float too.
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n && std::isdigit(static_cast<unsigned char>(text[i + 1])))) {
      const std::size_t start = i;
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      while (i < n) {
        const char d = text[i];
        if (std::isalnum(static_cast<unsigned char>(d)) || d == '.' || d == '\'') {
          advance(1);
        } else if ((d == '+' || d == '-') && i > start &&
                   (text[i - 1] == 'e' || text[i - 1] == 'E' || text[i - 1] == 'p' ||
                    text[i - 1] == 'P')) {
          advance(1);  // exponent sign
        } else {
          break;
        }
      }
      out.tokens.push_back(
          {TokenKind::kNumber, std::string(text.substr(start, i - start)), tok_line, tok_col});
      continue;
    }

    // Whitespace.
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }

    // Punctuation: "::" as one token, everything else single-character.
    {
      const std::size_t tok_line = line;
      const std::size_t tok_col = col;
      if (is_double_colon(text, i)) {
        out.tokens.push_back({TokenKind::kPunct, "::", tok_line, tok_col});
        advance(2);
      } else {
        out.tokens.push_back({TokenKind::kPunct, std::string(1, c), tok_line, tok_col});
        advance(1);
      }
      continue;
    }
  }

  return out;
}

SourceFile lex_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("avglocal_lint: cannot read " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return lex(path, buf.str());
}

}  // namespace avglocal::lint
