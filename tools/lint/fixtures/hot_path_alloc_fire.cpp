// Fixture: allocation-capable calls inside an AVGLOCAL_HOT function.
// Expected: 5 hot-path-alloc diagnostics (push_back, new, delete,
// std::function, and a push_back hidden in a nested lambda).
#include <functional>
#include <vector>

#define AVGLOCAL_HOT __attribute__((hot))

AVGLOCAL_HOT void drain_round(std::vector<int>& out, int value) {
  out.push_back(value);             // fires: push_back
  int* scratch = new int(value);    // fires: new
  delete scratch;                   // fires: delete
  std::function<void()> deferred;   // fires: std::function
  const auto push = [&] (int v) {
    out.push_back(v);               // fires: allocation hidden in a lambda
  };
  push(value);
  if (deferred) deferred();
}
