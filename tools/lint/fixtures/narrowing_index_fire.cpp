// Fixture: raw narrowing casts to 32-bit index types.
// Expected: 4 narrowing-index diagnostics (Vertex, std::uint32_t,
// LocalVertex, vid32 targets).
#include <cstddef>
#include <cstdint>
#include <vector>

using Vertex = std::uint32_t;
using LocalVertex = std::uint32_t;
using vid32 = std::uint32_t;

Vertex successor(std::size_t i, std::size_t n) {
  return static_cast<Vertex>((i + 1) % n);  // fires: Vertex target
}

std::uint32_t dense_index(const std::vector<std::uint64_t>& ids, std::size_t pos) {
  return static_cast<std::uint32_t>(ids[pos]);  // fires: uint32_t target
}

LocalVertex next_local(std::size_t order_size) {
  return static_cast<LocalVertex>(order_size);  // fires: LocalVertex target
}

vid32 arc_offset(std::size_t flat) {
  return static_cast<vid32>(flat);  // fires: vid32 target
}
