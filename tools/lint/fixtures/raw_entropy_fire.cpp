// Fixture: every raw entropy source the check must reject.
// Expected: 5 raw-entropy diagnostics (random_device, rand, srand, time,
// reinterpret_cast-to-uintptr_t).
#include <cstdlib>
#include <ctime>
#include <random>

unsigned bad_seed() {
  std::random_device rd;                                       // fires: random_device
  std::srand(static_cast<unsigned>(std::time(nullptr)));       // fires: srand, time
  const int noise = std::rand();                               // fires: rand
  int anchor = 0;
  const auto addr = reinterpret_cast<std::uintptr_t>(&anchor); // fires: address entropy
  return rd() + static_cast<unsigned>(noise) + static_cast<unsigned>(addr);
}
