// Fixture: a hot function touching only pre-sized buffers, next to an
// unannotated warm-up function that is allowed to allocate.
// Expected: 0 diagnostics.
#include <cstddef>
#include <cstdint>
#include <vector>

#define AVGLOCAL_HOT __attribute__((hot))

struct Arena {
  std::vector<std::uint64_t> words;
  std::size_t used = 0;

  // Warm-up path: not annotated, allocation is its job.
  void attach(std::size_t capacity) {
    words.resize(capacity);
    used = 0;
  }

  AVGLOCAL_HOT std::uint64_t drain() noexcept {
    std::uint64_t sum = 0;
    for (std::size_t i = 0; i < used; ++i) sum += words[i];
    used = 0;
    return sum;
  }
};

AVGLOCAL_HOT void gather(const std::uint64_t* src, const std::uint32_t* idx, std::uint64_t* dst,
                         std::size_t count) {
  for (std::size_t i = 0; i < count; ++i) dst[i] = src[idx[i]];
}
