// Fixture: unordered containers used for point lookups only, plus
// iteration over ordered containers - all legal.
// Expected: 0 diagnostics.
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

std::uint64_t lookups_only(const std::unordered_map<int, std::uint64_t>& index,
                           const std::vector<int>& keys, const std::map<int, int>& ordered) {
  std::uint64_t sum = 0;
  for (const int k : keys) {  // vector: deterministic order
    const auto it = index.find(k);
    if (it != index.end()) sum += it->second;
  }
  for (const auto& [k, v] : ordered) {  // std::map: deterministic order
    sum += static_cast<std::uint64_t>(k) * static_cast<std::uint64_t>(v);
  }
  sum += index.count(42);
  return sum;
}
