// Fixture: explicit, reviewable suppressions. Both placements (preceding
// line and trailing same-line) must silence exactly the named check.
// Expected: 0 diagnostics.
#include <cstdlib>

unsigned legacy_jitter() {
  // avglocal-lint: allow(raw-entropy)
  return static_cast<unsigned>(std::rand());
}

unsigned legacy_jitter_trailing() {
  return static_cast<unsigned>(std::rand());  // avglocal-lint: allow(raw-entropy)
}
