// Fixture (core/ path: in scope for float-accumulation): floating point
// inside a merge body breaks the exact-integer shard-merge contract.
// Expected: 2 float-accumulation diagnostics (the `double` type, the 0.5
// literal).
#include <cstdint>

struct Partial {
  std::uint64_t sum = 0;

  void merge(const Partial& other) {
    double weighted = 0.5;  // fires twice: double + floating literal
    weighted *= static_cast<int>(other.sum % 2);
    sum += other.sum + static_cast<std::uint64_t>(weighted);
  }
};
