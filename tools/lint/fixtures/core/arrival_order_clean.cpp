// Fixture (core/ path): the legal shape - merges index accepted partials
// by unit id (position in the pre-planned decomposition), and connection
// bookkeeping lives outside merge-like functions entirely.
// Expected: 0 diagnostics.
#include <cstddef>
#include <cstdint>
#include <vector>

struct Partial {
  std::uint64_t sum = 0;
};

struct Merged {
  std::vector<std::uint64_t> by_unit;
  std::uint64_t total = 0;

  void merge_unit(const Partial& p, std::size_t unit_id) {
    by_unit[unit_id] += p.sum;
    total += p.sum;
  }
};

// Connection bookkeeping is fine where no merging happens.
std::size_t pick_slot(std::size_t client_slot, std::size_t slot_count) {
  return client_slot % slot_count;
}
