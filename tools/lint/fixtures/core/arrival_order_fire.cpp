// Fixture (core/ path: in scope for arrival-order-dependence): merges
// keyed by which connection delivered the partial, or when - worker
// count and socket accept order leak straight into the result.
// Expected: 4 arrival-order-dependence diagnostics (client_slot,
// arrival_rank, session_id, slot_index - each used once in a body).
#include <cstddef>
#include <cstdint>
#include <vector>

struct Partial {
  std::uint64_t sum = 0;
};

struct Merged {
  std::vector<std::uint64_t> by_source;
  std::uint64_t total = 0;

  void merge_result(const Partial& p, std::size_t client_slot, std::uint64_t arrival_rank) {
    by_source[client_slot] += p.sum;
    total += p.sum * (arrival_rank + 1);
  }

  void append_from(const Partial& p, std::uint64_t session_id) { total += p.sum ^ session_id; }

  void accumulate_unit(const Partial& p, std::size_t slot_index) { by_source[slot_index] += p.sum; }
};
