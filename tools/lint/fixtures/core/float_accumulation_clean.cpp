// Fixture (core/ path): exact-integer merge plus a finalize step that is
// allowed to use floating point - the contract bans floats only inside
// merge/append bodies.
// Expected: 0 diagnostics.
#include <cstdint>
#include <vector>

struct Partial {
  std::uint64_t samples = 0;
  std::vector<std::uint64_t> bins;

  void merge(const Partial& other) {
    if (other.bins.size() > bins.size()) bins.resize(other.bins.size(), 0);
    for (std::size_t i = 0; i < other.bins.size(); ++i) bins[i] += other.bins[i];
    samples += other.samples;
  }

  void append(Partial&& other) { merge(other); }

  double finalize_mean() const {
    std::uint64_t weighted = 0;
    for (std::size_t i = 0; i < bins.size(); ++i) weighted += i * bins[i];
    return samples == 0 ? 0.0 : static_cast<double>(weighted) / static_cast<double>(samples);
  }
};
