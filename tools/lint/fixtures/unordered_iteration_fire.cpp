// Fixture: iteration over unordered containers must fire.
// Expected: 3 unordered-iteration diagnostics (range-for, .begin() walk,
// ->begin() walk).
#include <cstdint>
#include <unordered_map>
#include <unordered_set>

std::uint64_t sum_in_hash_order(const std::unordered_map<int, std::uint64_t>& counts,
                                const std::unordered_set<int>* live) {
  std::uint64_t sum = 0;
  for (const auto& [key, value] : counts) {  // fires: range-for over unordered
    sum += value * static_cast<std::uint64_t>(key);
  }
  for (auto it = counts.begin(); it != counts.end(); ++it) {  // fires: .begin()
    sum ^= it->second;
  }
  for (auto it = live->begin(); it != live->end(); ++it) {  // fires: ->begin()
    sum += static_cast<std::uint64_t>(*it);
  }
  return sum;
}
