// Fixture: deterministic code the raw-entropy check must accept.
// Expected: 0 diagnostics.
//
// Mentions of std::rand() or std::random_device in comments must not fire,
// and identifiers merely containing the banned names (edge_time, runtime,
// rand_index) are not matches.
#include <chrono>
#include <cstdint>

std::uint64_t splitmix_step(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  return z ^ (z >> 31);
}

std::uint64_t derive_stream(std::uint64_t seed, std::uint64_t point, std::uint64_t trial) {
  // Every random quantity flows from a named seed - never std::rand().
  std::uint64_t state = seed ^ (point << 32) ^ trial;
  const std::uint64_t rand_index = splitmix_step(state);  // substring, not a call
  return rand_index;
}

double phase_seconds() {
  // steady_clock is monotonic timing, not entropy: legal for stats.
  const auto begin = std::chrono::steady_clock::now();
  const auto end = std::chrono::steady_clock::now();
  const auto edge_time = end - begin;
  return std::chrono::duration<double>(edge_time).count();
}
