// Fixture: thread identity feeding values.
// Expected: 3 thread-id-dependence diagnostics (std::thread::id
// declaration, get_id call, std::hash<std::thread::id> specialisation use).
#include <functional>
#include <thread>

unsigned worker_tag() {
  const std::thread::id me = std::this_thread::get_id();  // fires: thread::id + get_id
  return static_cast<unsigned>(std::hash<std::thread::id>{}(me) & 0xffu);  // fires: thread::id
}
