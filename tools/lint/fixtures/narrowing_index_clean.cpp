// Fixture: the sanctioned patterns around 32-bit indices - checked
// narrowing helpers, widening casts, non-index casts and plain u32
// declarations (a cast target is required; mentions elsewhere are legal).
// Expected: 0 diagnostics.
#include <cstddef>
#include <cstdint>
#include <vector>

using Vertex = std::uint32_t;

namespace support {
template <typename From>
std::uint32_t checked_u32(From v) {
  return static_cast<std::uint32_t>(v);  // avglocal-lint: allow(narrowing-index)
}
}  // namespace support

Vertex successor(std::size_t i, std::size_t n) {
  return support::checked_u32((i + 1) % n);  // the sanctioned helper
}

std::uint64_t widen(Vertex v) {
  return static_cast<std::uint64_t>(v);  // widening: always safe
}

double ratio(Vertex v, std::size_t n) {
  return static_cast<double>(v) / static_cast<double>(n);  // not an index cast
}

std::vector<std::uint32_t> radii_row(std::size_t n) {
  std::vector<std::uint32_t> row(n, 0);  // declaration, not a cast
  return row;
}
