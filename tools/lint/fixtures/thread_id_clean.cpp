// Fixture: the sanctioned pattern - workers addressed by their stable pool
// index, plain std::thread management without identity queries.
// Expected: 0 diagnostics.
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

void per_worker_partials(std::vector<std::uint64_t>& partials, std::size_t workers) {
  partials.assign(workers, 0);
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    threads.emplace_back([&partials, w] { partials[w] = w; });  // index, not identity
  }
  for (std::thread& t : threads) t.join();
}
