// Compilation-database discovery for avglocal_lint.
//
// `avglocal_lint -p <build-dir>` reads <build-dir>/compile_commands.json
// (emitted because the root CMakeLists sets CMAKE_EXPORT_COMPILE_COMMANDS)
// and lints every translation unit of the project that lives under a src/
// tree. `--src <dir>` complements it by walking a source tree directly so
// headers - where most of the engine's hot templates live and which no
// compilation database lists - are linted too.
#pragma once

#include <string>
#include <vector>

namespace avglocal::lint {

/// The distinct "file" entries of `<build_dir>/compile_commands.json` that
/// live under a `src/` directory, in sorted order. Throws
/// std::runtime_error when the database is missing or malformed.
std::vector<std::string> files_from_compile_commands(const std::string& build_dir);

/// Every *.cpp / *.hpp / *.cc / *.h under `dir`, recursively, in sorted
/// order. Throws std::runtime_error when `dir` is not a directory.
std::vector<std::string> files_from_tree(const std::string& dir);

}  // namespace avglocal::lint
