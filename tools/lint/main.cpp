// avglocal_lint - the determinism contract of the sweep fabric, as a build
// gate. See checks.hpp for the contract itself.
//
// Usage:
//   avglocal_lint --list-checks
//   avglocal_lint [--checks=a,b] [-p <build-dir>] [--src <dir>] [files...]
//
// File discovery composes: `-p` adds every project TU of a compilation
// database (CMAKE_EXPORT_COMPILE_COMMANDS), `--src` adds a whole source
// tree (headers included), positional arguments add single files. Exit
// status: 0 clean, 1 diagnostics emitted, 2 usage/IO error - so both ctest
// and CI can gate on it directly.
#include <cstdio>
#include <exception>
#include <set>
#include <string>
#include <string_view>
#include <vector>

#include "checks.hpp"
#include "compile_commands.hpp"
#include "lexer.hpp"

namespace {

using namespace avglocal::lint;

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--list-checks] [--checks=a,b] [-p <build-dir>] [--src <dir>] "
               "[files...]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> files;
  std::set<std::string> enabled;
  bool quiet = false;

  try {
    for (int i = 1; i < argc; ++i) {
      const std::string_view arg = argv[i];
      if (arg == "--list-checks") {
        for (const CheckInfo& c : all_checks()) {
          std::printf("%-22s %s\n", c.name.c_str(), c.description.c_str());
        }
        return 0;
      }
      if (arg == "--quiet" || arg == "-q") {
        quiet = true;
      } else if (arg.rfind("--checks=", 0) == 0) {
        std::string_view list = arg.substr(9);
        while (!list.empty()) {
          const std::size_t comma = list.find(',');
          const std::string name(list.substr(0, comma));
          if (!name.empty()) {
            if (!is_check_name(name)) {
              std::fprintf(stderr, "avglocal_lint: unknown check '%s' (try --list-checks)\n",
                           name.c_str());
              return 2;
            }
            enabled.insert(name);
          }
          if (comma == std::string_view::npos) break;
          list.remove_prefix(comma + 1);
        }
      } else if (arg == "-p") {
        if (++i >= argc) return usage(argv[0]);
        for (std::string& f : files_from_compile_commands(argv[i])) {
          files.push_back(std::move(f));
        }
      } else if (arg == "--src") {
        if (++i >= argc) return usage(argv[0]);
        for (std::string& f : files_from_tree(argv[i])) {
          files.push_back(std::move(f));
        }
      } else if (!arg.empty() && arg[0] == '-') {
        return usage(argv[0]);
      } else {
        files.emplace_back(arg);
      }
    }

    if (files.empty()) return usage(argv[0]);

    std::size_t diagnostics = 0;
    for (const std::string& path : files) {
      const SourceFile file = lex_file(path);
      for (const Diagnostic& d : run_checks(file, enabled)) {
        std::printf("%s\n", format(d).c_str());
        ++diagnostics;
      }
    }
    if (!quiet) {
      std::fprintf(stderr, "avglocal_lint: %zu file(s), %zu diagnostic(s)\n", files.size(),
                   diagnostics);
    }
    return diagnostics == 0 ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }
}
