// Token-level C++ scanner for avglocal_lint.
//
// The determinism checks need to see identifiers, punctuation and literals
// with exact source positions, with comments and string contents out of the
// way. A full AST is not required for the contract the linter encodes (see
// checks.hpp): every forbidden construct is recognisable from a short token
// pattern plus a little brace/paren structure, which FunctionIndex
// (checks.cpp) recovers. When a Clang development environment is present
// the same checks could be re-hosted on ASTMatchers (the CMake gate in
// tools/lint/CMakeLists.txt probes for one); the token core keeps the lint
// gate running on toolchains that ship no libclang headers at all.
//
// What the lexer guarantees:
//   - comments and string/char literals (including raw strings) never
//     produce identifier tokens, so "std::rand" inside a comment cannot
//     fire a check;
//   - preprocessor directive lines (with continuations) are skipped, so
//     macro *definitions* are invisible and only macro *uses* are linted;
//   - `// avglocal-lint: allow(check-name)` comments are collected as
//     suppressions for the line they sit on and the line that follows.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace avglocal::lint {

enum class TokenKind {
  kIdentifier,  ///< identifiers and keywords (the checks match on text)
  kNumber,      ///< integer or floating literal, verbatim text
  kString,      ///< string or char literal (contents not tokenised)
  kPunct,       ///< one operator/punctuator per token ("::" is one token)
};

struct Token {
  TokenKind kind;
  std::string text;
  std::size_t line = 0;  ///< 1-based
  std::size_t col = 0;   ///< 1-based
};

/// One lexed source file: the token stream plus per-line lint suppressions.
struct SourceFile {
  std::string path;
  std::vector<Token> tokens;
  /// line -> check names allowed on that line ("*" allows every check).
  /// An allow-comment suppresses its own line and the following line, so
  /// both trailing and preceding placement work.
  std::unordered_map<std::size_t, std::unordered_set<std::string>> allows;

  /// True when a diagnostic of `check` at `line` is suppressed.
  bool allowed(const std::string& check, std::size_t line) const;
};

/// Lexes `text` (the contents of `path`). Never fails: unrecognised bytes
/// are skipped, an unterminated literal ends at end-of-file.
SourceFile lex(std::string path, std::string_view text);

/// Reads and lexes a file from disk; throws std::runtime_error when the
/// file cannot be read.
SourceFile lex_file(const std::string& path);

}  // namespace avglocal::lint
