// The determinism contract of the avglocal engines, encoded as lint checks.
//
// The repo's load-bearing invariant is that every execution topology -
// serial, pooled, sharded, SIMD, layer-jump - merges bit-identically into
// the monolithic sweep. The golden-corpus tests enforce that dynamically;
// these checks reject the usual ways of breaking it at build time:
//
//   raw-entropy            entropy sources outside support/rng.* (a stray
//                          std::random_device / rand / time() seed makes a
//                          run unreproducible by construction)
//   unordered-iteration    iterating std::unordered_{map,set} (iteration
//                          order is implementation- and seed-dependent, so
//                          any value accumulated in that order leaks
//                          nondeterminism into artefacts)
//   float-accumulation     float/double inside functions named merge/append
//                          in src/core + src/local (the PointAccumulator
//                          merge paths must stay exact integers; floating
//                          point is only allowed at finalize time)
//   hot-path-alloc         allocation-capable calls (new, push_back,
//                          resize, std::function, make_unique, ...) inside
//                          functions annotated AVGLOCAL_HOT
//                          (support/annotations.hpp) - the static
//                          complement of the runtime alloc_hook gates
//   thread-id-dependence   std::this_thread::get_id / std::thread::id /
//                          pthread_self anywhere: worker identity must
//                          never feed values (workers are addressed by
//                          stable indices instead)
//   narrowing-index        raw static_cast to a 32-bit vertex/arc index
//                          type (graph::Vertex, local::LocalVertex,
//                          graph::vid32, std::uint32_t) outside
//                          support/narrow.* - the compact-CSR layout makes
//                          silent 64->32 truncation a correctness bug, so
//                          every narrowing goes through the assert-checked
//                          checked_u32 / checked_narrow helpers
//   arrival-order-dependence  connection/arrival identity (client_id,
//                          session_id, *slot*, *arrival*, worker_id, ...)
//                          inside merge/append/accumulate bodies under
//                          src/core - the fabric's merge rule is "index
//                          accepted partials by unit id only", so which
//                          socket delivered a partial, in what accept
//                          order, must never steer how it is combined
//
// Suppression: `// avglocal-lint: allow(check-name)` on the same or the
// preceding line. Every suppression is visible in review - there are no
// file- or directory-level opt-outs.
#pragma once

#include <set>
#include <string>
#include <vector>

#include "lexer.hpp"

namespace avglocal::lint {

struct Diagnostic {
  std::string path;
  std::size_t line = 0;
  std::size_t col = 0;
  std::string check;
  std::string message;
};

struct CheckInfo {
  std::string name;
  std::string description;
};

/// The registered checks, in reporting order.
const std::vector<CheckInfo>& all_checks();

/// True when `name` names a registered check.
bool is_check_name(const std::string& name);

/// Runs `enabled` checks (all when empty) over one lexed file. Diagnostics
/// suppressed by allow-comments are already filtered out.
std::vector<Diagnostic> run_checks(const SourceFile& file, const std::set<std::string>& enabled);

/// Formats one diagnostic in the clang style:
///   path:line:col: warning: message [check-name]
std::string format(const Diagnostic& d);

}  // namespace avglocal::lint
