#include "compile_commands.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "support/json_reader.hpp"

namespace avglocal::lint {

namespace fs = std::filesystem;

std::vector<std::string> files_from_compile_commands(const std::string& build_dir) {
  const fs::path db_path = fs::path(build_dir) / "compile_commands.json";
  std::ifstream in(db_path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("avglocal_lint: cannot read " + db_path.string() +
                             " (configure with CMAKE_EXPORT_COMPILE_COMMANDS=ON)");
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const support::JsonValue db = support::parse_json(buf.str());

  std::set<std::string> files;
  for (std::size_t i = 0; i < db.size(); ++i) {
    const support::JsonValue* file = db[i].find("file");
    if (file == nullptr) continue;
    fs::path p(file->as_string());
    if (!p.is_absolute()) {
      if (const support::JsonValue* dir = db[i].find("directory")) {
        p = fs::path(dir->as_string()) / p;
      }
    }
    const std::string norm = p.lexically_normal().string();
    // Only the project's own sources: third-party TUs a future build might
    // add (vendored gtest etc.) are not under the determinism contract.
    if (norm.find("/src/") == std::string::npos) continue;
    files.insert(norm);
  }
  return {files.begin(), files.end()};
}

std::vector<std::string> files_from_tree(const std::string& dir) {
  if (!fs::is_directory(dir)) {
    throw std::runtime_error("avglocal_lint: not a directory: " + dir);
  }
  std::vector<std::string> files;
  for (const auto& entry : fs::recursive_directory_iterator(dir)) {
    if (!entry.is_regular_file()) continue;
    const std::string ext = entry.path().extension().string();
    if (ext == ".cpp" || ext == ".hpp" || ext == ".cc" || ext == ".h") {
      files.push_back(entry.path().lexically_normal().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace avglocal::lint
