#!/usr/bin/env bash
# fabric_launch.sh: one distributed fabric sweep - a coordinator in this
# process tree plus N workers, forked locally or launched over ssh.
#
#   tools/fabric_launch.sh --cli build/avglocal_cli \
#       --listen tcp:0.0.0.0:0 --workers "local local local" \
#       --json sweep.json -- --algo largest-id --graph cycle --ns 1024 --trials 500
#
# Everything after `--` is passed to `fabric-serve` verbatim (the sweep
# workload flags). Worker spellings: `local` or `localhost` forks the
# worker in this shell; anything else is an ssh destination, where the
# CLI named by --remote-cli must be runnable. For ssh workers --listen
# must be a tcp endpoint the remote hosts can reach (the unix default
# only works for local workers).
#
# No startup race: the coordinator publishes its resolved endpoint (TCP
# port 0 becomes the real bound port) through a temp file right after
# binding, and the workers' connect retries with bounded backoff besides
# - nothing here sleeps-and-hopes.
set -euo pipefail

CLI=${AVGLOCAL_CLI:-avglocal_cli}
REMOTE_CLI=avglocal_cli
LISTEN=unix:/tmp/avglocal-fabric-$$.sock
WORKERS="local local"
WORKER_THREADS=0
JSON=

usage() {
  cat <<'EOF'
usage: fabric_launch.sh [--cli PATH] [--remote-cli PATH] [--listen ENDPOINT]
                        [--workers "HOST HOST ..."] [--worker-threads N]
                        [--json FILE] -- SWEEP_FLAGS...
  HOST `local`/`localhost` forks the worker here; anything else goes via ssh.
  ENDPOINT is unix:PATH or tcp:HOST:PORT (port 0 = ephemeral).
EOF
}

SERVE_ARGS=()
while [ $# -gt 0 ]; do
  case "$1" in
    --cli) CLI=$2; shift 2 ;;
    --remote-cli) REMOTE_CLI=$2; shift 2 ;;
    --listen) LISTEN=$2; shift 2 ;;
    --workers) WORKERS=$2; shift 2 ;;
    --worker-threads) WORKER_THREADS=$2; shift 2 ;;
    --json) JSON=$2; shift 2 ;;
    --help|-h) usage; exit 0 ;;
    --) shift; SERVE_ARGS=("$@"); break ;;
    *) echo "unknown argument: $1" >&2; usage; exit 2 ;;
  esac
done
if [ ${#SERVE_ARGS[@]} -eq 0 ]; then
  echo "no sweep flags after --" >&2
  usage
  exit 2
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT
endpoint_file=$workdir/endpoint

serve_cmd=("$CLI" fabric-serve --listen "$LISTEN" --endpoint-file "$endpoint_file")
if [ -n "$JSON" ]; then
  serve_cmd+=(--json "$JSON")
fi
"${serve_cmd[@]}" "${SERVE_ARGS[@]}" &
serve_pid=$!

# The endpoint file appears right after the coordinator binds; if the
# coordinator died instead (bad flags, port in use), surface its exit.
for _ in $(seq 1 200); do
  if [ -s "$endpoint_file" ]; then break; fi
  if ! kill -0 "$serve_pid" 2>/dev/null; then
    wait "$serve_pid"
    exit $?
  fi
  sleep 0.05
done
if [ ! -s "$endpoint_file" ]; then
  echo "coordinator never published its endpoint" >&2
  kill "$serve_pid" 2>/dev/null || true
  wait "$serve_pid" || true
  exit 1
fi
endpoint=$(cat "$endpoint_file")

worker_pids=()
index=0
for host in $WORKERS; do
  index=$((index + 1))
  name="w$index"
  case "$host" in
    local|localhost)
      "$CLI" fabric-worker --connect "$endpoint" --name "$name" \
          --threads "$WORKER_THREADS" &
      ;;
    *)
      ssh "$host" "$REMOTE_CLI fabric-worker --connect '$endpoint' \
          --name '$name-$host' --threads $WORKER_THREADS" &
      ;;
  esac
  worker_pids+=($!)
done

# The coordinator's exit is the run's verdict (0 = complete, merged,
# byte-identical report; 1 = drained early). Workers that died mid-unit
# are the fabric's business - their units were re-dispatched - so worker
# exits never fail the launch.
status=0
wait "$serve_pid" || status=$?
for pid in "${worker_pids[@]}"; do
  wait "$pid" || true
done
exit "$status"
