// The sweep-as-a-service contract: core::ResultCache serves repeated
// requests from cache with zero sweep recomputation (trial-counter- and
// allocation-asserted), extends cached exact-integer partials with only
// the missing trial range bit-identically to a monolithic run, and
// core::Server speaks the newline-delimited JSON protocol over a real
// Unix-domain socket - including concurrent clients and clean shutdown.
//
// This binary installs the allocation-counting global operator new/delete
// (to pin "warm means no sweep work"), so it stays its own executable.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <cstdlib>
#include <fstream>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/result_cache.hpp"
#include "core/scenario.hpp"
#include "core/serve.hpp"
#include "support/alloc_hook.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/socket.hpp"

AVGLOCAL_DEFINE_ALLOC_HOOK();

namespace {

using namespace avglocal;

core::ScenarioSpec base_spec(std::size_t trials) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.ns = {128, 256};
  spec.seed = 9;
  spec.schedule.max_trials = trials;
  return spec;
}

/// The reference bytes: a monolithic run_scenario + sweep_report_json of
/// the same spec - what `avglocal_cli sweep --json` writes.
std::string monolithic_report(const core::ScenarioSpec& spec) {
  const core::ScenarioResult result = core::run_scenario(spec);
  return core::sweep_report_json(result.spec, result.points);
}

// ----------------------------------------------------------- cache key ----

TEST(ScenarioCacheKey, ScheduleDoesNotChangeIdentity) {
  core::ScenarioSpec a = base_spec(10);
  core::ScenarioSpec b = base_spec(500);
  b.schedule.min_trials = 4;
  b.schedule.batch = 32;
  b.schedule.z = 2.5;
  const core::ScenarioSpec ra = core::resolve_scenario(a).spec;
  const core::ScenarioSpec rb = core::resolve_scenario(b).spec;
  EXPECT_EQ(core::scenario_identity_json(ra), core::scenario_identity_json(rb));
  EXPECT_EQ(core::scenario_cache_key(ra), core::scenario_cache_key(rb));
}

TEST(ScenarioCacheKey, WorkloadFieldsChangeIdentity) {
  const core::ScenarioSpec base = core::resolve_scenario(base_spec(10)).spec;
  const std::string key = core::scenario_cache_key(base);
  EXPECT_EQ(key.size(), 16u);
  EXPECT_EQ(key.find_first_not_of("0123456789abcdef"), std::string::npos);

  core::ScenarioSpec seed = base;
  seed.seed = 10;
  EXPECT_NE(core::scenario_cache_key(seed), key);

  core::ScenarioSpec sizes = base;
  sizes.ns = {128};
  EXPECT_NE(core::scenario_cache_key(sizes), key);

  core::ScenarioSpec algo = base_spec(10);
  algo.algorithm = "greedy";
  EXPECT_NE(core::scenario_cache_key(core::resolve_scenario(algo).spec), key);
}

TEST(ScenarioCacheKey, IdentityJsonOmitsOnlySchedule) {
  const core::ScenarioSpec spec = core::resolve_scenario(base_spec(10)).spec;
  const std::string identity = core::scenario_identity_json(spec);
  EXPECT_EQ(identity.find("\"schedule\""), std::string::npos);
  EXPECT_NE(identity.find("\"family\""), std::string::npos);
  EXPECT_NE(identity.find("\"seed\""), std::string::npos);
  // The canonical (with-schedule) block is the identity block plus the
  // schedule member; both parse, and the full block still has it.
  EXPECT_NE(core::scenario_to_json(spec).find("\"schedule\""), std::string::npos);
}

// ---------------------------------------------------------- ResultCache ----

TEST(ResultCache, ColdThenWarmIsByteIdenticalWithZeroRecomputation) {
  const core::ScenarioSpec spec = base_spec(64);
  const std::string reference = monolithic_report(spec);

  core::ResultCache cache(core::ResultCacheOptions{2, 0});
  const auto before_cold = support::alloc_counts();
  const core::ResultCacheOutcome cold = cache.sweep(spec);
  const auto after_cold = support::alloc_counts();
  EXPECT_FALSE(cold.warm);
  EXPECT_EQ(cold.trials_computed, 64u * spec.ns.size());
  EXPECT_EQ(cold.report, reference);

  const auto before_warm = support::alloc_counts();
  const core::ResultCacheOutcome warm = cache.sweep(spec);
  const auto after_warm = support::alloc_counts();
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.trials_computed, 0u);  // the trial counter: zero sweep work
  EXPECT_EQ(warm.report, reference);

  // The allocation counter seconds the trial counter: a warm hit is a
  // resolve + memo lookup + string copy, nowhere near the cold run's
  // graph/engine/trial allocations.
  const std::size_t cold_allocs = after_cold.allocations - before_cold.allocations;
  const std::size_t warm_allocs = after_warm.allocations - before_warm.allocations;
  EXPECT_LT(warm_allocs * 5, cold_allocs);

  const core::ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.requests, 2u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.full_hits, 1u);
  EXPECT_EQ(stats.extensions, 0u);
  EXPECT_EQ(stats.trials_computed, 64u * spec.ns.size());
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResultCache, ExtensionMatchesMonolithicBitForBit) {
  core::ResultCache cache;
  const core::ResultCacheOutcome first = cache.sweep(base_spec(10));
  EXPECT_EQ(first.trials_computed, 10u * 2);

  // The heart of the tentpole: only trials [10, 25) run; the cached
  // exact-integer partial absorbs them, and the finalized report must be
  // byte-identical to a monolithic 25-trial sweep that never saw a cache.
  const core::ScenarioSpec extended = base_spec(25);
  const core::ResultCacheOutcome second = cache.sweep(extended);
  EXPECT_FALSE(second.warm);
  EXPECT_EQ(second.trials_computed, 15u * 2);
  EXPECT_EQ(second.report, monolithic_report(extended));
  EXPECT_EQ(second.key, first.key);

  const core::ResultCacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.extensions, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResultCache, ShorterThanCachedRecomputesThenMemoises) {
  core::ResultCache cache;
  (void)cache.sweep(base_spec(25));

  // Histograms and node sums aggregate over all trials, so a shorter
  // request cannot be truncated out of the cached partial: it recomputes
  // [0, 10) on the resident engines - and must still match the
  // monolithic 10-trial bytes exactly.
  const core::ScenarioSpec shorter = base_spec(10);
  const core::ResultCacheOutcome recomputed = cache.sweep(shorter);
  EXPECT_FALSE(recomputed.warm);
  EXPECT_EQ(recomputed.trials_computed, 10u * 2);
  EXPECT_EQ(recomputed.report, monolithic_report(shorter));

  // ...once, though: the finalized report memo makes the repeat free.
  const core::ResultCacheOutcome repeat = cache.sweep(shorter);
  EXPECT_TRUE(repeat.warm);
  EXPECT_EQ(repeat.trials_computed, 0u);
  EXPECT_EQ(repeat.report, recomputed.report);
}

TEST(ResultCache, DifferentZSameTrialsServedWithoutSweepWork) {
  core::ResultCache cache;
  (void)cache.sweep(base_spec(16));

  // z only affects the reported half-widths and the embedded schedule
  // block - not what any trial computes - so a z change over a fully
  // cached trial range finalizes from the cached partial: warm, yet the
  // bytes differ from the z=1.96 report and match the monolithic z=2.5.
  core::ScenarioSpec wider = base_spec(16);
  wider.schedule.z = 2.5;
  const core::ResultCacheOutcome outcome = cache.sweep(wider);
  EXPECT_TRUE(outcome.warm);
  EXPECT_EQ(outcome.trials_computed, 0u);
  EXPECT_EQ(outcome.report, monolithic_report(wider));
  EXPECT_EQ(cache.stats().full_hits, 1u);
  EXPECT_EQ(cache.entry_count(), 1u);
}

TEST(ResultCache, AdaptiveSchedulesAreRejected) {
  core::ResultCache cache;
  core::ScenarioSpec adaptive = base_spec(100);
  adaptive.schedule.target_half_width = 0.05;
  EXPECT_THROW((void)cache.sweep(adaptive), std::invalid_argument);
  EXPECT_EQ(cache.entry_count(), 0u);
}

TEST(ResultCache, MessageEngineWorkloadsCacheAndExtendToo) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {64};
  spec.seed = 5;
  spec.schedule.max_trials = 6;

  core::ResultCache cache;
  EXPECT_EQ(cache.sweep(spec).report, monolithic_report(spec));

  spec.schedule.max_trials = 14;
  const core::ResultCacheOutcome extended = cache.sweep(spec);
  EXPECT_EQ(extended.trials_computed, 8u);  // resident engine, tail only
  EXPECT_EQ(extended.report, monolithic_report(spec));
}

TEST(ResultCache, DistinctWorkloadsGetDistinctEntries) {
  core::ResultCache cache;
  (void)cache.sweep(base_spec(8));
  core::ScenarioSpec other = base_spec(8);
  other.seed = 123;
  (void)cache.sweep(other);
  EXPECT_EQ(cache.entry_count(), 2u);
  EXPECT_EQ(cache.stats().misses, 2u);
}

// --------------------------------------------------------------- Server ----

std::string sweep_request_line(const core::ScenarioSpec& spec) {
  support::JsonWriter json;
  json.begin_object();
  json.key("op").value("sweep");
  json.key("scenario");
  core::write_scenario_json(json, spec);
  json.end_object();
  return json.str();
}

TEST(Server, HandleRequestSpeaksTheProtocol) {
  core::ServeOptions options;
  options.socket_path = "/tmp/unused-protocol-test.sock";  // never bound
  core::Server server(options);

  const auto ping = server.handle_request("{\"op\":\"ping\"}");
  EXPECT_EQ(ping.line, "{\"ok\":true,\"op\":\"ping\"}");
  EXPECT_FALSE(ping.shutdown);

  const auto malformed = server.handle_request("this is not json");
  EXPECT_NE(malformed.line.find("\"ok\":false"), std::string::npos);
  EXPECT_FALSE(malformed.shutdown);

  const auto unknown = server.handle_request("{\"op\":\"frobnicate\"}");
  EXPECT_NE(unknown.line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(unknown.line.find("frobnicate"), std::string::npos);

  const auto missing = server.handle_request("{\"op\":\"sweep\"}");
  EXPECT_NE(missing.line.find("\"ok\":false"), std::string::npos);

  const core::ScenarioSpec spec = base_spec(4);
  const auto sweep = server.handle_request(sweep_request_line(spec));
  const support::JsonValue response = support::parse_json(sweep.line);
  EXPECT_TRUE(response.at("ok").as_bool());
  EXPECT_EQ(response.at("op").as_string(), "sweep");
  EXPECT_FALSE(response.at("warm").as_bool());
  EXPECT_EQ(response.at("report").as_string(), monolithic_report(spec));

  const auto shutdown = server.handle_request("{\"op\":\"shutdown\"}");
  EXPECT_TRUE(shutdown.shutdown);
  EXPECT_NE(shutdown.line.find("\"ok\":true"), std::string::npos);
}

TEST(Server, SocketEndToEndWithConcurrentClientsAndCleanShutdown) {
  char dir_template[] = "/tmp/avglocal-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/daemon.sock";

  core::ServeOptions options;
  options.socket_path = socket_path;
  options.threads = 2;
  options.max_clients = 4;
  core::Server server(options);
  server.start();
  std::thread accept_thread([&server] { server.run(); });

  const core::ScenarioSpec spec = base_spec(12);
  const std::string reference = monolithic_report(spec);
  const std::string request = sweep_request_line(spec);

  // Two clients race the same workload; both must get the reference bytes
  // (the cache serialises compute internally, so one computes and the
  // other hits - order unspecified, result identical).
  std::vector<std::string> replies(2);
  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < replies.size(); ++c) {
    clients.emplace_back([&, c] {
      support::UnixStream stream = support::UnixStream::connect(socket_path);
      ASSERT_TRUE(stream.write_line(request));
      ASSERT_TRUE(stream.read_line(replies[c]));
    });
  }
  for (auto& t : clients) t.join();
  for (const std::string& line : replies) {
    const support::JsonValue response = support::parse_json(line);
    ASSERT_TRUE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("report").as_string(), reference);
  }

  // One connection, two pipelined requests: an extension then stats.
  {
    support::UnixStream stream = support::UnixStream::connect(socket_path);
    core::ScenarioSpec extended = base_spec(20);
    ASSERT_TRUE(stream.write_line(sweep_request_line(extended)));
    std::string line;
    ASSERT_TRUE(stream.read_line(line));
    const support::JsonValue response = support::parse_json(line);
    ASSERT_TRUE(response.at("ok").as_bool());
    EXPECT_EQ(response.at("report").as_string(), monolithic_report(extended));
    EXPECT_EQ(response.at("trials_computed").as_u64(), 8u * 2);  // tail only

    ASSERT_TRUE(stream.write_line("{\"op\":\"stats\"}"));
    ASSERT_TRUE(stream.read_line(line));
    const support::JsonValue stats = support::parse_json(line);
    EXPECT_TRUE(stats.at("ok").as_bool());
    EXPECT_EQ(stats.at("entries").as_u64(), 1u);
    EXPECT_EQ(stats.at("extensions").as_u64(), 1u);
  }

  // The shutdown op stops the whole daemon: run() returns, every handler
  // joins, and the socket file is unlinked.
  {
    support::UnixStream stream = support::UnixStream::connect(socket_path);
    ASSERT_TRUE(stream.write_line("{\"op\":\"shutdown\"}"));
    std::string line;
    ASSERT_TRUE(stream.read_line(line));
    EXPECT_NE(line.find("\"ok\":true"), std::string::npos);
  }
  accept_thread.join();
  EXPECT_TRUE(server.stopping());
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
  ::rmdir(dir_template);
}

TEST(Server, RequestStopInterruptsABlockedAcceptLoop) {
  char dir_template[] = "/tmp/avglocal-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/daemon.sock";

  core::ServeOptions options;
  options.socket_path = socket_path;
  core::Server server(options);
  server.start();
  std::thread accept_thread([&server] { server.run(); });
  // Simulates the SIGTERM handler: the signal-safe call alone must bring
  // the blocked accept loop down.
  server.request_stop();
  accept_thread.join();
  EXPECT_NE(::access(socket_path.c_str(), F_OK), 0);
  ::rmdir(dir_template);
}

TEST(Server, FullSlotTableRepliesBusyInsteadOfSilentlyDropping) {
  char dir_template[] = "/tmp/avglocal-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/daemon.sock";

  core::ServeOptions options;
  options.socket_path = socket_path;
  options.max_clients = 1;
  core::Server server(options);
  server.start();
  std::thread accept_thread([&server] { server.run(); });

  // The first client pins the only slot; the ping round-trip guarantees
  // its handler is live before anyone else knocks.
  support::UnixStream holder = support::UnixStream::connect(socket_path);
  std::string line;
  ASSERT_TRUE(holder.write_line("{\"op\":\"ping\"}"));
  ASSERT_TRUE(holder.read_line(line));

  // The second connection must get an explicit busy error, then EOF - a
  // reply to back off on, not a silent drop.
  {
    support::UnixStream rejected = support::UnixStream::connect(socket_path);
    ASSERT_TRUE(rejected.read_line(line));
    const support::JsonValue reply = support::parse_json(line);
    EXPECT_FALSE(reply.at("ok").as_bool());
    EXPECT_EQ(reply.at("error").as_string(), "busy");
    EXPECT_FALSE(rejected.read_line(line));  // closed right after the reply
  }

  // Once the holder leaves its slot is reaped on the next accept, so a
  // retrying client eventually gets a real handler again. Busy lines in
  // between are expected - that is the whole point of the reply.
  holder.close();
  for (;;) {
    support::UnixStream retry = support::UnixStream::connect(socket_path);
    ASSERT_TRUE(retry.write_line("{\"op\":\"ping\"}"));
    ASSERT_TRUE(retry.read_line(line));
    const support::JsonValue reply = support::parse_json(line);
    if (reply.at("ok").as_bool()) break;  // a freed slot served the ping
    EXPECT_EQ(reply.at("error").as_string(), "busy");
  }

  server.request_stop();
  accept_thread.join();
  ::rmdir(dir_template);
}

TEST(Stream, ConnectWithRetryOutwaitsADaemonStillBinding) {
  char dir_template[] = "/tmp/avglocal-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/daemon.sock";
  const support::Endpoint endpoint = support::parse_endpoint(socket_path);

  // The daemon-startup race, reproduced deterministically: the listener
  // appears only after the client has already started connecting. The
  // bounded-backoff retry must ride out the ENOENT window.
  std::thread late_binder([&socket_path] {
    std::this_thread::sleep_for(std::chrono::milliseconds(80));
    support::UnixListener listener = support::UnixListener::bind(socket_path);
    support::UnixStream peer = listener.accept_client();
    std::string line;
    ASSERT_TRUE(peer.read_line(line));
    ASSERT_TRUE(peer.write_line(line));  // echo, proving a usable stream
  });

  support::UnixStream stream = support::Stream::connect_with_retry(endpoint, 5000);
  ASSERT_TRUE(stream.valid());
  ASSERT_TRUE(stream.write_line("hello"));
  std::string echoed;
  ASSERT_TRUE(stream.read_line(echoed));
  EXPECT_EQ(echoed, "hello");
  late_binder.join();

  // Nothing ever binds here: the retry window closes and throws instead
  // of spinning forever.
  const support::Endpoint absent =
      support::parse_endpoint(std::string(dir_template) + "/nobody.sock");
  EXPECT_THROW((void)support::Stream::connect_with_retry(absent, 150), std::runtime_error);
  ::rmdir(dir_template);
}

TEST(Server, BindRefusesALiveDaemonAndReplacesAStaleSocket) {
  char dir_template[] = "/tmp/avglocal-serve-XXXXXX";
  ASSERT_NE(::mkdtemp(dir_template), nullptr);
  const std::string socket_path = std::string(dir_template) + "/daemon.sock";

  {
    support::UnixListener live = support::UnixListener::bind(socket_path);
    EXPECT_THROW((void)support::UnixListener::bind(socket_path), std::runtime_error);
  }
  // A leftover path that nothing is accepting on (here: a plain file, the
  // same EADDRINUSE + failed-probe shape as a crashed daemon's socket
  // file) is replaced silently.
  {
    std::ofstream stale(socket_path);
    stale << "stale";
  }
  EXPECT_EQ(::access(socket_path.c_str(), F_OK), 0);
  support::UnixListener replaced = support::UnixListener::bind(socket_path);
  EXPECT_TRUE(replaced.valid());
  replaced.close();
  ::rmdir(dir_template);
}

}  // namespace
