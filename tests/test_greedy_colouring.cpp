// Tests of greedy (Delta+1)-colouring by identifier order: validity on many
// families, the longest-increasing-path radius law, agreement between the
// message and ball formulations, and the worst/average separation.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/greedy_colouring.hpp"
#include "algo/validity.hpp"
#include "graph/ball.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "graph/properties.hpp"
#include "local/engine.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

graph::Graph make_family(const std::string& family, std::size_t n,
                         support::Xoshiro256& rng) {
  if (family == "cycle") return graph::make_cycle(n);
  if (family == "path") return graph::make_path(n);
  if (family == "tree") return graph::make_random_tree(n, rng);
  if (family == "grid") return graph::make_grid(n / 5, 5);
  if (family == "gnp") return graph::make_gnp_connected(n, 0.15, rng);
  return graph::make_star(n);
}

struct GreedyCase {
  std::string family;
  std::size_t n;
  std::uint64_t seed;
};

class GreedyColouring : public ::testing::TestWithParam<GreedyCase> {};

TEST_P(GreedyColouring, ValidDeltaPlusOneAndRadiusLaw) {
  const auto& param = GetParam();
  support::Xoshiro256 rng(param.seed);
  const graph::Graph g = make_family(param.family, param.n, rng);
  const auto ids = graph::IdAssignment::random(g.vertex_count(), rng);

  const auto by_messages =
      local::run_messages(g, ids, algo::make_greedy_colouring_messages());
  EXPECT_TRUE(algo::is_valid_colouring(
      g, by_messages.outputs, static_cast<std::int64_t>(graph::max_degree(g)) + 1))
      << param.family;

  // Message rounds follow the longest-increasing-path law exactly.
  const auto law = algo::greedy_colouring_radii(g, ids);
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(by_messages.radii[v], law[v]) << param.family << " v " << v;
  }

  // The ball formulation computes the same colouring, never later than the
  // message formulation (shortcuts through the ball can only help).
  const auto by_views = local::run_views(g, ids, algo::make_greedy_colouring_view());
  for (std::size_t v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(by_views.outputs[v], by_messages.outputs[v]) << param.family << " v " << v;
    EXPECT_LE(by_views.radii[v], by_messages.radii[v]) << param.family << " v " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, GreedyColouring,
    ::testing::Values(GreedyCase{"cycle", 24, 1}, GreedyCase{"cycle", 64, 2},
                      GreedyCase{"path", 30, 3}, GreedyCase{"tree", 40, 4},
                      GreedyCase{"grid", 30, 5}, GreedyCase{"gnp", 32, 6},
                      GreedyCase{"star", 12, 7}),
    [](const auto& param_info) {
      return param_info.param.family + std::to_string(param_info.param.n) + "_s" +
             std::to_string(param_info.param.seed);
    });

TEST(GreedyColouringLaw, ViewEqualsMinOfLawAndClosureOnCycles) {
  support::Xoshiro256 rng(8);
  for (const std::size_t n : {12u, 33u, 64u}) {
    const graph::Graph g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::random(n, rng);
    const auto law = algo::greedy_colouring_radii(g, ids);
    const auto run = local::run_views(g, ids, algo::make_greedy_colouring_view());
    for (std::size_t v = 0; v < n; ++v) {
      EXPECT_EQ(run.radii[v], std::min(law[v], n / 2)) << "n " << n << " v " << v;
    }
  }
}

TEST(GreedyColouringSeparation, MonotoneIdsForceLinearAverage) {
  // Identity identifiers on a cycle: the increasing path from vertex v runs
  // all the way to vertex n-1, so radii are linear and so is the average -
  // while a random permutation keeps the average logarithmic. A second
  // exponential measure-gap, on the same topology as the paper.
  const std::size_t n = 256;
  const graph::Graph g = graph::make_cycle(n);

  const auto monotone =
      local::run_views(g, graph::IdAssignment::identity(n), algo::make_greedy_colouring_view());
  EXPECT_GT(monotone.average_radius(), static_cast<double>(n) / 8.0);

  support::Xoshiro256 rng(9);
  const auto random_run =
      local::run_views(g, graph::IdAssignment::random(n, rng),
                       algo::make_greedy_colouring_view());
  EXPECT_LT(random_run.average_radius(), 3.0 * std::log2(static_cast<double>(n)));
  EXPECT_LT(random_run.average_radius() * 8, monotone.average_radius());
}

TEST(GreedyColouringLaw, LocalMaximaStopAtRadiusOne) {
  support::Xoshiro256 rng(10);
  const std::size_t n = 48;
  const graph::Graph g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::random(n, rng);
  const auto run = local::run_views(g, ids, algo::make_greedy_colouring_view());
  for (std::size_t v = 0; v < n; ++v) {
    const auto left = ids.id_of(static_cast<graph::Vertex>((v + n - 1) % n));
    const auto right = ids.id_of(static_cast<graph::Vertex>((v + 1) % n));
    if (ids.id_of(static_cast<graph::Vertex>(v)) > left &&
        ids.id_of(static_cast<graph::Vertex>(v)) > right) {
      EXPECT_EQ(run.radii[v], 1u) << "local maximum " << v;
      EXPECT_EQ(run.outputs[v], 0) << "local maxima take colour 0";
    }
  }
}

}  // namespace
