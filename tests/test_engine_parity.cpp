// Property suite pinning the three execution paths of the LOCAL simulator
// to each other: the serial view sweep, the pooled (parallel) view sweep at
// several thread counts, and the message engine driven through the
// full-information adapter. On every random topology, seed and thread
// count they must produce identical outputs and radii - this is what makes
// the flat-memory/parallel core a pure optimisation.
#include <gtest/gtest.h>

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "algo/largest_id.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/full_info.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"
#include "support/thread_pool.hpp"

namespace {

using namespace avglocal;

void expect_same_run(const local::RunResult& a, const local::RunResult& b,
                     const std::string& what) {
  ASSERT_EQ(a.outputs.size(), b.outputs.size()) << what;
  EXPECT_EQ(a.outputs, b.outputs) << what;
  EXPECT_EQ(a.radii, b.radii) << what;
}

graph::Graph make_topology(int kind, std::size_t n, support::Xoshiro256& rng) {
  switch (kind) {
    case 0: return graph::make_random_tree(n, rng);
    case 1: return graph::make_cycle(n);
    default: return graph::make_gnp_connected(n, 0.15, rng);
  }
}

const char* kTopologyNames[] = {"random_tree", "cycle", "gnp"};

TEST(EngineParity, SerialPooledAndMessagesAgreeEverywhere) {
  const std::size_t kThreadCounts[] = {1, 2, 4};
  for (int kind = 0; kind < 3; ++kind) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      support::Xoshiro256 rng(support::derive_seed(seed, static_cast<std::uint64_t>(kind)));
      const std::size_t n = 24 + rng.below(16);
      const graph::Graph g = make_topology(kind, n, rng);
      const graph::IdAssignment ids =
          graph::IdAssignment::random(g.vertex_count(), rng);
      const std::string label =
          std::string(kTopologyNames[kind]) + " seed=" + std::to_string(seed);

      // Ground truth: serial sweep under flooding semantics (what the
      // message engine's gossip delivers round by round).
      local::ViewEngineOptions flooding;
      flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
      const auto serial = local::run_views(g, ids, algo::make_largest_id_view(), flooding);

      for (const std::size_t threads : kThreadCounts) {
        support::ThreadPool pool(threads);
        local::ViewEngineOptions pooled = flooding;
        pooled.pool = &pool;
        const auto parallel = local::run_views(g, ids, algo::make_largest_id_view(), pooled);
        expect_same_run(serial, parallel,
                        label + " pooled threads=" + std::to_string(threads));
      }

      const auto messages =
          local::run_views_by_messages(g, ids, algo::make_largest_id_view());
      expect_same_run(serial, messages, label + " messages");
    }
  }
}

TEST(EngineParity, InducedSemanticsSerialVsPooled) {
  support::Xoshiro256 rng(77);
  for (int kind = 0; kind < 3; ++kind) {
    const std::size_t n = 30 + rng.below(20);
    const graph::Graph g = make_topology(kind, n, rng);
    const graph::IdAssignment ids = graph::IdAssignment::random(g.vertex_count(), rng);
    const auto serial = local::run_views(g, ids, algo::make_largest_id_view());
    support::ThreadPool pool(3);
    local::ViewEngineOptions options;
    options.pool = &pool;
    const auto pooled = local::run_views(g, ids, algo::make_largest_id_view(), options);
    expect_same_run(serial, pooled, std::string("induced ") + kTopologyNames[kind]);
  }
}

// A shared pool must be reusable across many run_views calls (that is the
// whole point of hoisting it): results stay identical call after call.
TEST(EngineParity, PoolIsReusableAcrossRuns) {
  support::Xoshiro256 rng(5);
  const auto g = graph::make_cycle(48);
  support::ThreadPool pool(4);
  local::ViewEngineOptions pooled;
  pooled.pool = &pool;
  for (int run = 0; run < 5; ++run) {
    const graph::IdAssignment ids = graph::IdAssignment::random(48, rng);
    const auto serial = local::run_views(g, ids, algo::make_largest_id_view());
    const auto parallel = local::run_views(g, ids, algo::make_largest_id_view(), pooled);
    expect_same_run(serial, parallel, "run " + std::to_string(run));
  }
}

// The registry opened torus, random-regular and random-tree sweeps to every
// tool, so their port conventions must hold under all three execution
// paths, not just the per-trial one the benches used to exercise: the
// batched engine replays recorded ball geometry (a wrong port table would
// corrupt replayed views), and the message engine reconstructs views from
// gossip (a wrong mirror port would misroute payloads).
TEST(EngineParity, BatchedPerTrialAndMessagesAgreeOnGeneratorFamilies) {
  support::Xoshiro256 rng(29);
  struct Named {
    const char* name;
    graph::Graph g;
  };
  const Named topologies[] = {
      {"torus", graph::make_torus(5, 6)},
      {"random_regular", graph::make_random_regular(26, 3, rng)},
      {"random_tree", graph::make_random_tree(31, rng)},
  };
  for (const auto& [name, g] : topologies) {
    const std::size_t n = g.vertex_count();
    for (std::uint64_t seed = 1; seed <= 2; ++seed) {
      support::Xoshiro256 id_rng(support::derive_seed(seed, 99));
      const graph::IdAssignment ids = graph::IdAssignment::random(n, id_rng);
      const std::string label = std::string(name) + " seed=" + std::to_string(seed);

      for (const auto semantics : {local::ViewSemantics::kInducedBall,
                                   local::ViewSemantics::kFloodingKnowledge}) {
        local::ViewEngineOptions options;
        options.semantics = semantics;
        const auto per_trial = local::run_views(g, ids, algo::make_largest_id_view(), options);

        local::RunResult batched;
        batched.outputs.resize(n);
        batched.radii.resize(n);
        local::run_views_batched(
            g, std::span(&ids, 1), algo::make_largest_id_view(), options,
            [&](std::size_t, std::size_t, graph::Vertex v, std::int64_t output,
                std::size_t radius) {
              batched.outputs[v] = output;
              batched.radii[v] = radius;
            });
        expect_same_run(per_trial, batched, label + " batched");
      }

      // The message engine's gossip delivers flooding-knowledge views.
      local::ViewEngineOptions flooding;
      flooding.semantics = local::ViewSemantics::kFloodingKnowledge;
      const auto serial = local::run_views(g, ids, algo::make_largest_id_view(), flooding);
      const auto messages =
          local::run_views_by_messages(g, ids, algo::make_largest_id_view());
      expect_same_run(serial, messages, label + " messages");
    }
  }
}

// The universe-aware refinement exercises a second stopping rule (earlier
// outputs, different ball shapes) through the same machinery.
TEST(EngineParity, UniverseAwareRuleSerialVsPooled) {
  support::Xoshiro256 rng(11);
  const auto g = graph::make_cycle(64);
  const graph::IdAssignment ids = graph::IdAssignment::random(64, rng);
  const auto serial = local::run_views(g, ids, algo::make_largest_id_universe_aware_view());
  support::ThreadPool pool(2);
  local::ViewEngineOptions options;
  options.pool = &pool;
  const auto pooled =
      local::run_views(g, ids, algo::make_largest_id_universe_aware_view(), options);
  expect_same_run(serial, pooled, "universe-aware");
}

}  // namespace
