// The distributed sweep fabric's contract: any worker count, steal order,
// straggler kill or transport (Unix-domain or TCP) produces merged
// partials - and a finalized report - byte-identical to the monolithic
// sweep. Covers the endpoint grammar, the WorkQueue dispatch policy
// (pure bookkeeping, no sockets), the coordinator protocol driven
// socket-free through handle_request (duplicate discard, artefact
// validation), real coordinator+worker runs over both transports, a
// worker that vanishes mid-unit, and the ResultCache hand-off.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdlib>
#include <optional>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/fabric.hpp"
#include "core/remote_backend.hpp"
#include "core/result_cache.hpp"
#include "core/scenario.hpp"
#include "support/json_reader.hpp"
#include "support/json_writer.hpp"
#include "support/socket.hpp"

namespace {

using namespace avglocal;

core::ScenarioSpec base_spec(std::size_t trials) {
  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id";
  spec.ns = {64, 96};
  spec.seed = 11;
  spec.schedule.max_trials = trials;
  return spec;
}

std::string monolithic_report(const core::ScenarioSpec& spec) {
  const core::ScenarioResult result = core::run_scenario(spec);
  return core::sweep_report_json(result.spec, result.points);
}

// ------------------------------------------------------------- endpoints ----

TEST(Endpoint, ParsesEverySpelledForm) {
  const support::Endpoint unix_scheme = support::parse_endpoint("unix:/tmp/fabric.sock");
  EXPECT_EQ(unix_scheme.kind, support::Endpoint::Kind::kUnix);
  EXPECT_EQ(unix_scheme.path, "/tmp/fabric.sock");
  EXPECT_EQ(unix_scheme.to_string(), "unix:/tmp/fabric.sock");

  const support::Endpoint bare_path = support::parse_endpoint("/tmp/fabric.sock");
  EXPECT_EQ(bare_path, unix_scheme);

  const support::Endpoint tcp_scheme = support::parse_endpoint("tcp:127.0.0.1:7001");
  EXPECT_EQ(tcp_scheme.kind, support::Endpoint::Kind::kTcp);
  EXPECT_EQ(tcp_scheme.host, "127.0.0.1");
  EXPECT_EQ(tcp_scheme.port, 7001);
  EXPECT_EQ(tcp_scheme.to_string(), "tcp:127.0.0.1:7001");

  const support::Endpoint bare_hostport = support::parse_endpoint("localhost:0");
  EXPECT_EQ(bare_hostport.kind, support::Endpoint::Kind::kTcp);
  EXPECT_EQ(bare_hostport.host, "localhost");
  EXPECT_EQ(bare_hostport.port, 0);
}

TEST(Endpoint, RejectsMalformedSpecs) {
  EXPECT_THROW((void)support::parse_endpoint(""), std::runtime_error);
  EXPECT_THROW((void)support::parse_endpoint("unix:"), std::runtime_error);
  EXPECT_THROW((void)support::parse_endpoint("tcp:nohost"), std::runtime_error);
  EXPECT_THROW((void)support::parse_endpoint("tcp::7001"), std::runtime_error);
  EXPECT_THROW((void)support::parse_endpoint("tcp:host:notaport"), std::runtime_error);
  EXPECT_THROW((void)support::parse_endpoint("tcp:host:70000"), std::runtime_error);
}

// -------------------------------------------------------- plan_work_units ----

TEST(PlanWorkUnits, CoversTheSweepPointMajorInIdOrder) {
  const std::vector<core::WorkUnit> units = core::plan_work_units(2, 10, 4);
  ASSERT_EQ(units.size(), 6u);  // per point: [0,4) [4,8) [8,10)
  for (std::size_t i = 0; i < units.size(); ++i) EXPECT_EQ(units[i].id, i);
  EXPECT_EQ(units[0].point, 0u);
  EXPECT_EQ(units[2].trial_begin, 8u);
  EXPECT_EQ(units[2].trial_end, 10u);
  EXPECT_EQ(units[3].point, 1u);
  EXPECT_EQ(units[3].trial_begin, 0u);
  // Per point, trial ranges are contiguous ascending and partition [0, 10).
  for (std::size_t point = 0; point < 2; ++point) {
    std::size_t next = 0;
    for (const core::WorkUnit& unit : units) {
      if (unit.point != point) continue;
      EXPECT_EQ(unit.trial_begin, next);
      next = unit.trial_end;
    }
    EXPECT_EQ(next, 10u);
  }
}

TEST(PlanWorkUnits, DefaultGranularityIsAnEighthOfTheTrials) {
  const std::vector<core::WorkUnit> units = core::plan_work_units(1, 100, 0);
  EXPECT_EQ(units.size(), 8u);  // ceil(100/13) with unit_trials = ceil(100/8)
  EXPECT_EQ(units.front().trial_end, 13u);
  EXPECT_EQ(units.back().trial_end, 100u);
}

// -------------------------------------------------------------- WorkQueue ----

TEST(WorkQueue, GrantsPendingUnitsInIdOrderThenDrains) {
  core::WorkQueue queue(core::plan_work_units(1, 8, 4), /*straggler_ms=*/1000);
  const auto first = queue.grant(/*session=*/0, /*now_ms=*/0);
  const auto second = queue.grant(1, 0);
  ASSERT_TRUE(first && second);
  EXPECT_EQ(first->id, 0u);
  EXPECT_EQ(second->id, 1u);
  // Everything in flight, nothing overdue: the next idle worker drains.
  EXPECT_FALSE(queue.grant(2, 100).has_value());
  EXPECT_EQ(queue.redispatches(), 0u);
}

TEST(WorkQueue, RedispatchesOverdueUnitsFewestDispatchesFirst) {
  core::WorkQueue queue(core::plan_work_units(1, 8, 4), /*straggler_ms=*/100);
  (void)queue.grant(0, 0);  // unit 0, deadline 100
  (void)queue.grant(1, 50); // unit 1, deadline 150
  // At t=120 only unit 0 is overdue.
  const auto stolen = queue.grant(2, 120);
  ASSERT_TRUE(stolen);
  EXPECT_EQ(stolen->id, 0u);
  EXPECT_EQ(queue.redispatches(), 1u);
  // At t=300 both are overdue; unit 1 has fewer dispatches, so it wins.
  const auto next = queue.grant(3, 300);
  ASSERT_TRUE(next);
  EXPECT_EQ(next->id, 1u);
}

TEST(WorkQueue, ReleaseMakesAVanishedWorkersUnitsImmediatelyGrantable) {
  core::WorkQueue queue(core::plan_work_units(1, 4, 4), /*straggler_ms=*/100000);
  (void)queue.grant(/*session=*/7, 0);
  EXPECT_FALSE(queue.grant(8, 1).has_value());  // held, far from overdue
  queue.release(7);                             // session 7's connection dropped
  const auto regranted = queue.grant(8, 2);
  ASSERT_TRUE(regranted);
  EXPECT_EQ(regranted->id, 0u);
}

TEST(WorkQueue, AcceptsEachUnitExactlyOnce) {
  core::WorkQueue queue(core::plan_work_units(1, 8, 4), 100);
  (void)queue.grant(0, 0);
  EXPECT_TRUE(queue.accept(0));
  EXPECT_FALSE(queue.accept(0));  // the straggler's late duplicate
  EXPECT_FALSE(queue.complete());
  (void)queue.grant(0, 0);
  EXPECT_TRUE(queue.accept(1));
  EXPECT_TRUE(queue.complete());
  EXPECT_EQ(queue.done_count(), 2u);
}

// --------------------------------------------- coordinator, socket-free ----

std::string work_request_line() { return "{\"op\":\"work-request\"}"; }

/// Builds the result line a worker would send for `unit`, computing the
/// artefact locally through the same shard plumbing workers use.
std::string result_line(const core::ResolvedScenario& resolved, const core::WorkUnit& unit) {
  core::ShardDocument doc;
  doc.meta = core::scenario_plan_meta(resolved);
  doc.shard = core::SweepShard{unit.point, unit.point + 1, unit.trial_begin, unit.trial_end};
  doc.points = core::run_scenario_shard(resolved, resolved.sweep_options(), doc.shard);
  support::JsonWriter json;
  json.begin_object();
  json.key("op").value("result");
  json.key("unit").value(static_cast<std::uint64_t>(unit.id));
  json.key("artefact").value(core::shard_to_json(doc));
  json.end_object();
  return json.str();
}

TEST(FabricCoordinator, HandleRequestSpeaksTheProtocol) {
  core::ScenarioSpec spec = base_spec(8);
  spec.ns = {64};
  core::FabricOptions options;
  options.unit_trials = 4;  // two units; the listener is never bound
  core::FabricCoordinator coordinator(core::resolve_scenario(spec), options);

  const auto hello = coordinator.handle_request(0, "{\"op\":\"hello\",\"worker\":\"w0\"}");
  const support::JsonValue hello_reply = support::parse_json(hello.line);
  EXPECT_TRUE(hello_reply.at("ok").as_bool());
  EXPECT_EQ(hello_reply.at("trials").as_u64(), 8u);
  EXPECT_EQ(hello_reply.at("points").as_u64(), 1u);
  // The embedded scenario block resolves back to the coordinator's spec.
  const core::ScenarioSpec echoed = core::scenario_from_json(hello_reply.at("scenario"));
  EXPECT_EQ(core::resolve_scenario(echoed).spec, core::resolve_scenario(spec).spec);

  const auto malformed = coordinator.handle_request(0, "not json");
  EXPECT_NE(malformed.line.find("\"ok\":false"), std::string::npos);
  const auto unknown = coordinator.handle_request(0, "{\"op\":\"frobnicate\"}");
  EXPECT_NE(unknown.line.find("\"ok\":false"), std::string::npos);

  const auto grant = coordinator.handle_request(0, work_request_line());
  const support::JsonValue grant_reply = support::parse_json(grant.line);
  EXPECT_EQ(grant_reply.at("op").as_string(), "work-grant");
  EXPECT_EQ(grant_reply.at("unit").at("id").as_u64(), 0u);
  EXPECT_FALSE(grant.disconnect);
}

TEST(FabricCoordinator, DiscardsTheStragglersDuplicateExactlyOnce) {
  core::ScenarioSpec spec = base_spec(8);
  spec.ns = {64};
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  core::FabricOptions options;
  options.unit_trials = 8;     // a single unit
  options.straggler_ms = 0;    // every grant is instantly overdue
  core::FabricCoordinator coordinator(core::resolve_scenario(spec), options);

  // Session 0 takes the unit, stalls; session 1 steals the re-dispatch.
  const auto first_grant = coordinator.handle_request(0, work_request_line());
  EXPECT_EQ(support::parse_json(first_grant.line).at("op").as_string(), "work-grant");
  const auto stolen = coordinator.handle_request(1, work_request_line());
  EXPECT_EQ(support::parse_json(stolen.line).at("op").as_string(), "work-grant");
  EXPECT_EQ(coordinator.stats().redispatches, 1u);

  // Both deliver: the first copy is accepted, the straggler's duplicate
  // is discarded - exactly once each.
  const core::WorkUnit& unit = coordinator.work_units().front();
  const std::string line = result_line(resolved, unit);
  const auto winner = coordinator.handle_request(1, line);
  EXPECT_TRUE(support::parse_json(winner.line).at("accepted").as_bool());
  const auto duplicate = coordinator.handle_request(0, line);
  EXPECT_FALSE(support::parse_json(duplicate.line).at("accepted").as_bool());

  const core::FabricStats stats = coordinator.stats();
  EXPECT_EQ(stats.results_accepted, 1u);
  EXPECT_EQ(stats.duplicates_discarded, 1u);
  EXPECT_TRUE(coordinator.complete());

  // With the sweep complete, the next work-request is a shutdown.
  const auto shutdown = coordinator.handle_request(2, work_request_line());
  EXPECT_EQ(support::parse_json(shutdown.line).at("op").as_string(), "shutdown");
  EXPECT_TRUE(shutdown.disconnect);
}

TEST(FabricCoordinator, RejectsArtefactsFromTheWrongWorkload) {
  core::ScenarioSpec spec = base_spec(8);
  spec.ns = {64};
  core::FabricOptions options;
  options.unit_trials = 8;
  core::FabricCoordinator coordinator(core::resolve_scenario(spec), options);
  (void)coordinator.handle_request(0, work_request_line());

  // An artefact computed under a different seed: same rectangle, same
  // shapes, different workload identity - the meta check must reject it.
  core::ScenarioSpec other = spec;
  other.seed = 999;
  const auto rejected = coordinator.handle_request(
      0, result_line(core::resolve_scenario(other), coordinator.work_units().front()));
  EXPECT_NE(rejected.line.find("\"ok\":false"), std::string::npos);
  EXPECT_NE(rejected.line.find("meta"), std::string::npos);
  EXPECT_FALSE(coordinator.complete());

  const auto unknown_unit =
      coordinator.handle_request(0, "{\"op\":\"result\",\"unit\":99,\"artefact\":\"{}\"}");
  EXPECT_NE(unknown_unit.line.find("\"ok\":false"), std::string::npos);
}

TEST(FabricCoordinator, ReleaseSessionReturnsHeldUnitsToCirculation) {
  core::ScenarioSpec spec = base_spec(4);
  spec.ns = {64};
  core::FabricOptions options;
  options.unit_trials = 4;
  options.straggler_ms = 1000000;  // never overdue on its own
  core::FabricCoordinator coordinator(core::resolve_scenario(spec), options);

  (void)coordinator.handle_request(0, work_request_line());
  const auto drained = coordinator.handle_request(1, work_request_line());
  EXPECT_EQ(support::parse_json(drained.line).at("op").as_string(), "drain");
  coordinator.release_session(0);  // worker 0's connection dropped
  const auto regranted = coordinator.handle_request(1, work_request_line());
  EXPECT_EQ(support::parse_json(regranted.line).at("op").as_string(), "work-grant");
}

// ------------------------------------------------- sockets, end to end ----

/// Runs a full fabric sweep: a RemoteBackend coordinator on `endpoint`
/// plus `workers` in-process workers, returning the merged report.
std::string fabric_report(const core::ScenarioSpec& spec, std::size_t workers,
                          const support::Endpoint& endpoint, core::ResultCache* cache = nullptr,
                          core::FabricStats* stats_out = nullptr) {
  core::FabricOptions options;
  options.endpoint = endpoint;
  options.unit_trials = 3;  // enough units per point for real interleaving
  core::RemoteBackend backend(spec, options);
  backend.start();
  const support::Endpoint bound = backend.endpoint();

  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t index = 0; index < workers; ++index) {
    threads.emplace_back([bound, index] {
      core::FabricWorkerOptions worker;
      worker.endpoint = bound;
      worker.name = "w" + std::to_string(index);
      worker.threads = 1;
      const core::FabricWorkerOutcome outcome = core::run_fabric_worker(worker);
      EXPECT_FALSE(outcome.drained);
    });
  }
  const core::RemoteSweepOutcome outcome = backend.run(cache);
  for (std::thread& thread : threads) thread.join();
  EXPECT_TRUE(outcome.complete);
  if (stats_out != nullptr) *stats_out = outcome.stats;
  return outcome.report;
}

std::string scratch_socket(char (&dir_template)[30]) {
  if (::mkdtemp(dir_template) == nullptr) throw std::runtime_error("mkdtemp failed");
  return std::string(dir_template) + "/fabric.sock";
}

TEST(Fabric, OneWorkerOverUnixSocketMatchesMonolithicByteForByte) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  const core::ScenarioSpec spec = base_spec(10);
  core::FabricStats stats;
  EXPECT_EQ(fabric_report(spec, 1, endpoint, nullptr, &stats), monolithic_report(spec));
  EXPECT_EQ(stats.workers_seen, 1u);
  EXPECT_EQ(stats.results_accepted, 8u);  // 2 points x ceil(10/3) units
  EXPECT_EQ(stats.duplicates_discarded, 0u);
  ::rmdir(dir_template);
}

TEST(Fabric, ThreeWorkersStealingOverUnixSocketMatchMonolithic) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  const core::ScenarioSpec spec = base_spec(16);
  core::FabricStats stats;
  EXPECT_EQ(fabric_report(spec, 3, endpoint, nullptr, &stats), monolithic_report(spec));
  EXPECT_EQ(stats.workers_seen, 3u);
  EXPECT_EQ(stats.results_accepted, 12u);  // 2 points x ceil(16/3) units
  ::rmdir(dir_template);
}

TEST(Fabric, TcpEphemeralPortWorksLikeUnixDomain) {
  support::Endpoint endpoint = support::parse_endpoint("tcp:127.0.0.1:0");
  const core::ScenarioSpec spec = base_spec(8);
  EXPECT_EQ(fabric_report(spec, 2, endpoint), monolithic_report(spec));
}

TEST(Fabric, MessageEngineScenariosTravelTheFabricToo) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  core::ScenarioSpec spec;
  spec.family = {"cycle", {}};
  spec.algorithm = "largest-id-msg";
  spec.ns = {64};
  spec.seed = 5;
  spec.schedule.max_trials = 8;
  EXPECT_EQ(fabric_report(spec, 2, endpoint), monolithic_report(spec));
  ::rmdir(dir_template);
}

TEST(Fabric, WorkerVanishingMidUnitIsRedispatchedAndStaysByteIdentical) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  const core::ScenarioSpec spec = base_spec(10);
  core::FabricOptions options;
  options.endpoint = endpoint;
  options.unit_trials = 3;
  options.straggler_ms = 60000;  // re-dispatch must come from the drop, not time
  core::RemoteBackend backend(spec, options);
  backend.start();
  const support::Endpoint bound = backend.endpoint();
  core::RemoteSweepOutcome outcome;
  std::thread runner([&backend, &outcome] { outcome = backend.run(); });

  // The casualty: takes a grant, then vanishes without delivering - the
  // protocol-level shape of a worker killed mid-unit.
  std::thread casualty([bound] {
    support::Stream stream = support::Stream::connect_with_retry(bound, 5000);
    std::string line;
    ASSERT_TRUE(stream.write_line("{\"op\":\"hello\",\"worker\":\"doomed\"}"));
    ASSERT_TRUE(stream.read_line(line));
    ASSERT_TRUE(stream.write_line("{\"op\":\"work-request\"}"));
    ASSERT_TRUE(stream.read_line(line));
    EXPECT_EQ(support::parse_json(line).at("op").as_string(), "work-grant");
    stream.close();  // dies holding the unit
  });
  casualty.join();  // the unit is now in a dropped session's hands

  std::thread survivor([bound] {
    core::FabricWorkerOptions worker;
    worker.endpoint = bound;
    worker.name = "survivor";
    worker.threads = 1;
    (void)core::run_fabric_worker(worker);
  });
  runner.join();
  survivor.join();

  ASSERT_TRUE(outcome.complete);
  EXPECT_EQ(outcome.report, monolithic_report(spec));
  EXPECT_GE(outcome.stats.redispatches, 1u);
  ::rmdir(dir_template);
}

TEST(Fabric, RequestStopDrainsWithoutCompleting) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  core::FabricOptions options;
  options.endpoint = endpoint;
  core::RemoteBackend backend(base_spec(10), options);
  backend.start();
  std::thread runner([&backend] {
    const core::RemoteSweepOutcome outcome = backend.run();
    EXPECT_FALSE(outcome.complete);
    EXPECT_TRUE(outcome.report.empty());
  });
  // Simulates the SIGTERM handler: the signal-safe call alone must bring
  // the blocked accept loop down.
  backend.request_stop();
  runner.join();
  ::rmdir(dir_template);
}

// ------------------------------------------------------- cache hand-off ----

TEST(Fabric, RemotePartialsLandInTheResultCache) {
  char dir_template[30] = "/tmp/avglocal-fabric-XXXXXX";
  support::Endpoint endpoint;
  endpoint.kind = support::Endpoint::Kind::kUnix;
  endpoint.path = scratch_socket(dir_template);

  const core::ScenarioSpec spec = base_spec(10);
  core::ResultCache cache(core::ResultCacheOptions{1, 0});
  const std::string remote = fabric_report(spec, 2, endpoint, &cache);
  EXPECT_EQ(remote, monolithic_report(spec));

  // The fabric's trials are in the resident cache now: the same request
  // is served warm, and an extension computes only the missing tail.
  const core::ResultCacheOutcome warm = cache.sweep(spec);
  EXPECT_TRUE(warm.warm);
  EXPECT_EQ(warm.trials_computed, 0u);
  EXPECT_EQ(warm.report, remote);

  const core::ScenarioSpec extended = base_spec(14);
  const core::ResultCacheOutcome extension = cache.sweep(extended);
  EXPECT_EQ(extension.trials_computed, 4u * spec.ns.size());
  EXPECT_EQ(extension.report, monolithic_report(extended));
  ::rmdir(dir_template);
}

TEST(ResultCache, OfferPartialsRejectsWrongShapesAndShorterRanges) {
  const core::ScenarioSpec spec = base_spec(8);
  core::ResultCache cache(core::ResultCacheOptions{1, 0});

  // Wrong count: one accumulator for a two-point sweep.
  EXPECT_FALSE(cache.offer_partials(spec, std::vector<core::PointAccumulator>(1)));

  // The real thing: partials from a monolithic shard run are accepted...
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  std::vector<core::PointAccumulator> partials = core::run_scenario_shard(
      resolved, resolved.sweep_options(), core::SweepShard{0, 2, 0, 8});
  EXPECT_TRUE(cache.offer_partials(spec, std::move(partials)));
  EXPECT_TRUE(cache.sweep(spec).warm);

  // ...but a shorter cover than what's cached is not worth keeping.
  std::vector<core::PointAccumulator> shorter = core::run_scenario_shard(
      resolved, resolved.sweep_options(), core::SweepShard{0, 2, 0, 4});
  EXPECT_FALSE(cache.offer_partials(spec, std::move(shorter)));
}

}  // namespace
