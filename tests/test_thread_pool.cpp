// Tests of the persistent worker pool: coverage (every index exactly
// once), worker identification, reuse across jobs, the inline size-1 path,
// and exception propagation.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "support/thread_pool.hpp"

namespace {

using avglocal::support::ThreadPool;

TEST(ThreadPool, CoversEveryIndexExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 7u}) {
    ThreadPool pool(threads);
    EXPECT_EQ(pool.size(), threads);
    const std::size_t count = 1000;
    std::vector<std::atomic<int>> hits(count);
    pool.for_range(count, 3, [&](std::size_t worker, std::size_t begin, std::size_t end) {
      EXPECT_LT(worker, pool.size());
      EXPECT_LT(begin, end);
      EXPECT_LE(end, count);
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(hits[i].load(), 1) << "index " << i << " with " << threads << " threads";
    }
  }
}

TEST(ThreadPool, ReusableAcrossManyJobs) {
  ThreadPool pool(4);
  std::atomic<std::uint64_t> total{0};
  for (int job = 0; job < 20; ++job) {
    pool.for_range(100, 1, [&](std::size_t, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) total.fetch_add(i);
    });
  }
  EXPECT_EQ(total.load(), 20u * (99u * 100u / 2));
}

TEST(ThreadPool, GrainLargerThanCountIsOneChunk) {
  ThreadPool pool(3);
  std::atomic<int> chunks{0};
  pool.for_range(5, 100, [&](std::size_t, std::size_t begin, std::size_t end) {
    chunks.fetch_add(1);
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 5u);
  });
  EXPECT_EQ(chunks.load(), 1);
}

TEST(ThreadPool, EmptyRangeRunsNothing) {
  ThreadPool pool(2);
  bool ran = false;
  pool.for_range(0, 1, [&](std::size_t, std::size_t, std::size_t) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ThreadPool, PropagatesExceptionsFromWorkers) {
  for (const std::size_t threads : {1u, 3u}) {
    ThreadPool pool(threads);
    EXPECT_THROW(
        pool.for_range(64, 1,
                       [&](std::size_t, std::size_t begin, std::size_t) {
                         if (begin == 13) throw std::runtime_error("boom");
                       }),
        std::runtime_error);
    // The pool must survive a throwing job and accept the next one.
    std::atomic<int> done{0};
    pool.for_range(8, 1, [&](std::size_t, std::size_t, std::size_t) { done.fetch_add(1); });
    EXPECT_EQ(done.load(), 8);
  }
}

TEST(ThreadPool, DefaultSizeIsHardwareConcurrency) {
  ThreadPool pool;
  EXPECT_GE(pool.size(), 1u);
}

// ---------------------------------------------------------------------
// Shutdown / task-handoff stress. These exist to give ThreadSanitizer (the
// tsan CI job builds this suite with -fsanitize=thread) a dense schedule
// to chew on: pool construction and destruction race worker wake-up, the
// destructor races the tail of the last job, and exception unwinding races
// the cursor drain. A clean run pins the pool's happens-before structure.
// ---------------------------------------------------------------------

TEST(ThreadPoolStress, ConstructionDestructionChurnUnderLoad) {
  // Spin pools up and down with real work in between: the destructor must
  // always observe fully parked helpers, never a worker still reading job
  // state. 60 pools x up to 4 helpers each.
  std::atomic<std::uint64_t> total{0};
  for (std::size_t round = 0; round < 60; ++round) {
    ThreadPool pool(1 + round % 4);
    pool.for_range(97, 5, [&](std::size_t, std::size_t begin, std::size_t end) {
      std::uint64_t local = 0;
      for (std::size_t i = begin; i < end; ++i) local += i;
      total.fetch_add(local, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 60u * (97u * 96u / 2));
}

TEST(ThreadPoolStress, ImmediateDestructionAfterConstruction) {
  // Destruction may run before a helper has even reached its first wait;
  // the stopping_ flag handshake must cover that window too.
  for (std::size_t round = 0; round < 200; ++round) {
    ThreadPool pool(4);
    EXPECT_EQ(pool.size(), 4u);
  }
}

TEST(ThreadPoolStress, BackToBackJobsReuseHelpersSafely) {
  // Many tiny generations through one pool: each for_range hands the job
  // state to helpers afresh, and the previous job's teardown must be
  // complete before the next publishes new state.
  ThreadPool pool(4);
  std::atomic<std::uint64_t> ticks{0};
  for (std::size_t job = 0; job < 500; ++job) {
    pool.for_range(8, 1, [&](std::size_t, std::size_t, std::size_t) {
      ticks.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(ticks.load(), 500u * 8u);
}

TEST(ThreadPoolStress, ExceptionUnwindingRacesAreClean) {
  // A throwing chunk drains the cursor while other workers are mid-chunk;
  // destruction immediately afterwards must still join cleanly.
  for (std::size_t round = 0; round < 40; ++round) {
    ThreadPool pool(3);
    EXPECT_THROW(pool.for_range(64, 1,
                                [&](std::size_t, std::size_t begin, std::size_t) {
                                  if (begin == 32) throw std::runtime_error("boom");
                                }),
                 std::runtime_error);
  }
}

TEST(ThreadPool, NestedForRangeThrowsInsteadOfCorrupting) {
  ThreadPool pool(2);
  EXPECT_THROW(
      pool.for_range(4, 1,
                     [&](std::size_t, std::size_t, std::size_t) {
                       pool.for_range(2, 1, [](std::size_t, std::size_t, std::size_t) {});
                     }),
      std::logic_error);
  // And the pool still works afterwards.
  std::atomic<int> done{0};
  pool.for_range(6, 1, [&](std::size_t, std::size_t, std::size_t) { done.fetch_add(1); });
  EXPECT_EQ(done.load(), 6);
}

}  // namespace
