// Golden-artefact regression corpus: small canonical sweep artefacts are
// committed under tests/golden/, and this suite re-runs the exact same
// scenarios and requires the freshly serialised artefacts to be
// byte-identical to the committed files. Shard format v3 - key order,
// number formatting, scenario block, edge partials - cannot drift silently;
// any intentional format change must regenerate the corpus (set
// AVGLOCAL_REGEN_GOLDEN=1 and re-run this binary) and show up in review as
// a diff of the committed artefacts.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "core/scenario.hpp"
#include "core/shard.hpp"

#ifndef AVGLOCAL_GOLDEN_DIR
#error "AVGLOCAL_GOLDEN_DIR must point at tests/golden"
#endif

namespace {

using namespace avglocal;

struct GoldenCase {
  const char* file;
  const char* algorithm;
  const char* family;
  std::size_t n;
};

const GoldenCase kCases[] = {
    {"view-largest-id-cycle.json", "largest-id", "cycle", 12},
    {"view-greedy-gnp.json", "greedy", "gnp", 12},
    {"message-largest-id-cycle.json", "largest-id-msg", "cycle", 12},
    {"message-local3-cycle.json", "local3", "cycle", 12},
};

/// One deterministic full-plan shard artefact per case; every knob pinned
/// so the bytes are a pure function of the library.
std::string render_case(const GoldenCase& c) {
  core::ScenarioSpec spec;
  spec.family = graph::parse_family_spec(c.family);
  spec.algorithm = c.algorithm;
  spec.ns = {c.n};
  spec.seed = 2026;
  spec.schedule.max_trials = 4;
  const core::ResolvedScenario resolved = core::resolve_scenario(spec);
  core::BatchedSweepOptions options = resolved.sweep_options();
  options.threads = 1;

  core::ShardDocument doc;
  doc.meta = core::SweepPlanMeta::from_options(resolved.spec.ns, options);
  doc.meta.algorithm = resolved.spec.algorithm;
  doc.meta.graph = graph::family_spec_to_string(resolved.spec.family);
  doc.meta.scenario = core::scenario_to_json(resolved.spec);
  doc.meta.engine = resolved.spec.engine;
  doc.shard = {0, resolved.spec.ns.size(), 0, options.trials};
  doc.points = core::run_scenario_shard(resolved, options, doc.shard);
  return core::shard_to_json(doc);
}

std::string golden_path(const GoldenCase& c) {
  return std::string(AVGLOCAL_GOLDEN_DIR) + "/" + c.file;
}

std::string read_file(const std::string& path) {
  std::ifstream file(path, std::ios::binary);
  if (!file) return {};
  std::stringstream buffer;
  buffer << file.rdbuf();
  return buffer.str();
}

TEST(GoldenArtefacts, CommittedArtefactsAreByteIdenticalToFreshRuns) {
  const bool regen = std::getenv("AVGLOCAL_REGEN_GOLDEN") != nullptr;
  for (const GoldenCase& c : kCases) {
    const std::string fresh = render_case(c);
    const std::string path = golden_path(c);
    if (regen) {
      std::ofstream out(path, std::ios::binary);
      ASSERT_TRUE(out) << "cannot write " << path;
      out << fresh;
      continue;
    }
    const std::string committed = read_file(path);
    ASSERT_FALSE(committed.empty())
        << path << " missing; regenerate with AVGLOCAL_REGEN_GOLDEN=1";
    EXPECT_EQ(fresh, committed) << c.file
                                << ": artefact bytes drifted; if the format change is "
                                   "intentional, regenerate the corpus";
  }
}

TEST(GoldenArtefacts, CommittedArtefactsStillParseAndMerge) {
  if (std::getenv("AVGLOCAL_REGEN_GOLDEN") != nullptr) GTEST_SKIP();
  for (const GoldenCase& c : kCases) {
    const std::string committed = read_file(golden_path(c));
    ASSERT_FALSE(committed.empty()) << c.file;
    core::ShardDocument doc = core::parse_shard_json(committed);
    EXPECT_EQ(doc.meta.algorithm, c.algorithm) << c.file;
    // Round trip: parse + re-serialise reproduces the committed bytes.
    EXPECT_EQ(core::shard_to_json(doc), committed) << c.file;
    // A full-plan artefact merges on its own into finalized points.
    std::vector<core::ShardDocument> docs;
    docs.push_back(std::move(doc));
    const auto points = core::merge_shards(std::move(docs));
    ASSERT_EQ(points.size(), 1u) << c.file;
    EXPECT_EQ(points[0].trials, 4u) << c.file;
    EXPECT_GT(points[0].radius.samples, 0u) << c.file;
  }
}

/// A frozen byte string of a version-2 artefact (the pre-edge-measure
/// format): the v2 reader must keep accepting it and default the new
/// fields. Frozen inline rather than generated - the library can no longer
/// write v2.
TEST(GoldenArtefacts, Version2ArtefactsStillParse) {
  const std::string v2 =
      R"({"avglocal_shard":2,"seed":9,"trials":2,"semantics":"induced","ns":[4],)"
      R"("quantile_probs":[0.5],"node_profile":false,"algorithm":"largest-id",)"
      R"("graph":"cycle","scenario":"",)"
      R"("shard":{"point_begin":0,"point_end":1,"trial_begin":0,"trial_end":2},)"
      R"("points":[{"point_index":0,"n":4,"trial_begin":0,"trial_sum":[5,6],)"
      R"("trial_max":[2,2],"histogram":[1,4,3],"node_sum":[3,2,3,3]}]})";
  const core::ShardDocument doc = core::parse_shard_json(v2);
  EXPECT_EQ(doc.meta.engine, "view");
  ASSERT_EQ(doc.points.size(), 1u);
  EXPECT_EQ(doc.points[0].edges, 0u);
  EXPECT_EQ(doc.points[0].trial_edge_sum, (std::vector<std::uint64_t>{0, 0}));
  EXPECT_TRUE(doc.points[0].edge_histogram.empty());
  // And merges: zero edge data finalizes to all-zero edge measures.
  std::vector<core::ShardDocument> docs;
  docs.push_back(doc);
  const auto points = core::merge_shards(std::move(docs));
  ASSERT_EQ(points.size(), 1u);
  EXPECT_EQ(points[0].edges, 0u);
  EXPECT_EQ(points[0].edge_avg_mean, 0.0);
  EXPECT_EQ(points[0].edge_time.samples, 0u);
}

}  // namespace
