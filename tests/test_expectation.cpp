// Tests of the expected-complexity formulas (the paper's "further work"
// question): exact closed forms validated against full enumeration at small
// n and against simulation at large n.
#include <gtest/gtest.h>

#include <cmath>

#include "algo/largest_id.hpp"
#include "analysis/expectation.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"

namespace {

using namespace avglocal;

TEST(Expectation, ClosedFormMatchesFullEnumeration) {
  // E[avg radius] by formula == exact average over all (n-1)! arrangements.
  for (std::size_t n = 4; n <= 9; ++n) {
    const double formula = analysis::expected_largest_id_average(n);
    const double brute = analysis::brute_force_expected_average(n, false);
    EXPECT_NEAR(formula, brute, 1e-9) << "n = " << n;
  }
}

TEST(Expectation, UniverseAwareClosedFormMatchesFullEnumeration) {
  for (std::size_t n = 4; n <= 9; ++n) {
    const double formula = analysis::expected_universe_aware_average(n);
    const double brute = analysis::brute_force_expected_average(n, true);
    EXPECT_NEAR(formula, brute, 1e-9) << "n = " << n;
  }
}

TEST(Expectation, GrowsLikeHalfLogN) {
  // sum 1/(2d-1) = (ln n)/2 + O(1): the normalised value settles near 0.5.
  const double r1 = analysis::expected_largest_id_average(1u << 10) /
                    std::log(static_cast<double>(1u << 10));
  const double r2 = analysis::expected_largest_id_average(1u << 16) /
                    std::log(static_cast<double>(1u << 16));
  EXPECT_NEAR(r1, 0.5, 0.2);
  EXPECT_NEAR(r2, 0.5, 0.12);
  EXPECT_LT(std::abs(r2 - 0.5), std::abs(r1 - 0.5)) << "converging towards 1/2";
}

TEST(Expectation, UniverseAwareIsSmallerButSameOrder) {
  for (const std::size_t n : {64u, 1024u, 16384u}) {
    const double plain = analysis::expected_largest_id_average(n);
    const double aware = analysis::expected_universe_aware_average(n);
    EXPECT_LT(aware, plain) << "n = " << n;
    EXPECT_GT(aware, 0.25 * plain) << "same Theta(log n) order, n = " << n;
  }
}

TEST(Expectation, ClassicMeasureIsDeterministic) {
  // Every permutation gives max radius ceil((n-1)/2): check by running the
  // engine over several random permutations.
  const std::size_t n = 40;
  core::SweepOptions options;
  options.trials = 10;
  options.seed = 3;
  const auto points = core::run_random_sweep(
      {n}, [](std::size_t m) { return graph::make_cycle(m); },
      algo::make_largest_id_view(), options);
  EXPECT_EQ(points[0].max_worst, analysis::deterministic_largest_id_max(n));
  EXPECT_DOUBLE_EQ(points[0].max_mean,
                   static_cast<double>(analysis::deterministic_largest_id_max(n)));
}

TEST(Expectation, SimulationWithinSamplingError) {
  const std::size_t n = 4096;
  core::SweepOptions options;
  options.trials = 40;
  options.seed = 9;
  const auto points = core::run_random_sweep(
      {n}, [](std::size_t m) { return graph::make_cycle(m); },
      algo::make_largest_id_view(), options);
  const double exact = analysis::expected_largest_id_average(n);
  const double stderr_mean =
      points[0].avg_sd / std::sqrt(static_cast<double>(options.trials));
  EXPECT_NEAR(points[0].avg_mean, exact, 5 * stderr_mean + 1e-6);
}

}  // namespace
