// Tests of the message-passing engine: synchrony, guards, knowledge modes,
// tracing, and the full-information adapter's equivalence with the ball
// engine under flooding semantics.
#include <gtest/gtest.h>

#include "algo/largest_id.hpp"
#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/engine.hpp"
#include "local/full_info.hpp"
#include "local/view_engine.hpp"
#include "local/wire.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;
using local::Message;
using local::NodeContext;

/// Outputs its own id immediately, never sends anything.
class OutputImmediately final : public local::Algorithm {
 public:
  void on_start(NodeContext& ctx) override { ctx.output(static_cast<std::int64_t>(ctx.id())); }
  void on_round(NodeContext&, std::span<const Message>) override {}
};

TEST(Engine, ImmediateOutputsFinishAtRoundZero) {
  const auto g = graph::make_cycle(5);
  const auto ids = graph::IdAssignment::identity(5);
  const auto run =
      local::run_messages(g, ids, [] { return std::make_unique<OutputImmediately>(); });
  EXPECT_EQ(run.rounds, 0u);
  EXPECT_EQ(run.messages, 0u);
  for (std::size_t v = 0; v < 5; ++v) {
    EXPECT_EQ(run.radii[v], 0u);
    EXPECT_EQ(run.outputs[v], static_cast<std::int64_t>(v + 1));
  }
}

/// Counts rounds; outputs at round k. Verifies synchrony and inbox content.
class PingPong final : public local::Algorithm {
 public:
  explicit PingPong(std::size_t stop_round) : stop_round_(stop_round) {}

  void on_start(NodeContext& ctx) override {
    local::Encoder e;
    e.u64(ctx.id());
    ctx.broadcast(e.take());
  }

  void on_round(NodeContext& ctx, std::span<const Message> inbox) override {
    // On a cycle every node hears from both neighbours every round.
    EXPECT_EQ(inbox.size(), 2u);
    EXPECT_EQ(inbox[0].from_port, 0u);
    EXPECT_EQ(inbox[1].from_port, 1u);
    if (ctx.round() == stop_round_ && !ctx.has_output()) {
      local::Decoder d(inbox[0].payload);
      ctx.output(static_cast<std::int64_t>(d.u64()));
    }
    local::Encoder e;
    e.u64(ctx.id());
    ctx.broadcast(e.take());
  }

 private:
  std::size_t stop_round_;
};

TEST(Engine, SynchronousRoundsAndPortRouting) {
  const std::size_t n = 6;
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  const auto run =
      local::run_messages(g, ids, [] { return std::make_unique<PingPong>(3); });
  EXPECT_EQ(run.rounds, 3u);
  for (std::size_t v = 0; v < n; ++v) {
    EXPECT_EQ(run.radii[v], 3u);
    // Port 0 leads to the clockwise successor; its id is v+2 (mod n, 1-based).
    EXPECT_EQ(run.outputs[v], static_cast<std::int64_t>((v + 1) % n + 1));
  }
  // The engine counts *delivered* messages: sends from rounds 0..2 arrive in
  // rounds 1..3; the final round's sends are never delivered.
  EXPECT_EQ(run.messages, n * 2 * 3);
}

TEST(Engine, KnowledgeModes) {
  const auto g = graph::make_cycle(4);
  const auto ids = graph::IdAssignment::identity(4);

  class NReporter final : public local::Algorithm {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.output(ctx.n().has_value() ? static_cast<std::int64_t>(*ctx.n()) : -1);
    }
    void on_round(NodeContext&, std::span<const Message>) override {}
  };

  local::EngineOptions unknown;
  const auto run_unknown =
      local::run_messages(g, ids, [] { return std::make_unique<NReporter>(); }, unknown);
  EXPECT_EQ(run_unknown.outputs[0], -1);

  local::EngineOptions knows;
  knows.knowledge = local::Knowledge::kKnowsN;
  const auto run_knows =
      local::run_messages(g, ids, [] { return std::make_unique<NReporter>(); }, knows);
  EXPECT_EQ(run_knows.outputs[0], 4);
}

TEST(Engine, GuardsRejectBadSends) {
  const auto g = graph::make_cycle(3);
  const auto ids = graph::IdAssignment::identity(3);

  class BadPort final : public local::Algorithm {
   public:
    void on_start(NodeContext& ctx) override { ctx.send(5, {}); }
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  EXPECT_THROW(local::run_messages(g, ids, [] { return std::make_unique<BadPort>(); }),
               std::invalid_argument);

  class DoubleSend final : public local::Algorithm {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.send(0, {});
      ctx.send(0, {});
    }
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  EXPECT_THROW(local::run_messages(g, ids, [] { return std::make_unique<DoubleSend>(); }),
               std::invalid_argument);

  class DoubleOutput final : public local::Algorithm {
   public:
    void on_start(NodeContext& ctx) override {
      ctx.output(1);
      ctx.output(2);
    }
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  EXPECT_THROW(local::run_messages(g, ids, [] { return std::make_unique<DoubleOutput>(); }),
               std::logic_error);
}

TEST(Engine, RoundCapThrows) {
  const auto g = graph::make_cycle(3);
  const auto ids = graph::IdAssignment::identity(3);

  class Silent final : public local::Algorithm {
   public:
    void on_start(NodeContext&) override {}
    void on_round(NodeContext&, std::span<const Message>) override {}
  };
  local::EngineOptions options;
  options.max_rounds = 50;
  EXPECT_THROW(
      local::run_messages(g, ids, [] { return std::make_unique<Silent>(); }, options),
      std::runtime_error);
}

TEST(Engine, TraceRecordsRounds) {
  const auto g = graph::make_cycle(5);
  const auto ids = graph::IdAssignment::identity(5);
  local::Trace trace;
  local::EngineOptions options;
  options.trace = &trace;
  local::run_messages(g, ids, [] { return std::make_unique<PingPong>(2); }, options);
  ASSERT_EQ(trace.rounds().size(), 3u);  // rounds 0, 1, 2
  EXPECT_EQ(trace.rounds()[0].round, 0u);
  EXPECT_EQ(trace.rounds()[2].outputs_set, 5u);
  std::size_t total_outputs = 0;
  for (const auto& r : trace.rounds()) total_outputs += r.outputs_set;
  EXPECT_EQ(total_outputs, 5u);
}

// ---- full-information adapter ---------------------------------------------

struct AdapterCase {
  std::string family;
  std::size_t n;
  std::uint64_t seed;
};

class FullInfoEquivalence : public ::testing::TestWithParam<AdapterCase> {};

TEST_P(FullInfoEquivalence, MatchesFloodingViewEngine) {
  const auto& param = GetParam();
  support::Xoshiro256 rng(param.seed);
  graph::Graph g = param.family == "cycle"  ? graph::make_cycle(param.n)
                   : param.family == "path" ? graph::make_path(param.n)
                   : param.family == "tree" ? graph::make_random_tree(param.n, rng)
                                            : graph::make_grid(param.n / 4, 4);
  const auto ids = graph::IdAssignment::random(g.vertex_count(), rng);

  local::ViewEngineOptions view_options;
  view_options.semantics = local::ViewSemantics::kFloodingKnowledge;
  const auto by_views =
      local::run_views(g, ids, algo::make_largest_id_view(), view_options);
  const auto by_messages =
      local::run_views_by_messages(g, ids, algo::make_largest_id_view());

  ASSERT_EQ(by_views.outputs.size(), by_messages.outputs.size());
  for (std::size_t v = 0; v < by_views.outputs.size(); ++v) {
    EXPECT_EQ(by_views.outputs[v], by_messages.outputs[v]) << "vertex " << v;
    EXPECT_EQ(by_views.radii[v], by_messages.radii[v]) << "vertex " << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Graphs, FullInfoEquivalence,
    ::testing::Values(AdapterCase{"cycle", 9, 1}, AdapterCase{"cycle", 10, 2},
                      AdapterCase{"cycle", 17, 3}, AdapterCase{"path", 12, 4},
                      AdapterCase{"tree", 20, 5}, AdapterCase{"tree", 33, 6},
                      AdapterCase{"grid", 16, 7}, AdapterCase{"cycle", 24, 8}),
    [](const auto& param_info) {
      return param_info.param.family + "_" + std::to_string(param_info.param.n) + "_s" +
             std::to_string(param_info.param.seed);
    });

}  // namespace
