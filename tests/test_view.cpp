// Tests of the ball-view machinery: BallGrower under both knowledge
// semantics, ring view extraction, and the view engine loop.
#include <gtest/gtest.h>

#include <algorithm>
#include <tuple>

#include "graph/generators.hpp"
#include "graph/ids.hpp"
#include "local/view.hpp"
#include "local/view_engine.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;
using local::BallGrower;
using local::BallView;
using local::ViewSemantics;

TEST(BallGrower, RadiusZeroIsJustTheRoot) {
  const auto g = graph::make_cycle(5);
  const auto ids = graph::IdAssignment::identity(5);
  BallGrower::Scratch scratch(5);
  BallGrower grower(g, ids, 2, ViewSemantics::kInducedBall, scratch);
  const BallView& view = grower.view();
  EXPECT_EQ(view.radius, 0);
  EXPECT_EQ(view.size(), 1u);
  EXPECT_EQ(view.root_id(), 3u);
  EXPECT_EQ(view.degree_of(0), 2u);
  EXPECT_FALSE(view.covers_graph);
}

TEST(BallGrower, InducedCoversCycleAtCeilHalf) {
  for (const std::size_t n : {3u, 4u, 5u, 6u, 7u, 8u, 9u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::identity(n);
    BallGrower::Scratch scratch(n);
    BallGrower grower(g, ids, 0, ViewSemantics::kInducedBall, scratch);
    std::size_t r = 0;
    while (!grower.view().covers_graph) {
      grower.grow();
      ++r;
      ASSERT_LE(r, n);
    }
    EXPECT_EQ(r, n / 2) << "induced closure at ceil((n-1)/2), n = " << n;
    EXPECT_EQ(grower.view().size(), n);
  }
}

TEST(BallGrower, FloodingCoversCycleLater) {
  for (const std::size_t n : {4u, 5u, 6u, 7u, 9u, 12u}) {
    const auto g = graph::make_cycle(n);
    const auto ids = graph::IdAssignment::identity(n);
    BallGrower::Scratch scratch(n);
    BallGrower grower(g, ids, 1, ViewSemantics::kFloodingKnowledge, scratch);
    std::size_t r = 0;
    while (!grower.view().covers_graph) {
      grower.grow();
      ++r;
      ASSERT_LE(r, n);
    }
    EXPECT_EQ(r, (n + 1) / 2) << "flooding closure at ceil(n/2), n = " << n;
  }
}

TEST(BallGrower, LayerSizesOnCycle) {
  const std::size_t n = 11;
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  BallGrower::Scratch scratch(n);
  BallGrower grower(g, ids, 0, ViewSemantics::kInducedBall, scratch);
  for (std::size_t r = 1; r <= 5; ++r) {
    grower.grow();
    EXPECT_EQ(grower.view().size(), std::min(n, 2 * r + 1));
  }
}

TEST(BallGrower, ViewIdsAreAppendOnly) {
  const std::size_t n = 16;
  const auto g = graph::make_cycle(n);
  avglocal::support::Xoshiro256 rng(11);
  const auto ids = graph::IdAssignment::random(n, rng);
  BallGrower::Scratch scratch(n);
  BallGrower grower(g, ids, 3, ViewSemantics::kInducedBall, scratch);
  std::vector<std::uint64_t> prefix(grower.view().ids.begin(), grower.view().ids.end());
  for (int r = 1; r <= 8; ++r) {
    grower.grow();
    const auto now = grower.view().ids;
    ASSERT_GE(now.size(), prefix.size());
    for (std::size_t i = 0; i < prefix.size(); ++i) {
      EXPECT_EQ(now[i], prefix[i]) << "prefix must be stable";
    }
    prefix.assign(now.begin(), now.end());
  }
}

TEST(BallGrower, ScratchIsReusableAcrossGrowers) {
  const std::size_t n = 10;
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  BallGrower::Scratch scratch(n);
  for (graph::Vertex v = 0; v < n; ++v) {
    BallGrower grower(g, ids, v, ViewSemantics::kInducedBall, scratch);
    grower.grow();
    EXPECT_EQ(grower.view().size(), 3u);
    EXPECT_EQ(grower.view().root_id(), v + 1);
  }
}

TEST(BallGrower, StarGeometry) {
  const auto g = graph::make_star(7);
  const auto ids = graph::IdAssignment::identity(7);
  BallGrower::Scratch scratch(7);
  {
    BallGrower centre(g, ids, 0, ViewSemantics::kInducedBall, scratch);
    centre.grow();
    EXPECT_TRUE(centre.view().covers_graph);
    EXPECT_EQ(centre.view().size(), 7u);
  }
  {
    BallGrower leaf(g, ids, 1, ViewSemantics::kInducedBall, scratch);
    leaf.grow();
    EXPECT_EQ(leaf.view().size(), 2u);
    EXPECT_FALSE(leaf.view().covers_graph);
    leaf.grow();
    EXPECT_TRUE(leaf.view().covers_graph);
    EXPECT_EQ(leaf.view().size(), 7u);
  }
}

TEST(BallView, MaxAndGreaterQueries) {
  const auto g = graph::make_cycle(6);
  const auto ids = graph::IdAssignment::reversed(6);  // ids 6,5,4,3,2,1
  BallGrower::Scratch scratch(6);
  BallGrower grower(g, ids, 3, ViewSemantics::kInducedBall, scratch);  // own id 3
  grower.grow();
  const BallView& view = grower.view();
  EXPECT_EQ(view.max_id(), 4u);
  EXPECT_TRUE(view.contains_id_greater_than(3));
  EXPECT_FALSE(view.contains_id_greater_than(4));
}

struct RingViewCase {
  std::size_t n;
  std::size_t radius;
  local::ViewSemantics semantics;
};

class RingViewExtraction : public ::testing::TestWithParam<RingViewCase> {};

TEST_P(RingViewExtraction, WalksMatchArcOrder) {
  const auto [n, radius, semantics] = GetParam();
  const auto g = graph::make_cycle(n);
  const auto ids = graph::IdAssignment::identity(n);
  BallGrower::Scratch scratch(n);
  const graph::Vertex root = 0;
  BallGrower grower(g, ids, root, semantics, scratch);
  for (std::size_t r = 0; r < radius; ++r) grower.grow();
  const auto ring = local::try_extract_ring_view(grower.view());
  ASSERT_TRUE(ring.has_value());
  EXPECT_EQ(ring->own, 1u);
  if (ring->closed) {
    EXPECT_EQ(ring->seen_count(), n);
    EXPECT_TRUE(ring->ccw.empty());
    ASSERT_EQ(ring->cw.size(), n - 1);
    for (std::size_t i = 0; i < ring->cw.size(); ++i) {
      EXPECT_EQ(ring->cw[i], 2 + i) << "clockwise walk follows ring order";
    }
  } else {
    ASSERT_EQ(ring->cw.size(), radius);
    ASSERT_EQ(ring->ccw.size(), radius);
    for (std::size_t i = 0; i < radius; ++i) {
      EXPECT_EQ(ring->cw[i], (root + i + 1) % n + 1);  // identifier = vertex index + 1
      EXPECT_EQ(ring->ccw[i], (root + n - i - 1) % n + 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RingViewExtraction,
    ::testing::Values(RingViewCase{9, 2, ViewSemantics::kInducedBall},
                      RingViewCase{9, 3, ViewSemantics::kInducedBall},
                      RingViewCase{9, 4, ViewSemantics::kInducedBall},   // closed
                      RingViewCase{12, 3, ViewSemantics::kFloodingKnowledge},
                      RingViewCase{12, 6, ViewSemantics::kFloodingKnowledge},  // closed
                      RingViewCase{5, 2, ViewSemantics::kInducedBall}));      // closed

TEST(RingView, NonRingRootIsRejected) {
  const auto g = graph::make_star(5);
  const auto ids = graph::IdAssignment::identity(5);
  BallGrower::Scratch scratch(5);
  BallGrower grower(g, ids, 0, ViewSemantics::kInducedBall, scratch);
  grower.grow();
  EXPECT_FALSE(local::try_extract_ring_view(grower.view()).has_value());
}

// ---- view engine ----------------------------------------------------------

/// Stops at a fixed radius, outputs the ball size (for engine-loop tests).
class StopAtRadius final : public local::ViewAlgorithm {
 public:
  explicit StopAtRadius(int r) : target_(r) {}
  std::optional<std::int64_t> on_view(const BallView& view) override {
    if (view.radius < target_ && !view.covers_graph) return std::nullopt;
    return static_cast<std::int64_t>(view.size());
  }

 private:
  int target_;
};

TEST(ViewEngine, RadiiAndOutputs) {
  const auto g = graph::make_cycle(10);
  const auto ids = graph::IdAssignment::identity(10);
  const auto run = local::run_views(g, ids, [] { return std::make_unique<StopAtRadius>(2); });
  for (std::size_t v = 0; v < 10; ++v) {
    EXPECT_EQ(run.radii[v], 2u);
    EXPECT_EQ(run.outputs[v], 5);
  }
  EXPECT_EQ(run.max_radius(), 2u);
  EXPECT_DOUBLE_EQ(run.average_radius(), 2.0);
  EXPECT_EQ(run.sum_radius(), 20u);
}

TEST(ViewEngine, CoverShortCircuitsLargeTargets) {
  const auto g = graph::make_cycle(6);
  const auto ids = graph::IdAssignment::identity(6);
  const auto run =
      local::run_views(g, ids, [] { return std::make_unique<StopAtRadius>(100); });
  for (std::size_t v = 0; v < 6; ++v) EXPECT_EQ(run.radii[v], 3u);
}

/// Never stops: engine must throw at the cap.
class NeverStops final : public local::ViewAlgorithm {
 public:
  std::optional<std::int64_t> on_view(const BallView&) override { return std::nullopt; }
};

TEST(ViewEngine, RadiusCapThrows) {
  const auto g = graph::make_cycle(6);
  const auto ids = graph::IdAssignment::identity(6);
  EXPECT_THROW(local::run_views(g, ids, [] { return std::make_unique<NeverStops>(); }),
               std::runtime_error);
}

TEST(ViewEngine, SingleVertexRunner) {
  const auto g = graph::make_cycle(9);
  const auto ids = graph::IdAssignment::identity(9);
  const auto [output, radius] =
      local::run_view_on_vertex(g, ids, 4, [] { return std::make_unique<StopAtRadius>(1); });
  EXPECT_EQ(radius, 1u);
  EXPECT_EQ(output, 3);
}

TEST(PortTable, RowsSpansAndReuse) {
  local::PortTable table;
  EXPECT_EQ(table.rows(), 0u);
  table.add_row(2);
  table.add_row(0);
  table.add_row(3);
  ASSERT_EQ(table.rows(), 3u);
  EXPECT_EQ(table.row_size(0), 2u);
  EXPECT_EQ(table.row_size(1), 0u);
  EXPECT_EQ(table[2].size(), 3u);
  for (const auto target : table[0]) EXPECT_EQ(target, local::kUnknownTarget);
  table[0][1] = 7;
  EXPECT_EQ(table[0][1], 7u);
  table.clear();
  EXPECT_EQ(table.rows(), 0u);
  table.assign_rows(4, 2);
  ASSERT_EQ(table.rows(), 4u);
  for (std::size_t row = 0; row < 4; ++row) {
    ASSERT_EQ(table.row_size(row), 2u);
    EXPECT_EQ(table[row][0], local::kUnknownTarget);
  }
}

TEST(BallGrower, ResetReRootsAndMatchesFreshGrower) {
  const auto g = graph::make_grid(4, 5);
  const auto ids = graph::IdAssignment::reversed(20);
  BallGrower::Scratch scratch(20);
  BallGrower reused(g, ids, 0, ViewSemantics::kInducedBall, scratch);
  for (avglocal::graph::Vertex root = 0; root < 20; ++root) {
    reused.reset(root);
    reused.grow();
    reused.grow();

    BallGrower::Scratch fresh_scratch(20);
    BallGrower fresh(g, ids, root, ViewSemantics::kInducedBall, fresh_scratch);
    fresh.grow();
    fresh.grow();

    const auto& a = reused.view();
    const auto& b = fresh.view();
    ASSERT_EQ(a.size(), b.size()) << "root " << root;
    EXPECT_TRUE(std::equal(a.ids.begin(), a.ids.end(), b.ids.begin(), b.ids.end()));
    EXPECT_EQ(a.dist, b.dist);
    EXPECT_EQ(a.covers_graph, b.covers_graph);
    for (std::size_t v = 0; v < a.size(); ++v) {
      ASSERT_EQ(a.degree_of(v), b.degree_of(v));
      for (std::size_t port = 0; port < a.degree_of(v); ++port) {
        EXPECT_EQ(a.ports[v][port], b.ports[v][port]) << "root " << root;
      }
    }
  }
}

}  // namespace
