// Tests of the analysis toolkit: the recurrence and its four-way agreement,
// A000788, adversaries, neighbourhood graphs and chromatic numbers.
#include <gtest/gtest.h>

#include <cmath>
#include "algo/largest_id.hpp"
#include "analysis/a000788.hpp"
#include "analysis/adversary.hpp"
#include "analysis/chromatic.hpp"
#include "analysis/exhaustive.hpp"
#include "analysis/neighbourhood_graph.hpp"
#include "analysis/recurrence.hpp"
#include "core/runner.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "support/math.hpp"
#include "support/rng.hpp"

namespace {

using namespace avglocal;

TEST(Recurrence, SmallValues) {
  const analysis::Recurrence rec(16);
  EXPECT_EQ(rec.a(0), 0u);
  EXPECT_EQ(rec.a(1), 1u);
  EXPECT_EQ(rec.a(2), 2u);
  EXPECT_EQ(rec.a(3), 4u);
  EXPECT_EQ(rec.a(4), 5u);
  EXPECT_EQ(rec.a(5), 7u);
  EXPECT_EQ(rec.a(6), 9u);
  EXPECT_EQ(rec.a(7), 12u);
}

TEST(Recurrence, EqualsA000788) {
  // The paper's pointer to OEIS A000788, verified exactly.
  const std::size_t limit = 4096;
  const analysis::Recurrence rec(limit);
  for (std::size_t p = 0; p <= limit; ++p) {
    ASSERT_EQ(rec.a(p), analysis::a000788(p)) << "p = " << p;
  }
}

TEST(Recurrence, ThetaNLogN) {
  const std::size_t p = 1u << 12;
  const analysis::Recurrence rec(p);
  const double normalised = static_cast<double>(rec.a(p)) /
                            (static_cast<double>(p) * std::log2(static_cast<double>(p)));
  EXPECT_GT(normalised, 0.4);
  EXPECT_LT(normalised, 0.6);
}

TEST(A000788, MatchesBruteForce) {
  std::uint64_t sum = 0;
  for (std::uint64_t i = 0; i <= 3000; ++i) {
    sum += static_cast<std::uint64_t>(support::popcount_u64(i));
    ASSERT_EQ(analysis::a000788(i), sum) << "i = " << i;
  }
  EXPECT_EQ(analysis::total_ones_below(0), 0u);
  EXPECT_EQ(analysis::total_ones_below(1), 0u);
  EXPECT_EQ(analysis::total_ones_below(2), 1u);
}

TEST(Construction, SegmentIsAPermutation) {
  const analysis::Recurrence rec(64);
  for (std::size_t p = 1; p <= 64; ++p) {
    const auto ids = analysis::worst_case_segment_ids(rec, p);
    ASSERT_EQ(ids.size(), p);
    std::vector<bool> seen(p + 1, false);
    for (const auto id : ids) {
      ASSERT_GE(id, 1u);
      ASSERT_LE(id, p);
      ASSERT_FALSE(seen[id]);
      seen[id] = true;
    }
  }
}

TEST(Construction, AchievesPredictedSumExactly) {
  // The explicit extremal arrangement achieves ceil((n-1)/2) + a(n-1): the
  // third independent computation of the worst case.
  const analysis::Recurrence rec(1024);
  for (const std::size_t n : {4u, 8u, 16u, 64u, 256u, 1024u}) {
    const auto ids = analysis::worst_case_cycle_ids(rec, n);
    const std::uint64_t simulated = algo::largest_id_radius_sum_on_cycle(ids);
    EXPECT_EQ(simulated, analysis::predicted_worst_cycle_sum(rec, n)) << "n = " << n;
  }
}

TEST(Exhaustive, BruteForceMatchesRecurrence) {
  // The fourth independent computation: brute force over all permutations.
  const analysis::Recurrence rec(16);
  for (std::size_t n = 4; n <= 8; ++n) {
    const auto brute = analysis::exhaustive_worst_largest_id_cycle(n);
    EXPECT_EQ(brute.max_sum, analysis::predicted_worst_cycle_sum(rec, n)) << "n = " << n;
    std::uint64_t factorial = 1;
    for (std::size_t i = 2; i < n; ++i) factorial *= i;
    EXPECT_EQ(brute.permutations_checked, factorial);
  }
}

TEST(Exhaustive, NoPointwiseMinimalityViolations) {
  for (std::size_t n = 4; n <= 6; ++n) {
    EXPECT_EQ(analysis::count_pointwise_minimality_violations(n), 0u) << "n = " << n;
  }
}

TEST(Adversary, SlicePlantsGuaranteedHighRadiusCentres) {
  // The construction's deterministic guarantee (the device of Theorem 1's
  // proof): every copied slice centre keeps radius >= r* under the built
  // permutation, because its sub-r* views are copied verbatim.
  const std::size_t n = 128;
  const auto factory = algo::make_largest_id_view();
  const auto cycle = graph::make_cycle(n);

  analysis::SliceAdversaryOptions options;
  options.seed = 11;
  options.slice_radius = 7;  // ceil(log2 128)
  const auto adversarial = analysis::build_slice_adversary(n, factory, options);
  const auto run = local::run_views(cycle, adversarial, factory);

  // Slices of width 2*7+1 = 15 are cut until at most n/2 identifiers remain:
  // at least 4 centres are planted.
  std::size_t high_radius = 0;
  for (const std::size_t r : run.radii) {
    if (r >= options.slice_radius) ++high_radius;
  }
  EXPECT_GE(high_radius, 4u);

  // And the average can never beat the exact worst case.
  const analysis::Recurrence rec(n);
  const double slice_avg = core::measure(run).avg_radius;
  EXPECT_LE(slice_avg, static_cast<double>(analysis::predicted_worst_cycle_sum(rec, n)) /
                           static_cast<double>(n) + 1e-9);
}

TEST(Adversary, SlicePermutationIsValid) {
  analysis::SliceAdversaryOptions options;
  options.seed = 2;
  const auto ids = analysis::build_slice_adversary(64, algo::make_largest_id_view(), options);
  EXPECT_EQ(ids.size(), 64u);  // IdAssignment construction enforces distinctness
}

TEST(Adversary, HillClimbNeverWorseThanStart) {
  const std::size_t n = 48;
  const auto factory = algo::make_largest_id_view();
  analysis::HillClimbOptions options;
  options.iterations = 150;
  options.seed = 21;
  const auto climbed = analysis::hill_climb_adversary(n, factory, options);
  const auto cycle = graph::make_cycle(n);
  const double value = core::run_assignment(cycle, climbed, factory).avg_radius;

  support::Xoshiro256 rng(options.seed);
  std::vector<std::uint64_t> start(n);
  for (std::size_t i = 0; i < n; ++i) start[i] = i + 1;
  support::shuffle(start, rng);
  const double initial =
      core::run_assignment(cycle, graph::IdAssignment(start), factory).avg_radius;
  EXPECT_GE(value, initial);
}

TEST(NeighbourhoodGraph, SizeFormula) {
  EXPECT_EQ(analysis::neighbourhood_graph_size(5, 0), 5u);
  EXPECT_EQ(analysis::neighbourhood_graph_size(5, 1), 60u);
  EXPECT_EQ(analysis::neighbourhood_graph_size(7, 1), 210u);
}

TEST(NeighbourhoodGraph, RadiusZeroIsComplete) {
  for (std::size_t n = 4; n <= 7; ++n) {
    const auto g = analysis::build_neighbourhood_graph(n, 0);
    EXPECT_EQ(g.vertex_count(), n);
    EXPECT_EQ(g.edge_count(), n * (n - 1) / 2);
    const auto chi = analysis::chromatic_number(g);
    ASSERT_TRUE(chi.has_value());
    EXPECT_EQ(*chi, n) << "chi(B_0(n)) = chi(K_n) = n";
  }
}

TEST(NeighbourhoodGraph, RadiusOneStructure) {
  const std::size_t n = 5;
  const auto g = analysis::build_neighbourhood_graph(n, 1);
  EXPECT_EQ(g.vertex_count(), 60u);
  // Every view (a,b,c) has n-3 successor shifts and n-3 predecessor shifts.
  for (graph::Vertex v = 0; v < g.vertex_count(); ++v) {
    EXPECT_EQ(g.degree(v), 2 * (n - 3));
  }
  EXPECT_TRUE(graph::is_connected(g));
}

TEST(NeighbourhoodGraph, RejectsOversize) {
  EXPECT_THROW(analysis::build_neighbourhood_graph(50, 2), std::invalid_argument);
  EXPECT_THROW(analysis::build_neighbourhood_graph(3, 1), std::invalid_argument);
}

TEST(Chromatic, ExactOnKnownGraphs) {
  const auto c5 = graph::make_cycle(5);
  EXPECT_EQ(analysis::chromatic_number(c5).value(), 3u);  // odd cycle
  const auto c6 = graph::make_cycle(6);
  EXPECT_EQ(analysis::chromatic_number(c6).value(), 2u);  // even cycle
  const auto k4 = graph::make_complete(4);
  EXPECT_EQ(analysis::chromatic_number(k4).value(), 4u);
  const auto star = graph::make_star(7);
  EXPECT_EQ(analysis::chromatic_number(star).value(), 2u);
}

TEST(Chromatic, KColourabilityConsistency) {
  const auto g = analysis::build_neighbourhood_graph(6, 1);
  const auto chi = analysis::chromatic_number(g, 20'000'000);
  ASSERT_TRUE(chi.has_value());
  EXPECT_GE(*chi, analysis::greedy_clique_lower(g));
  EXPECT_LE(*chi, analysis::greedy_chromatic_upper(g));
  EXPECT_TRUE(analysis::k_colourable(g, *chi, 20'000'000).value());
  if (*chi > 1) {
    EXPECT_FALSE(analysis::k_colourable(g, *chi - 1, 20'000'000).value());
  }
}

TEST(Chromatic, OneRoundCannotThreeColourModerateUniverses) {
  // The concrete content of Linial's bound at t = 1: already for small
  // identifier universes, one round is not enough to 3-colour the ring.
  const auto g = analysis::build_neighbourhood_graph(8, 1);
  const auto three = analysis::k_colourable(g, 3, 50'000'000);
  ASSERT_TRUE(three.has_value()) << "budget too small";
  EXPECT_FALSE(*three);
}

TEST(Chromatic, BudgetExhaustionIsReported) {
  const auto g = analysis::build_neighbourhood_graph(8, 1);
  EXPECT_EQ(analysis::k_colourable(g, 3, 10), std::nullopt);
}

}  // namespace
